#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
# Usage: ./check.sh [--quick]
#   --quick  CI-friendly subset: skip `dune runtest`'s slow cases via a
#            reduced chaos smoke and run the experiment suite under tight
#            supervision budgets (--deadline/--max-states), exercising the
#            graceful-degradation path instead of the full state spaces.
set -eu
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: ./check.sh [--quick]" >&2; exit 2 ;;
  esac
done

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not available)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

# Chaos smoke: the sound quorum must survive a quick seeded campaign, and
# the published frontier seed must still find (and shrink) the E13-style
# atomicity violation. --expect makes a mismatch a non-zero exit.
echo "== chaos smoke"
if [ "$QUICK" = 1 ]; then
  dune exec bin/boundedreg.exe -- chaos --runs 5 --seed 1 --expect pass
else
  dune exec bin/boundedreg.exe -- chaos --runs 20 --seed 1 --expect pass
fi
dune exec bin/boundedreg.exe -- chaos --frontier --runs 1 --seed 127 \
  --expect violation

# Churn smoke: the dynamic-membership emulation (lib/msgpass/dynreg.ml).
# A sound churn campaign — slack covers the churn rate — must stay
# linearizable on every seeded run; the churn-frontier preset
# (above-bound churn, unwidened quorums) must find and shrink the
# stale-read counterexample. Seed 29 is the published first violating
# seed, inside the 40-run sweep from seed 1.
echo "== churn smoke"
if [ "$QUICK" = 1 ]; then
  dune exec bin/boundedreg.exe -- chaos --churn --runs 10 --seed 1 --expect pass
else
  dune exec bin/boundedreg.exe -- chaos --churn --runs 50 --seed 1 --expect pass
fi
dune exec bin/boundedreg.exe -- chaos --churn-frontier --runs 40 --seed 1 \
  --expect violation

# Trace smoke: a budgeted exploration captured to JSONL must validate —
# parseable events, balanced spans — via the trace summarizer; metrics go
# to a JSON file CI archives. Runs in both modes (it is a fraction of a
# second) and leaves ci-smoke.trace.jsonl / ci-metrics.json behind for
# the artifact upload step.
echo "== trace smoke"
dune exec bin/boundedreg.exe -- explore -k 2 --max-nodes 2000 \
  --trace ci-smoke.trace.jsonl --metrics ci-metrics.json
dune exec bin/boundedreg.exe -- trace summary ci-smoke.trace.jsonl

# Report smoke: the health-report renderer must consume the trace and
# metrics the step above just wrote. Both renderings are CI artifacts.
echo "== report smoke"
dune exec bin/boundedreg.exe -- report ci-smoke.trace.jsonl \
  --metrics ci-metrics.json -o ci-report.md
dune exec bin/boundedreg.exe -- report ci-smoke.trace.jsonl \
  --metrics ci-metrics.json --html -o ci-report.html
grep -q "boundedreg health report" ci-report.md

if [ "$QUICK" = 1 ]; then
  # Supervised smoke: the whole experiment registry under a tight
  # per-experiment budget. Experiments degrade to sampled coverage
  # rather than blowing the CI clock; crashes and hangs still exit 1.
  echo "== supervised experiment smoke (budgeted)"
  dune exec bin/boundedreg.exe -- run all --deadline 10 --max-states 20000
fi

# Parallel smoke: the domain pool must be invisible in the output. With
# reductions off the raw tree partitions exactly, so the stats and
# terminal-digest lines of a jobs=2 exploration are byte-identical to
# jobs=1; a parallel chaos campaign (outcomes computed on workers,
# tallied in seed order on the main domain) must reproduce the
# sequential stdout byte-for-byte. The jobs=1 output (including the
# digest) is echoed to the log so a mismatch can be read off the CI run
# without reconstructing the tmp files.
echo "== parallel smoke"
tmp_seq=$(mktemp) && tmp_par=$(mktemp)
trap 'rm -f "$tmp_seq" "$tmp_par"' EXIT
dune exec bin/boundedreg.exe -- explore -k 2 --no-dedup --no-por \
  --jobs 1 | sed 1d > "$tmp_seq"
dune exec bin/boundedreg.exe -- explore -k 2 --no-dedup --no-por \
  --jobs 2 | sed 1d > "$tmp_par"
echo "-- explore jobs=1 (reference, must match jobs=2):"
cat "$tmp_seq"
diff "$tmp_seq" "$tmp_par"
dune exec bin/boundedreg.exe -- chaos --frontier --runs 5 --seed 127 \
  --jobs 1 --expect violation > "$tmp_seq"
dune exec bin/boundedreg.exe -- chaos --frontier --runs 5 --seed 127 \
  --jobs 2 --expect violation > "$tmp_par"
diff "$tmp_seq" "$tmp_par"
# Traced parallel runs: worker-domain events drain through private
# buffers in unit-index order, so up to the echoed jobs value the
# jobs=1 and jobs=2 traces are byte-identical — and the jobs=2 trace
# must actually contain the workers' per-run net events. The first
# violation also dumps the flight recorder post-mortem.
rm -f flight-nonlinearizable.jsonl
dune_trace_seq=$(mktemp) && dune_trace_par=$(mktemp)
dune exec bin/boundedreg.exe -- chaos --frontier --runs 5 --seed 127 \
  --jobs 1 --expect violation --trace "$dune_trace_seq" > /dev/null
dune exec bin/boundedreg.exe -- chaos --frontier --runs 5 --seed 127 \
  --jobs 2 --expect violation --trace "$dune_trace_par" > /dev/null
sed 's/"jobs":[0-9]*/"jobs":_/' "$dune_trace_seq" > "$tmp_seq"
sed 's/"jobs":[0-9]*/"jobs":_/' "$dune_trace_par" > "$tmp_par"
diff "$tmp_seq" "$tmp_par"
grep -q '"cat":"net"' "$dune_trace_par"
rm -f "$dune_trace_seq" "$dune_trace_par"
test -s flight-nonlinearizable.jsonl
grep -q '"dom"' flight-nonlinearizable.jsonl
rm -f flight-nonlinearizable.jsonl
# Churn campaigns draw enter/leave schedules from per-run streams, so
# the worker split must be invisible there too.
dune exec bin/boundedreg.exe -- chaos --churn-frontier --runs 40 --seed 1 \
  --jobs 1 --expect violation > "$tmp_seq"
dune exec bin/boundedreg.exe -- chaos --churn-frontier --runs 40 --seed 1 \
  --jobs 2 --expect violation > "$tmp_par"
diff "$tmp_seq" "$tmp_par"

# Fleet smoke: the coverage-guided chaos fleet. Generations mode pins the
# workload, so a jobs=2 fleet must reproduce the jobs=1 report, corpus
# and witness files byte-for-byte; the witness must then replay
# bit-for-bit. Afterwards a budgeted fleet (20 s in --quick, a short
# deterministic one otherwise) fills ci-fleet-corpus/ for the CI
# artifact upload, --expect witness gating that the frontier stale-read
# class was rediscovered.
echo "== fleet smoke"
fleet_j1=$(mktemp -d) && fleet_j2=$(mktemp -d) && fleet_churn=$(mktemp -d)
trap 'rm -f "$tmp_seq" "$tmp_par"; rm -rf "$fleet_j1" "$fleet_j2" "$fleet_churn"' EXIT
dune exec bin/boundedreg.exe -- fleet --frontier --generations 60 --seed 9 \
  --corpus "$fleet_j1" --jobs 1 --expect witness > "$tmp_seq"
dune exec bin/boundedreg.exe -- fleet --frontier --generations 60 --seed 9 \
  --corpus "$fleet_j2" --jobs 2 --expect witness > "$tmp_par"
# The corpus path echoed in the report is the only legitimate difference.
sed "s|$fleet_j2|$fleet_j1|" "$tmp_par" | diff "$tmp_seq" -
diff "$fleet_j1/corpus.jsonl" "$fleet_j2/corpus.jsonl"
for w in "$fleet_j1"/witness-*.json; do
  diff "$w" "$fleet_j2/$(basename "$w")"
  dune exec bin/boundedreg.exe -- fleet --replay "$w"
done
# Cache-effectiveness smoke: a second fleet resumed over the (fixed-seed,
# hence byte-deterministic) corpus re-executes every corpus plan once to
# seed coverage and the content-addressed run cache, so mutants that
# reproduce known content must answer from the cache — at least one hit,
# or the content addressing has silently stopped working.
dune exec bin/boundedreg.exe -- fleet --frontier --generations 20 --seed 11 \
  --corpus "$fleet_j1" > "$tmp_par"
grep 'cache: ' "$tmp_par"
if grep -q 'cache: 0 hit(s)' "$tmp_par"; then
  echo "check.sh: fleet run cache recorded no hits on the corpus re-fill smoke" >&2
  exit 1
fi
# Churn fleet: witness files for dynamic-membership configs embed the
# membership block (seed members, churn rate/window/slack, width), so a
# dyn witness must round-trip through --replay bit-for-bit too. The
# 1-bit width under sound churn is the fastest reliable witness class.
dune exec bin/boundedreg.exe -- fleet --churn --width-bits 1 --generations 5 \
  --batch 16 --seed 1 --corpus "$fleet_churn" --expect witness
for w in "$fleet_churn"/witness-*.json; do
  dune exec bin/boundedreg.exe -- fleet --replay "$w"
done
rm -rf ci-fleet-corpus
if [ "$QUICK" = 1 ]; then
  dune exec bin/boundedreg.exe -- fleet --frontier --budget 20 --seed 1 \
    --corpus ci-fleet-corpus --expect witness
else
  dune exec bin/boundedreg.exe -- fleet --frontier --generations 120 --seed 1 \
    --corpus ci-fleet-corpus --expect witness
fi

echo "check.sh: OK"
