#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
# Usage: ./check.sh [--quick]
#   --quick  CI-friendly subset: skip `dune runtest`'s slow cases via a
#            reduced chaos smoke and run the experiment suite under tight
#            supervision budgets (--deadline/--max-states), exercising the
#            graceful-degradation path instead of the full state spaces.
set -eu
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: ./check.sh [--quick]" >&2; exit 2 ;;
  esac
done

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not available)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

# Chaos smoke: the sound quorum must survive a quick seeded campaign, and
# the published frontier seed must still find (and shrink) the E13-style
# atomicity violation. --expect makes a mismatch a non-zero exit.
echo "== chaos smoke"
if [ "$QUICK" = 1 ]; then
  dune exec bin/boundedreg.exe -- chaos --runs 5 --seed 1 --expect pass
else
  dune exec bin/boundedreg.exe -- chaos --runs 20 --seed 1 --expect pass
fi
dune exec bin/boundedreg.exe -- chaos --frontier --runs 1 --seed 127 \
  --expect violation

# Trace smoke: a budgeted exploration captured to JSONL must validate —
# parseable events, balanced spans — via the trace summarizer; metrics go
# to a JSON file CI archives. Runs in both modes (it is a fraction of a
# second) and leaves ci-smoke.trace.jsonl / ci-metrics.json behind for
# the artifact upload step.
echo "== trace smoke"
dune exec bin/boundedreg.exe -- explore -k 2 --max-nodes 2000 \
  --trace ci-smoke.trace.jsonl --metrics ci-metrics.json
dune exec bin/boundedreg.exe -- trace summary ci-smoke.trace.jsonl

if [ "$QUICK" = 1 ]; then
  # Supervised smoke: the whole experiment registry under a tight
  # per-experiment budget. Experiments degrade to sampled coverage
  # rather than blowing the CI clock; crashes and hangs still exit 1.
  echo "== supervised experiment smoke (budgeted)"
  dune exec bin/boundedreg.exe -- run all --deadline 10 --max-states 20000
fi

echo "check.sh: OK"
