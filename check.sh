#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
# Usage: ./check.sh
set -eu
cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not available)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "check.sh: OK"
