#!/bin/sh
# Tier-1 gate: everything a PR must keep green.
# Usage: ./check.sh
set -eu
cd "$(dirname "$0")"

if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== fmt skipped (ocamlformat not available)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

# Chaos smoke: the sound quorum must survive a quick seeded campaign, and
# the published frontier seed must still find (and shrink) the E13-style
# atomicity violation. --expect makes a mismatch a non-zero exit.
echo "== chaos smoke"
dune exec bin/boundedreg.exe -- chaos --runs 20 --seed 1 --expect pass
dune exec bin/boundedreg.exe -- chaos --frontier --runs 1 --seed 127 \
  --expect violation

echo "check.sh: OK"
