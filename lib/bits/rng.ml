(* The state is eight little-endian bytes rather than a mutable [int64]
   record field: storing into a boxed-[int64] field allocates a fresh box
   per draw (measured 6-8 minor words), which the chaos and fleet hot
   paths cannot afford. [Bytes.get_int64_le]/[set_int64_le] compile to
   unboxed loads/stores, and each draw function performs the whole
   splitmix64 step locally so every intermediate stays in registers; the
   emitted stream is bit-identical to the historical record-based
   implementation. *)
type t = Bytes.t

let of_state state =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 state;
  b

let make seed = of_state (Int64.of_int seed)
let copy t = Bytes.copy t
let state t = Bytes.get_int64_le t 0

(* splitmix64: fast, well-distributed, and trivially reproducible. *)
let next t =
  let open Int64 in
  let s = add (Bytes.get_int64_le t 0) 0x9E3779B97F4A7C15L in
  Bytes.set_int64_le t 0 s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = of_state (next t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let open Int64 in
  let s = add (Bytes.get_int64_le t 0) 0x9E3779B97F4A7C15L in
  Bytes.set_int64_le t 0 s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (Int64.to_int (shift_right_logical z 1) land Stdlib.max_int) mod bound

let bool t =
  let open Int64 in
  let s = add (Bytes.get_int64_le t 0) 0x9E3779B97F4A7C15L in
  Bytes.set_int64_le t 0 s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_int z land 1 = 1

let bits53 t =
  let open Int64 in
  let s = add (Bytes.get_int64_le t 0) 0x9E3779B97F4A7C15L in
  Bytes.set_int64_le t 0 s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_int (shift_right_logical z 11) land Stdlib.max_int

let float t = float_of_int (bits53 t) /. float_of_int (1 lsl 53)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
