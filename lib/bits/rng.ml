type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }
let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }

(* splitmix64: fast, well-distributed, and trivially reproducible. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 1) land max_int in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) land max_int in
  float_of_int v /. float_of_int (1 lsl 53)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
