(** Deterministic, seedable pseudo-random streams (splitmix64).

    Schedules drawn at random must be replayable from a seed so every
    experiment and every test failure is reproducible; the global [Random]
    state is never used by the library. *)

type t

val make : int -> t
(** [make seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent clone that continues from the same point. *)

val state : t -> int64
(** The generator's current internal state. A stream is resumable from any
    point: [of_state (state t)] continues exactly where [t] is, without
    re-rolling the draws that led there — the replay primitive the chaos
    and fleet layers record per run. *)

val of_state : int64 -> t
(** Rebuild a generator from a saved {!state}. Unlike {!make}, which
    treats its argument as a seed, this restores the stream mid-flight. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0..bound-1]. @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val bits53 : t -> int
(** The integer numerator of {!float}: uniform in [0 .. 2^53 - 1], from
    the same single stream step, returned unboxed. [float t] equals
    [float_of_int (bits53 t) /. 2. ** 53.] exactly (division by a power
    of two is exact), so a caller comparing [float t < p] can instead
    compare [float_of_int (bits53 t) < p *. 9007199254740992.] — same
    verdict on the same stream, with no boxed float allocated. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
