(** Minimal self-delimiting serialization for everything the alternating-bit
    layer ships as bits: length-prefixed chunks, plus the envelope / ABD
    message formats parameterized by value codecs. *)

val enc : string list -> string
(** Length-prefixed concatenation; inverse of {!dec}. *)

val dec : string -> string list
(** @raise Invalid_argument on malformed input. *)

type 'v codec = { to_string : 'v -> string; of_string : string -> 'v }

val int_codec : int codec
val string_codec : string codec
val pair_codec : 'a codec -> 'b codec -> ('a * 'b) codec
val list_codec : 'a codec -> 'a list codec
val rational_codec : Bits.Rational.t codec

val cell_codec :
  'v codec -> 'i codec -> ('v, 'i) Interp.cell codec

val abd_msg_codec : 'v codec -> 'v Abd.msg codec

val envelope_codec : 'm codec -> 'm Router.envelope codec

module Pack : module type of Pack
(** Fixed-width companion of the string codecs: ABD messages bit-packed
    into immediate ints for the allocation-free fast path (see {!Pack}). *)
