(** ABD messages as single unboxed ints.

    Bit-field layout, LSB first: [tag:2 | reg:10 | op:16 | ts:16 |
    value:18] — 62 bits, inside OCaml's 63-bit immediate range. A network
    instantiated at ['m = int] keeps its payload rings as [int array]s,
    so the packed chaos fleet's send/deliver path allocates nothing.

    Encoders are unchecked (hot path); callers validate once with
    {!fits_static} and fall back to the boxed ['v Abd.msg] build when the
    configuration could overflow a field. *)

val max_reg : int
val max_op : int
val max_ts : int
val max_value : int

(** {1 Tags} — mirror the [Abd.msg] constructors. *)

val t_write_req : int
val t_write_ack : int
val t_read_req : int
val t_read_reply : int

(** {1 Encoders} *)

val write_req : reg:int -> ts:int -> value:int -> op:int -> int
val write_ack : reg:int -> op:int -> int
val read_req : reg:int -> op:int -> int
val read_reply : reg:int -> ts:int -> value:int -> op:int -> int

(** {1 Decoders} — mask-and-shift; unused fields of a tag decode as 0. *)

val tag : int -> int
val reg : int -> int
val op : int -> int
val ts : int -> int
val value : int -> int

val fits_static : registers:int -> writes:int -> max_ops:int -> bool
(** Every field of a static ABD workload with these bounds fits the
    layout: registers in [0..max_reg], timestamps and values bounded by
    the write count, per-node operation ids bounded by [max_ops]. *)

val to_msg : int -> int Abd.msg
(** Decode to the boxed message type (differential tests, debugging). *)

val of_msg : int Abd.msg -> int
(** Encode a boxed message; fields must be in range (unchecked). *)
