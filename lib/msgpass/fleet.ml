(* Coverage-guided chaos fleet: corpus-backed, mutation-driven fault
   campaigns with deduplicated, shrunk, replayable witnesses.

   One fleet run is a sequence of *generations*. Each generation draws a
   batch of jobs — fresh seeded runs (under swarm-randomized fault
   feature mixes) and mutants/crossovers of corpus plans — executes the
   batch (optionally fanned over a domain pool), then folds the outcomes
   on the calling domain in batch-index order: coverage signals decide
   which executed plans join the corpus, and every NONLINEARIZABLE run is
   ddmin-shrunk, deduplicated by the class key of its shrunk plan, and
   recorded as a replayable witness. All randomness flows from
   generation-indexed splitmix streams and all folding is sequential in a
   deterministic order, so a fixed seed gives identical reports, corpora
   and witnesses at any jobs width. *)

module L = Check.Linearize

let m_runs = Obs.Metrics.counter "fleet.runs"
let m_violations = Obs.Metrics.counter "fleet.violations"
let m_witnesses = Obs.Metrics.counter "fleet.witnesses"
let m_signals = Obs.Metrics.counter "fleet.new_signals"
let m_mutant_signals = Obs.Metrics.counter "fleet.mutant_signals"
let m_generations = Obs.Metrics.counter "fleet.generations"
let m_cache_hits = Obs.Metrics.counter "fleet.cache_hits"
let g_corpus = Obs.Metrics.gauge "fleet.corpus_size"

(* ------------------------------------------------------------------ *)
(* Coverage signals                                                    *)

type signature = {
  terminal_hash : int;
  hop_mask : int;
  verdict_class : int;
  depth_bucket : int;
}

(* floor(log2 v) + 1: the power-of-two bucket of the run's event depth —
   "deeper interleavings" as a coarse monotone signal. *)
let depth_bucket_of v =
  let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
  go 0 v

let signature_of (o : Chaos.outcome) =
  let terminal_hash =
    (* The terminal state of a chaos run is its recorded history: hash
       every event through the explorer's Zobrist machinery so distinct
       interleaving outcomes get distinct names (no 10-node truncation). *)
    List.fold_left
      (fun h (e : int L.event) ->
        Sched.Zobrist.combine h
          (Sched.Zobrist.value_hash (e.L.proc, e.L.reg, e.L.op, e.L.inv, e.L.res)))
      0 o.Chaos.history
  in
  {
    terminal_hash;
    hop_mask = o.Chaos.hop_mask;
    verdict_class = (if Chaos.failed o then 1 else 0);
    depth_bucket = depth_bucket_of o.Chaos.events;
  }

type coverage = {
  terminals : (int, unit) Hashtbl.t;
  mutable hops : int;
  mutable verdicts : int;
  mutable depth : int;
}

let coverage_create () =
  { terminals = Hashtbl.create 256; hops = 0; verdicts = 0; depth = 0 }

(* Fold one signature into the accumulated coverage; [true] iff any
   observable signal moved — a new terminal-state hash, a hop-latency
   bucket never occupied before, a new verdict class, or a deeper
   event depth than any prior run. *)
let coverage_observe cov s =
  let new_hash = not (Hashtbl.mem cov.terminals s.terminal_hash) in
  if new_hash then Hashtbl.replace cov.terminals s.terminal_hash ();
  let new_hop = s.hop_mask land lnot cov.hops <> 0 in
  cov.hops <- cov.hops lor s.hop_mask;
  let vbit = 1 lsl s.verdict_class in
  let new_verdict = cov.verdicts land vbit = 0 in
  cov.verdicts <- cov.verdicts lor vbit;
  let new_depth = s.depth_bucket > cov.depth in
  if new_depth then cov.depth <- s.depth_bucket;
  new_hash || new_hop || new_verdict || new_depth

(* ------------------------------------------------------------------ *)
(* Plan mutation                                                       *)

let random_channel rng n =
  { Faults.src = Bits.Rng.int rng n; dst = Bits.Rng.int rng n }

(* The churn flag widens the action grammar with enter/leave. It is off
   for static-membership configs so their mutation rng streams — and
   hence every published fleet report and corpus — are untouched by the
   grammar's existence. *)
let random_action rng ~churn n =
  match Bits.Rng.int rng (if churn then 10 else 8) with
  | 0 | 1 | 2 | 3 -> Faults.Deliver (random_channel rng n)
  | 4 -> Faults.Drop (random_channel rng n)
  | 5 -> Faults.Duplicate (random_channel rng n)
  | 6 -> Faults.Defer (random_channel rng n)
  | 7 -> Faults.Crash (Bits.Rng.int rng n)
  | 8 -> Faults.Enter (Bits.Rng.int rng n)
  | _ -> Faults.Leave (Bits.Rng.int rng n)

(* Kind-preserving, so static plans (which never contain enter/leave)
   draw exactly as before. *)
let rekind rng n = function
  | Faults.Deliver _ -> Faults.Deliver (random_channel rng n)
  | Faults.Drop _ -> Faults.Drop (random_channel rng n)
  | Faults.Duplicate _ -> Faults.Duplicate (random_channel rng n)
  | Faults.Defer _ -> Faults.Defer (random_channel rng n)
  | Faults.Crash _ -> Faults.Crash (Bits.Rng.int rng n)
  | Faults.Enter _ -> Faults.Enter (Bits.Rng.int rng n)
  | Faults.Leave _ -> Faults.Leave (Bits.Rng.int rng n)

(* Every generated pid and channel endpoint is drawn in [0, n), so a
   mutated plan can never make [Faults.replay] raise: out-of-range
   channels are impossible by construction, and every in-range action on
   an empty channel (or dead process) is a recorded no-op the fault layer
   skips silently. *)
let mutate_arr rng ~n ?(churn = false) plan =
  let a = ref (Array.copy plan) in
  let len () = Array.length !a in
  let remove start k =
    a :=
      Array.append (Array.sub !a 0 start)
        (Array.sub !a (start + k) (len () - start - k))
  in
  let insert at seg =
    a :=
      Array.concat [ Array.sub !a 0 at; seg; Array.sub !a at (len () - at) ]
  in
  let run_at rng =
    let start = Bits.Rng.int rng (len ()) in
    let k = 1 + Bits.Rng.int rng (min 8 (len () - start)) in
    (start, k)
  in
  let rounds = 1 + Bits.Rng.int rng 3 in
  for _ = 1 to rounds do
    match Bits.Rng.int rng 6 with
    (* splice a run out *)
    | 0 when len () > 0 ->
        let start, k = run_at rng in
        remove start k
    (* duplicate a run elsewhere *)
    | 1 when len () > 0 ->
        let start, k = run_at rng in
        let seg = Array.sub !a start k in
        insert (Bits.Rng.int rng (len () + 1)) seg
    (* move a run *)
    | 2 when len () > 1 ->
        let start, k = run_at rng in
        let seg = Array.sub !a start k in
        remove start k;
        insert (Bits.Rng.int rng (len () + 1)) seg
    (* perturb one action: same kind, fresh endpoints / crash pid *)
    | 3 when len () > 0 ->
        let i = Bits.Rng.int rng (len ()) in
        !a.(i) <- rekind rng n !a.(i)
    (* perturb a crash index: retarget and reposition one crash *)
    | 4 when len () > 0 -> (
        let crashes = ref [] in
        Array.iteri
          (fun i act ->
            match act with
            | Faults.Crash _ -> crashes := i :: !crashes
            | _ -> ())
          !a;
        match !crashes with
        | [] ->
            (* no crash to perturb: inject one at a random index *)
            insert
              (Bits.Rng.int rng (len () + 1))
              [| Faults.Crash (Bits.Rng.int rng n) |]
        | idxs ->
            let i = Bits.Rng.pick rng idxs in
            remove i 1;
            insert
              (Bits.Rng.int rng (len () + 1))
              [| Faults.Crash (Bits.Rng.int rng n) |])
    (* insert fresh random actions *)
    | _ ->
        let seg =
          Array.init
            (1 + Bits.Rng.int rng 4)
            (fun _ -> random_action rng ~churn n)
        in
        insert (Bits.Rng.int rng (len () + 1)) seg
  done;
  !a

let mutate rng ~n ?churn plan =
  Array.to_list (mutate_arr rng ~n ?churn (Array.of_list plan))

let crossover_arr rng a b =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let i = Bits.Rng.int rng (Array.length a + 1) in
    let j = Bits.Rng.int rng (Array.length b + 1) in
    Array.append (Array.sub a 0 i) (Array.sub b j (Array.length b - j))
  end

let crossover rng p1 p2 =
  Array.to_list (crossover_arr rng (Array.of_list p1) (Array.of_list p2))

(* The exact identity of a shrunk plan: its action sequence with pids
   renamed by order of first appearance, so two minimal plans that
   differ only in which (symmetric) process they exercise canonicalize
   to the same key. *)
let plan_key plan =
  let names = Hashtbl.create 8 in
  let rename p =
    match Hashtbl.find_opt names p with
    | Some q -> q
    | None ->
        let q = Hashtbl.length names in
        Hashtbl.replace names p q;
        q
  in
  List.fold_left
    (fun h a ->
      let code =
        match a with
        | Faults.Deliver { src; dst } -> (0, rename src, rename dst)
        | Faults.Drop { src; dst } -> (1, rename src, rename dst)
        | Faults.Duplicate { src; dst } -> (2, rename src, rename dst)
        | Faults.Defer { src; dst } -> (3, rename src, rename dst)
        | Faults.Crash pid -> (4, rename pid, 0)
        | Faults.Enter pid -> (5, rename pid, 0)
        | Faults.Leave pid -> (6, rename pid, 0)
      in
      Sched.Zobrist.combine h (Sched.Zobrist.value_hash code))
    0 plan

(* Digit runs collapse to '#': "read by p1 over [2,6] returned 0" and
   "read by p2 over [3,7] returned 0" are the same failure shape. *)
let scrub s =
  let b = Buffer.create (String.length s) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        if not !in_digits then Buffer.add_char b '#';
        in_digits := true
      end
      else begin
        in_digits := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

(* The violation class: which register failed and the shape of the
   checker's explanation, with concrete pids, timestamps and values
   abstracted away. ddmin from different originals converges on
   different 1-minimal plans of the same underlying violation; keying
   the dedup on the failure shape (rather than the plan) is what makes
   the fleet report the frontier's stale-read class exactly once. *)
let violation_class ~reg ~reason =
  Sched.Zobrist.combine
    (Sched.Zobrist.combine 0 (Sched.Zobrist.value_hash reg))
    (Sched.Zobrist.value_hash (scrub reason))

(* ------------------------------------------------------------------ *)
(* Content-addressed run cache                                         *)

(* The identity of one run, by content. A fresh job is its (seed,
   profile, crash budget) — [Chaos.run_random] is a pure function of
   those plus the campaign config — and a scripted job is its compiled
   plan. Config fields beyond the swarm-rolled profile and crash budget
   are fixed for the life of a campaign, so they stay out of the key. *)
type cache_key =
  | K_fresh of { seed : int; profile : Faults.profile; crashes : int; h : int }
  | K_plan of { c : Faults.compiled; h : int }

(* Key hashes are computed once, at construction. [Hashtbl] re-hashes a
   key on every probe, so a stored hash turns repeated deep hashing of
   float-field profiles and opcode arrays into a field read; fresh keys
   additionally share one profile hash per generation ([phash]) since
   the swarm roll fixes the profile for the whole batch. *)
let fresh_key ~phash ~seed ~profile ~crashes =
  K_fresh
    {
      seed;
      profile;
      crashes;
      h =
        Sched.Zobrist.combine
          (Sched.Zobrist.combine (Sched.Zobrist.value_hash seed) phash)
          (Sched.Zobrist.value_hash crashes);
    }

let plan_cache_key c =
  K_plan { c; h = Sched.Zobrist.combine 1 (Faults.compiled_hash c) }

module Cache_tbl = Hashtbl.Make (struct
  type t = cache_key

  let equal a b =
    match (a, b) with
    | K_fresh a, K_fresh b ->
        a.h = b.h && a.seed = b.seed && a.crashes = b.crashes
        && a.profile = b.profile
    | K_plan a, K_plan b -> a.h = b.h && Faults.compiled_equal a.c b.c
    | K_fresh _, K_plan _ | K_plan _, K_fresh _ -> false

  let hash = function K_fresh { h; _ } -> h | K_plan { h; _ } -> h
end)

(* Cached entries are whole outcomes: a hit folds into coverage, triage
   and the corpus exactly as the execution it stands in for would have,
   so memoization cannot change a report — only skip re-simulation.
   Bounded so a long budget fleet cannot grow the table without limit;
   once full, new results simply stop being memoized. *)
let cache_cap = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)

type entry = { id : int; origin : string; plan : Faults.plan }

let entry_to_json e =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int e.id);
      ("origin", Obs.Json.Str e.origin);
      ("plan", Faults.plan_to_json e.plan);
    ]

let entry_of_json j =
  match
    ( Obs.Json.member_int "id" j,
      Obs.Json.member_str "origin" j,
      Obs.Json.member "plan" j )
  with
  | Some id, Some origin, Some pj ->
      Result.map (fun plan -> { id; origin; plan }) (Faults.plan_of_json pj)
  | _ -> Error "corpus entry needs id, origin and plan fields"

let corpus_file dir = Filename.concat dir "corpus.jsonl"

let load_corpus dir =
  let file = corpus_file dir in
  if not (Sys.file_exists file) then Ok []
  else
    In_channel.with_open_text file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.fold_left
         (fun acc line ->
           match acc with
           | Error _ as e -> e
           | Ok entries -> (
               match Obs.Json.of_string line with
               | Error e -> Error (Printf.sprintf "%s: %s" file e)
               | Ok j -> (
                   match entry_of_json j with
                   | Ok e -> Ok (e :: entries)
                   | Error e -> Error (Printf.sprintf "%s: %s" file e))))
         (Ok [])
    |> Result.map List.rev

(* Oldest first, newest at [size - 1] — matching the JSONL on disk. A
   growable array, not a list: generation planning picks parents by
   index, and a 60 s fleet grows the corpus to tens of thousands of
   plans. In-memory entries carry the plan as a lazy action array: an
   entry born from an executed run is only materialized (decompiled from
   the opcode form) when it is picked as a mutation parent — or eagerly,
   when a corpus directory needs its JSONL line. Most interesting runs
   are never picked, so an in-memory fleet skips most decompilations. *)
type centry = {
  cid : int;
  corigin : string;
  cplan : Faults.action array Lazy.t;
}

type corpus = {
  dir : string option;
  mutable arr : centry array;
  mutable size : int;
  mutable next_id : int;
  mutable added : int;  (** entries appended by this campaign *)
}

let dummy_entry = { cid = -1; corigin = ""; cplan = Lazy.from_val [||] }

let corpus_open dir =
  match dir with
  | None -> Ok { dir; arr = [||]; size = 0; next_id = 0; added = 0 }
  | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      Result.map
        (fun loaded ->
          let arr =
            Array.of_list
              (List.map
                 (fun e ->
                   {
                     cid = e.id;
                     corigin = e.origin;
                     cplan = Lazy.from_val (Array.of_list e.plan);
                   })
                 loaded)
          in
          {
            dir;
            arr;
            size = Array.length arr;
            next_id = Array.fold_left (fun m e -> max m (e.cid + 1)) 0 arr;
            added = 0;
          })
        (load_corpus d)

let corpus_add corpus ~origin cplan =
  let e = { cid = corpus.next_id; corigin = origin; cplan } in
  corpus.next_id <- corpus.next_id + 1;
  if corpus.size = Array.length corpus.arr then begin
    let grown =
      Array.make (max 64 (2 * Array.length corpus.arr)) dummy_entry
    in
    Array.blit corpus.arr 0 grown 0 corpus.size;
    corpus.arr <- grown
  end;
  corpus.arr.(corpus.size) <- e;
  corpus.size <- corpus.size + 1;
  corpus.added <- corpus.added + 1;
  Obs.Metrics.set g_corpus corpus.size;
  (match corpus.dir with
  | None -> ()
  | Some d ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (corpus_file d) in
      output_string oc
        (Obs.Json.to_string
           (entry_to_json
              {
                id = e.cid;
                origin;
                plan = Array.to_list (Lazy.force cplan);
              }));
      output_char oc '\n';
      close_out oc);
  e

(* Max of two uniform draws: biased toward the newest entries, where the
   coverage frontier is. *)
let corpus_pick rng corpus =
  let i = max (Bits.Rng.int rng corpus.size) (Bits.Rng.int rng corpus.size) in
  corpus.arr.(i)

(* ------------------------------------------------------------------ *)
(* Witnesses                                                           *)

type witness = {
  class_key : int;
  origin : string;
  found_gen : int;
  reg : int;
  file : string option;
  mutable plan : Faults.plan;  (** smallest shrunk plan seen for the class *)
  mutable plan_key : int;
  mutable deliveries : int;
  mutable events : int;
  mutable terminal_hash : int;
  mutable reason : string;
  mutable shrink_tests : int;
  mutable duplicates : int;
}

let config_to_json (c : Chaos.config) =
  Obs.Json.Obj
    ([
       ("n", Obs.Json.Int c.Chaos.n);
       ("t", Obs.Json.Int c.Chaos.t);
       ( "quorum",
         match c.Chaos.quorum with
         | Some q -> Obs.Json.Int q
         | None -> Obs.Json.Null );
       ("writes", Obs.Json.Int c.Chaos.writes);
       ("readers", Obs.Json.Int c.Chaos.readers);
       ("reads", Obs.Json.Int c.Chaos.reads);
       ("max_events", Obs.Json.Int c.Chaos.max_events);
     ]
    @
    (* Only dynamic-membership witnesses carry the extra object, so
       every witness file published before churn existed stays valid
       and byte-identical. *)
    match c.Chaos.membership with
    | None -> []
    | Some d ->
        [
          ( "membership",
            Obs.Json.Obj
              [
                ("seed_members", Obs.Json.Int d.Chaos.seed_members);
                ("churn_rate", Obs.Json.Int d.Chaos.churn_rate);
                ("churn_window", Obs.Json.Int d.Chaos.churn_window);
                ("churn_slack", Obs.Json.Int d.Chaos.churn_slack);
                ( "width_bits",
                  match d.Chaos.width_bits with
                  | Some b -> Obs.Json.Int b
                  | None -> Obs.Json.Null );
                ("joiner_reads", Obs.Json.Int d.Chaos.joiner_reads);
              ] );
        ])

let membership_of_json j =
  match
    ( Obs.Json.member_int "seed_members" j,
      Obs.Json.member_int "churn_rate" j,
      Obs.Json.member_int "churn_window" j,
      Obs.Json.member_int "churn_slack" j,
      Obs.Json.member_int "joiner_reads" j )
  with
  | ( Some seed_members,
      Some churn_rate,
      Some churn_window,
      Some churn_slack,
      Some joiner_reads ) ->
      Ok
        {
          Chaos.seed_members;
          churn_rate;
          churn_window;
          churn_slack;
          width_bits = Obs.Json.member_int "width_bits" j;
          joiner_reads;
        }
  | _ ->
      Error
        "witness membership needs seed_members, churn_rate, churn_window, \
         churn_slack, joiner_reads"

(* Witness replay is plan-driven — no dice are rolled — so the profile
   is irrelevant and the reliable profile stands in for it. *)
let config_of_json j =
  match
    ( Obs.Json.member_int "n" j,
      Obs.Json.member_int "t" j,
      Obs.Json.member_int "writes" j,
      Obs.Json.member_int "readers" j,
      Obs.Json.member_int "reads" j,
      Obs.Json.member_int "max_events" j )
  with
  | Some n, Some t, Some writes, Some readers, Some reads, Some max_events -> (
      let base =
        {
          Chaos.n;
          t;
          quorum = Obs.Json.member_int "quorum" j;
          writes;
          readers;
          reads;
          crashes = 0;
          profile = Faults.reliable;
          max_events;
          membership = None;
        }
      in
      match Obs.Json.member "membership" j with
      | None | Some Obs.Json.Null -> Ok base
      | Some mj ->
          Result.map
            (fun d -> { base with Chaos.membership = Some d })
            (membership_of_json mj))
  | _ -> Error "witness config needs n, t, writes, readers, reads, max_events"

let witness_to_json ~seed ~config w =
  Obs.Json.Obj
    [
      ("class", Obs.Json.Str (Printf.sprintf "%016x" w.class_key));
      ("plan_key", Obs.Json.Str (Printf.sprintf "%016x" w.plan_key));
      ("fleet_seed", Obs.Json.Int seed);
      ("found_gen", Obs.Json.Int w.found_gen);
      ("origin", Obs.Json.Str w.origin);
      ("config", config_to_json config);
      ("plan", Faults.plan_to_json w.plan);
      ("deliveries", Obs.Json.Int w.deliveries);
      ("events", Obs.Json.Int w.events);
      ("terminal_hash", Obs.Json.Int w.terminal_hash);
      ("reg", Obs.Json.Int w.reg);
      ("reason", Obs.Json.Str w.reason);
      ("shrink_tests", Obs.Json.Int w.shrink_tests);
    ]

let witness_file dir key = Filename.concat dir (Printf.sprintf "witness-%016x.json" key)

(* Witness classes already on disk: a fleet resumed over the same corpus
   dir reports only classes it has not published before. *)
let load_witness_classes dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         match Scanf.sscanf_opt f "witness-%16x.json" (fun k -> k) with
         | Some k when Filename.check_suffix f ".json" -> Some k
         | _ -> None)

type replay = {
  witness_plan : Faults.plan;
  config : Chaos.config;
  outcome : Chaos.outcome;
  stored_terminal_hash : int;
  stored_events : int;
  stored_deliveries : int;
  stored_reason : string;
  bit_for_bit : bool;
}

let replay_file file =
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "no such witness file: %s" file)
  else
    match
      Obs.Json.of_string
        (In_channel.with_open_text file In_channel.input_all)
    with
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
    | Ok j -> (
        match
          ( Obs.Json.member "config" j,
            Obs.Json.member "plan" j,
            Obs.Json.member_int "terminal_hash" j,
            Obs.Json.member_int "events" j,
            Obs.Json.member_int "deliveries" j,
            Obs.Json.member_str "reason" j )
        with
        | Some cj, Some pj, Some th, Some ev, Some dl, Some reason -> (
            match (config_of_json cj, Faults.plan_of_json pj) with
            | Error e, _ | _, Error e -> Error (Printf.sprintf "%s: %s" file e)
            | Ok config, Ok plan ->
                let outcome = Chaos.run_plan config plan in
                let sg = signature_of outcome in
                let fresh_reason =
                  match outcome.Chaos.verdict with
                  | L.Nonlinearizable { reason; _ } -> reason
                  | L.Linearizable _ -> ""
                in
                Ok
                  {
                    witness_plan = plan;
                    config;
                    outcome;
                    stored_terminal_hash = th;
                    stored_events = ev;
                    stored_deliveries = dl;
                    stored_reason = reason;
                    bit_for_bit =
                      Chaos.failed outcome
                      && sg.terminal_hash = th
                      && outcome.Chaos.events = ev
                      && outcome.Chaos.deliveries = dl
                      && fresh_reason = reason;
                  })
        | _ ->
            Error
              (Printf.sprintf
                 "%s: witness needs config, plan, terminal_hash, events, \
                  deliveries, reason"
                 file))

(* ------------------------------------------------------------------ *)
(* The fleet campaign                                                  *)

type job =
  | Fresh of { seed : int; profile : Faults.profile; crashes : int }
  | Mutant of { plan : Faults.action array; origin : string }

let job_origin = function
  | Fresh { seed; _ } -> Printf.sprintf "seed:%d" seed
  | Mutant { origin; _ } -> origin

(* Keying a mutant compiles its plan once; execution then replays the
   same compiled form ({!Chaos.run_compiled}), so content addressing
   costs no extra compilation. Mutants draw every operand in [0, n)
   by construction, so [compile_array] cannot raise here. *)
let job_key (chaos : Chaos.config) ~phash = function
  | Fresh { seed; profile; crashes } -> fresh_key ~phash ~seed ~profile ~crashes
  | Mutant { plan; _ } ->
      plan_cache_key (Faults.compile_array ~n:chaos.Chaos.n plan)

(* Swarm diversity: each generation runs under a random feature mix —
   every fault knob of the profile independently toggled and scaled, the
   crash budget independently switched. The draws happen in a fixed
   order whatever the toggles, so the stream stays aligned. *)
let swarm_roll rng (c : Chaos.config) =
  let p = c.Chaos.profile in
  let roll v =
    let on = Bits.Rng.bool rng in
    let f = 0.5 +. (1.5 *. Bits.Rng.float rng) in
    if on then Float.min 0.9 (v *. f) else 0.
  in
  let drop = roll p.Faults.drop in
  let duplicate = roll p.Faults.duplicate in
  let defer = roll p.Faults.defer in
  let delay = roll p.Faults.delay in
  let crashes = if Bits.Rng.bool rng then c.Chaos.crashes else 0 in
  ({ p with Faults.drop; duplicate; defer; delay }, crashes)

type report = {
  seed : int;
  generations : int;
  runs : int;
  violations : int;
  witnesses : witness list;  (** discovery order *)
  corpus_size : int;
  corpus_added : int;
  signals : int;
  mutant_signals : int;
  cache_lookups : int;
  cache_hits : int;
  distinct_terminals : int;
  hop_mask : int;
  verdict_mask : int;
  max_depth_bucket : int;
  degraded : bool;
  elapsed : float;
}

(* Generation-indexed randomness: every generation's stream is derived
   from (seed, generation) alone, never from wall time or pool
   scheduling, so a fleet is resumable and jobs-invariant. *)
let gen_rng seed g =
  Bits.Rng.make (Sched.Zobrist.combine (Sched.Zobrist.combine 0 seed) g)

let exec chaos (job, key) =
  match (job, key) with
  | Fresh { seed; profile; crashes }, _ ->
      Chaos.run_random ~seed { chaos with Chaos.profile; crashes }
  | Mutant _, K_plan { c; _ } -> Chaos.run_compiled chaos c
  | Mutant { plan; _ }, K_fresh _ ->
      (* unreachable: [job_key] pairs mutants with [K_plan] *)
      Chaos.run_plan chaos (Array.to_list plan)

let campaign ?budget ?generations ?(jobs = 1) ?(batch = 16) ?(swarm = true)
    ?corpus_dir ~seed chaos =
  let generations =
    match (generations, budget) with
    | Some g, _ -> Some g
    | None, Some _ -> None
    | None, None -> Some 10
  in
  let corpus =
    match corpus_open corpus_dir with
    | Ok c -> c
    | Error e -> invalid_arg (Printf.sprintf "Fleet.campaign: %s" e)
  in
  Obs.Metrics.set g_corpus corpus.size;
  (* The campaign's run cache. Probes and fills happen only on the
     calling domain — before dispatch for batch jobs, inline for triage
     replays — so its contents, and hence every hit, are identical at
     any [jobs] width. *)
  let cache = Cache_tbl.create 1024 in
  let cache_lookups = ref 0 in
  let cache_hits = ref 0 in
  let cached_run key run =
    incr cache_lookups;
    match Cache_tbl.find_opt cache key with
    | Some o ->
        incr cache_hits;
        Obs.Metrics.inc m_cache_hits;
        o
    | None ->
        let o = run () in
        if Cache_tbl.length cache < cache_cap then Cache_tbl.add cache key o;
        o
  in
  let cov = coverage_create () in
  let witnesses = Hashtbl.create 8 in
  let witness_order = ref [] in
  (* Classes published by earlier fleets over this corpus stay
     deduplicated across invocations. *)
  (match corpus_dir with
  | None -> ()
  | Some d ->
      List.iter (fun k -> Hashtbl.replace witnesses k None)
        (load_witness_classes d));
  (* Re-execute the loaded corpus once, on the calling domain: coverage
     resumes where the previous campaign over this directory left off
     (instead of re-discovering — and re-appending — its own entries),
     and the run cache is pre-filled with every corpus plan's outcome,
     so mutants that reproduce a corpus entry answer without
     re-simulation. Fresh campaigns load nothing and skip this. *)
  for i = 0 to corpus.size - 1 do
    let e = corpus.arr.(i) in
    let c = Faults.compile_array ~n:chaos.Chaos.n (Lazy.force e.cplan) in
    let o =
      cached_run (plan_cache_key c) (fun () -> Chaos.run_compiled chaos c)
    in
    ignore (coverage_observe cov (signature_of o) : bool)
  done;
  Obs.Span.begin_ ~cat:"fleet"
    ~args:
      [
        ("seed", Obs.Json.Int seed);
        ("batch", Obs.Json.Int batch);
        ("jobs", Obs.Json.Int jobs);
        ("corpus", Obs.Json.Int corpus.size);
      ]
    "fleet.campaign";
  let monitor = Sched.Budget.arm (Sched.Budget.make ?deadline:budget ()) in
  let over_budget () =
    match budget with
    | None -> false
    | Some b -> Sched.Budget.elapsed monitor >= b
  in
  let runs = ref 0 in
  let violations = ref 0 in
  let signals = ref 0 in
  let mutant_signals = ref 0 in
  let gen = ref 0 in
  let degraded = ref false in
  let flight_dumped = ref false in
  (* Churn activity for the health instants, as campaign-relative deltas
     of the network's enter/leave counters. The counters are global and
     all runs have joined by the time a generation's health is sampled,
     so the deltas are identical at any [jobs]. *)
  let c_enters = Obs.Metrics.counter "net.enters" in
  let c_leaves = Obs.Metrics.counter "net.leaves" in
  let enters0 = Obs.Metrics.counter_value c_enters in
  let leaves0 = Obs.Metrics.counter_value c_leaves in
  let health = Obs.Progress.create ~cat:"fleet" "fleet.health" in
  let write_witness w =
    match w.file with
    | None -> ()
    | Some f ->
        Out_channel.with_open_text f (fun oc ->
            output_string oc
              (Obs.Json.to_string (witness_to_json ~seed ~config:chaos w));
            output_char oc '\n')
  in
  (* Violations are pre-classed by the *original* verdict: digit
     scrubbing makes the class a template of the failure shape, so a
     duplicate run of an already-witnessed class is recognizable before
     any ddmin replay. In a violation-dense campaign (the frontier finds
     the same stale read dozens of times) shrinking every duplicate is
     the dominant cost of the whole fleet; skipping it is what the
     throughput gate in scripts/bench_gate.py measures. A duplicate
     still re-enters the shrinker when its own run is already strictly
     smaller than the kept witness — ddmin only deletes actions, so only
     then can re-shrinking improve the published plan. *)
  let triage ~g ~origin (o : Chaos.outcome) =
    let skip_shrink =
      match o.Chaos.verdict with
      | L.Linearizable _ -> false
      | L.Nonlinearizable { reg; reason } -> (
          match Hashtbl.find_opt witnesses (violation_class ~reg ~reason) with
          | Some (Some w) when o.Chaos.deliveries >= w.deliveries ->
              w.duplicates <- w.duplicates + 1;
              true
          | Some None -> true
          | Some (Some _) | None -> false)
    in
    if skip_shrink then ()
    else begin
    let shrunk, shrink_tests = Chaos.shrink chaos (Faults.decompile o.Chaos.plan) in
    (* The shrunk replay's verdict names the class. Shrinking itself
       stays uncached — its replay counts are part of the published
       reports — but duplicate violating runs ddmin onto the same
       1-minimal plan, and the confirmation replay hits. *)
    let replay =
      let c = Faults.compile ~n:chaos.Chaos.n shrunk in
      cached_run (plan_cache_key c) (fun () -> Chaos.run_compiled chaos c)
    in
    let reg, reason =
      match replay.Chaos.verdict with
      | L.Nonlinearizable { reg; reason } -> (reg, reason)
      | L.Linearizable _ -> (-1, "shrunk plan no longer fails (flaky?)")
    in
    let key = violation_class ~reg ~reason in
    match Hashtbl.find_opt witnesses key with
    | Some (Some w) ->
        w.duplicates <- w.duplicates + 1;
        (* ddmin converges on different 1-minimal plans from different
           originals; keep (and republish) the smallest per class. *)
        if replay.Chaos.deliveries < w.deliveries then begin
          w.plan <- shrunk;
          w.plan_key <- plan_key shrunk;
          w.deliveries <- replay.Chaos.deliveries;
          w.events <- replay.Chaos.events;
          w.terminal_hash <- (signature_of replay).terminal_hash;
          w.reason <- reason;
          w.shrink_tests <- shrink_tests;
          write_witness w
        end
    | Some None -> ()  (* published by an earlier fleet over this corpus *)
    | None ->
        let w =
          {
            class_key = key;
            plan = shrunk;
            plan_key = plan_key shrunk;
            origin;
            found_gen = g;
            deliveries = replay.Chaos.deliveries;
            events = replay.Chaos.events;
            terminal_hash = (signature_of replay).terminal_hash;
            reg;
            reason;
            shrink_tests;
            file = Option.map (fun d -> witness_file d key) corpus.dir;
            duplicates = 0;
          }
        in
        write_witness w;
        Hashtbl.replace witnesses key (Some w);
        witness_order := w :: !witness_order;
        Obs.Metrics.inc m_witnesses;
        Obs.Span.instant ~cat:"fleet"
          ~args:
            [
              ("class", Obs.Json.Str (Printf.sprintf "%016x" key));
              ("deliveries", Obs.Json.Int w.deliveries);
              ("generation", Obs.Json.Int g);
            ]
          "fleet.witness";
        (* The shrunk witness joins the corpus: its mutants probe the
           boundary of the violation class. *)
        ignore
          (corpus_add corpus
             ~origin:(Printf.sprintf "witness:%016x" key)
             (Lazy.from_val (Array.of_list shrunk)))
    end
  in
  let run_generation g =
    let rng = gen_rng seed g in
    let profile, crashes =
      if swarm then swarm_roll rng chaos
      else (chaos.Chaos.profile, chaos.Chaos.crashes)
    in
    let jobs_arr =
      Array.init batch (fun _ ->
          if corpus.size = 0 || Bits.Rng.float rng < 0.25 then
            Fresh { seed = Bits.Rng.int rng 0x3FFFFFFF; profile; crashes }
          else begin
            let parent = corpus_pick rng corpus in
            if corpus.size >= 2 && Bits.Rng.float rng < 0.2 then begin
              let other = corpus_pick rng corpus in
              Mutant
                {
                  plan =
                    crossover_arr rng (Lazy.force parent.cplan)
                      (Lazy.force other.cplan);
                  origin =
                    Printf.sprintf "xover:%d+%d@g%d" parent.cid other.cid g;
                }
            end
            else
              Mutant
                {
                  plan =
                    mutate_arr rng ~n:chaos.Chaos.n
                      ~churn:(chaos.Chaos.membership <> None)
                      (Lazy.force parent.cplan);
                  origin = Printf.sprintf "mut:%d@g%d" parent.cid g;
                }
          end)
    in
    (* Content-addressed dispatch: probe every job's key on the calling
       domain, collapse within-batch duplicates, and hand the pool only
       the misses. Results are filled back in batch order, so campaign
       state after a generation is identical at any [jobs] width. *)
    let phash = Sched.Zobrist.value_hash profile in
    let keys = Array.map (job_key chaos ~phash) jobs_arr in
    let slot = Array.make batch (-1) in
    let fresh_jobs = ref [] in
    let fresh_count = ref 0 in
    let seen = Cache_tbl.create 32 in
    Array.iteri
      (fun i k ->
        incr cache_lookups;
        if Cache_tbl.mem cache k then begin
          incr cache_hits;
          Obs.Metrics.inc m_cache_hits
        end
        else
          match Cache_tbl.find_opt seen k with
          | Some j ->
              incr cache_hits;
              Obs.Metrics.inc m_cache_hits;
              slot.(i) <- j
          | None ->
              Cache_tbl.add seen k !fresh_count;
              slot.(i) <- !fresh_count;
              incr fresh_count;
              fresh_jobs := (jobs_arr.(i), k) :: !fresh_jobs)
      keys;
    let units = Array.of_list (List.rev !fresh_jobs) in
    let fresh =
      if Array.length units = 0 then [||]
      else if jobs <= 1 then Array.map (exec chaos) units
      else Sched.Par.run_units ~jobs ~units (exec chaos)
    in
    Array.iteri
      (fun i k ->
        if
          slot.(i) >= 0
          && (not (Cache_tbl.mem cache k))
          && Cache_tbl.length cache < cache_cap
        then Cache_tbl.add cache k fresh.(slot.(i)))
      keys;
    let outcomes =
      Array.init batch (fun i ->
          if slot.(i) >= 0 then fresh.(slot.(i))
          else Cache_tbl.find cache keys.(i))
    in
    let gen_signals = ref 0 in
    Array.iteri
      (fun i o ->
        incr runs;
        Obs.Metrics.inc m_runs;
        (* One instant per run, always constructed: in a trace it maps
           runs to origins and verdicts; in a flight dump it is the
           replay handle for the last runs before death. *)
        Obs.Span.instant ~cat:"fleet"
          ~args:
            [
              ("generation", Obs.Json.Int g);
              ("index", Obs.Json.Int i);
              ("origin", Obs.Json.Str (job_origin jobs_arr.(i)));
              ( "verdict",
                Obs.Json.Str
                  (if Chaos.failed o then "nonlinearizable"
                   else "linearizable") );
              ("events", Obs.Json.Int o.Chaos.events);
            ]
          "fleet.run";
        let interesting = coverage_observe cov (signature_of o) in
        if interesting then begin
          incr signals;
          incr gen_signals;
          Obs.Metrics.inc m_signals;
          (match jobs_arr.(i) with
          | Mutant _ ->
              incr mutant_signals;
              Obs.Metrics.inc m_mutant_signals
          | Fresh _ -> ());
          (* The *executed* plan joins the corpus: for mutants that is
             the effective action sequence (no-ops already dropped), so
             corpus plans stay tight and replayable. *)
          let cplan = o.Chaos.plan in
          ignore
            (corpus_add corpus
               ~origin:(job_origin jobs_arr.(i))
               (lazy (Faults.decompile_array cplan)));
        end;
        if Chaos.failed o then begin
          incr violations;
          Obs.Metrics.inc m_violations;
          triage ~g ~origin:(job_origin jobs_arr.(i)) o;
          if not !flight_dumped then begin
            (* First violating run of the campaign: dump the flight
               rings once, after triage, so the dump carries the
               fleet.run replay handle and the witness class. *)
            flight_dumped := true;
            ignore
              (Obs.Recorder.dump ~reason:"nonlinearizable" ()
                : string option)
          end
        end)
      outcomes;
    Obs.Metrics.inc m_generations;
    Obs.Span.instant ~cat:"fleet"
      ~args:
        [
          ("generation", Obs.Json.Int g);
          ("new_signals", Obs.Json.Int !gen_signals);
          ("corpus", Obs.Json.Int corpus.size);
        ]
      "fleet.generation";
    (* The deterministic health sample: cumulative campaign state, plus
       wall-derived rate and budget ETA only when the user opted into
       wall time (rates would otherwise break trace byte-determinism). *)
    Obs.Progress.tick health (fun () ->
        [
          ("generation", Obs.Json.Int g);
          ("runs", Obs.Json.Int !runs);
          ("violations", Obs.Json.Int !violations);
          ("witnesses", Obs.Json.Int (List.length !witness_order));
          ("corpus", Obs.Json.Int corpus.size);
          ("signals", Obs.Json.Int !signals);
          ("new_signals", Obs.Json.Int !gen_signals);
          ( "enters",
            Obs.Json.Int (Obs.Metrics.counter_value c_enters - enters0) );
          ( "leaves",
            Obs.Json.Int (Obs.Metrics.counter_value c_leaves - leaves0) );
        ]
        @
        if not (Obs.Span.wall_enabled ()) then []
        else
          let dt = Sched.Budget.elapsed monitor in
          [ ("elapsed_s", Obs.Json.Float dt) ]
          @ (if dt > 0. then
               [
                 ( "runs_per_s",
                   Obs.Json.Float (float_of_int !runs /. dt) );
               ]
             else [])
          @
          match budget with
          | Some b -> [ ("eta_s", Obs.Json.Float (Float.max 0. (b -. dt))) ]
          | None -> [])
  in
  (try
     let continue () =
       match generations with
       | Some g when !gen >= g -> false
       | _ ->
           if over_budget () then begin
             if generations <> None then degraded := true;
             raise Exit
           end;
           true
     in
     while continue () do
       run_generation !gen;
       incr gen
     done
   with Exit -> ());
  let witnesses_found = List.rev !witness_order in
  Obs.Span.end_ ~cat:"fleet"
    ~args:
      [
        ("generations", Obs.Json.Int !gen);
        ("runs", Obs.Json.Int !runs);
        ("violations", Obs.Json.Int !violations);
        ("witnesses", Obs.Json.Int (List.length witnesses_found));
        ("new_signals", Obs.Json.Int !signals);
      ]
    "fleet.campaign";
  {
    seed;
    generations = !gen;
    runs = !runs;
    violations = !violations;
    witnesses = witnesses_found;
    corpus_size = corpus.size;
    corpus_added = corpus.added;
    signals = !signals;
    mutant_signals = !mutant_signals;
    cache_lookups = !cache_lookups;
    cache_hits = !cache_hits;
    distinct_terminals = Hashtbl.length cov.terminals;
    hop_mask = cov.hops;
    verdict_mask = cov.verdicts;
    max_depth_bucket = cov.depth;
    degraded = !degraded;
    elapsed = Sched.Budget.elapsed monitor;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_witness ppf w =
  Format.fprintf ppf
    "class %016x (gen %d, via %s): %d deliveries, %d events, reg %d — %s@ \
     (%d shrink replays, %d duplicate run(s) deduplicated%s)"
    w.class_key w.found_gen w.origin w.deliveries w.events w.reg w.reason
    w.shrink_tests w.duplicates
    (match w.file with Some f -> "; " ^ f | None -> "")

(* Deliberately excludes [elapsed]: everything printed here is
   byte-deterministic for a fixed seed and generation count, at any jobs
   width — the property check.sh diffs. *)
let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fleet seed %d: %d generation(s), %d runs, %d violating run(s)%s@ \
     coverage: %d distinct terminal states, hop-mask %#x, verdict-mask %#x, \
     depth<=2^%d@ corpus: %d plan(s) (%d added)@ cache: %d hit(s) over %d \
     lookup(s)@ witnesses: %d class(es)"
    r.seed r.generations r.runs r.violations
    (if r.degraded then " (budget: stopped early)" else "")
    r.distinct_terminals r.hop_mask r.verdict_mask r.max_depth_bucket
    r.corpus_size r.corpus_added r.cache_hits r.cache_lookups
    (List.length r.witnesses);
  List.iter
    (fun w -> Format.fprintf ppf "@   @[<hov>%a@]" pp_witness w)
    r.witnesses;
  Format.fprintf ppf "@]"
