(** The persistent reference network — the pre-arena [Net] implementation
    (Queue-backed channels, bool-array membership), retained as a
    differential oracle for the arena rebuild. Untelemetered: it ticks no
    metric counters and emits no trace instants, so driving it alongside
    the production [Net] in a test perturbs nothing observable.

    The interface mirrors {!Net}'s persistent core exactly; see that
    module for the semantics of each operation. *)

type 'm node = {
  on_start : unit -> (int * 'm) list;
  on_message : from:int -> 'm -> (int * 'm) list;
  on_leave : unit -> (int * 'm) list;
}

type 'm t

val create :
  ?present:(int -> bool) -> n:int -> nodes:(int -> 'm node) -> unit -> 'm t

val n : 'm t -> int
val deliver_random : Bits.Rng.t -> 'm t -> bool
val deliver : 'm t -> src:int -> dst:int -> bool
val deliverable : 'm t -> (int * int) list
val pending : 'm t -> src:int -> dst:int -> int
val drop : 'm t -> src:int -> dst:int -> bool
val duplicate : 'm t -> src:int -> dst:int -> bool
val defer : 'm t -> src:int -> dst:int -> bool
val crash : 'm t -> int -> unit
val alive : 'm t -> int -> bool
val crashed : 'm t -> int list
val enter : 'm t -> int -> bool
val leave : 'm t -> int -> bool
val is_present : 'm t -> int -> bool
val departed : 'm t -> int list
val quiescent : 'm t -> bool
val deliveries : 'm t -> int
val hop_mask : 'm t -> int

val run_random :
  rng:Bits.Rng.t -> ?max_events:int -> ?until:(unit -> bool) -> 'm t -> unit
