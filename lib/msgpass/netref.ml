(* The persistent reference network: the pre-arena implementation of
   [Net], retained verbatim (minus telemetry) as a differential oracle.
   Queues are [Queue.t]s, membership is three bool arrays — slow and
   allocation-happy, but the semantics are the ones every published seed
   was recorded against. The QCheck differential in test_msgpass drives
   this and the arena [Net] with identical action sequences (including
   churn) and requires identical observations at every step. *)

type 'm node = {
  on_start : unit -> (int * 'm) list;
  on_message : from:int -> 'm -> (int * 'm) list;
  on_leave : unit -> (int * 'm) list;
}

type 'm t = {
  size : int;
  nodes : 'm node array;
  channels : (int * 'm) Queue.t array array;  (** [channels.(src).(dst)] *)
  alive : bool array;
  present : bool array;
  left : bool array;
  mutable delivered : int;
  mutable hop_mask : int;
}

let hop_bucket hops =
  let bounds = Net.hop_bounds in
  let rec go i =
    if i >= Array.length bounds || hops <= bounds.(i) then i else go (i + 1)
  in
  go 0

let enqueue t ~src sends =
  if t.alive.(src) && t.present.(src) then
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= t.size then
          invalid_arg "Netref: destination out of range";
        Queue.add (t.delivered, m) t.channels.(src).(dst))
      sends

let create ?(present = fun _ -> true) ~n ~nodes () =
  let t =
    {
      size = n;
      nodes = Array.init n nodes;
      channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      alive = Array.make n true;
      present = Array.init n present;
      left = Array.make n false;
      delivered = 0;
      hop_mask = 0;
    }
  in
  for pid = 0 to n - 1 do
    if t.present.(pid) then enqueue t ~src:pid (t.nodes.(pid).on_start ())
  done;
  t

let n t = t.size

let deliverable t =
  let acc = ref [] in
  for src = t.size - 1 downto 0 do
    for dst = t.size - 1 downto 0 do
      if
        t.alive.(dst) && t.present.(dst)
        && not (Queue.is_empty t.channels.(src).(dst))
      then acc := (src, dst) :: !acc
    done
  done;
  !acc

let check_channel t ~src ~dst =
  if src < 0 || src >= t.size || dst < 0 || dst >= t.size then
    invalid_arg "Netref: channel out of range"

let pending t ~src ~dst =
  check_channel t ~src ~dst;
  Queue.length t.channels.(src).(dst)

let deliver t ~src ~dst =
  check_channel t ~src ~dst;
  if
    (not t.alive.(dst)) || (not t.present.(dst))
    || Queue.is_empty t.channels.(src).(dst)
  then false
  else begin
    let stamp, m = Queue.pop t.channels.(src).(dst) in
    let hops = t.delivered - stamp in
    t.delivered <- t.delivered + 1;
    t.hop_mask <- t.hop_mask lor (1 lsl hop_bucket hops);
    enqueue t ~src:dst (t.nodes.(dst).on_message ~from:src m);
    true
  end

let deliver_random rng t =
  match deliverable t with
  | [] -> false
  | channels ->
      let src, dst = Bits.Rng.pick rng channels in
      deliver t ~src ~dst

let drop t ~src ~dst =
  check_channel t ~src ~dst;
  if Queue.is_empty t.channels.(src).(dst) then false
  else begin
    ignore (Queue.pop t.channels.(src).(dst));
    true
  end

let duplicate t ~src ~dst =
  check_channel t ~src ~dst;
  match Queue.peek_opt t.channels.(src).(dst) with
  | None -> false
  | Some stamped ->
      Queue.add stamped t.channels.(src).(dst);
      true

let defer t ~src ~dst =
  check_channel t ~src ~dst;
  let q = t.channels.(src).(dst) in
  if Queue.length q < 2 then false
  else begin
    Queue.add (Queue.pop q) q;
    true
  end

let crash t pid = t.alive.(pid) <- false
let alive t pid = t.alive.(pid)

let crashed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> not t.alive.(i))

let enter t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Netref: pid out of range";
  if t.present.(pid) || t.left.(pid) || not t.alive.(pid) then false
  else begin
    t.present.(pid) <- true;
    enqueue t ~src:pid (t.nodes.(pid).on_start ());
    true
  end

let leave t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Netref: pid out of range";
  if (not t.present.(pid)) || not t.alive.(pid) then false
  else begin
    enqueue t ~src:pid (t.nodes.(pid).on_leave ());
    t.present.(pid) <- false;
    t.left.(pid) <- true;
    true
  end

let is_present t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Netref: pid out of range";
  t.present.(pid)

let departed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> t.left.(i))

let quiescent t = deliverable t = []
let deliveries t = t.delivered
let hop_mask t = t.hop_mask

let run_random ~rng ?(max_events = 1_000_000) ?(until = fun () -> false) t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && deliver_random rng t then
      loop (budget - 1)
  in
  loop max_events
