(** Coverage-guided chaos fleet: corpus-backed, mutation-driven fault
    campaigns with deduplicated, shrunk, replayable witnesses.

    {!Chaos} answers "does a batch of seeded runs violate atomicity?";
    the fleet answers the stronger campaign question "keep looking, and
    make every find durable". A fleet {!campaign} runs in {e generations}:
    each generation draws a batch of jobs — fresh seeded runs under
    swarm-randomized fault feature mixes, and mutants/crossovers of plans
    already in the {e corpus} — executes the batch (optionally over a
    {!Sched.Par} domain pool), and folds the outcomes in batch-index
    order:

    - every run is condensed to a {!signature} of observable signals
      (terminal-state Zobrist hash of the recorded history, the network's
      hop-latency bucket mask, the verdict class, the event-depth
      bucket); a run that moves any signal is {e interesting} and its
      executed plan joins the corpus, to be mutated in later generations;
    - every NONLINEARIZABLE run is ddmin-shrunk ({!Chaos.shrink}),
      deduplicated by the {!class_key} of its shrunk plan, and — first
      time only — recorded as a {!witness} (replayed once more for its
      stored deliveries/events/terminal hash) and published to the corpus
      directory as [witness-<class>.json].

    All randomness is derived from [(seed, generation)] splitmix streams
    and all mutation/tallying/shrinking happens on the calling domain in
    a deterministic order, so a fixed seed gives byte-identical reports,
    corpora and witnesses at any [jobs] width. The corpus persists as
    human-editable JSONL; reopening the same directory resumes the
    campaign — corpus ids continue, and witness classes already published
    stay deduplicated across invocations. *)

(** {1 Coverage signatures} *)

type signature = {
  terminal_hash : int;
      (** order-sensitive {!Sched.Zobrist.combine} fold over the recorded
          history's events — the run's terminal-state name *)
  hop_mask : int;  (** {!Net.hop_mask}: hop-latency buckets occupied *)
  verdict_class : int;  (** 0 linearizable, 1 nonlinearizable *)
  depth_bucket : int;  (** power-of-two bucket of fault events executed *)
}

val signature_of : Chaos.outcome -> signature

(** {1 Plan mutation}

    All generated pids and channel endpoints are drawn in [0, n), and
    {!Faults.replay} skips ineffective actions silently — so every
    mutant replays without raising, whatever the splicing did. *)

val mutate : Bits.Rng.t -> n:int -> ?churn:bool -> Faults.plan -> Faults.plan
(** 1–3 rounds of: splice a run of actions out, duplicate a run, move a
    run, re-roll one action's endpoints, retarget/reposition a crash, or
    insert fresh random actions. Deterministic in the rng stream.
    [churn] (default false) admits [enter]/[leave] among the freshly
    inserted actions; off, the rng stream is exactly the pre-churn one,
    so static-membership corpora and reports are unaffected by the wider
    grammar. *)

val crossover : Bits.Rng.t -> Faults.plan -> Faults.plan -> Faults.plan
(** Single-point crossover: a prefix of the first parent spliced to a
    suffix of the second. *)

val plan_key : Faults.plan -> int
(** The exact identity of a (shrunk) plan: a {!Sched.Zobrist} sequence
    hash of its actions with pids renamed in order of first appearance,
    so two plans differing only in which symmetric process they exercise
    share a key. *)

val violation_class : reg:int -> reason:string -> int
(** The dedup key of a violation: which register failed plus the shape
    of the checker's explanation (digit runs — pids, timestamps, values —
    scrubbed). ddmin from different failing runs converges on different
    1-minimal plans of the same underlying violation; classing by failure
    shape is what makes a fleet report the frontier's stale-read class
    exactly once. *)

(** {1 Corpus} *)

type entry = { id : int; origin : string; plan : Faults.plan }

val load_corpus : string -> (entry list, string) result
(** Parse [<dir>/corpus.jsonl], oldest first. [Ok []] when the file does
    not exist; [Error] names the file and the offending line's problem
    (the corpus is human-editable, so failures are loud, not skipped). *)

(** {1 Witnesses} *)

type witness = {
  class_key : int;  (** {!violation_class} of the shrunk replay's verdict *)
  origin : string;  (** the job that first found the class *)
  found_gen : int;
  reg : int;
  file : string option;  (** [witness-<class>.json], when a corpus dir is set *)
  mutable plan : Faults.plan;
      (** the smallest shrunk plan seen for this class. Duplicate runs of
          an already-witnessed class — recognized by classing the
          original verdict, before any shrinking — skip ddmin entirely
          unless the run itself has strictly fewer deliveries than this
          plan; a re-shrunk strictly-smaller find replaces the plan (and
          republishes the witness file), so the witness only ever
          improves *)
  mutable plan_key : int;
  mutable deliveries : int;
  mutable events : int;
  mutable terminal_hash : int;
  mutable reason : string;
  mutable shrink_tests : int;  (** replays ddmin spent on the kept plan *)
  mutable duplicates : int;
      (** later violating runs that shrank into this same class *)
}

type replay = {
  witness_plan : Faults.plan;
  config : Chaos.config;
  outcome : Chaos.outcome;  (** fresh replay of the stored plan *)
  stored_terminal_hash : int;
  stored_events : int;
  stored_deliveries : int;
  stored_reason : string;
  bit_for_bit : bool;
      (** the fresh replay still fails and reproduces the stored terminal
          hash, event and delivery counts, and failure reason exactly *)
}

val replay_file : string -> (replay, string) result
(** Load a [witness-<class>.json] file and re-execute its plan against a
    freshly built network of its stored configuration. *)

(** {1 Campaigns} *)

type report = {
  seed : int;
  generations : int;  (** generations actually completed *)
  runs : int;
  violations : int;  (** violating runs, including deduplicated ones *)
  witnesses : witness list;  (** distinct classes, discovery order *)
  corpus_size : int;
  corpus_added : int;  (** entries this campaign appended *)
  signals : int;  (** runs that moved some coverage signal *)
  mutant_signals : int;  (** ... of which were mutants or crossovers *)
  cache_lookups : int;
      (** run-cache probes: one per batch job, one per corpus entry
          re-executed when resuming over a directory, and one per
          triage's shrunk-plan confirmation replay *)
  cache_hits : int;
      (** probes answered without re-simulation. The campaign keeps a
          content-addressed cache — fresh jobs keyed by (seed, rolled
          profile, crash budget), scripted jobs by
          {!Faults.compiled_hash} of their compiled plan — so duplicate
          mutants, recurring shrunk plans and colliding fresh seeds cost
          O(1). Probes and fills happen on the calling domain only,
          keeping reports byte-identical at any [jobs] width. *)
  distinct_terminals : int;
  hop_mask : int;  (** union over all runs *)
  verdict_mask : int;
  max_depth_bucket : int;
  degraded : bool;
      (** a [budget] stopped the campaign before its requested
          [generations] *)
  elapsed : float;  (** wall-clock seconds (not printed by {!pp_report}) *)
}

val campaign :
  ?budget:float ->
  ?generations:int ->
  ?jobs:int ->
  ?batch:int ->
  ?swarm:bool ->
  ?corpus_dir:string ->
  seed:int ->
  Chaos.config ->
  report
(** Run a fleet. [generations] fixes the generation count (fully
    deterministic end to end); [budget] (wall-clock seconds, checked
    between generations like the chaos deadline — overshoot is at most
    one generation) fills a time box instead; given neither, 10
    generations run; given both, the budget can degrade the fixed count.
    [batch] (default 16) is runs per generation, [swarm] (default true)
    re-rolls a random fault feature mix each generation, [jobs]
    (default 1) fans a generation's batch over {!Sched.Par.run_units} —
    job planning, coverage, corpus growth and shrinking stay on the
    calling domain in batch order, so the report, corpus and witnesses
    are byte-identical at any width. [corpus_dir] persists the corpus
    ([corpus.jsonl]) and witnesses; omitted, the campaign is in-memory.

    @raise Invalid_argument when [corpus_dir] exists but fails to parse. *)

val pp_witness : Format.formatter -> witness -> unit

val pp_report : Format.formatter -> report -> unit
(** Deliberately excludes [elapsed]: the rendering is byte-deterministic
    for a fixed seed in [generations] mode, at any [jobs] width. *)
