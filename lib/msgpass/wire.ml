let enc chunks =
  let buf = Buffer.create 64 in
  List.iter
    (fun chunk ->
      Buffer.add_string buf (string_of_int (String.length chunk));
      Buffer.add_char buf ':';
      Buffer.add_string buf chunk)
    chunks;
  Buffer.contents buf

let dec s =
  let malformed () = invalid_arg "Wire.dec: malformed input" in
  let len = String.length s in
  let rec go pos acc =
    if pos = len then List.rev acc
    else
      match String.index_from_opt s pos ':' with
      | None -> malformed ()
      | Some colon ->
          let size =
            match int_of_string_opt (String.sub s pos (colon - pos)) with
            | Some v when v >= 0 -> v
            | Some _ | None -> malformed ()
          in
          if colon + 1 + size > len then malformed ();
          go (colon + 1 + size) (String.sub s (colon + 1) size :: acc)
  in
  go 0 []

type 'v codec = { to_string : 'v -> string; of_string : string -> 'v }

let int_codec = { to_string = string_of_int; of_string = int_of_string }
let string_codec = { to_string = (fun s -> s); of_string = (fun s -> s) }

let pair_codec a b =
  {
    to_string = (fun (x, y) -> enc [ a.to_string x; b.to_string y ]);
    of_string =
      (fun s ->
        match dec s with
        | [ x; y ] -> (a.of_string x, b.of_string y)
        | _ -> invalid_arg "Wire.pair_codec");
  }

let list_codec a =
  {
    to_string = (fun l -> enc (List.map a.to_string l));
    of_string = (fun s -> List.map a.of_string (dec s));
  }

let rational_codec =
  {
    to_string =
      (fun q ->
        enc
          [
            string_of_int (Bits.Rational.num q);
            string_of_int (Bits.Rational.den q);
          ]);
    of_string =
      (fun s ->
        match dec s with
        | [ n; d ] -> Bits.Rational.make (int_of_string n) (int_of_string d)
        | _ -> invalid_arg "Wire.rational_codec");
  }

let cell_codec v i =
  {
    to_string =
      (fun cell ->
        match (cell : _ Interp.cell) with
        | Interp.Coord value -> enc [ "C"; v.to_string value ]
        | Interp.Input None -> enc [ "N" ]
        | Interp.Input (Some x) -> enc [ "I"; i.to_string x ]);
    of_string =
      (fun s ->
        match dec s with
        | [ "C"; value ] -> Interp.Coord (v.of_string value)
        | [ "N" ] -> Interp.Input None
        | [ "I"; x ] -> Interp.Input (Some (i.of_string x))
        | _ -> invalid_arg "Wire.cell_codec");
  }

let abd_msg_codec v =
  {
    to_string =
      (fun msg ->
        match (msg : _ Abd.msg) with
        | Abd.Write_req { reg; ts; value; op } ->
            enc
              [
                "W"; string_of_int reg; string_of_int ts; v.to_string value;
                string_of_int op;
              ]
        | Abd.Write_ack { reg; op } ->
            enc [ "A"; string_of_int reg; string_of_int op ]
        | Abd.Read_req { reg; op } ->
            enc [ "R"; string_of_int reg; string_of_int op ]
        | Abd.Read_reply { reg; ts; value; op } ->
            enc
              [
                "Y"; string_of_int reg; string_of_int ts; v.to_string value;
                string_of_int op;
              ]);
    of_string =
      (fun s ->
        match dec s with
        | [ "W"; reg; ts; value; op ] ->
            Abd.Write_req
              {
                reg = int_of_string reg;
                ts = int_of_string ts;
                value = v.of_string value;
                op = int_of_string op;
              }
        | [ "A"; reg; op ] ->
            Abd.Write_ack { reg = int_of_string reg; op = int_of_string op }
        | [ "R"; reg; op ] ->
            Abd.Read_req { reg = int_of_string reg; op = int_of_string op }
        | [ "Y"; reg; ts; value; op ] ->
            Abd.Read_reply
              {
                reg = int_of_string reg;
                ts = int_of_string ts;
                value = v.of_string value;
                op = int_of_string op;
              }
        | _ -> invalid_arg "Wire.abd_msg_codec");
  }

let envelope_codec m =
  {
    to_string =
      (fun { Router.origin; seq; dest; body } ->
        enc
          [
            string_of_int origin; string_of_int seq; string_of_int dest;
            m.to_string body;
          ]);
    of_string =
      (fun s ->
        match dec s with
        | [ origin; seq; dest; body ] ->
            {
              Router.origin = int_of_string origin;
              seq = int_of_string seq;
              dest = int_of_string dest;
              body = m.of_string body;
            }
        | _ -> invalid_arg "Wire.envelope_codec");
  }

(* The fixed-width companion of the string codecs above: ABD messages
   bit-packed into immediate ints for the allocation-free fast path. *)
module Pack = Pack
