(** Membership views and churn schedules for the dynamic register
    emulation ({!Dynreg}).

    The ACEKW algorithm ("Simulating a Shared Register in a System that
    Never Stops Changing") tracks who is present with monotone join/leave
    announcements and sizes its quorums against the tracked set, widened
    for the churn the tracking may be lagging behind. Here a {!view} is a
    triple of bitsets over {!Net}'s fixed slot universe — entered,
    activated (join protocol finished, state adopted) and left — merged
    by pointwise union (a join-semilattice, so gossip converges), and
    {!quorum} is the churn-widened majority rule that replaces the
    static [n - t] of {!Abd}. *)

type view = { entered : int; act : int; left : int }
(** Bitsets over slot pids: monotone knowledge of who has joined, who
    has activated, and who has departed. Current members are
    [entered land lnot left]; only [act land lnot left] members answer
    queries, so quorums are sized against them. *)

val empty : view

val initial : int -> view
(** [initial k]: slots [0 .. k-1] entered {e and activated} (a seeded
    member has nobody to adopt state from), nobody left — the seed
    membership a run starts from. *)

val of_list : int list -> view
(** Like {!initial}: the listed pids are entered and activated. *)

val enter : view -> int -> view
(** Record a join announcement: entered but {e not} yet activated. *)

val activate : view -> int -> view
(** Record a finished join: the pid now answers queries and counts
    toward quorums. Implies entered. *)

val leave : view -> int -> view
(** Record one departure. Leaving wins over entering: a pid in both
    bitsets is not a current member, and can never return ({!Net}
    enforces the same — departed slots don't re-enter). *)

val merge : view -> view -> view
(** Pointwise union — the gossip merge. Commutative, associative,
    idempotent; [merge] never loses knowledge. *)

val includes : view -> view -> bool
(** [includes a b]: [a] knows everything [b] knows. *)

val current : view -> int
(** The current-member bitset ([entered land lnot left]). *)

val active : view -> int
(** The activated-and-still-here bitset ([act land lnot left]) — the
    processes quorums are sized against. *)

val members : view -> int list
(** Current members, ascending. *)

val mem : view -> int -> bool
val cardinal : view -> int
(** Number of current members. *)

val popcount : int -> int

val quorum : ?slack:int -> view -> int
(** [quorum ~slack v] = [min a (a / 2 + 1 + slack)] for
    [a = popcount (active v)], at least 1. [slack = 0] is a plain
    majority of the view's active members — sound only without churn.
    Widening by the churn bound keeps quorums taken under views at most
    [slack] churn events apart intersecting; the cap keeps the quorum
    satisfiable (it degrades to "every active member I know of"). *)

val pp : Format.formatter -> view -> unit

(** {1 Churn schedules}

    A churn schedule is the membership analogue of the fault profile's
    [crash_at] list: (pid, fire at this fault-event index) entries that
    {!Faults.step_random} turns into [Enter]/[Leave] actions. *)

type churn = { enter_at : (int * int) list; leave_at : (int * int) list }

val no_churn : churn

val size : churn -> int
(** Total scheduled churn events. *)

val random :
  Bits.Rng.t ->
  joiners:int list ->
  leavers:int list ->
  rate:int ->
  window:int ->
  span:int ->
  churn
(** A rate-bounded random schedule: churn events spaced at least
    [window / rate] fault events apart (plus jitter), starting within the
    first spacing, until [span] events or both pools are exhausted — so
    any [window]-length stretch of the run sees at most about [rate]
    churn events, the α-bound of the ACEKW adversary in the fault
    layer's logical time. [joiners] enter in list order; [leavers] are
    drawn randomly. [rate <= 0] disables churn. Driving [rate] toward
    [window] (spacing 1) is the above-bound adversary. *)

val max_in_window : window:int -> churn -> int
(** The actual worst-case churn count in any [window]-length stretch of
    the schedule — what a test asserts against the configured rate. *)
