(* The dynamic register emulation: quorum read/write over a membership
   that changes underneath it (after Attiya–Chung–Ellen–Kumar–Welch,
   "Simulating a Shared Register in a System that Never Stops
   Changing"). Every message is an envelope carrying the sender's
   membership view; receivers merge, so views gossip along whatever
   traffic the protocol generates. Quorums are evaluated against the
   local view at every step — a merge alone can complete a pending
   operation by shrinking its target. *)

type 'v payload = { ts : int; rank : int; value : 'v }

type 'v body =
  | Join
  | Join_ack of 'v payload array
  | Goodbye
  | Query of { reg : int; op : int }
  | Query_ack of { reg : int; op : int; found : 'v payload }
  | Update of { reg : int; op : int; data : 'v payload }
  | Update_ack of { reg : int; op : int }

type 'v msg = { view : Membership.view; body : 'v body }
type 'v completion = Activated | Wrote | Read_value of 'v
type 'v intent = Write_intent of 'v | Read_intent

(* Reply sets are pid bitsets, not counters: duplicated messages (the
   fault layer's dup action) must not double-count toward a quorum. *)
type 'v phase =
  | Joining of { acks : int }
  | Idle
  | Querying of {
      op : int;
      reg : int;
      replies : int;
      best : 'v payload;
      intent : 'v intent;
    }
  | Updating of {
      op : int;
      reg : int;
      acks : int;
      data : 'v payload;
      return : 'v completion;
    }

type 'v t = {
  n : int;
  me : int;
  slack : int;
  ts_mask : int;  (** -1: unbounded; else [2^b - 1] — the register width *)
  copies : 'v payload array;
  mutable view : Membership.view;
  mutable active : bool;
  mutable next_op : int;
  mutable phase : 'v phase;
  mutable done_ : 'v completion option;
}

let create ~n ~me ?(slack = 0) ?width_bits ~registers ~init ~initial () =
  if me < 0 || me >= n then invalid_arg "Dynreg.create: me out of range";
  if registers < 1 then invalid_arg "Dynreg.create: registers >= 1";
  if slack < 0 then invalid_arg "Dynreg.create: slack >= 0";
  let ts_mask =
    match width_bits with
    | None -> -1
    | Some b ->
        if b < 1 || b > 30 then
          invalid_arg "Dynreg.create: width_bits in 1..30";
        (1 lsl b) - 1
  in
  let seeded = Membership.mem initial me in
  {
    n;
    me;
    slack;
    ts_mask;
    copies = Array.init registers (fun reg -> { ts = 0; rank = 0; value = init reg });
    view = (if seeded then initial else Membership.enter initial me);
    active = seeded;
    next_op = 0;
    phase = (if seeded then Idle else Joining { acks = 0 });
    done_ = None;
  }

let view t = t.view
let is_active t = t.active
let quorum t = Membership.quorum ~slack:t.slack t.view

(* (ts, rank) lexicographic — rank (the writer's pid) breaks concurrent
   same-timestamp writes one way for every replica. With a finite
   [ts_mask] the comparison is on wrapped timestamps: once a writer's
   counter laps the width, fresher data loses to stale — the bounded-
   width failure mode E17 maps. *)
let newer (a : _ payload) (b : _ payload) =
  a.ts > b.ts || (a.ts = b.ts && a.rank > b.rank)

let adopt t reg p = if newer p t.copies.(reg) then t.copies.(reg) <- p

let everyone t body =
  let m = { view = t.view; body } in
  List.init t.n (fun j -> (j, m))

let fresh_op t =
  if not t.active then invalid_arg "Dynreg: not active yet";
  (match t.phase with
  | Idle -> ()
  | Joining _ | Querying _ | Updating _ ->
      invalid_arg "Dynreg: operation already outstanding");
  t.next_op <- t.next_op + 1;
  t.next_op

let begin_write t ~reg value =
  let op = fresh_op t in
  t.phase <-
    Querying
      { op; reg; replies = 0; best = t.copies.(reg); intent = Write_intent value };
  everyone t (Query { reg; op })

let begin_read t ~reg =
  let op = fresh_op t in
  t.phase <-
    Querying { op; reg; replies = 0; best = t.copies.(reg); intent = Read_intent }
  ;
  everyone t (Query { reg; op })

let start t = if t.active then [] else everyone t Join

let farewell t =
  t.view <- Membership.leave t.view t.me;
  t.active <- false;
  t.phase <- Idle;
  everyone t Goodbye

(* Re-evaluate the pending phase against the current view's quorum.
   Called after every received message: acks may have arrived, or the
   merged view may have shrunk the target. Counting every received
   reply — including from members since departed — is deliberate: it is
   exactly the hazard the [slack] widening absorbs, and what a
   zero-slack configuration exposes under churn. *)
(* Phase-completion instants, guarded like the network's: the protocol
   steps are driven per delivery, so a traced churn run shows each
   slot's join/query/update milestones on its own track. *)
let milestone t name args =
  if Obs.Sink.enabled () then
    Obs.Span.instant ~cat:"dynreg" ~track:t.me ~args name

let advance t =
  let q = quorum t in
  match t.phase with
  | Joining { acks } when Membership.popcount acks >= q ->
      t.active <- true;
      (* Gossip the activation: from here on this slot answers queries
         and counts toward other members' quorums. *)
      t.view <- Membership.activate t.view t.me;
      t.phase <- Idle;
      t.done_ <- Some Activated;
      milestone t "activated" [ ("quorum", Obs.Json.Int q) ];
      []
  | Querying { op; reg; replies; best; intent }
    when Membership.popcount replies >= q ->
      let data, return =
        match intent with
        | Read_intent -> (best, Read_value best.value)
        | Write_intent v ->
            ({ ts = (best.ts + 1) land t.ts_mask; rank = t.me; value = v }, Wrote)
      in
      adopt t reg data;
      t.phase <- Updating { op; reg; acks = 0; data; return };
      milestone t "query-quorum"
        [
          ("op", Obs.Json.Int op);
          ("reg", Obs.Json.Int reg);
          ( "intent",
            Obs.Json.Str
              (match intent with
              | Read_intent -> "read"
              | Write_intent _ -> "write") );
        ];
      everyone t (Update { reg; op; data })
  | Updating { op; reg; acks; return; _ } when Membership.popcount acks >= q ->
      t.phase <- Idle;
      t.done_ <- Some return;
      milestone t "op-complete"
        [
          ("op", Obs.Json.Int op);
          ("reg", Obs.Json.Int reg);
          ( "result",
            Obs.Json.Str
              (match return with
              | Activated -> "activated"
              | Wrote -> "wrote"
              | Read_value _ -> "read") );
        ];
      []
  | Joining _ | Idle | Querying _ | Updating _ -> []

let handle t ~from (msg : _ msg) =
  t.view <- Membership.merge t.view msg.view;
  let replies =
    match msg.body with
    | Join ->
        (* Only activated members vouch for the state a joiner adopts. *)
        if t.active then
          [ (from, { view = t.view; body = Join_ack (Array.copy t.copies) }) ]
        else []
    | Join_ack copies ->
        (match t.phase with
        | Joining j when not t.active ->
            Array.iteri (fun reg p -> adopt t reg p) copies;
            t.phase <- Joining { acks = j.acks lor (1 lsl from) }
        | _ -> ());
        []
    | Goodbye -> []  (* the envelope's view merge already recorded it *)
    | Query { reg; op } ->
        if t.active then
          [
            ( from,
              {
                view = t.view;
                body = Query_ack { reg; op; found = t.copies.(reg) };
              } );
          ]
        else []
    | Query_ack { reg; op; found } ->
        (match t.phase with
        | Querying c when c.op = op && c.reg = reg ->
            t.phase <-
              Querying
                {
                  c with
                  replies = c.replies lor (1 lsl from);
                  best = (if newer found c.best then found else c.best);
                }
        | _ -> ());
        []
    | Update { reg; op; data } ->
        (* Joiners store and ack too: adopted state propagates through
           them, and a write quorum may lean on nodes still joining. *)
        adopt t reg data;
        [ (from, { view = t.view; body = Update_ack { reg; op } }) ]
    | Update_ack { reg; op } ->
        (match t.phase with
        | Updating u when u.op = op && u.reg = reg ->
            t.phase <- Updating { u with acks = u.acks lor (1 lsl from) }
        | _ -> ());
        []
  in
  replies @ advance t

let take_completion t =
  let r = t.done_ in
  t.done_ <- None;
  r
