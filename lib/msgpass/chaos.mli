(** Chaos campaigns: ABD register emulations under injected faults, with
    machine-checked atomicity verdicts and shrunk counterexamples.

    One run builds an [n]-process {!Net} of ABD peers ({!Abd}), gives
    process 0 a script of writes to register 0 and processes [1..readers] a
    script of sequential reads, drives deliveries through a {!Faults} layer,
    and records every operation's invocation/response on a logical clock.
    The recorded history is handed to {!Check.Linearize}: a sound quorum
    ([n - t], [t < n/2]) must yield [Linearizable] under any plan — crash,
    drop, duplication, reordering, delay — while the [t = n/2] frontier
    (disjoint quorums, the Section 9 open problem staged by E13) admits
    runs whose completed write vanishes from a later read:
    [Nonlinearizable], found by seed search rather than eyeballing.

    A failing random run is then {e shrunk}: {!Check.Shrink.ddmin} deletes
    fault-plan actions while replaying ({!run_plan}) keeps the verdict,
    converging on a 1-minimal plan — for the frontier configuration,
    around 17 delivery events: one write-request delivery, one read served
    by fresh copies, one read served by stale ones.

    With [membership] set, the fleet is dynamic instead: {!Dynreg} peers
    over a churning membership, with an α-bounded schedule of
    enter/leave events rolled per run (the ACEKW adversary) and quorums
    sized against gossiped views widened by [churn_slack]. The same
    checker, shrinker and replay machinery applies — churn events are
    ordinary plan actions. *)

type dyn = {
  seed_members : int;  (** slots [0..seed_members-1] present at start *)
  churn_rate : int;  (** α: max churn events per window; [0] = no churn *)
  churn_window : int;  (** window length, in fault events *)
  churn_slack : int;
      (** quorum widening handed to {!Dynreg.create} — sound when at
          least the churn rate *)
  width_bits : int option;  (** timestamp width; [None] = unbounded *)
  joiner_reads : int;  (** reads each joiner runs after activating *)
}

type config = {
  n : int;
  t : int;  (** resilience parameter handed to {!Abd.create} *)
  quorum : int option;  (** override; [None] = the sound [n - t] *)
  writes : int;  (** writer ops: values [1..writes] to register 0 *)
  readers : int;  (** processes [1..readers] run read scripts *)
  reads : int;  (** sequential reads per reader *)
  crashes : int;  (** up to this many seeded random crash injections *)
  profile : Faults.profile;
  max_events : int;
  membership : dyn option;
      (** [None]: the static ABD fleet. [Some]: the dynamic {!Dynreg}
          fleet ([t] and [quorum] are then unused — quorums come from
          views). *)
}

val sound : ?n:int -> ?t:int -> unit -> config
(** Default [n = 4], [t = 1]: quorum [n - t] with crash, drop, duplication,
    reorder and delay faults (drops capped per channel so operations keep
    completing; safety never depends on the cap). *)

val frontier : ?n:int -> unit -> config
(** The E13 configuration: quorum [n / 2], no crashes, delivery faults
    only — the campaign that must find a stale read. *)

val churn :
  ?n:int ->
  ?seed_members:int ->
  ?rate:int ->
  ?window:int ->
  ?slack:int ->
  ?width_bits:int ->
  unit ->
  config
(** The sound dynamic configuration: default [n = 8] slots, 5 seeded,
    one churn event per 60-event window, quorums widened by the rate
    ([slack] defaults to [rate]). No crashes — the preset isolates the
    churn axis. [width_bits] additionally bounds Dynreg timestamps. *)

val churn_frontier : ?n:int -> ?seed_members:int -> unit -> config
(** Above-bound churn with zero slack under the static frontier's
    delay/reorder profile — the campaign that must find a stale read
    caused by reconfiguration: a write acknowledged partly by members
    about to leave, then invisible to a plain majority of survivors. *)

val validate : config -> (config * string list, string) result
(** Construction-time validation. [Error] for unsatisfiable or vacuous
    settings (quorum outside [1..n], bad churn parameters); [Ok] pairs a
    possibly-clamped config with human-readable warnings (today:
    [crashes > t] clamps to [t]). {!campaign} applies this itself —
    hard errors raise [Invalid_argument], warnings print to stderr once
    per campaign. *)

type rng_point = {
  rng_state : int64;
      (** the {!Bits.Rng} stream state at the start of the fault loop —
          after the crash and churn patterns were rolled *)
  crash_at : (int * int) list;  (** the crash schedule that roll produced *)
  churn : Membership.churn;  (** the churn schedule ditto *)
}
(** The resolved randomness of one run: everything {!run_at} needs to
    re-execute a single mid-campaign run without re-rolling the prefix
    of the stream that led to it. *)

type outcome = {
  verdict : int Check.Linearize.verdict;
  history : int Check.Linearize.event list;
  plan : Faults.compiled;
      (** the replayable record of the run, in packed opcode form —
          {!Faults.decompile} recovers the action list when one is
          needed (shrinking, corpus persistence) *)
  events : int;  (** fault-layer actions executed *)
  deliveries : int;
  completed : int;  (** operations that got a response *)
  hop_mask : int;
      (** {!Net.hop_mask} of the run's network: which hop-latency buckets
          its deliveries occupied — a fleet coverage signal *)
  rng_point : rng_point option;
      (** [Some] for randomized runs ({!run_random}, {!run_at});
          [None] for scripted replays ({!run_plan}) *)
}

val failed : outcome -> bool

val run_random : seed:int -> config -> outcome
(** One seeded campaign run: random crash pattern (at most
    [config.crashes], never more than [config.t] processes), then
    {!Faults.run_random} until quiescence or [config.max_events]. *)

val run_at : rng_point -> config -> outcome
(** Re-execute one randomized run from its recorded {!rng_point} —
    bit-for-bit: [run_at (Option.get o.rng_point) config] for an
    [o = run_random ~seed config] reproduces [o]'s plan, history and
    verdict without re-rolling the crash-derivation prefix. The per-run
    trace instants ([chaos.run]) carry the point's fields, so any single
    run of a traced campaign is replayable from the trace alone. *)

val run_plan : config -> Faults.plan -> outcome
(** Deterministic replay of a plan against a fresh network — bit-for-bit:
    [run_plan c (Faults.decompile (run_random ~seed c).plan)] reproduces
    the run. The plan is {!Faults.compile}d first, so out-of-range
    operands raise [Invalid_argument] before anything executes. *)

val run_compiled : config -> Faults.compiled -> outcome
(** {!run_plan} over an already-compiled plan — what the fleet executes
    for mutants, whose plans it compiles once for content addressing. *)

val shrink : config -> Faults.plan -> Faults.plan * int
(** ddmin a failing plan down to a 1-minimal failing plan, and the number
    of replays spent. Returns the input unchanged when it does not fail. *)

type found = {
  seed : int;
  original : outcome;
  shrunk : Faults.plan;
  shrunk_outcome : outcome;  (** replay of the shrunk plan: still failing *)
  shrink_tests : int;
}

type campaign = {
  runs : int;  (** runs actually completed *)
  requested : int;  (** runs asked for *)
  degraded : bool;  (** the deadline stopped the campaign early *)
  violations : int;
  total_events : int;
  total_completed : int;
  first : found option;  (** first violation, shrunk and re-verified *)
}

val campaign :
  ?deadline:float -> ?jobs:int -> seed:int -> runs:int -> config -> campaign
(** Seeds [seed .. seed + runs - 1], every run checked; the first failing
    run is shrunk and its shrunk plan replayed. [deadline] (seconds,
    default none) is checked between runs: when it passes, the campaign
    stops early with [degraded = true] and however many runs it finished —
    graceful degradation rather than an unbounded tail. An individual run
    is already bounded by [config.max_events], so the overshoot past the
    deadline is at most one run (plus one shrink, if that run fails).

    [jobs] (default 1) fans the seeded runs — mutually independent by
    construction — over a domain pool ({!Sched.Par.run_units}). Outcomes
    are folded in seed order on the calling domain, where the per-run
    metrics, trace instants and the first violation's shrink also happen:
    for a fixed [seed], verdicts, counts and traces are byte-identical
    across any [jobs]. The one exception is a tripped [deadline], where
    how many runs finished inherently depends on the pool; the fold still
    consumes a contiguous seed prefix, mirroring sequential semantics. *)

type verdict =
  | Verified_sampled of { runs : int; requested : int }
      (** no violation in [runs] seeded runs; [runs < requested] means the
          deadline degraded the campaign *)
  | Violation of found  (** a nonlinearizable run, shrunk and replayed *)

val verdict : campaign -> verdict
val verdict_ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val pp_campaign : Format.formatter -> campaign -> unit
