type channel = { src : int; dst : int }

type action =
  | Deliver of channel
  | Drop of channel
  | Duplicate of channel
  | Defer of channel
  | Crash of int
  | Enter of int
  | Leave of int

type plan = action list

let pp_action ppf = function
  | Deliver { src; dst } -> Format.fprintf ppf "deliver %d>%d" src dst
  | Drop { src; dst } -> Format.fprintf ppf "drop %d>%d" src dst
  | Duplicate { src; dst } -> Format.fprintf ppf "dup %d>%d" src dst
  | Defer { src; dst } -> Format.fprintf ppf "defer %d>%d" src dst
  | Crash pid -> Format.fprintf ppf "crash %d" pid
  | Enter pid -> Format.fprintf ppf "enter %d" pid
  | Leave pid -> Format.fprintf ppf "leave %d" pid

let pp_plan ppf plan =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_action)
    plan

let deliveries plan =
  List.fold_left
    (fun k -> function Deliver _ -> k + 1 | _ -> k)
    0 plan

(* {2 Plan codecs}

   The corpus files of the chaos fleet must be human-editable, so the
   serialized form of an action is exactly what [pp_action] prints —
   the grammar quoted in EXPERIMENTS.md — and a plan is either the
   ";"-separated rendering of [pp_plan] or a JSON array of action
   strings (one corpus line). Parsing accepts any whitespace where the
   pretty-printer may break a line. *)

let action_to_string a = Format.asprintf "%a" pp_action a

let action_of_string s =
  let s = String.trim s in
  let fail fmt = Printf.ksprintf (fun e -> Error e) fmt in
  match String.index_opt s ' ' with
  | None -> fail "cannot parse action %S: expected \"keyword arg\"" s
  | Some i -> (
      let kw = String.sub s 0 i in
      let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      let channel k =
        match String.index_opt rest '>' with
        | None -> fail "bad channel %S after %S: expected src>dst" rest kw
        | Some j -> (
            let src = String.trim (String.sub rest 0 j) in
            let dst =
              String.trim (String.sub rest (j + 1) (String.length rest - j - 1))
            in
            match (int_of_string_opt src, int_of_string_opt dst) with
            | Some src, Some dst -> Ok (k { src; dst })
            | None, _ -> fail "bad channel source %S after %S" src kw
            | _, None -> fail "bad channel destination %S after %S" dst kw)
      in
      let pid k =
        match int_of_string_opt rest with
        | Some p -> Ok (k p)
        | None -> fail "bad pid %S after %S" rest kw
      in
      match kw with
      | "deliver" -> channel (fun ch -> Deliver ch)
      | "drop" -> channel (fun ch -> Drop ch)
      | "dup" -> channel (fun ch -> Duplicate ch)
      | "defer" -> channel (fun ch -> Defer ch)
      | "crash" -> pid (fun p -> Crash p)
      | "enter" -> pid (fun p -> Enter p)
      | "leave" -> pid (fun p -> Leave p)
      | _ -> fail "unknown action keyword %S in %S" kw s)

let plan_of_string text =
  (* Walk the ";"-splits keeping the absolute character offset, so a
     parse failure names the offending action's index (among non-empty
     segments) and where in the input it starts — corpus lines are
     hand-edited, and "action 37" beats re-counting semicolons. *)
  let rec go idx offset acc = function
    | [] -> Ok (List.rev acc)
    | seg :: rest -> (
        let next = offset + String.length seg + 1 in
        if String.trim seg = "" then go idx next acc rest
        else
          match action_of_string seg with
          | Ok a -> go (idx + 1) next (a :: acc) rest
          | Error e ->
              Error (Printf.sprintf "action %d (at char %d): %s" idx offset e))
  in
  go 0 0 [] (String.split_on_char ';' text)

let plan_to_json plan =
  Obs.Json.List (List.map (fun a -> Obs.Json.Str (action_to_string a)) plan)

let plan_of_json j =
  match Obs.Json.to_list j with
  | None -> Error "plan is not a JSON array"
  | Some items ->
      List.fold_left
        (fun (i, acc) item ->
          ( i + 1,
            match acc with
            | Error _ as e -> e
            | Ok actions -> (
                match Obs.Json.to_str item with
                | None -> Error (Printf.sprintf "plan element %d is not a string" i)
                | Some s -> (
                    match action_of_string s with
                    | Ok a -> Ok (a :: actions)
                    | Error e ->
                        Error (Printf.sprintf "plan element %d: %s" i e))) ))
        (0, Ok []) items
      |> snd |> Result.map List.rev

(* {2 Opcode coding}

   Internally an action is one immediate int — [kind:3 | a:8 | b:8] —
   so the run record is a growable [int array] rather than a consed
   list, a compiled plan is a dense walkable array, and the random
   driver never constructs a variant on its hot path. Eight bits per
   operand is comfortably above [Net]'s 61-slot cap. *)

let k_deliver = 0
let k_drop = 1
let k_duplicate = 2
let k_defer = 3
let k_crash = 4
let k_enter = 5
let k_leave = 6
let encode k a b = k lor (a lsl 3) lor (b lsl 11)
let code_kind c = c land 7
let code_a c = (c lsr 3) land 0xff
let code_b c = (c lsr 11) land 0xff

let code_of_action = function
  | Deliver { src; dst } -> encode k_deliver src dst
  | Drop { src; dst } -> encode k_drop src dst
  | Duplicate { src; dst } -> encode k_duplicate src dst
  | Defer { src; dst } -> encode k_defer src dst
  | Crash pid -> encode k_crash pid 0
  | Enter pid -> encode k_enter pid 0
  | Leave pid -> encode k_leave pid 0

let action_of_code c =
  let k = code_kind c and a = code_a c and b = code_b c in
  if k = k_deliver then Deliver { src = a; dst = b }
  else if k = k_drop then Drop { src = a; dst = b }
  else if k = k_duplicate then Duplicate { src = a; dst = b }
  else if k = k_defer then Defer { src = a; dst = b }
  else if k = k_crash then Crash a
  else if k = k_enter then Enter a
  else Leave a

type compiled = int array

let compile_array ~n acts =
  let check_pid pid =
    if pid < 0 || pid >= n then
      invalid_arg (Printf.sprintf "Faults.compile: pid %d out of range" pid)
  in
  let check_channel { src; dst } =
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg
        (Printf.sprintf "Faults.compile: channel %d>%d out of range" src dst)
  in
  Array.map
    (fun a ->
      (match a with
      | Deliver ch | Drop ch | Duplicate ch | Defer ch -> check_channel ch
      | Crash pid | Enter pid | Leave pid -> check_pid pid);
      code_of_action a)
    acts

let compile ~n plan = compile_array ~n (Array.of_list plan)
let compiled_length = Array.length
let decompile_array compiled = Array.map action_of_code compiled
let decompile compiled = Array.to_list (decompile_array compiled)

let compiled_deliveries compiled =
  let k = ref 0 in
  Array.iter (fun c -> if code_kind c = k_deliver then incr k) compiled;
  !k

let compiled_hash (c : compiled) =
  Array.fold_left
    (fun h code -> Sched.Zobrist.combine h (code + 1))
    (Array.length c) c

let compiled_equal (a : compiled) (b : compiled) =
  a == b
  || Array.length a = Array.length b
     && begin
          let n = Array.length a in
          let i = ref 0 in
          while !i < n && a.(!i) = b.(!i) do incr i done;
          !i = n
        end

type profile = {
  drop : float;
  duplicate : float;
  defer : float;
  delay : float;
  delay_span : int;
  max_channel_drops : int;
  crash_at : (int * int) list;
  enter_at : (int * int) list;
  leave_at : (int * int) list;
}

let reliable =
  {
    drop = 0.;
    duplicate = 0.;
    defer = 0.;
    delay = 0.;
    delay_span = 0;
    max_channel_drops = max_int;
    crash_at = [];
    enter_at = [];
    leave_at = [];
  }

(* The wrapper's own state is flat: the recording is a growable int
   array of opcodes (decoded to an action list only when {!plan} is
   asked for), and the per-channel freeze/drop-budget matrices are
   single [n * n] arrays. [chans]/[chans2] are the scratch buffers the
   random driver fills via {!Net.deliverable_into} — the only heap the
   driver touches after [wrap], which makes a pooled wrapper's steady
   state allocation-free. *)
type 'm t = {
  net : 'm Net.t;
  size : int;
  mutable rec_buf : int array;  (** opcodes, oldest first; [events] used *)
  mutable events : int;
  frozen : int array;  (** flat [n*n]: channel thaws at this event index *)
  mutable max_thaw : int;
      (** latest thaw index issued: when [events >= max_thaw] no channel
          is frozen and the per-step unfrozen filter is skipped *)
  drops : int array;  (** flat [n*n]: drops spent per channel *)
  chans : int array;  (** scratch: deliverable channel codes *)
  chans2 : int array;  (** scratch: unfrozen subset *)
}

let wrap net =
  let n = Net.n net in
  {
    net;
    size = n;
    rec_buf = Array.make 256 0;
    events = 0;
    frozen = Array.make (n * n) 0;
    max_thaw = 0;
    drops = Array.make (n * n) 0;
    chans = Array.make (n * n) 0;
    chans2 = Array.make (n * n) 0;
  }

let reset t =
  t.events <- 0;
  t.max_thaw <- 0;
  Array.fill t.frozen 0 (t.size * t.size) 0;
  Array.fill t.drops 0 (t.size * t.size) 0

let net t = t.net
let events t = t.events

let plan t =
  List.init t.events (fun i -> action_of_code t.rec_buf.(i))

let compiled_plan t = Array.sub t.rec_buf 0 t.events

let record t code =
  if t.events = Array.length t.rec_buf then begin
    let nb = Array.make (2 * Array.length t.rec_buf) 0 in
    Array.blit t.rec_buf 0 nb 0 t.events;
    t.rec_buf <- nb
  end;
  t.rec_buf.(t.events) <- code;
  t.events <- t.events + 1

let apply_code t k a b =
  let effective =
    if k = k_deliver then Net.deliver t.net ~src:a ~dst:b
    else if k = k_drop then
      if Net.drop t.net ~src:a ~dst:b then begin
        let ch = (a * t.size) + b in
        t.drops.(ch) <- t.drops.(ch) + 1;
        true
      end
      else false
    else if k = k_duplicate then Net.duplicate t.net ~src:a ~dst:b
    else if k = k_defer then Net.defer t.net ~src:a ~dst:b
    else if k = k_crash then
      if Net.alive t.net a then begin
        Net.crash t.net a;
        true
      end
      else false
    else if k = k_enter then Net.enter t.net a
    else Net.leave t.net a
  in
  if effective then record t (encode k a b);
  effective

let apply t action =
  match action with
  | Deliver { src; dst } -> apply_code t k_deliver src dst
  | Drop { src; dst } -> apply_code t k_drop src dst
  | Duplicate { src; dst } -> apply_code t k_duplicate src dst
  | Defer { src; dst } -> apply_code t k_defer src dst
  | Crash pid -> apply_code t k_crash pid 0
  | Enter pid -> apply_code t k_enter pid 0
  | Leave pid -> apply_code t k_leave pid 0

(* Schedule firing, as top-level recursions rather than closures: the
   random driver re-checks every entry each step, and a per-step closure
   allocation is exactly the kind of litter the flat rewrite removes. *)
let rec fire_enters t = function
  | [] -> ()
  | (pid, at) :: rest ->
      if t.events >= at && not (Net.is_present t.net pid) then
        ignore (apply_code t k_enter pid 0);
      fire_enters t rest

let rec fire_leaves t = function
  | [] -> ()
  | (pid, at) :: rest ->
      if t.events >= at && Net.is_present t.net pid then
        ignore (apply_code t k_leave pid 0);
      fire_leaves t rest

let rec fire_crashes t = function
  | [] -> ()
  | (pid, at) :: rest ->
      if t.events >= at && Net.alive t.net pid then
        ignore (apply_code t k_crash pid 0);
      fire_crashes t rest

let step_random rng profile t =
  (* Due schedule entries fire before the event roll: enters first (a
     joiner must exist before the same step can crash or depart it),
     then leaves, then crashes. [apply_code] refuses and records nothing
     when an entry already fired, so re-checking every step is
     idempotent. *)
  fire_enters t profile.enter_at;
  fire_leaves t profile.leave_at;
  fire_crashes t profile.crash_at;
  let all = Net.deliverable_into t.net t.chans in
  if all = 0 then false
  else begin
    let cand, cnt =
      if t.events >= t.max_thaw then (t.chans, all)
      else begin
        let unfrozen = ref 0 in
        for i = 0 to all - 1 do
          if t.frozen.(t.chans.(i)) <= t.events then begin
            t.chans2.(!unfrozen) <- t.chans.(i);
            incr unfrozen
          end
        done;
        (* All channels frozen: thaw by decree rather than livelock. *)
        if !unfrozen = 0 then (t.chans, all) else (t.chans2, !unfrozen)
      end
    in
    let ci = Bits.Rng.int rng cnt in
    let ch = cand.(ci) in
    let src = ch / t.size and dst = ch mod t.size in
    (* The dice are compared in fixed-point: [Rng.float t < p] is exactly
       [float_of_int (Rng.bits53 t) < p *. 2^53] (see {!Bits.Rng.bits53}),
       and the unboxed comparison keeps the hot loop allocation-free
       while drawing the identical stream the recorded seeds expect. *)
    let scale = 9007199254740992. (* 2^53 *) in
    let u = float_of_int (Bits.Rng.bits53 rng) in
    let p_drop =
      if t.drops.(ch) < profile.max_channel_drops then profile.drop else 0.
    in
    if u < p_drop *. scale then ignore (apply_code t k_drop src dst)
    else if u < (p_drop +. profile.duplicate) *. scale then
      ignore (apply_code t k_duplicate src dst)
    else if
      u < (p_drop +. profile.duplicate +. profile.defer) *. scale
      && Net.pending t.net ~src ~dst >= 2
    then ignore (apply_code t k_defer src dst)
    else if float_of_int (Bits.Rng.bits53 rng) < profile.delay *. scale
    then begin
      (* Delay burst: freeze this channel and serve another if any.
         Channels are unique in the candidate buffer, so "the candidates
         minus the chosen one" is index [ci] skipped — the same set, in
         the same order, as the historical list filter. *)
      let thaw = t.events + max 1 profile.delay_span in
      t.frozen.(ch) <- thaw;
      if thaw > t.max_thaw then t.max_thaw <- thaw;
      if cnt = 1 then ignore (apply_code t k_deliver src dst)
      else begin
        let j = Bits.Rng.int rng (cnt - 1) in
        let ch' = cand.(if j >= ci then j + 1 else j) in
        ignore (apply_code t k_deliver (ch' / t.size) (ch' mod t.size))
      end
    end
    else ignore (apply_code t k_deliver src dst);
    true
  end

let run_random ~rng ~profile ?(max_events = 100_000) ?(until = fun () -> false)
    t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && step_random rng profile t then
      loop (budget - 1)
  in
  loop max_events

let replay t plan = List.iter (fun a -> ignore (apply t a)) plan

let replay_compiled t compiled =
  for i = 0 to Array.length compiled - 1 do
    let c = compiled.(i) in
    ignore (apply_code t (code_kind c) (code_a c) (code_b c))
  done
