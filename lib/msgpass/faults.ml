type channel = { src : int; dst : int }

type action =
  | Deliver of channel
  | Drop of channel
  | Duplicate of channel
  | Defer of channel
  | Crash of int
  | Enter of int
  | Leave of int

type plan = action list

let pp_action ppf = function
  | Deliver { src; dst } -> Format.fprintf ppf "deliver %d>%d" src dst
  | Drop { src; dst } -> Format.fprintf ppf "drop %d>%d" src dst
  | Duplicate { src; dst } -> Format.fprintf ppf "dup %d>%d" src dst
  | Defer { src; dst } -> Format.fprintf ppf "defer %d>%d" src dst
  | Crash pid -> Format.fprintf ppf "crash %d" pid
  | Enter pid -> Format.fprintf ppf "enter %d" pid
  | Leave pid -> Format.fprintf ppf "leave %d" pid

let pp_plan ppf plan =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_action)
    plan

let deliveries plan =
  List.fold_left
    (fun k -> function Deliver _ -> k + 1 | _ -> k)
    0 plan

(* {2 Plan codecs}

   The corpus files of the chaos fleet must be human-editable, so the
   serialized form of an action is exactly what [pp_action] prints —
   the grammar quoted in EXPERIMENTS.md — and a plan is either the
   ";"-separated rendering of [pp_plan] or a JSON array of action
   strings (one corpus line). Parsing accepts any whitespace where the
   pretty-printer may break a line. *)

let action_to_string a = Format.asprintf "%a" pp_action a

let action_of_string s =
  let s = String.trim s in
  let fail fmt = Printf.ksprintf (fun e -> Error e) fmt in
  match String.index_opt s ' ' with
  | None -> fail "cannot parse action %S: expected \"keyword arg\"" s
  | Some i -> (
      let kw = String.sub s 0 i in
      let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      let channel k =
        match String.index_opt rest '>' with
        | None -> fail "bad channel %S after %S: expected src>dst" rest kw
        | Some j -> (
            let src = String.trim (String.sub rest 0 j) in
            let dst =
              String.trim (String.sub rest (j + 1) (String.length rest - j - 1))
            in
            match (int_of_string_opt src, int_of_string_opt dst) with
            | Some src, Some dst -> Ok (k { src; dst })
            | None, _ -> fail "bad channel source %S after %S" src kw
            | _, None -> fail "bad channel destination %S after %S" dst kw)
      in
      let pid k =
        match int_of_string_opt rest with
        | Some p -> Ok (k p)
        | None -> fail "bad pid %S after %S" rest kw
      in
      match kw with
      | "deliver" -> channel (fun ch -> Deliver ch)
      | "drop" -> channel (fun ch -> Drop ch)
      | "dup" -> channel (fun ch -> Duplicate ch)
      | "defer" -> channel (fun ch -> Defer ch)
      | "crash" -> pid (fun p -> Crash p)
      | "enter" -> pid (fun p -> Enter p)
      | "leave" -> pid (fun p -> Leave p)
      | _ -> fail "unknown action keyword %S in %S" kw s)

let plan_of_string text =
  (* Walk the ";"-splits keeping the absolute character offset, so a
     parse failure names the offending action's index (among non-empty
     segments) and where in the input it starts — corpus lines are
     hand-edited, and "action 37" beats re-counting semicolons. *)
  let rec go idx offset acc = function
    | [] -> Ok (List.rev acc)
    | seg :: rest -> (
        let next = offset + String.length seg + 1 in
        if String.trim seg = "" then go idx next acc rest
        else
          match action_of_string seg with
          | Ok a -> go (idx + 1) next (a :: acc) rest
          | Error e ->
              Error (Printf.sprintf "action %d (at char %d): %s" idx offset e))
  in
  go 0 0 [] (String.split_on_char ';' text)

let plan_to_json plan =
  Obs.Json.List (List.map (fun a -> Obs.Json.Str (action_to_string a)) plan)

let plan_of_json j =
  match Obs.Json.to_list j with
  | None -> Error "plan is not a JSON array"
  | Some items ->
      List.fold_left
        (fun (i, acc) item ->
          ( i + 1,
            match acc with
            | Error _ as e -> e
            | Ok actions -> (
                match Obs.Json.to_str item with
                | None -> Error (Printf.sprintf "plan element %d is not a string" i)
                | Some s -> (
                    match action_of_string s with
                    | Ok a -> Ok (a :: actions)
                    | Error e ->
                        Error (Printf.sprintf "plan element %d: %s" i e))) ))
        (0, Ok []) items
      |> snd |> Result.map List.rev

type profile = {
  drop : float;
  duplicate : float;
  defer : float;
  delay : float;
  delay_span : int;
  max_channel_drops : int;
  crash_at : (int * int) list;
  enter_at : (int * int) list;
  leave_at : (int * int) list;
}

let reliable =
  {
    drop = 0.;
    duplicate = 0.;
    defer = 0.;
    delay = 0.;
    delay_span = 0;
    max_channel_drops = max_int;
    crash_at = [];
    enter_at = [];
    leave_at = [];
  }

type 'm t = {
  net : 'm Net.t;
  mutable recorded : action list;  (** newest first *)
  mutable events : int;
  frozen : int array array;  (** channel thaws at this event index *)
  drops : int array array;  (** drops spent per channel *)
}

let wrap net =
  let n = Net.n net in
  {
    net;
    recorded = [];
    events = 0;
    frozen = Array.make_matrix n n 0;
    drops = Array.make_matrix n n 0;
  }

let net t = t.net
let events t = t.events
let plan t = List.rev t.recorded

let apply t action =
  let effective =
    match action with
    | Deliver { src; dst } -> Net.deliver t.net ~src ~dst
    | Drop { src; dst } ->
        if Net.drop t.net ~src ~dst then begin
          t.drops.(src).(dst) <- t.drops.(src).(dst) + 1;
          true
        end
        else false
    | Duplicate { src; dst } -> Net.duplicate t.net ~src ~dst
    | Defer { src; dst } -> Net.defer t.net ~src ~dst
    | Crash pid ->
        if Net.alive t.net pid then begin
          Net.crash t.net pid;
          true
        end
        else false
    | Enter pid -> Net.enter t.net pid
    | Leave pid -> Net.leave t.net pid
  in
  if effective then begin
    t.recorded <- action :: t.recorded;
    t.events <- t.events + 1
  end;
  effective

let step_random rng profile t =
  (* Due schedule entries fire before the event roll: enters first (a
     joiner must exist before the same step can crash or depart it),
     then leaves, then crashes. [apply] refuses and records nothing when
     an entry already fired, so re-checking every step is idempotent. *)
  List.iter
    (fun (pid, at) ->
      if t.events >= at && not (Net.is_present t.net pid) then
        ignore (apply t (Enter pid)))
    profile.enter_at;
  List.iter
    (fun (pid, at) ->
      if t.events >= at && Net.is_present t.net pid then
        ignore (apply t (Leave pid)))
    profile.leave_at;
  List.iter
    (fun (pid, at) ->
      if t.events >= at && Net.alive t.net pid then
        ignore (apply t (Crash pid)))
    profile.crash_at;
  match Net.deliverable t.net with
  | [] -> false
  | all ->
      let unfrozen =
        List.filter (fun (s, d) -> t.frozen.(s).(d) <= t.events) all
      in
      (* All channels frozen: thaw by decree rather than livelock. *)
      let candidates = if unfrozen = [] then all else unfrozen in
      let src, dst = Bits.Rng.pick rng candidates in
      let ch = { src; dst } in
      let u = Bits.Rng.float rng in
      let p_drop =
        if t.drops.(src).(dst) < profile.max_channel_drops then profile.drop
        else 0.
      in
      if u < p_drop then ignore (apply t (Drop ch))
      else if u < p_drop +. profile.duplicate then
        ignore (apply t (Duplicate ch))
      else if
        u < p_drop +. profile.duplicate +. profile.defer
        && Net.pending t.net ~src ~dst >= 2
      then ignore (apply t (Defer ch))
      else if Bits.Rng.float rng < profile.delay then begin
        (* Delay burst: freeze this channel and serve another if any. *)
        t.frozen.(src).(dst) <- t.events + max 1 profile.delay_span;
        match List.filter (fun c -> c <> (src, dst)) candidates with
        | [] -> ignore (apply t (Deliver ch))
        | rest ->
            let src, dst = Bits.Rng.pick rng rest in
            ignore (apply t (Deliver { src; dst }))
      end
      else ignore (apply t (Deliver ch));
      true

let run_random ~rng ~profile ?(max_events = 100_000) ?(until = fun () -> false)
    t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && step_random rng profile t then
      loop (budget - 1)
  in
  loop max_events

let replay t plan = List.iter (fun a -> ignore (apply t a)) plan
