(* Membership views and churn schedules for the dynamic register
   emulation (Dynreg). A view is three bitsets over the fixed slot
   universe of Net: who has entered, who has activated (finished the
   join protocol and adopted state), who has left. Views only grow, so
   pointwise union is a join-semilattice merge — gossiping views can
   never disagree permanently, only lag. *)

type view = { entered : int; act : int; left : int }

let empty = { entered = 0; act = 0; left = 0 }

let of_list pids =
  let m = List.fold_left (fun m p -> m lor (1 lsl p)) 0 pids in
  (* A seeded view's members are born activated: there is no one to
     adopt state from before the computation starts. *)
  { entered = m; act = m; left = 0 }

let initial k = of_list (List.init k Fun.id)
let enter v pid = { v with entered = v.entered lor (1 lsl pid) }

let activate v pid =
  let b = 1 lsl pid in
  { v with entered = v.entered lor b; act = v.act lor b }

let leave v pid = { v with left = v.left lor (1 lsl pid) }

let merge a b =
  {
    entered = a.entered lor b.entered;
    act = a.act lor b.act;
    left = a.left lor b.left;
  }

let includes a b =
  a.entered lor b.entered = a.entered
  && a.act lor b.act = a.act
  && a.left lor b.left = a.left

let current v = v.entered land lnot v.left
let active v = v.act land lnot v.left

let popcount m =
  let rec go k m = if m = 0 then k else go (k + 1) (m land (m - 1)) in
  go 0 m

let cardinal v = popcount (current v)
let mem v pid = current v land (1 lsl pid) <> 0

let members v =
  let m = current v in
  List.filter (fun p -> m land (1 lsl p) <> 0) (List.init Sys.int_size Fun.id)

(* The quorum rule: a majority of the view's {e activated} members —
   the only processes that can answer queries or vouch for state —
   widened by [slack] to absorb members this view has not yet seen
   leave (or activate). Our logical-time analogue of the ACEKW window
   bound: with at most [slack] churn events per quorum window, a
   widened read majority still intersects every widened write majority
   taken under a view at most [slack] churn events away. The cap at the
   active cardinality keeps a heavily-slacked quorum satisfiable at all
   (it degrades to "every active member I know of"). *)
let quorum ?(slack = 0) v =
  let c = popcount (active v) in
  min (max 1 c) ((c / 2) + 1 + slack)

let pp ppf v =
  let list m =
    List.filter
      (fun p -> m land (1 lsl p) <> 0)
      (List.init Sys.int_size Fun.id)
  in
  let pp_pids =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
      Format.pp_print_int
  in
  Format.fprintf ppf "{in:%a join:%a out:%a}" pp_pids
    (list (active v))
    pp_pids
    (list (current v land lnot v.act))
    pp_pids (list v.left)

(* ------------------------------------------------------------------ *)
(* Churn schedules *)

type churn = { enter_at : (int * int) list; leave_at : (int * int) list }

let no_churn = { enter_at = []; leave_at = [] }
let size c = List.length c.enter_at + List.length c.leave_at

(* Rate-bounded random schedule: churn events are spaced at least
   [window / rate] fault events apart (plus jitter), so any window of
   [window] events sees roughly at most [rate] joins-or-leaves — the
   α-bound of the ACEKW adversary, in the fault layer's logical time.
   Joiners enter in the given order (slot identity is fresh by
   construction); leavers are drawn randomly from the eligible pool.
   [rate <= 0] means no churn. *)
let random rng ~joiners ~leavers ~rate ~window ~span =
  if rate <= 0 then no_churn
  else begin
    let spacing = max 1 (window / rate) in
    let joiners = ref joiners and leavers = ref leavers in
    let enter_at = ref [] and leave_at = ref [] in
    let t = ref (1 + Bits.Rng.int rng spacing) in
    while !t < span && (!joiners <> [] || !leavers <> []) do
      let pick_join =
        match (!joiners, !leavers) with
        | _ :: _, [] -> true
        | [], _ -> false
        | _ -> Bits.Rng.bool rng
      in
      if pick_join then begin
        match !joiners with
        | [] -> ()
        | pid :: rest ->
            joiners := rest;
            enter_at := (pid, !t) :: !enter_at
      end
      else begin
        let pid = Bits.Rng.pick rng !leavers in
        leavers := List.filter (fun p -> p <> pid) !leavers;
        leave_at := (pid, !t) :: !leave_at
      end;
      t := !t + spacing + Bits.Rng.int rng (1 + (spacing / 2))
    done;
    { enter_at = List.rev !enter_at; leave_at = List.rev !leave_at }
  end

let max_in_window ~window c =
  let times =
    List.sort compare (List.map snd c.enter_at @ List.map snd c.leave_at)
  in
  let arr = Array.of_list times in
  Array.fold_left
    (fun best t0 ->
      let k =
        Array.fold_left
          (fun k t -> if t >= t0 && t < t0 + window then k + 1 else k)
          0 arr
      in
      max best k)
    0 arr
