(** Churn-tolerant MWMR register emulation over dynamic membership —
    after Attiya–Chung–Ellen–Kumar–Welch, "Simulating a Shared Register
    in a System that Never Stops Changing" (see PAPERS.md).

    Where {!Abd} waits for a static [n - t] quorum, this emulation sizes
    quorums against a gossiped {!Membership.view} of who is currently in
    the computation, widened by a [slack] that absorbs the churn the
    view may be lagging behind. Every message is an envelope carrying
    the sender's view; receivers merge (a join-semilattice, so gossip
    converges) and re-evaluate any pending quorum against the merged
    view — membership changes can complete an operation without another
    ack arriving.

    Lifecycle: a slot seeded into the initial view starts {e active}; a
    later arrival starts with a [Join] broadcast, adopts state from a
    quorum of [Join_ack]s, and activates ({!completion} [Activated]).
    Reads and writes are both query-then-update (MWMR: a writer must
    learn the highest timestamp before exceeding it); a read's update
    phase is the ABD write-back that makes it atomic. Departure
    ({!farewell}, wired to {!Net}'s [on_leave]) announces a [Goodbye]
    so surviving views shrink.

    [width_bits] bounds the timestamp field to [b] bits, wrapping
    arithmetic mod [2^b] — the bounded-register knob of the source
    paper, transplanted to the dynamic emulation. Once a counter laps
    the width, newer data compares below stale copies; experiment E17
    maps where on the churn-rate × width grid the emulation stays
    linearizable.

    Like {!Abd}, the state machine is transport-agnostic: [start],
    [begin_*], [handle] and [farewell] return the messages to send, and
    the embedding moves them. One outstanding operation per process. *)

type 'v payload = { ts : int; rank : int; value : 'v }
(** A stamped copy: timestamps ordered lexicographically by
    [(ts, rank)], rank being the writing pid — the MWMR tie-break. *)

type 'v body =
  | Join  (** arrival announcement: active members reply [Join_ack] *)
  | Join_ack of 'v payload array  (** a full state snapshot to adopt *)
  | Goodbye  (** departure announcement (the view does the work) *)
  | Query of { reg : int; op : int }
  | Query_ack of { reg : int; op : int; found : 'v payload }
  | Update of { reg : int; op : int; data : 'v payload }
  | Update_ack of { reg : int; op : int }

type 'v msg = { view : Membership.view; body : 'v body }

type 'v completion =
  | Activated  (** the join protocol finished; [begin_*] is now legal *)
  | Wrote
  | Read_value of 'v

type 'v t

val create :
  n:int ->
  me:int ->
  ?slack:int ->
  ?width_bits:int ->
  registers:int ->
  init:(int -> 'v) ->
  initial:Membership.view ->
  unit ->
  'v t
(** [n] is the slot universe ({!Net}'s size). A [me] inside [initial]
    starts active; outside, it starts joining (broadcast via {!start}).
    [slack] (default 0) widens every quorum per {!Membership.quorum} —
    soundness under churn requires slack at least the per-window churn
    bound. [width_bits] bounds timestamps to [b] bits (default:
    unbounded).
    @raise Invalid_argument on out-of-range [me], [registers < 1],
    negative [slack], or [width_bits] outside 1..30. *)

val start : 'v t -> (int * 'v msg) list
(** The node's opening broadcast ({!Net}'s [on_start]): a [Join] for a
    late arrival, nothing for a seeded member. *)

val farewell : 'v t -> (int * 'v msg) list
(** The departure broadcast ({!Net}'s [on_leave]): marks itself left,
    deactivates (dropping any pending operation), sends [Goodbye]. *)

val begin_write : 'v t -> reg:int -> 'v -> (int * 'v msg) list
(** Query-then-update write: learn the highest timestamp from a quorum,
    exceed it (mod the width), install at a quorum.
    @raise Invalid_argument if not active or an op is outstanding. *)

val begin_read : 'v t -> reg:int -> (int * 'v msg) list
(** Query-then-update read: adopt the highest of a quorum of replies,
    write it back to a quorum before returning — atomicity, as in ABD. *)

val handle : 'v t -> from:int -> 'v msg -> (int * 'v msg) list
(** Merge the envelope view, process the body, re-evaluate the pending
    quorum. Reply sets are pid bitsets, so duplicated deliveries never
    double-count. Joiners answer [Update] (store-and-ack — adopted state
    propagates through them) but not [Query] or [Join]; only activated
    members vouch for state. *)

val take_completion : 'v t -> 'v completion option
(** The pending operation's result (or [Activated]) once its quorum is
    in; clears it. *)

val view : 'v t -> Membership.view
val is_active : 'v t -> bool

val quorum : 'v t -> int
(** The threshold currently in force: [Membership.quorum ~slack] of the
    local view. *)
