(* Bit-field packing of ABD messages into one immediate int, LSB first:

     tag:2 | reg:10 | op:16 | ts:16 | value:18   (62 bits of OCaml's 63)

   A packed network ['m Net.t] instantiated at ['m = int] stores its
   payloads in plain [int array] rings — no per-message allocation, no
   boxing — which is what makes the pooled chaos fleet's send/deliver
   path allocation-free. The encoders do not range-check (they are the
   hot path); builders must validate their configuration's bounds with
   {!fits_static} up front and fall back to the boxed message type when
   a field could overflow. Decoding is mask-and-shift; every field of
   every tag is present in every word (unused fields are zero), so
   decoders never branch on tag to find a field. *)

let tag_bits = 2
let reg_bits = 10
let op_bits = 16
let ts_bits = 16
let value_bits = 18
let max_reg = (1 lsl reg_bits) - 1
let max_op = (1 lsl op_bits) - 1
let max_ts = (1 lsl ts_bits) - 1
let max_value = (1 lsl value_bits) - 1

(* Field offsets. *)
let reg_shift = tag_bits
let op_shift = reg_shift + reg_bits
let ts_shift = op_shift + op_bits
let value_shift = ts_shift + ts_bits

(* Message tags, mirroring [Abd.msg] constructors. *)
let t_write_req = 0
let t_write_ack = 1
let t_read_req = 2
let t_read_reply = 3

let pack ~tag ~reg ~op ~ts ~value =
  tag
  lor (reg lsl reg_shift)
  lor (op lsl op_shift)
  lor (ts lsl ts_shift)
  lor (value lsl value_shift)

let write_req ~reg ~ts ~value ~op = pack ~tag:t_write_req ~reg ~op ~ts ~value
let write_ack ~reg ~op = pack ~tag:t_write_ack ~reg ~op ~ts:0 ~value:0
let read_req ~reg ~op = pack ~tag:t_read_req ~reg ~op ~ts:0 ~value:0
let read_reply ~reg ~ts ~value ~op = pack ~tag:t_read_reply ~reg ~op ~ts ~value
let tag m = m land ((1 lsl tag_bits) - 1)
let reg m = (m lsr reg_shift) land max_reg
let op m = (m lsr op_shift) land max_op
let ts m = (m lsr ts_shift) land max_ts
let value m = (m lsr value_shift) land max_value

(* Whether a static ABD workload's fields all fit: registers are
   [0..registers-1]; timestamps and values never exceed the write count
   (each write bumps the writer's timestamp once and writes value
   [i+1 <= writes]); operation ids never exceed [max_ops] per node. *)
let fits_static ~registers ~writes ~max_ops =
  registers - 1 <= max_reg && writes <= max_ts && writes <= max_value
  && max_ops <= max_op

let to_msg m : int Abd.msg =
  let t = tag m in
  if t = t_write_req then
    Abd.Write_req { reg = reg m; ts = ts m; value = value m; op = op m }
  else if t = t_write_ack then Abd.Write_ack { reg = reg m; op = op m }
  else if t = t_read_req then Abd.Read_req { reg = reg m; op = op m }
  else Abd.Read_reply { reg = reg m; ts = ts m; value = value m; op = op m }

let of_msg : int Abd.msg -> int = function
  | Abd.Write_req { reg; ts; value; op } -> write_req ~reg ~ts ~value ~op
  | Abd.Write_ack { reg; op } -> write_ack ~reg ~op
  | Abd.Read_req { reg; op } -> read_req ~reg ~op
  | Abd.Read_reply { reg; ts; value; op } -> read_reply ~reg ~ts ~value ~op
