(** Asynchronous reliable-FIFO message passing with crash failures — the
    model of the Attiya–Bar-Noy–Dolev simulation (Section 6, step 1).

    Channels never lose or reorder messages; delivery delay is unbounded
    (the scheduler picks any non-empty channel). A crashed process neither
    processes nor sends. Nodes are mutable callbacks, so this substrate has
    no exhaustive mode — correctness here is checked with seeded random
    schedules. *)

type 'm node = {
  on_start : unit -> (int * 'm) list;
      (** messages to send when the process first runs (at creation for
          initially-present slots, at {!enter} for late joiners) *)
  on_message : from:int -> 'm -> (int * 'm) list;
  on_leave : unit -> (int * 'm) list;
      (** farewell messages sent when the process departs gracefully via
          {!leave}; never called on {!crash} *)
}

(** Push-mode node: instead of returning a sends list (allocated per
    handler call), the handler pushes each outgoing message directly into
    the network through the [send] closure it was built over. The hot
    protocol implementations (the packed ABD fleet) use this form; list
    nodes are wrapped into it by {!create}. *)
type 'm push = {
  p_start : unit -> unit;
  p_message : from:int -> 'm -> unit;
  p_leave : unit -> unit;
}

type 'm t

val create : ?present:(int -> bool) -> n:int -> nodes:(int -> 'm node) -> unit -> 'm t
(** [on_start] callbacks run immediately, in pid order, for every slot
    where [present pid] holds (default: all). Slots that start absent are
    future joiners: their [on_start] runs when {!enter} brings them in.
    Processes may send to themselves. *)

val create_push :
  ?present:(int -> bool) ->
  n:int ->
  nodes:(send:(dst:int -> 'm -> unit) -> int -> 'm push) ->
  unit ->
  'm t
(** Like {!create} for push-mode nodes. Each node is built over a [send]
    closure bound to its own pid; sends from a crashed or departed source
    vanish silently (matching the list-node semantics), and out-of-range
    destinations raise [Invalid_argument].
    @raise Invalid_argument if [n] is not in [1..61] (membership is kept
    in single-word bitsets). *)

val reset : ?present:(int -> bool) -> 'm t -> unit
(** Return a network to its post-{!create} state without reallocating:
    clears every channel, revives all slots, resets membership to
    [present] (default: all), zeroes the delivery counter and hop mask,
    and re-runs [on_start]/[p_start] for present slots in pid order. The
    node callbacks themselves are retained — callers pooling a network
    must reset their protocol state before calling this. Channel rings
    keep their grown capacity, which is the point: a pooled network stops
    allocating once its rings have seen their high-water mark. *)

val n : 'm t -> int

val deliver_random : Bits.Rng.t -> 'm t -> bool
(** Deliver one message from a uniformly chosen non-empty channel with a
    live destination; [false] when nothing is deliverable. *)

val deliver : 'm t -> src:int -> dst:int -> bool
(** Scripted delivery: pop the head of channel [src → dst] and run the
    destination's handler. Adversarial delivery orders are expressed by
    choosing the channel per event; {e within} a channel order stays FIFO —
    non-FIFO behaviour exists only through {!defer}, which the base
    substrate never calls (see {!Faults}). [false] if the channel is empty
    or the destination has crashed (the message stays queued).
    @raise Invalid_argument if [src] or [dst] is out of range. *)

val deliverable : 'm t -> (int * int) list
(** Channels [(src, dst)] with queued messages and a live destination,
    lexicographic. *)

val deliverable_into : 'm t -> int array -> int
(** Allocation-free {!deliverable}: writes the flat channel codes
    [src * n + dst] of deliverable channels into the buffer in
    lexicographic order and returns how many were written. The buffer
    must have length at least [n * n]. Picking index [Rng.int rng count]
    of the filled prefix draws the same channel the historical
    [Rng.pick rng (deliverable t)] drew, with the same single RNG step —
    the fault layer's replay streams depend on this. *)

val pending : 'm t -> src:int -> dst:int -> int
(** Messages queued on channel [src → dst].
    @raise Invalid_argument if [src] or [dst] is out of range. *)

(** {1 Fault primitives}

    The reliable-FIFO substrate of the ABD model never invokes these; they
    exist so a fault-injection layer ({!Faults}) can perturb channels
    through the public interface. Each returns [false] (and does nothing)
    when it would have no observable effect. *)

val drop : 'm t -> src:int -> dst:int -> bool
(** Discard the head of channel [src → dst] (message loss). *)

val duplicate : 'm t -> src:int -> dst:int -> bool
(** Re-enqueue a copy of the head of [src → dst] at the tail. *)

val defer : 'm t -> src:int -> dst:int -> bool
(** Move the head of [src → dst] to the tail — the reordering primitive;
    [false] when fewer than two messages are queued. *)

val crash : 'm t -> int -> unit
val alive : 'm t -> int -> bool
val crashed : 'm t -> int list

(** {1 Dynamic membership}

    The fixed [n] slots are a {e universe} of potential processes; at any
    moment a slot is present (participating), absent-not-yet-entered (a
    future joiner), or departed. Entering and leaving are fault-layer
    events like {!crash} — the ABD substrate never calls them — and both
    return [false] when ineffective so replay can skip them. *)

val enter : 'm t -> int -> bool
(** Bring an absent slot into the computation: marks it present and runs
    its [on_start]. [false] if already present, already departed, or
    crashed — a departed slot never re-enters (fresh arrivals are fresh
    slots, as in the dynamic-membership model).
    @raise Invalid_argument if the pid is out of range. *)

val leave : 'm t -> int -> bool
(** Graceful departure: enqueue the node's [on_leave] farewell (sent
    while still present), then mark the slot departed. Pending messages
    to it are never delivered. [false] if absent or crashed.
    @raise Invalid_argument if the pid is out of range. *)

val is_present : 'm t -> int -> bool
(** The slot has entered and not yet left. Crashing does not clear
    presence — a crashed member is a faulty member, not a departed one.
    @raise Invalid_argument if the pid is out of range. *)

val departed : 'm t -> int list
(** Slots that left gracefully, ascending. *)

val quiescent : 'm t -> bool
(** No deliverable messages remain. *)

val deliveries : 'm t -> int

val hop_bounds : int array
(** Bucket upper bounds of the hop-latency histogram (logical hops
    between a message's enqueue and its delivery; last bucket implicit
    overflow) — the bounds of the [net.hop_latency] registry metric. *)

val hop_mask : 'm t -> int
(** Bitmask of the hop-latency buckets this network's deliveries have
    occupied: bit [b] is set iff some delivery fell in bucket [b] of
    {!hop_bounds}. The per-run, replay-stable view of the registry's
    cumulative [net.hop_latency] histogram — a coverage signal for the
    chaos fleet. *)

val run_random :
  rng:Bits.Rng.t -> ?max_events:int -> ?until:(unit -> bool) -> 'm t -> unit
(** Deliver until quiescent, [until ()] holds, or [max_events] (default
    1_000_000) deliveries happened. *)
