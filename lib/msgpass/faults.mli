(** Deterministic, replayable fault injection over {!Net}.

    The ABD emulation (Section 6, step 1) is advertised against an
    asynchronous network with crash failures; Attiya-style register
    simulations are additionally expected to shrug off message loss,
    duplication and reordering, since a quorum system never waits for any
    specific [t] processes. This layer makes those faults first-class
    {e events}: every perturbation of the network — a delivery, a drop, a
    duplication, a head-of-line reorder, a crash — is one {!action}, and a
    run is exactly its action sequence (the {!plan}).

    Two drivers produce runs. {!run_random} rolls seeded {!Bits.Rng} dice
    against a {!profile} of per-event fault probabilities (with delay
    bursts that freeze a channel for a stretch of events, and scheduled
    crash-at-event-index injections); whatever it ends up doing is
    {!plan}-recorded. {!replay} re-executes a recorded plan bit-for-bit —
    the random and scripted modes meet in the same [action] vocabulary, so
    a shrunk counterexample (see {!Check.Shrink}) is replayed by the exact
    machinery that found it. *)

type channel = { src : int; dst : int }

type action =
  | Deliver of channel  (** pop the channel head into the destination *)
  | Drop of channel  (** lose the channel head *)
  | Duplicate of channel  (** re-enqueue a copy of the head at the tail *)
  | Defer of channel  (** move the head behind the tail: reordering *)
  | Crash of int
  | Enter of int  (** churn: an absent slot joins ({!Net.enter}) *)
  | Leave of int  (** churn: a present slot departs ({!Net.leave}) *)

type plan = action list

val pp_action : Format.formatter -> action -> unit
(** [deliver 0>2], [drop 0>2], [dup 0>2], [defer 0>2], [crash 3],
    [enter 3], [leave 3] — the fault-plan grammar quoted in
    EXPERIMENTS.md. *)

val pp_plan : Format.formatter -> plan -> unit
val deliveries : plan -> int
(** Number of [Deliver] actions — the size metric for shrunk plans. *)

(** {1 Plan codecs}

    The chaos-fleet corpus persists plans on disk in a human-editable
    form: every action serializes to exactly what {!pp_action} prints,
    and the parsers below invert {!pp_action}/{!pp_plan} (accepting any
    whitespace where the pretty-printer breaks lines). *)

val action_to_string : action -> string
val action_of_string : string -> (action, string) result
(** Inverse of {!action_to_string}; [Error] names the offending token
    (unknown keyword, malformed channel, non-integer pid). *)

val plan_of_string : string -> (plan, string) result
(** Parse a ";"-separated action list — the {!pp_plan} rendering. Empty
    segments are skipped, so a trailing ";" is fine. [Error] reports the
    offending action's index and character offset in the input, plus the
    token-level diagnosis from {!action_of_string}. *)

val plan_to_json : plan -> Obs.Json.t
(** A JSON array of action strings — one corpus line's [plan] field. *)

val plan_of_json : Obs.Json.t -> (plan, string) result
(** Inverse of {!plan_to_json}. *)

(** {1 Compiled plans}

    A compiled plan is the dense int-opcode form of an action list: one
    immediate int per action, walked by {!replay_compiled} with no
    per-action pattern match or allocation. The fleet compiles each
    corpus plan once and replays the flat array for every mutant and
    cache probe derived from it. *)

type compiled

val compile : n:int -> plan -> compiled
(** Validate every operand against universe size [n] and pack.
    @raise Invalid_argument on an out-of-range channel or pid — a
    compiled plan can therefore be replayed unchecked. *)

val compile_array : n:int -> action array -> compiled
(** {!compile} over an action array — the fleet's mutation engine works
    on arrays, so its mutants pack without a round-trip through lists. *)

val decompile : compiled -> plan

val decompile_array : compiled -> action array
(** {!decompile} without the final list conversion. *)

val compiled_length : compiled -> int

val compiled_deliveries : compiled -> int
(** {!deliveries} over the packed form, without decoding. *)

val compiled_hash : compiled -> int
(** Content address of a compiled plan: a splitmix-seeded order-sensitive
    fold ({!Sched.Zobrist.combine}) over the opcode array — identical
    across runs, processes and domains. Non-negative. The fleet's run
    cache keys scripted jobs on this. *)

val compiled_equal : compiled -> compiled -> bool
(** Opcode-array equality — the exact-identity check behind a
    {!compiled_hash} match. *)

type profile = {
  drop : float;  (** per-event probability of losing the chosen head *)
  duplicate : float;
  defer : float;
  delay : float;  (** probability of freezing the chosen channel instead *)
  delay_span : int;  (** freeze length, in events *)
  max_channel_drops : int;  (** drop budget per channel ([max_int] = none) *)
  crash_at : (int * int) list;  (** (pid, crash at this event index) *)
  enter_at : (int * int) list;  (** (pid, enter at this event index) *)
  leave_at : (int * int) list;  (** (pid, leave at this event index) *)
}

val reliable : profile
(** All fault probabilities zero, no crashes: {!run_random} degenerates to
    {!Net.run_random} up to channel choice. Build custom profiles with
    [{ reliable with drop = 0.1; ... }]. *)

type 'm t

val wrap : 'm Net.t -> 'm t
val net : 'm t -> 'm Net.t
val events : 'm t -> int
(** Actions executed so far (both drivers, and {!apply}). *)

val plan : 'm t -> plan
(** Every action executed so far, oldest first — the replayable record. *)

val compiled_plan : 'm t -> compiled
(** The same record in packed form — one array copy, no decoding; what
    the chaos layer stores in each outcome. *)

val apply : 'm t -> action -> bool
(** Execute one action. [false] (and no event recorded) when it has no
    effect: empty channel, crashed destination, single-message [Defer],
    [Crash] of a dead process. Replay skips such actions silently, which is
    what lets {!Check.Shrink.ddmin} delete plan elements freely. *)

val step_random : Bits.Rng.t -> profile -> 'm t -> bool
(** One randomized event: fire due schedule entries ([enter_at], then
    [leave_at], then [crash_at]), pick a deliverable channel (skipping
    frozen ones unless all are frozen), roll the fault dice, apply.
    [false] when the network is quiescent. *)

val run_random :
  rng:Bits.Rng.t ->
  profile:profile ->
  ?max_events:int ->
  ?until:(unit -> bool) ->
  'm t ->
  unit
(** Drive {!step_random} until quiescence, [until ()], or [max_events]
    (default 100_000). *)

val replay : 'm t -> plan -> unit
(** Execute a plan action by action, skipping no-ops. Replaying the plan of
    a previous run against a freshly built identical network reproduces
    that run exactly: same deliveries, same handler executions, same final
    state. *)

val replay_compiled : 'm t -> compiled -> unit
(** {!replay} over the packed form: execute opcode by opcode, skipping
    no-ops, recording effective actions exactly as {!apply} does. *)

val reset : 'm t -> unit
(** Clear the wrapper back to its post-{!wrap} state — empty recording,
    no frozen channels, fresh drop budgets — without reallocating. Does
    not touch the wrapped network; a pooled caller pairs this with
    {!Net.reset}. *)
