module L = Check.Linearize

let m_runs = Obs.Metrics.counter "chaos.runs"
let m_violations = Obs.Metrics.counter "chaos.violations"

type dyn = {
  seed_members : int;
  churn_rate : int;
  churn_window : int;
  churn_slack : int;
  width_bits : int option;
  joiner_reads : int;
}

type config = {
  n : int;
  t : int;
  quorum : int option;
  writes : int;
  readers : int;
  reads : int;
  crashes : int;
  profile : Faults.profile;
  max_events : int;
  membership : dyn option;
}

let default_profile =
  {
    Faults.reliable with
    drop = 0.08;
    duplicate = 0.06;
    defer = 0.12;
    delay = 0.05;
    delay_span = 12;
    max_channel_drops = 4;
  }

let sound ?(n = 4) ?(t = 1) () =
  {
    n;
    t;
    quorum = None;
    writes = 2;
    readers = 2;
    reads = 3;
    crashes = t;
    profile = default_profile;
    max_events = 4_000;
    membership = None;
  }

let frontier ?(n = 4) () =
  {
    n;
    t = 0;
    quorum = Some (n / 2);
    writes = 2;
    readers = 2;
    reads = 4;
    crashes = 0;
    (* Disjoint quorums only misbehave when a write settles in one half
       while reads are served entirely by the other. Long delay bursts and
       aggressive reordering manufacture that partition; loss stays modest
       and per-channel bounded so operations still complete — a dead
       channel stalls the protocol instead of staling it. (Profile chosen
       by sweep: ~3.5% violation rate over seeds 1..200, minimal shrunk
       witnesses under 20 deliveries.) *)
    profile =
      {
        default_profile with
        drop = 0.10;
        defer = 0.3;
        delay = 0.25;
        delay_span = 40;
        max_channel_drops = 4;
      };
    max_events = 4_000;
    membership = None;
  }

(* Below-bound churn: one join-or-leave per 60-event window, quorums
   widened by exactly that rate. The writer and one reader churn among
   the seed members; the remaining slots are late joiners that run their
   read scripts after activating. No crashes — churn and crashes are
   separate budgets, and this preset isolates the churn axis. *)
let churn ?(n = 8) ?(seed_members = 5) ?(rate = 1) ?(window = 60) ?slack
    ?width_bits () =
  {
    n;
    t = 0;
    quorum = None;
    writes = 2;
    readers = 2;
    reads = 3;
    crashes = 0;
    profile = default_profile;
    max_events = 4_000;
    membership =
      Some
        {
          seed_members;
          churn_rate = rate;
          churn_window = window;
          churn_slack = Option.value slack ~default:rate;
          width_bits;
          joiner_reads = 2;
        };
  }

(* Above-bound churn with unwidened quorums: departures are rapid-fire
   (spacing ~2 events) while slack 0 sizes quorums as plain majorities
   of whatever view each node has — a write acknowledged partly by
   members about to leave can then be invisible to a read majority of
   the survivors. Delay bursts and reordering (the static frontier's
   mix) stretch the window in which the two quorums miss each other.
   The small seed group (4 of 8) maximizes how much of the write quorum
   the leavers can take with them. *)
let churn_frontier ?(n = 8) ?(seed_members = 4) () =
  let base = frontier ~n () in
  {
    base with
    quorum = None;
    membership =
      Some
        {
          seed_members;
          churn_rate = 6;
          churn_window = 12;
          churn_slack = 0;
          width_bits = None;
          joiner_reads = 2;
        };
  }

(* ------------------------------------------------------------------ *)
(* Config validation *)

let validate config =
  let err fmt = Printf.ksprintf (fun e -> Error e) fmt in
  if config.n <= 0 then err "n must be positive (got %d)" config.n
  else if config.t < 0 then err "t must be non-negative (got %d)" config.t
  else
    match config.quorum with
    | Some q when q < 1 || q > config.n ->
        err "quorum %d outside 1..n (n = %d): unsatisfiable or vacuous" q
          config.n
    | _ -> (
        match config.membership with
        | Some d when d.seed_members < 1 || d.seed_members > config.n ->
            err "seed_members %d outside 1..n (n = %d)" d.seed_members config.n
        | Some d when d.churn_rate < 0 ->
            err "churn_rate must be non-negative (got %d)" d.churn_rate
        | Some d when d.churn_window < 1 ->
            err "churn_window must be positive (got %d)" d.churn_window
        | Some d when d.churn_slack < 0 ->
            err "churn_slack must be non-negative (got %d)" d.churn_slack
        | Some { width_bits = Some b; _ } when b < 1 || b > 30 ->
            err "width_bits %d outside 1..30" b
        | Some d when d.joiner_reads < 0 ->
            err "joiner_reads must be non-negative (got %d)" d.joiner_reads
        | _ ->
            (* Soft problem: more crashes than the tolerance the quorum
               was sized for. The campaign would silently clamp at the
               crash roll; clamp loudly here instead. *)
            if config.crashes > config.t then
              Ok
                ( { config with crashes = config.t },
                  [
                    Printf.sprintf
                      "crashes %d exceeds fault tolerance t = %d: clamped to \
                       %d (a quorum of n - t survives at most t crashes)"
                      config.crashes config.t config.t;
                  ] )
            else Ok (config, []))

type rng_point = {
  rng_state : int64;
  crash_at : (int * int) list;
  churn : Membership.churn;
}

type outcome = {
  verdict : int L.verdict;
  history : int L.event list;
  plan : Faults.compiled;
  events : int;
  deliveries : int;
  completed : int;
  hop_mask : int;
  rng_point : rng_point option;
}

let failed o =
  match o.verdict with L.Nonlinearizable _ -> true | L.Linearizable _ -> false

(* The client fleet: ABD peers with operation scripts against register 0,
   recording invocation/response events on a shared logical clock. Every
   inv/res gets a fresh stamp, so the recorded real-time order is exactly
   the callback order of the simulation. *)
let build_static config =
  let n = config.n in
  let abds =
    Array.init n (fun me ->
        Abd.create ~n ~t:config.t ~me ?quorum:config.quorum ~registers:n
          ~init:(fun _ -> 0)
          ())
  in
  let stamp = ref 0 in
  let now () =
    incr stamp;
    !stamp
  in
  let history = ref [] in
  let pending : (int * [ `W of int | `R ]) option array = Array.make n None in
  let scripts =
    Array.init n (fun me ->
        if me = 0 then ref (List.init config.writes (fun i -> `W (i + 1)))
        else if me <= config.readers then
          ref (List.init config.reads (fun _ -> `R))
        else ref [])
  in
  let start_next me =
    match !(scripts.(me)) with
    | [] -> []
    | op :: rest ->
        scripts.(me) := rest;
        pending.(me) <- Some (now (), op);
        (match op with
        | `W v -> Abd.begin_write abds.(me) ~reg:0 v
        | `R -> Abd.begin_read abds.(me) ~reg:0)
  in
  let complete me c =
    match pending.(me) with
    | None -> ()
    | Some (inv, kind) ->
        pending.(me) <- None;
        let op =
          match (c, kind) with
          | Abd.Wrote, `W v -> L.Write v
          | Abd.Read_value v, `R -> L.Read v
          | Abd.Wrote, `R -> L.Read 0
          | Abd.Read_value v, `W _ -> L.Write v
        in
        history :=
          { L.proc = me; reg = 0; op; inv; res = Some (now ()) } :: !history
  in
  let node me =
    {
      Net.on_start = (fun () -> start_next me);
      on_message =
        (fun ~from m ->
          let outs = Abd.handle abds.(me) ~from m in
          match Abd.take_completion abds.(me) with
          | None -> outs
          | Some c ->
              complete me c;
              outs @ start_next me);
      on_leave = (fun () -> []);
    }
  in
  let net = Net.create ~n ~nodes:node () in
  let finalize () =
    let tail = ref [] in
    Array.iteri
      (fun me p ->
        match p with
        | Some (inv, `W v) ->
            tail := { L.proc = me; reg = 0; op = L.Write v; inv; res = None } :: !tail
        | Some (inv, `R) ->
            tail := { L.proc = me; reg = 0; op = L.Read 0; inv; res = None } :: !tail
        | None -> ())
      pending;
    List.rev_append !history !tail
  in
  (net, finalize)

(* The dynamic client fleet: Dynreg peers over a churning membership.
   Slots [0 .. seed_members - 1] are seeded (writer 0, readers 1..);
   the rest are late joiners whose read scripts start on [Activated].
   A leaver's pending operation stays pending — finalize records it
   incomplete, and the checker treats it as may-or-may-not have taken
   effect, which is exactly the semantics of departing mid-operation. *)
let build_dyn config dyn =
  let n = config.n in
  let initial = Membership.initial dyn.seed_members in
  let regs =
    Array.init n (fun me ->
        Dynreg.create ~n ~me ~slack:dyn.churn_slack ?width_bits:dyn.width_bits
          ~registers:1
          ~init:(fun _ -> 0)
          ~initial ())
  in
  let stamp = ref 0 in
  let now () =
    incr stamp;
    !stamp
  in
  let history = ref [] in
  let pending : (int * [ `W of int | `R ]) option array = Array.make n None in
  let scripts =
    Array.init n (fun me ->
        if me = 0 then ref (List.init config.writes (fun i -> `W (i + 1)))
        else if me < dyn.seed_members && me <= config.readers then
          ref (List.init config.reads (fun _ -> `R))
        else if me >= dyn.seed_members then
          ref (List.init dyn.joiner_reads (fun _ -> `R))
        else ref [])
  in
  let start_next me =
    match !(scripts.(me)) with
    | [] -> []
    | op :: rest ->
        scripts.(me) := rest;
        pending.(me) <- Some (now (), op);
        (match op with
        | `W v -> Dynreg.begin_write regs.(me) ~reg:0 v
        | `R -> Dynreg.begin_read regs.(me) ~reg:0)
  in
  let complete me c =
    match pending.(me) with
    | None -> ()
    | Some (inv, kind) ->
        pending.(me) <- None;
        let op =
          match (c, kind) with
          | Dynreg.Wrote, `W v -> L.Write v
          | Dynreg.Read_value v, `R -> L.Read v
          | Dynreg.Wrote, `R -> L.Read 0
          | Dynreg.Read_value v, `W _ -> L.Write v
          | Dynreg.Activated, `W v -> L.Write v
          | Dynreg.Activated, `R -> L.Read 0
        in
        history :=
          { L.proc = me; reg = 0; op; inv; res = Some (now ()) } :: !history
  in
  let node me =
    {
      Net.on_start =
        (fun () ->
          let outs = Dynreg.start regs.(me) in
          if Dynreg.is_active regs.(me) then outs @ start_next me else outs);
      on_message =
        (fun ~from m ->
          let outs = Dynreg.handle regs.(me) ~from m in
          match Dynreg.take_completion regs.(me) with
          | None -> outs
          | Some Dynreg.Activated -> outs @ start_next me
          | Some c ->
              complete me c;
              outs @ start_next me);
      on_leave = (fun () -> Dynreg.farewell regs.(me));
    }
  in
  let net =
    Net.create ~present:(fun pid -> pid < dyn.seed_members) ~n ~nodes:node ()
  in
  let finalize () =
    let tail = ref [] in
    Array.iteri
      (fun me p ->
        match p with
        | Some (inv, `W v) ->
            tail :=
              { L.proc = me; reg = 0; op = L.Write v; inv; res = None } :: !tail
        | Some (inv, `R) ->
            tail :=
              { L.proc = me; reg = 0; op = L.Read 0; inv; res = None } :: !tail
        | None -> ())
      pending;
    List.rev_append !history !tail
  in
  (net, finalize)

(* The static and dynamic fleets speak different message types; the
   drivers below only ever wrap the network in the fault layer and call
   the finalizer, so the type packs away. *)
type built = Built : 'm Net.t * (unit -> int L.event list) -> built

let build config =
  match config.membership with
  | None ->
      let net, finalize = build_static config in
      Built (net, finalize)
  | Some dyn ->
      let net, finalize = build_dyn config dyn in
      Built (net, finalize)

(* ------------------------------------------------------------------ *)
(* The packed static fleet.

   [build_static] above allocates a fresh boxed fleet per run — Abd
   records, closure lists, message constructors — which dominates the
   campaign hot path. This builder is its allocation-free twin for the
   static (no-membership) configuration: the entire ABD protocol state
   lives in flat int arrays indexed by pid (and [pid * n + reg] for the
   register copies), messages are {!Pack}ed immediate ints pushed
   straight into the arena network, and the history is recorded in
   growable int columns. Instances are pooled per domain and per config:
   a run is [reset] (fill the arrays, rewind the recorder, re-run the
   start scripts) rather than a rebuild, so the steady-state cost of a
   chaos run is the fault loop itself.

   Observable equivalence with [build_static] is exact and is what the
   differential tests in test_msgpass pin down: same send orders (a
   handler's replies before the completion-triggered next script op, as
   the boxed [outs @ start_next me] enqueued), same logical-clock
   stamps, same history — including the quorum tie-break, where the
   boxed fold over the newest-first reply list keeps the latest-arrived
   reply among maximal timestamps, reproduced here by the incremental
   [ts >= best_ts] replacement rule. *)

(* Growable parallel int columns holding completed operations in
   completion order: (proc, write?, value, inv stamp, res stamp). *)
type hist = {
  mutable h_len : int;
  mutable h_proc : int array;
  mutable h_wr : int array;
  mutable h_val : int array;
  mutable h_inv : int array;
  mutable h_res : int array;
}

let hist_append h proc wr value inv res =
  if h.h_len = Array.length h.h_proc then begin
    let g a =
      let b = Array.make (2 * Array.length a) 0 in
      Array.blit a 0 b 0 h.h_len;
      b
    in
    h.h_proc <- g h.h_proc;
    h.h_wr <- g h.h_wr;
    h.h_val <- g h.h_val;
    h.h_inv <- g h.h_inv;
    h.h_res <- g h.h_res
  end;
  let i = h.h_len in
  h.h_proc.(i) <- proc;
  h.h_wr.(i) <- wr;
  h.h_val.(i) <- value;
  h.h_inv.(i) <- inv;
  h.h_res.(i) <- res;
  h.h_len <- i + 1

type packed = {
  q_ft : int Faults.t;
  q_reset : unit -> unit;
  q_finalize : unit -> int L.event list;
}

(* Phase codes, mirroring [Abd.phase]. *)
let ph_idle = 0
let ph_writing = 1
let ph_collecting = 2
let ph_writing_back = 3

let packed_create config =
  (* The same construction-time validation [Abd.create] performs, with
     the same error, so swapping builders never changes what raises. *)
  (match config.quorum with
  | Some _ -> ()
  | None ->
      if config.t < 0 || 2 * config.t >= config.n then
        invalid_arg "Abd.create: need 0 <= t < n/2");
  let n = config.n in
  let quorum = Option.value config.quorum ~default:(n - config.t) in
  let nn = n * n in
  (* Protocol state: copies/[my_ts] are per (pid, reg); the rest per pid.
     [ph_cnt] is the ack count in Writing/Writing_back and the reply
     count in Collecting; [ph_ts]/[ph_val] track the running best reply
     while Collecting, and [ph_val] then carries the read-back value
     through Writing_back. *)
  let copies_ts = Array.make nn 0 and copies_val = Array.make nn 0 in
  let my_ts = Array.make nn 0 in
  let next_op = Array.make n 0 in
  let phase = Array.make n ph_idle in
  let ph_op = Array.make n 0 and ph_reg = Array.make n 0 in
  let ph_cnt = Array.make n 0 in
  let ph_ts = Array.make n 0 and ph_val = Array.make n 0 in
  let done_kind = Array.make n 0 (* 0 none, 1 Wrote, 2 Read_value *) in
  let done_val = Array.make n 0 in
  (* Scripts: pid 0 writes values [1..writes]; pids [1..readers] read.
     [pend_kind]: -1 none, 0 pending read, v >= 1 pending write of v. *)
  let writes_started = ref 0 in
  let reads_left = Array.make n 0 in
  let init_reads () =
    for i = 0 to n - 1 do
      reads_left.(i) <-
        (if i >= 1 && i <= config.readers then config.reads else 0)
    done
  in
  init_reads ();
  let pend_inv = Array.make n (-1) and pend_kind = Array.make n (-1) in
  let stamp = ref 0 in
  let h =
    {
      h_len = 0;
      h_proc = Array.make 64 0;
      h_wr = Array.make 64 0;
      h_val = Array.make 64 0;
      h_inv = Array.make 64 0;
      h_res = Array.make 64 0;
    }
  in
  let nodes ~send me =
    let base = me * n in
    let start_next () =
      if me = 0 then begin
        if !writes_started < config.writes then begin
          incr writes_started;
          let v = !writes_started in
          incr stamp;
          pend_inv.(0) <- !stamp;
          pend_kind.(0) <- v;
          next_op.(0) <- next_op.(0) + 1;
          my_ts.(base) <- my_ts.(base) + 1;
          phase.(0) <- ph_writing;
          ph_op.(0) <- next_op.(0);
          ph_cnt.(0) <- 0;
          let m =
            Pack.write_req ~reg:0 ~ts:my_ts.(base) ~value:v ~op:next_op.(0)
          in
          for j = 0 to n - 1 do
            send ~dst:j m
          done
        end
      end
      else if me <= config.readers && reads_left.(me) > 0 then begin
        reads_left.(me) <- reads_left.(me) - 1;
        incr stamp;
        pend_inv.(me) <- !stamp;
        pend_kind.(me) <- 0;
        next_op.(me) <- next_op.(me) + 1;
        phase.(me) <- ph_collecting;
        ph_op.(me) <- next_op.(me);
        ph_reg.(me) <- 0;
        ph_cnt.(me) <- 0;
        let m = Pack.read_req ~reg:0 ~op:next_op.(me) in
        for j = 0 to n - 1 do
          send ~dst:j m
        done
      end
    in
    (* A completion only ever arises from a Write_ack (as in [Abd]); the
       boxed node then records the operation and starts the next script
       entry — response stamp before the next invocation stamp. *)
    let complete_and_continue () =
      let dk = done_kind.(me) in
      if dk <> 0 then begin
        done_kind.(me) <- 0;
        let inv = pend_inv.(me) in
        if inv >= 0 then begin
          let kind = pend_kind.(me) in
          pend_inv.(me) <- -1;
          pend_kind.(me) <- -1;
          incr stamp;
          if kind >= 1 then
            hist_append h me 1 (if dk = 1 then kind else done_val.(me)) inv !stamp
          else hist_append h me 0 (if dk = 1 then 0 else done_val.(me)) inv !stamp
        end;
        start_next ()
      end
    in
    let p_message ~from m =
      let tag = Pack.tag m in
      if tag = Pack.t_write_req then begin
        let reg = Pack.reg m in
        let ts = Pack.ts m in
        let idx = base + reg in
        if ts > copies_ts.(idx) then begin
          copies_ts.(idx) <- ts;
          copies_val.(idx) <- Pack.value m
        end;
        send ~dst:from (Pack.write_ack ~reg ~op:(Pack.op m))
      end
      else if tag = Pack.t_read_req then begin
        let reg = Pack.reg m in
        let idx = base + reg in
        send ~dst:from
          (Pack.read_reply ~reg ~ts:copies_ts.(idx) ~value:copies_val.(idx)
             ~op:(Pack.op m))
      end
      else if tag = Pack.t_write_ack then begin
        let op = Pack.op m in
        let ph = phase.(me) in
        if (ph = ph_writing || ph = ph_writing_back) && ph_op.(me) = op then begin
          let acks = ph_cnt.(me) + 1 in
          if acks >= quorum then begin
            phase.(me) <- ph_idle;
            done_kind.(me) <- (if ph = ph_writing then 1 else 2);
            done_val.(me) <- ph_val.(me)
          end
          else ph_cnt.(me) <- acks
        end;
        complete_and_continue ()
      end
      else begin
        (* Read_reply *)
        let reg = Pack.reg m in
        let op = Pack.op m in
        if phase.(me) = ph_collecting && ph_op.(me) = op && ph_reg.(me) = reg
        then begin
          let ts = Pack.ts m in
          let cnt = ph_cnt.(me) + 1 in
          if cnt = 1 || ts >= ph_ts.(me) then begin
            ph_ts.(me) <- ts;
            ph_val.(me) <- Pack.value m
          end;
          if cnt >= quorum then begin
            (* Write back before completing: atomicity. *)
            let best_ts = ph_ts.(me) and best = ph_val.(me) in
            phase.(me) <- ph_writing_back;
            ph_cnt.(me) <- 0;
            let idx = base + reg in
            if best_ts > copies_ts.(idx) then begin
              copies_ts.(idx) <- best_ts;
              copies_val.(idx) <- best
            end;
            let m = Pack.write_req ~reg ~ts:best_ts ~value:best ~op in
            for j = 0 to n - 1 do
              send ~dst:j m
            done
          end
          else ph_cnt.(me) <- cnt
        end
      end
    in
    { Net.p_start = start_next; p_message; p_leave = ignore }
  in
  let net = Net.create_push ~n ~nodes () in
  let ft = Faults.wrap net in
  let reset () =
    Array.fill copies_ts 0 nn 0;
    Array.fill copies_val 0 nn 0;
    Array.fill my_ts 0 nn 0;
    Array.fill next_op 0 n 0;
    Array.fill phase 0 n ph_idle;
    Array.fill ph_op 0 n 0;
    Array.fill ph_reg 0 n 0;
    Array.fill ph_cnt 0 n 0;
    Array.fill ph_ts 0 n 0;
    Array.fill ph_val 0 n 0;
    Array.fill done_kind 0 n 0;
    Array.fill done_val 0 n 0;
    writes_started := 0;
    init_reads ();
    Array.fill pend_inv 0 n (-1);
    Array.fill pend_kind 0 n (-1);
    stamp := 0;
    h.h_len <- 0;
    Faults.reset ft;
    Net.reset net
  in
  let finalize () =
    let tail = ref [] in
    for me = n - 1 downto 0 do
      let inv = pend_inv.(me) in
      if inv >= 0 then begin
        let kind = pend_kind.(me) in
        let op = if kind >= 1 then L.Write kind else L.Read 0 in
        tail := { L.proc = me; reg = 0; op; inv; res = None } :: !tail
      end
    done;
    let rec go i acc =
      if i < 0 then acc
      else
        let op =
          if h.h_wr.(i) = 1 then L.Write h.h_val.(i) else L.Read h.h_val.(i)
        in
        go (i - 1)
          ({ L.proc = h.h_proc.(i); reg = 0; op; inv = h.h_inv.(i);
             res = Some h.h_res.(i) }
          :: acc)
    in
    go (h.h_len - 1) !tail
  in
  { q_ft = ft; q_reset = reset; q_finalize = finalize }

(* One pooled instance per (domain, config): parallel campaign workers
   each grow their own pool in domain-local storage, so no packed state
   is ever shared across domains. *)
let pool : (config, packed) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let packable config =
  config.membership = None
  && config.n >= 1 && config.n <= 61 && config.writes >= 0
  && config.readers >= 0 && config.reads >= 0
  && Pack.fits_static ~registers:config.n ~writes:config.writes
       ~max_ops:(max config.writes config.reads)

let packed_acquire config =
  let tbl = Domain.DLS.get pool in
  let p =
    match Hashtbl.find_opt tbl config with
    | Some p -> p
    | None ->
        let p = packed_create config in
        Hashtbl.add tbl config p;
        p
  in
  p.q_reset ();
  p

(* Every driver below funnels through [prepare]: the pooled packed fleet
   when the static configuration fits the packed message layout, the
   boxed per-run build otherwise (dynamic membership, or out-of-layout
   parameters). *)
type prepared = Prepared : 'm Faults.t * (unit -> int L.event list) -> prepared

let prepare config =
  if packable config then
    let p = packed_acquire config in
    Prepared (p.q_ft, p.q_finalize)
  else
    let (Built (net, finalize)) = build config in
    Prepared (Faults.wrap net, finalize)

let outcome_of ?rng_point ft finalize =
  let history = finalize () in
  let plan = Faults.compiled_plan ft in
  {
    verdict =
      L.check ~pp:Format.pp_print_int ~init:(fun _ -> 0) ~equal:Int.equal
        history;
    history;
    plan;
    events = Faults.events ft;
    deliveries = Faults.compiled_deliveries plan;
    completed =
      List.fold_left
        (fun k (e : int L.event) -> if e.res <> None then k + 1 else k)
        0 history;
    hop_mask = Net.hop_mask (Faults.net ft);
    rng_point;
  }

let random_crashes rng config =
  let how_many =
    Bits.Rng.int rng (min config.crashes config.t + 1)
  in
  let pids = Array.init config.n (fun i -> i) in
  Bits.Rng.shuffle rng pids;
  List.init how_many (fun i ->
      (pids.(i), Bits.Rng.int rng (max 1 (config.max_events / 4))))

(* The α-bounded churn roll. Joiners are the unseeded slots, in pid
   order; leavers are seed members other than the writer (pid 0 keeps
   the write script alive — a departed writer would make most runs
   trivially linearizable). Static configs draw nothing, so their rng
   stream — and every published seed — is untouched. *)
let random_churn rng config =
  match config.membership with
  | None -> Membership.no_churn
  | Some d ->
      Membership.random rng
        ~joiners:
          (List.init (config.n - d.seed_members) (fun i -> d.seed_members + i))
        ~leavers:(List.init (d.seed_members - 1) (fun i -> i + 1))
        ~rate:d.churn_rate ~window:d.churn_window
        ~span:(max 1 (config.max_events / 4))

(* The replay point is taken after the crash and churn patterns have
   been rolled: resuming from it re-runs exactly the fault-injection
   loop, without re-rolling the schedule-derivation prefix of the
   stream. *)
let run_at point config =
  let rng = Bits.Rng.of_state point.rng_state in
  let profile =
    {
      config.profile with
      crash_at = config.profile.crash_at @ point.crash_at;
      enter_at = config.profile.enter_at @ point.churn.Membership.enter_at;
      leave_at = config.profile.leave_at @ point.churn.Membership.leave_at;
    }
  in
  let (Prepared (ft, finalize)) = prepare config in
  Faults.run_random ~rng ~profile ~max_events:config.max_events ft;
  outcome_of ~rng_point:point ft finalize

let run_random ~seed config =
  let rng = Bits.Rng.make seed in
  let crash_at = random_crashes rng config in
  let churn = random_churn rng config in
  run_at { rng_state = Bits.Rng.state rng; crash_at; churn } config

let run_compiled config compiled =
  let (Prepared (ft, finalize)) = prepare config in
  Faults.replay_compiled ft compiled;
  outcome_of ft finalize

let run_plan config plan =
  (* Compiling first both validates the (possibly hand-edited) plan's
     operands against the universe size and turns the replay into a
     dense int-array walk — the form every shrink probe and corpus
     mutant re-execution takes. *)
  run_compiled config (Faults.compile ~n:config.n plan)

let shrink config plan =
  let test p = failed (run_plan config p) in
  Check.Shrink.minimize_count ~test plan

type found = {
  seed : int;
  original : outcome;
  shrunk : Faults.plan;
  shrunk_outcome : outcome;
  shrink_tests : int;
}

type campaign = {
  runs : int;
  requested : int;
  degraded : bool;
  violations : int;
  total_events : int;
  total_completed : int;
  first : found option;
}

let campaign ?deadline ?(jobs = 1) ~seed ~runs config =
  (* Construction-time validation: hard errors raise here rather than
     letting an unsatisfiable quorum silently run; soft problems (more
     crashes than t) clamp with a warning — printed once per campaign,
     not per run, so ddmin's replay storm stays quiet. *)
  let config =
    match validate config with
    | Error e -> invalid_arg (Printf.sprintf "Chaos.campaign: %s" e)
    | Ok (config, warnings) ->
        List.iter
          (fun w -> Printf.eprintf "chaos: warning: %s\n%!" w)
          warnings;
        config
  in
  (* The campaign span carries the resolved seed: a violation reported
     from a trace is replayable without the console output. *)
  Obs.Span.begin_ ~cat:"chaos"
    ~args:
      ([
         ("seed", Obs.Json.Int seed);
         ("runs", Obs.Json.Int runs);
         ("n", Obs.Json.Int config.n);
         ("t", Obs.Json.Int config.t);
         ( "quorum",
           Obs.Json.Int
             (Option.value config.quorum ~default:(config.n - config.t)) );
       ]
      @
      match config.membership with
      | None -> []
      | Some d ->
          [
            ("seed_members", Obs.Json.Int d.seed_members);
            ("churn_rate", Obs.Json.Int d.churn_rate);
            ("churn_window", Obs.Json.Int d.churn_window);
            ("churn_slack", Obs.Json.Int d.churn_slack);
            ( "width_bits",
              match d.width_bits with
              | Some b -> Obs.Json.Int b
              | None -> Obs.Json.Null );
          ])
    "chaos.campaign";
  let monitor =
    Sched.Budget.arm (Sched.Budget.make ?deadline ())
  in
  let over_deadline () =
    match deadline with
    | None -> false
    | Some d -> Sched.Budget.elapsed monitor >= d
  in
  let acc =
    ref
      {
        runs = 0;
        requested = runs;
        degraded = false;
        violations = 0;
        total_events = 0;
        total_completed = 0;
        first = None;
      }
  in
  (* Fold one run's outcome into the campaign, on the main domain: the
     per-run metrics, trace instant and (for the first violation) the
     inline shrink happen here in seed order, so a parallel campaign
     replays exactly the sequential tally — byte-identical verdicts,
     counts and traces for a fixed seed. *)
  let tally s o =
    Obs.Metrics.inc m_runs;
    if failed o then Obs.Metrics.inc m_violations;
    (* Each run's instant carries its resolved RNG point (state after the
       crash-pattern prefix, plus the crash schedule itself): a single
       mid-campaign run replays from the trace via [run_at], without
       re-rolling the campaign prefix. *)
    Obs.Span.instant ~cat:"chaos"
      ~args:
        ([
           ("seed", Obs.Json.Int s);
           ( "verdict",
             Obs.Json.Str
               (if failed o then "nonlinearizable" else "linearizable") );
           ("events", Obs.Json.Int o.events);
           ("completed", Obs.Json.Int o.completed);
         ]
        @
        match o.rng_point with
        | None -> []
        | Some p ->
            let pid_at entries =
              Obs.Json.List
                (List.map
                   (fun (pid, at) ->
                     Obs.Json.List [ Obs.Json.Int pid; Obs.Json.Int at ])
                   entries)
            in
            [
              ("rng_state", Obs.Json.Str (Int64.to_string p.rng_state));
              ("crash_at", pid_at p.crash_at);
            ]
            @
            if p.churn = Membership.no_churn then []
            else
              [
                ("enter_at", pid_at p.churn.Membership.enter_at);
                ("leave_at", pid_at p.churn.Membership.leave_at);
              ])
      "chaos.run";
    let c = !acc in
    let first =
      match (c.first, failed o) with
      | None, true ->
          let shrunk, shrink_tests = shrink config (Faults.decompile o.plan) in
          let found =
            {
              seed = s;
              original = o;
              shrunk;
              shrunk_outcome = run_plan config shrunk;
              shrink_tests;
            }
          in
          (* First NONLINEARIZABLE verdict: dump the flight recorder.
             The rings now hold the failing run's chaos.run instant
             (rng point, crash/churn schedule) and the shrink replays —
             enough to reproduce without having traced. Best-effort and
             silent: campaigns run inside tests too. *)
          ignore (Obs.Recorder.dump ~reason:"nonlinearizable" () : string option);
          Some found
      | first, _ -> first
    in
    acc :=
      {
        c with
        runs = c.runs + 1;
        violations = (c.violations + if failed o then 1 else 0);
        total_events = c.total_events + o.events;
        total_completed = c.total_completed + o.completed;
        first;
      }
  in
  (try
     if jobs <= 1 then
       for s = seed to seed + runs - 1 do
         (* The deadline is checked between runs: an individual run is
            bounded by [config.max_events], so the overshoot is one run. *)
         if over_deadline () then begin
           acc := { !acc with degraded = true };
           raise Exit
         end;
         tally s (run_random ~seed:s config)
       done
     else begin
       (* Seeded runs are mutually independent — each builds its own
          fleet, network and rng — so the campaign loop fans out as-is.
          Workers skip (rather than start) runs past the deadline; the
          fold below consumes outcomes in seed order and stops at the
          first skipped one, mirroring the sequential contiguous-prefix
          semantics, so only a deadline can make jobs counts differ. *)
       let seeds = Array.init runs (fun i -> seed + i) in
       let results =
         Sched.Par.run_units_ev ~jobs ~units:seeds (fun s ->
             if over_deadline () then None
             else Some (run_random ~seed:s config))
       in
       (* Replay each unit's captured events immediately before its
          tally — run events then run instant, run events then run
          instant — exactly the interleaving the sequential loop
          emits, so a traced campaign is byte-identical at any [jobs].
          Events of runs past the first deadline skip are dropped; the
          sequential loop never ran those runs at all. *)
       Array.iteri
         (fun i (r, events) ->
           match r with
           | None ->
               acc := { !acc with degraded = true };
               raise Exit
           | Some o ->
               Obs.Span.replay events;
               tally seeds.(i) o)
         results
     end
   with Exit -> ());
  let c = !acc in
  Obs.Span.end_ ~cat:"chaos"
    ~args:
      [
        ("runs", Obs.Json.Int c.runs);
        ("violations", Obs.Json.Int c.violations);
        ("degraded", Obs.Json.Bool c.degraded);
        ( "first_violation_seed",
          match c.first with
          | Some f -> Obs.Json.Int f.seed
          | None -> Obs.Json.Null );
      ]
    "chaos.campaign";
  c

type verdict =
  | Verified_sampled of { runs : int; requested : int }
  | Violation of found

let verdict c =
  match c.first with
  | Some f -> Violation f
  | None -> Verified_sampled { runs = c.runs; requested = c.requested }

let verdict_ok = function
  | Verified_sampled _ -> true
  | Violation _ -> false

let pp_verdict ppf = function
  | Verified_sampled { runs; requested } ->
      if runs = requested then
        Format.fprintf ppf "verified (sampled): %d/%d runs linearizable" runs
          requested
      else
        Format.fprintf ppf
          "verified (sampled, DEGRADED by deadline): %d/%d runs linearizable"
          runs requested
  | Violation f ->
      Format.fprintf ppf "violation at seed %d: %a" f.seed
        (L.pp_verdict Format.pp_print_int)
        f.shrunk_outcome.verdict

let pp_campaign ppf c =
  Format.fprintf ppf
    "%d runs, %d violation(s), %d fault events, %d completed ops" c.runs
    c.violations c.total_events c.total_completed;
  if c.degraded then
    Format.fprintf ppf " (deadline: stopped %d run(s) short)"
      (c.requested - c.runs);
  match c.first with
  | None -> ()
  | Some f ->
      Format.fprintf ppf
        "@ first at seed %d: plan %d events -> shrunk %d (%d deliveries, %d \
         replays); replayed verdict: %a"
        f.seed
        (Faults.compiled_length f.original.plan)
        (List.length f.shrunk)
        (Faults.deliveries f.shrunk)
        f.shrink_tests
        (L.pp_verdict Format.pp_print_int)
        f.shrunk_outcome.verdict
