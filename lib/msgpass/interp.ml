module C = Sched.Program.Compiled

type ('v, 'i) cell = Coord of 'v | Input of 'i option

(* The interpreter executes the step-compiled form of the protocol
   ({!Sched.Program.Compiled}): the suspended program between ABD
   operations is an int program counter, so advancing through a
   completion is opcode dispatch + an array read, not a free-monad
   constructor match. Each interpreter compiles its own code in
   [create] (chaos campaigns build runs on worker domains, and compiled
   code must not cross domains). *)
type ('v, 'i, 'a) t = {
  n : int;
  me : int;
  abd : ('v, 'i) cell Abd.t;
  code : ('v, 'i, 'a) C.code;
  mutable pc : int;
  mutable decided : 'a option;
  mutable steps : int;
}

(* Begin the ABD operation for the program's next shared-memory step;
   returns its broadcast ([] when the program just decided). *)
let rec launch t =
  let op = C.op t.code t.pc in
  if op = C.op_return then begin
    t.decided <- Some (C.decision t.code t.pc);
    []
  end
  else if op = C.op_output then begin
    if t.decided = None then t.decided <- Some (C.decision t.code t.pc);
    t.pc <- C.next_unit t.code t.pc;
    launch t
  end
  else if op = C.op_write then
    Abd.begin_write t.abd ~reg:t.me (Coord (C.write_value t.code t.pc))
  else if op = C.op_read then Abd.begin_read t.abd ~reg:(C.reg t.code t.pc)
  else if op = C.op_write_input then
    Abd.begin_write t.abd ~reg:(t.n + t.me)
      (Input (Some (C.input_value t.code t.pc)))
  else (* op_read_input *)
    Abd.begin_read t.abd ~reg:(t.n + C.reg t.code t.pc)

let create ~n ~t ~me ~init ~program =
  let init_cell reg = if reg < n then Coord init else Input None in
  let interp =
    {
      n;
      me;
      abd = Abd.create ~n ~t ~me ~registers:(2 * n) ~init:init_cell ();
      code = Sched.Program.compile program;
      pc = C.root;
      decided = None;
      steps = 0;
    }
  in
  (interp, launch interp)

let advance t completion =
  let continue pc =
    t.steps <- t.steps + 1;
    t.pc <- pc;
    launch t
  in
  let op = C.op t.code t.pc in
  match completion with
  | Abd.Wrote when op = C.op_write || op = C.op_write_input ->
      continue (C.next_unit t.code t.pc)
  | Abd.Read_value (Coord v) when op = C.op_read ->
      continue (C.next_read t.code t.pc v)
  | Abd.Read_value (Input x) when op = C.op_read_input ->
      continue (C.next_read_input t.code t.pc x)
  | Abd.Wrote | Abd.Read_value _ ->
      assert false (* completions match the op that launched them *)

(* A decided process keeps serving quorum requests — stopping would count
   against the crash budget of everyone else's liveness. *)
let handle t ~from msg =
  let sends = Abd.handle t.abd ~from msg in
  match Abd.take_completion t.abd with
  | None -> sends
  | Some completion -> sends @ advance t completion

let decision t = t.decided
let steps t = t.steps

let node (t, initial) =
  let first = ref (Some initial) in
  {
    Net.on_start =
      (fun () ->
        match !first with
        | Some sends ->
            first := None;
            sends
        | None -> []);
    on_message = (fun ~from msg -> handle t ~from msg);
    on_leave = (fun () -> []);
  }
