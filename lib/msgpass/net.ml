type 'm node = {
  on_start : unit -> (int * 'm) list;
  on_message : from:int -> 'm -> (int * 'm) list;
}

type 'm t = {
  size : int;
  nodes : 'm node array;
  channels : 'm Queue.t array array;  (** [channels.(src).(dst)] *)
  alive : bool array;
  mutable delivered : int;
}

let enqueue t ~src sends =
  if t.alive.(src) then
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= t.size then
          invalid_arg "Net: destination out of range";
        Queue.add m t.channels.(src).(dst))
      sends

let create ~n ~nodes =
  let t =
    {
      size = n;
      nodes = Array.init n nodes;
      channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      alive = Array.make n true;
      delivered = 0;
    }
  in
  for pid = 0 to n - 1 do
    enqueue t ~src:pid (t.nodes.(pid).on_start ())
  done;
  t

let n t = t.size

let deliverable t =
  let acc = ref [] in
  for src = t.size - 1 downto 0 do
    for dst = t.size - 1 downto 0 do
      if t.alive.(dst) && not (Queue.is_empty t.channels.(src).(dst)) then
        acc := (src, dst) :: !acc
    done
  done;
  !acc

let check_channel t ~src ~dst =
  if src < 0 || src >= t.size || dst < 0 || dst >= t.size then
    invalid_arg "Net: channel out of range"

let pending t ~src ~dst =
  check_channel t ~src ~dst;
  Queue.length t.channels.(src).(dst)

let deliver t ~src ~dst =
  check_channel t ~src ~dst;
  if (not t.alive.(dst)) || Queue.is_empty t.channels.(src).(dst) then false
  else begin
    let m = Queue.pop t.channels.(src).(dst) in
    t.delivered <- t.delivered + 1;
    enqueue t ~src:dst (t.nodes.(dst).on_message ~from:src m);
    true
  end

let deliver_random rng t =
  match deliverable t with
  | [] -> false
  | channels ->
      let src, dst = Bits.Rng.pick rng channels in
      deliver t ~src ~dst

let drop t ~src ~dst =
  check_channel t ~src ~dst;
  if Queue.is_empty t.channels.(src).(dst) then false
  else begin
    ignore (Queue.pop t.channels.(src).(dst));
    true
  end

let duplicate t ~src ~dst =
  check_channel t ~src ~dst;
  match Queue.peek_opt t.channels.(src).(dst) with
  | None -> false
  | Some m ->
      Queue.add m t.channels.(src).(dst);
      true

let defer t ~src ~dst =
  check_channel t ~src ~dst;
  let q = t.channels.(src).(dst) in
  if Queue.length q < 2 then false
  else begin
    Queue.add (Queue.pop q) q;
    true
  end

let crash t pid = t.alive.(pid) <- false
let alive t pid = t.alive.(pid)

let crashed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> not t.alive.(i))

let quiescent t = deliverable t = []
let deliveries t = t.delivered

let run_random ~rng ?(max_events = 1_000_000) ?(until = fun () -> false) t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && deliver_random rng t then
      loop (budget - 1)
  in
  loop max_events
