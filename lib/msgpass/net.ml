let m_deliveries = Obs.Metrics.counter "net.deliveries"
let m_drops = Obs.Metrics.counter "net.drops"
let m_duplicates = Obs.Metrics.counter "net.duplicates"
let m_defers = Obs.Metrics.counter "net.defers"
let m_crashes = Obs.Metrics.counter "net.crashes"
let m_enters = Obs.Metrics.counter "net.enters"
let m_leaves = Obs.Metrics.counter "net.leaves"
let m_sends = Obs.Metrics.counter "net.sends"

(* Delivery latency in logical hops: the number of network deliveries
   that happened between a message's enqueue and its own delivery. The
   network has no wall clock — deliveries are its only notion of time —
   so this is the message-passing analogue of the scheduler's logical
   step clock, and it is replay-stable. *)
let hop_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let h_hop_latency = Obs.Metrics.histogram ~bounds:hop_bounds "net.hop_latency"

(* Index of the hop-latency bucket [hops] lands in (last = overflow) —
   the same bucketing the registry histogram applies, computed locally so
   each network can report which buckets its own deliveries occupied. *)
let hop_bucket hops =
  let rec go i =
    if i >= Array.length hop_bounds || hops <= hop_bounds.(i) then i
    else go (i + 1)
  in
  go 0

type 'm node = {
  on_start : unit -> (int * 'm) list;
  on_message : from:int -> 'm -> (int * 'm) list;
  on_leave : unit -> (int * 'm) list;
}

type 'm push = {
  p_start : unit -> unit;
  p_message : from:int -> 'm -> unit;
  p_leave : unit -> unit;
}

(* The arena layout. Channel [src -> dst] is the flat index
   [src * n + dst] into four parallel arrays: a ring of enqueue stamps
   (preallocated ints), a ring of payloads (created lazily on the
   channel's first send, because ['m] has no manufactured default:
   the first message itself becomes the fill value, and stale slots
   past [len] are simply never read), and the ring's head index and
   length. Rings grow by doubling — capacities stay powers of two so
   wraparound is a mask — and once grown stay grown, which is what the
   chaos pool banks on: after the first run of a pooled fleet the
   send/deliver path allocates nothing.

   Membership is three flat bitsets ([n <= 61] so a set is one
   immediate int): [alive] (not crashed), [present] (entered, not yet
   departed), [left] (departed gracefully). The per-event deliverable
   scan is a walk over [q_len] against [alive land present] — no list
   is ever built; [deliverable_into] writes channel codes into the
   preallocated [scratch] buffer in lexicographic order, exactly the
   order the old persistent implementation enumerated. *)
type 'm t = {
  size : int;
  pushes : 'm push array;
  q_stamp : int array array;  (** per channel: ring of enqueue stamps *)
  q_msg : 'm array array;  (** per channel: ring of payloads; [] until first send *)
  q_head : int array;
  q_len : int array;
  mutable alive : int;  (** bitset: not crashed *)
  mutable present : int;  (** bitset: entered and not departed *)
  mutable left : int;  (** bitset: departed gracefully *)
  mutable delivered : int;
  mutable hop_mask : int;  (** bit [b] set: some delivery hit bucket [b] *)
  scratch : int array;  (** [deliverable_into] buffer, length n*n *)
}

let initial_cap = 8
let bit pid = 1 lsl pid
let has m pid = m land (1 lsl pid) <> 0

let grow t ch =
  let old_s = t.q_stamp.(ch) in
  let cap = Array.length old_s in
  let head = t.q_head.(ch) and len = t.q_len.(ch) in
  let ns = Array.make (2 * cap) 0 in
  for i = 0 to len - 1 do
    ns.(i) <- old_s.((head + i) land (cap - 1))
  done;
  t.q_stamp.(ch) <- ns;
  let old_m = t.q_msg.(ch) in
  if Array.length old_m > 0 then begin
    let nm = Array.make (2 * cap) old_m.(0) in
    for i = 0 to len - 1 do
      nm.(i) <- old_m.((head + i) land (cap - 1))
    done;
    t.q_msg.(ch) <- nm
  end;
  t.q_head.(ch) <- 0

let ring_push t ch stamp m =
  if t.q_len.(ch) = Array.length t.q_stamp.(ch) then grow t ch;
  let cap = Array.length t.q_stamp.(ch) in
  if Array.length t.q_msg.(ch) = 0 then t.q_msg.(ch) <- Array.make cap m;
  let tail = (t.q_head.(ch) + t.q_len.(ch)) land (cap - 1) in
  t.q_stamp.(ch).(tail) <- stamp;
  t.q_msg.(ch).(tail) <- m;
  t.q_len.(ch) <- t.q_len.(ch) + 1

(* A node's own sends, while it is alive and present. Mirrors the old
   [enqueue]: messages from a crashed or absent source vanish silently,
   out-of-range destinations raise. *)
let do_send t src dst m =
  if has t.alive src && has t.present src then begin
    if dst < 0 || dst >= t.size then invalid_arg "Net: destination out of range";
    if !Obs.Metrics.hot then Obs.Metrics.inc m_sends;
    ring_push t ((src * t.size) + dst) t.delivered m
  end

let create_push ?(present = fun _ -> true) ~n ~nodes () =
  if n <= 0 then invalid_arg "Net: n must be positive";
  if n > 61 then invalid_arg "Net: at most 61 slots (membership bitsets)";
  let dummy =
    { p_start = ignore; p_message = (fun ~from:_ _ -> ()); p_leave = ignore }
  in
  let present_mask = ref 0 in
  for pid = 0 to n - 1 do
    if present pid then present_mask := !present_mask lor bit pid
  done;
  let t =
    {
      size = n;
      pushes = Array.make n dummy;
      q_stamp = Array.init (n * n) (fun _ -> Array.make initial_cap 0);
      q_msg = Array.make (n * n) [||];
      q_head = Array.make (n * n) 0;
      q_len = Array.make (n * n) 0;
      alive = (1 lsl n) - 1;
      present = !present_mask;
      left = 0;
      delivered = 0;
      hop_mask = 0;
      scratch = Array.make (n * n) 0;
    }
  in
  for pid = 0 to n - 1 do
    t.pushes.(pid) <- nodes ~send:(fun ~dst m -> do_send t pid dst m) pid
  done;
  for pid = 0 to n - 1 do
    if has t.present pid then t.pushes.(pid).p_start ()
  done;
  t

let create ?present ~n ~nodes () =
  create_push ?present ~n
    ~nodes:(fun ~send me ->
      let node = nodes me in
      let out sends = List.iter (fun (dst, m) -> send ~dst m) sends in
      {
        p_start = (fun () -> out (node.on_start ()));
        p_message = (fun ~from m -> out (node.on_message ~from m));
        p_leave = (fun () -> out (node.on_leave ()));
      })
    ()

let reset ?(present = fun _ -> true) t =
  let n = t.size in
  Array.fill t.q_head 0 (n * n) 0;
  Array.fill t.q_len 0 (n * n) 0;
  t.alive <- (1 lsl n) - 1;
  t.left <- 0;
  t.delivered <- 0;
  t.hop_mask <- 0;
  let present_mask = ref 0 in
  for pid = 0 to n - 1 do
    if present pid then present_mask := !present_mask lor bit pid
  done;
  t.present <- !present_mask;
  for pid = 0 to n - 1 do
    if has t.present pid then t.pushes.(pid).p_start ()
  done

let n t = t.size

let deliverable_into t buf =
  let n = t.size in
  let live = t.alive land t.present in
  let k = ref 0 in
  for src = 0 to n - 1 do
    let row = src * n in
    for dst = 0 to n - 1 do
      if t.q_len.(row + dst) > 0 && has live dst then begin
        buf.(!k) <- row + dst;
        incr k
      end
    done
  done;
  !k

let deliverable t =
  let k = deliverable_into t t.scratch in
  List.init k (fun i ->
      let ch = t.scratch.(i) in
      (ch / t.size, ch mod t.size))

let check_channel t ~src ~dst =
  if src < 0 || src >= t.size || dst < 0 || dst >= t.size then
    invalid_arg "Net: channel out of range"

let pending t ~src ~dst =
  check_channel t ~src ~dst;
  t.q_len.((src * t.size) + dst)

(* Fault instants land on the destination's track; the source rides as
   an argument, mirroring [deliver]. *)
let channel_args ~src = [ ("src", Obs.Json.Int src) ]

let deliver t ~src ~dst =
  check_channel t ~src ~dst;
  let ch = (src * t.size) + dst in
  if (not (has t.alive dst)) || (not (has t.present dst)) || t.q_len.(ch) = 0
  then false
  else begin
    let head = t.q_head.(ch) in
    let cap = Array.length t.q_stamp.(ch) in
    let stamp = t.q_stamp.(ch).(head) in
    let m = t.q_msg.(ch).(head) in
    t.q_head.(ch) <- (head + 1) land (cap - 1);
    t.q_len.(ch) <- t.q_len.(ch) - 1;
    let hops = t.delivered - stamp in
    t.delivered <- t.delivered + 1;
    t.hop_mask <- t.hop_mask lor (1 lsl hop_bucket hops);
    if !Obs.Metrics.hot then begin
      Obs.Metrics.inc m_deliveries;
      Obs.Metrics.observe h_hop_latency hops
    end;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst
        ~args:[ ("src", Obs.Json.Int src); ("hops", Obs.Json.Int hops) ]
        "deliver";
    t.pushes.(dst).p_message ~from:src m;
    true
  end

let deliver_random rng t =
  let k = deliverable_into t t.scratch in
  if k = 0 then false
  else begin
    let ch = t.scratch.(Bits.Rng.int rng k) in
    deliver t ~src:(ch / t.size) ~dst:(ch mod t.size)
  end

let drop t ~src ~dst =
  check_channel t ~src ~dst;
  let ch = (src * t.size) + dst in
  if t.q_len.(ch) = 0 then false
  else begin
    let cap = Array.length t.q_stamp.(ch) in
    t.q_head.(ch) <- (t.q_head.(ch) + 1) land (cap - 1);
    t.q_len.(ch) <- t.q_len.(ch) - 1;
    if !Obs.Metrics.hot then Obs.Metrics.inc m_drops;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src) "drop";
    true
  end

let duplicate t ~src ~dst =
  check_channel t ~src ~dst;
  let ch = (src * t.size) + dst in
  if t.q_len.(ch) = 0 then false
  else begin
    (* The copy keeps the original's stamp: its eventual delivery
       reports the age of the data, not of the duplication. *)
    let head = t.q_head.(ch) in
    ring_push t ch t.q_stamp.(ch).(head) t.q_msg.(ch).(head);
    if !Obs.Metrics.hot then Obs.Metrics.inc m_duplicates;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src)
        "duplicate";
    true
  end

let defer t ~src ~dst =
  check_channel t ~src ~dst;
  let ch = (src * t.size) + dst in
  if t.q_len.(ch) < 2 then false
  else begin
    let head = t.q_head.(ch) in
    let cap = Array.length t.q_stamp.(ch) in
    let stamp = t.q_stamp.(ch).(head) in
    let m = t.q_msg.(ch).(head) in
    t.q_head.(ch) <- (head + 1) land (cap - 1);
    t.q_len.(ch) <- t.q_len.(ch) - 1;
    ring_push t ch stamp m;
    if !Obs.Metrics.hot then Obs.Metrics.inc m_defers;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src) "defer";
    true
  end

let crash t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  if has t.alive pid then begin
    if !Obs.Metrics.hot then Obs.Metrics.inc m_crashes;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:pid "node-crash"
  end;
  t.alive <- t.alive land lnot (bit pid)

let alive t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  has t.alive pid

let crashed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> not (has t.alive i))

(* {2 Dynamic membership}

   [enter] brings a never-before-present slot into the computation: its
   [on_start] runs now (a join protocol's opening broadcast, typically).
   [leave] is the graceful counterpart of [crash]: the node's [on_leave]
   farewell is enqueued while the process is still allowed to send, then
   the slot stops delivering. Both are idempotent no-ops ([false]) when
   ineffective, so fault replay can skip them freely. A departed slot
   never re-enters — fresh arrivals are fresh slots, as in the
   dynamic-membership model (ACEKW).

   The enter/leave counters tick unconditionally (not behind
   [Metrics.hot]): the fleet's health instants report churn activity as
   campaign-relative deltas of these counters, and they fire a handful
   of times per run, not per delivery. *)

let enter t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  if has t.present pid || has t.left pid || not (has t.alive pid) then false
  else begin
    t.present <- t.present lor bit pid;
    Obs.Metrics.inc m_enters;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"membership" ~track:pid "node-enter";
    t.pushes.(pid).p_start ();
    true
  end

let leave t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  if (not (has t.present pid)) || not (has t.alive pid) then false
  else begin
    (* Farewell first: the process may still send while departing. *)
    t.pushes.(pid).p_leave ();
    t.present <- t.present land lnot (bit pid);
    t.left <- t.left lor bit pid;
    Obs.Metrics.inc m_leaves;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"membership" ~track:pid "node-leave";
    true
  end

let is_present t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  has t.present pid

let departed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> has t.left i)

let quiescent t = deliverable_into t t.scratch = 0
let deliveries t = t.delivered
let hop_mask t = t.hop_mask

let run_random ~rng ?(max_events = 1_000_000) ?(until = fun () -> false) t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && deliver_random rng t then
      loop (budget - 1)
  in
  loop max_events
