let m_deliveries = Obs.Metrics.counter "net.deliveries"
let m_drops = Obs.Metrics.counter "net.drops"
let m_duplicates = Obs.Metrics.counter "net.duplicates"
let m_defers = Obs.Metrics.counter "net.defers"
let m_crashes = Obs.Metrics.counter "net.crashes"
let m_enters = Obs.Metrics.counter "net.enters"
let m_leaves = Obs.Metrics.counter "net.leaves"
let m_sends = Obs.Metrics.counter "net.sends"

(* Delivery latency in logical hops: the number of network deliveries
   that happened between a message's enqueue and its own delivery. The
   network has no wall clock — deliveries are its only notion of time —
   so this is the message-passing analogue of the scheduler's logical
   step clock, and it is replay-stable. *)
let hop_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]
let h_hop_latency = Obs.Metrics.histogram ~bounds:hop_bounds "net.hop_latency"

(* Index of the hop-latency bucket [hops] lands in (last = overflow) —
   the same bucketing the registry histogram applies, computed locally so
   each network can report which buckets its own deliveries occupied. *)
let hop_bucket hops =
  let rec go i =
    if i >= Array.length hop_bounds || hops <= hop_bounds.(i) then i
    else go (i + 1)
  in
  go 0

type 'm node = {
  on_start : unit -> (int * 'm) list;
  on_message : from:int -> 'm -> (int * 'm) list;
  on_leave : unit -> (int * 'm) list;
}

(* Each queued message carries the delivery-clock stamp of its enqueue.
   Membership is three booleans per slot: [present] (entered and not yet
   departed), [left] (departed gracefully — unlike a crash, a leave runs
   the node's [on_leave] farewell first), and [alive] (not crashed). A
   slot that never entered is simply not yet present; its [on_start]
   runs at entry instead of at creation. *)
type 'm t = {
  size : int;
  nodes : 'm node array;
  channels : (int * 'm) Queue.t array array;  (** [channels.(src).(dst)] *)
  alive : bool array;
  present : bool array;
  left : bool array;
  mutable delivered : int;
  mutable hop_mask : int;  (** bit [b] set: some delivery hit bucket [b] *)
}

let enqueue t ~src sends =
  if t.alive.(src) && t.present.(src) then
    List.iter
      (fun (dst, m) ->
        if dst < 0 || dst >= t.size then
          invalid_arg "Net: destination out of range";
        Obs.Metrics.inc m_sends;
        Queue.add (t.delivered, m) t.channels.(src).(dst))
      sends

let create ?(present = fun _ -> true) ~n ~nodes () =
  let t =
    {
      size = n;
      nodes = Array.init n nodes;
      channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      alive = Array.make n true;
      present = Array.init n present;
      left = Array.make n false;
      delivered = 0;
      hop_mask = 0;
    }
  in
  for pid = 0 to n - 1 do
    if t.present.(pid) then enqueue t ~src:pid (t.nodes.(pid).on_start ())
  done;
  t

let n t = t.size

let deliverable t =
  let acc = ref [] in
  for src = t.size - 1 downto 0 do
    for dst = t.size - 1 downto 0 do
      if
        t.alive.(dst) && t.present.(dst)
        && not (Queue.is_empty t.channels.(src).(dst))
      then acc := (src, dst) :: !acc
    done
  done;
  !acc

let check_channel t ~src ~dst =
  if src < 0 || src >= t.size || dst < 0 || dst >= t.size then
    invalid_arg "Net: channel out of range"

let pending t ~src ~dst =
  check_channel t ~src ~dst;
  Queue.length t.channels.(src).(dst)

(* Fault instants land on the destination's track; the source rides as
   an argument, mirroring [deliver]. *)
let channel_args ~src = [ ("src", Obs.Json.Int src) ]

let deliver t ~src ~dst =
  check_channel t ~src ~dst;
  if
    (not t.alive.(dst)) || (not t.present.(dst))
    || Queue.is_empty t.channels.(src).(dst)
  then false
  else begin
    let stamp, m = Queue.pop t.channels.(src).(dst) in
    let hops = t.delivered - stamp in
    t.delivered <- t.delivered + 1;
    t.hop_mask <- t.hop_mask lor (1 lsl hop_bucket hops);
    Obs.Metrics.inc m_deliveries;
    Obs.Metrics.observe h_hop_latency hops;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst
        ~args:[ ("src", Obs.Json.Int src); ("hops", Obs.Json.Int hops) ]
        "deliver";
    enqueue t ~src:dst (t.nodes.(dst).on_message ~from:src m);
    true
  end

let deliver_random rng t =
  match deliverable t with
  | [] -> false
  | channels ->
      let src, dst = Bits.Rng.pick rng channels in
      deliver t ~src ~dst

let drop t ~src ~dst =
  check_channel t ~src ~dst;
  if Queue.is_empty t.channels.(src).(dst) then false
  else begin
    ignore (Queue.pop t.channels.(src).(dst));
    Obs.Metrics.inc m_drops;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src)
        "drop";
    true
  end

let duplicate t ~src ~dst =
  check_channel t ~src ~dst;
  match Queue.peek_opt t.channels.(src).(dst) with
  | None -> false
  | Some stamped ->
      (* The copy keeps the original's stamp: its eventual delivery
         reports the age of the data, not of the duplication. *)
      Queue.add stamped t.channels.(src).(dst);
      Obs.Metrics.inc m_duplicates;
      if Obs.Sink.enabled () then
        Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src)
          "duplicate";
      true

let defer t ~src ~dst =
  check_channel t ~src ~dst;
  let q = t.channels.(src).(dst) in
  if Queue.length q < 2 then false
  else begin
    Queue.add (Queue.pop q) q;
    Obs.Metrics.inc m_defers;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:dst ~args:(channel_args ~src)
        "defer";
    true
  end

let crash t pid =
  if t.alive.(pid) then begin
    Obs.Metrics.inc m_crashes;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"net" ~track:pid "node-crash"
  end;
  t.alive.(pid) <- false

let alive t pid = t.alive.(pid)

let crashed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> not t.alive.(i))

(* {2 Dynamic membership}

   [enter] brings a never-before-present slot into the computation: its
   [on_start] runs now (a join protocol's opening broadcast, typically).
   [leave] is the graceful counterpart of [crash]: the node's [on_leave]
   farewell is enqueued while the process is still allowed to send, then
   the slot stops delivering. Both are idempotent no-ops ([false]) when
   ineffective, so fault replay can skip them freely. A departed slot
   never re-enters — fresh arrivals are fresh slots, as in the
   dynamic-membership model (ACEKW). *)

let enter t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  if t.present.(pid) || t.left.(pid) || not t.alive.(pid) then false
  else begin
    t.present.(pid) <- true;
    Obs.Metrics.inc m_enters;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"membership" ~track:pid "node-enter";
    enqueue t ~src:pid (t.nodes.(pid).on_start ());
    true
  end

let leave t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  if (not t.present.(pid)) || not t.alive.(pid) then false
  else begin
    (* Farewell first: the process may still send while departing. *)
    enqueue t ~src:pid (t.nodes.(pid).on_leave ());
    t.present.(pid) <- false;
    t.left.(pid) <- true;
    Obs.Metrics.inc m_leaves;
    if Obs.Sink.enabled () then
      Obs.Span.instant ~cat:"membership" ~track:pid "node-leave";
    true
  end

let is_present t pid =
  if pid < 0 || pid >= t.size then invalid_arg "Net: pid out of range";
  t.present.(pid)

let departed t =
  List.init t.size (fun i -> i) |> List.filter (fun i -> t.left.(i))

let quiescent t = deliverable t = []
let deliveries t = t.delivered
let hop_mask t = t.hop_mask

let run_random ~rng ?(max_events = 1_000_000) ?(until = fun () -> false) t =
  let rec loop budget =
    if budget > 0 && (not (until ())) && deliver_random rng t then
      loop (budget - 1)
  in
  loop max_events
