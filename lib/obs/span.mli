(** Structured spans and instant events on a {e logical} clock.

    Timestamps are sequence numbers ticked per emitted event. A replayed
    execution (same init, same schedule, same seed) emits the same event
    sequence, so its trace is byte-identical — the property the trace
    determinism tests pin down. Wall time is opt-in and travels as a
    [wall_s] argument, never as the timestamp.

    Every emission helper is a no-op (and does not tick the clock) while
    {!Sink.enabled} is [false]. *)

val now : unit -> int
(** Tick and read the logical clock. *)

val reset : unit -> unit
(** Rewind the clock to 0 — the start of a fresh capture. *)

val set_wall_clock : (unit -> float) option -> unit
(** Install (or remove, with [None]) a wall-time source; when set, every
    emitted event carries a [wall_s] argument. Off by default — wall time
    breaks byte-level determinism. *)

val instant :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val begin_ :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val end_ :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val span :
  ?cat:string ->
  ?track:int ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] brackets [f ()] in a [Begin]/[End] pair; an escaping
    exception still closes the span (with an [exn] argument) before
    re-raising. *)
