(** Structured spans and instant events on a {e logical} clock.

    Timestamps are sequence numbers ticked per constructed event. A
    replayed execution (same init, same schedule, same seed) constructs
    the same event sequence, so its trace is byte-identical — the
    property the trace determinism tests pin down. Wall time is opt-in
    and travels as a [wall_s] argument, never as the timestamp.

    The clock is per-domain. Parallel workers capturing events (see
    {!Sink.captured}) stamp them on private clocks; {!replay} re-stamps
    on the drain domain's clock, so a published trace is one monotone
    main-domain stream.

    Emission helpers construct an event when the calling domain is
    traced ({!Sink.enabled}) {e or} the flight {!Recorder} is armed (the
    default) — so the clock ticks exactly when an event is constructed.
    With the recorder disarmed and tracing off, a helper call is a no-op
    and does not tick the clock. *)

val now : unit -> int
(** Tick and read the calling domain's logical clock. *)

val reset : unit -> unit
(** Rewind the calling domain's clock to 0 — the start of a fresh
    capture. *)

val set_wall_clock : (unit -> float) option -> unit
(** Install (or remove, with [None]) a wall-time source; when set, every
    emitted event carries a [wall_s] argument. Off by default — wall time
    breaks byte-level determinism. *)

val wall_enabled : unit -> bool
(** Whether a wall-time source is installed. Samplers use this to gate
    rate/ETA fields, which are only meaningful (and only deterministic
    to omit) when the user opted into wall time. *)

val instant :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val begin_ :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val end_ :
  ?cat:string -> ?track:int -> ?args:(string * Json.t) list -> string -> unit

val span :
  ?cat:string ->
  ?track:int ->
  ?args:(string * Json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] brackets [f ()] in a [Begin]/[End] pair; an escaping
    exception still closes the span (with an [exn] argument) before
    re-raising. *)

val scratched : (unit -> 'a) -> 'a
(** Run [f] on a fresh clock, restoring the caller's count afterwards.
    Pool drivers wrap main-domain execution of captured units in this so
    scratch constructions never advance the clock that {!replay} stamps
    with — otherwise the published stamps would depend on which domain
    happened to execute which unit. *)

val replay : Sink.event list -> unit
(** Re-emit captured events into the calling domain's live trace,
    re-stamping each on this domain's clock (capture-time stamps are
    scratch). Emits to the sink only — never back into the recorder, the
    originating domain's ring already holds them. No-op when
    {!Sink.enabled} is [false]. *)
