(* The logical clock and the span/instant emission helpers. Timestamps are
   sequence numbers ticked per constructed event, not wall time: a replayed
   schedule (same init, same choices, same seed) constructs the same events
   in the same order and therefore the same stamps — traces are
   deterministic and diffable. Wall time, when a caller wants it, rides
   along as an event argument instead of replacing the clock.

   The clock is per-domain: parallel workers stamp their captured events
   on private clocks (scratch stamps — {!replay} re-stamps on the main
   clock when draining), so no cross-domain ordering ever leaks into a
   trace. Every constructed event also feeds the flight {!Recorder}
   unless it is disarmed, which is why construction is gated on
   [traced || armed] rather than on tracing alone. *)

let clock_key = Domain.DLS.new_key (fun () -> ref 0)
let wall_clock : (unit -> float) option ref = ref None

let reset () = Domain.DLS.get clock_key := 0
let set_wall_clock c = wall_clock := c
let wall_enabled () = !wall_clock <> None

let now () =
  let clock = Domain.DLS.get clock_key in
  incr clock;
  !clock

let stamp_args args =
  match !wall_clock with
  | None -> args
  | Some c -> ("wall_s", Json.Float (c ())) :: args

let publish kind ~cat ~track ~args name =
  let traced = Sink.enabled () in
  if traced || !Recorder.armed then begin
    let e =
      { Sink.kind; name; cat; track; ts = now (); args = stamp_args args }
    in
    if traced then Sink.emit e;
    if !Recorder.armed then Recorder.record e
  end

let instant ?(cat = "app") ?(track = 0) ?(args = []) name =
  publish Sink.Instant ~cat ~track ~args name

let begin_ ?(cat = "app") ?(track = 0) ?(args = []) name =
  publish Sink.Begin ~cat ~track ~args name

let end_ ?(cat = "app") ?(track = 0) ?(args = []) name =
  publish Sink.End ~cat ~track ~args name

let span ?cat ?track ?args name f =
  begin_ ?cat ?track ?args name;
  match f () with
  | v ->
      end_ ?cat ?track name;
      v
  | exception exn ->
      end_ ?cat ?track ~args:[ ("exn", Json.Str (Printexc.to_string exn)) ]
        name;
      raise exn

(* Run [f] on a fresh clock, restoring the caller's count after. Worker
   domains have private clocks already; this exists for the main domain
   executing its own share of captured units — without it those scratch
   constructions would advance the main clock and shift every re-stamped
   tick, making the trace depend on how units were divided. *)
let scratched f =
  let clock = Domain.DLS.get clock_key in
  let saved = !clock in
  clock := 0;
  Fun.protect ~finally:(fun () -> clock := saved) f

(* Drain captured worker events into the live trace, re-stamped on the
   calling domain's clock so the published stream stays monotone. Sink
   only, never back into the recorder: the originating domain's ring
   already holds these events. *)
let replay events =
  if Sink.enabled () then
    List.iter (fun (e : Sink.event) -> Sink.emit { e with ts = now () }) events
