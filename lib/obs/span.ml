(* The logical clock and the span/instant emission helpers. Timestamps are
   sequence numbers ticked per emitted event, not wall time: a replayed
   schedule (same init, same choices, same seed) emits the same events in
   the same order and therefore the same stamps — traces are deterministic
   and diffable. Wall time, when a caller wants it, rides along as an
   event argument instead of replacing the clock. *)

let clock = ref 0
let wall_clock : (unit -> float) option ref = ref None

let reset () = clock := 0
let set_wall_clock c = wall_clock := c

let now () =
  incr clock;
  !clock

let stamp_args args =
  match !wall_clock with
  | None -> args
  | Some c -> ("wall_s", Json.Float (c ())) :: args

let instant ?(cat = "app") ?(track = 0) ?(args = []) name =
  if Sink.enabled () then
    Sink.emit
      { Sink.kind = Instant; name; cat; track; ts = now ();
        args = stamp_args args }

let begin_ ?(cat = "app") ?(track = 0) ?(args = []) name =
  if Sink.enabled () then
    Sink.emit
      { Sink.kind = Begin; name; cat; track; ts = now ();
        args = stamp_args args }

let end_ ?(cat = "app") ?(track = 0) ?(args = []) name =
  if Sink.enabled () then
    Sink.emit
      { Sink.kind = End; name; cat; track; ts = now ();
        args = stamp_args args }

let span ?cat ?track ?args name f =
  begin_ ?cat ?track ?args name;
  match f () with
  | v ->
      end_ ?cat ?track name;
      v
  | exception exn ->
      end_ ?cat ?track ~args:[ ("exn", Json.Str (Printexc.to_string exn)) ]
        name;
      raise exn
