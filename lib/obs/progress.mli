(** Deterministic periodic sampler for progress/health instants.

    A cadence counter driven by logical progress (nodes explored,
    generations finished) — never wall time — emitting a timeline
    instant every [every]th {!tick}. Because the cadence is a function
    of the workload alone, a replayed run emits identical instants at
    identical stamps and the byte-determinism of traces is preserved.
    Rate and ETA fields belong in the lazily-built args, gated on
    {!Span.wall_enabled} by the caller. *)

type t

val create : ?every:int -> cat:string -> string -> t
(** [create ~cat name] makes a sampler emitting [name] instants in
    category [cat] every [every]th tick (default 1 — every tick). *)

val tick : t -> (unit -> (string * Json.t) list) -> unit
(** Advance the cadence; on every [every]th call, emit an instant with
    the (lazily built) args. A non-firing tick costs an increment and a
    compare. *)

val force : t -> (unit -> (string * Json.t) list) -> unit
(** Emit unconditionally (a final sample at shutdown), without
    advancing the cadence. *)

val ticks : t -> int
val emitted : t -> int
