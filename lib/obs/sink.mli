(** Pluggable trace consumers.

    Instrumentation sites emit neutral {!event}s through one global sink.
    The default sink is {!nil}: {!enabled} is then [false] and a site
    guarded by it pays one load-and-compare for the whole feature. Event
    timestamps are logical (see {!Span}); the JSONL and catapult writers
    render them as-is, so a fixed schedule and seed produce byte-identical
    output run over run. *)

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  cat : string;  (** subsystem, e.g. ["sched"], ["net"], ["chaos"] *)
  track : int;  (** pid / lane; rendered as the catapult [tid] *)
  ts : int;  (** logical clock stamp ({!Span.now}) *)
  args : (string * Json.t) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

val nil : t
(** Drops everything. The installed default. *)

val tee : t list -> t

(** {2 The global sink} *)

val enabled : unit -> bool
(** [false] when the installed sink is {!nil} — and always [false] off
    the main domain: sinks are single-consumer, so worker domains never
    emit. Guard event construction with this:
    [if Sink.enabled () then Sink.emit {...}]. *)

val quiesce : (unit -> 'a) -> 'a
(** Run [f] with the global sink silenced ({!nil} installed, {!active}
    false), restoring the previous sink afterwards even on exceptions.
    Parallel drivers wrap their fan-out in this so per-unit work emits
    nothing regardless of which domain executes it. *)

val active : bool ref
(** The same truth as {!enabled}, as a bare ref for per-operation hot
    paths where a call-free [!active] guard matters. Read-only outside
    this module — install sinks via {!set}/{!clear}/{!with_sink}. *)

val set : t -> unit

val clear : unit -> unit
(** Flush the installed sink and restore {!nil}. *)

val emit : event -> unit
val flush : unit -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install a sink for the call, flush it, restore the previous sink
    (even on exceptions). *)

(** {2 Serialization} *)

val event_json : event -> Json.t
(** Chrome [trace_event] object: [name]/[cat]/[ph]/[ts]/[pid]/[tid],
    [s:"t"] on instants, [args] when non-empty. *)

val event_of_json : Json.t -> event option
(** Inverse of {!event_json}; [None] when [name]/[ph] are missing. *)

val kind_to_string : kind -> string

(** {2 Writers} — take a [string -> unit] so they serve both channels
    ([output_string oc]) and buffers ([Buffer.add_string b]). *)

val jsonl : (string -> unit) -> t
(** One {!event_json} object per line. *)

val catapult : (string -> unit) -> t
(** A Chrome [trace_event] JSON array, viewable in [about:tracing] and
    Perfetto. The closing bracket is written on [flush] — flush exactly
    once, e.g. via {!with_sink} or {!clear}. *)

val memory : unit -> t * (unit -> event list)
(** In-memory sink and its accessor, for tests. *)

val console : Format.formatter -> t
(** Accumulates per-event-name counts and span durations; prints the
    summary table on [flush]. *)
