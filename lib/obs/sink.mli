(** Pluggable trace consumers.

    Instrumentation sites emit neutral {!event}s through one global sink.
    The default sink is {!nil}: {!enabled} is then [false] and a site
    guarded by it pays one load-and-compare for the whole feature. Event
    timestamps are logical (see {!Span}); the JSONL and catapult writers
    render them as-is, so a fixed schedule and seed produce byte-identical
    output run over run.

    Routing is per-domain. By default ([Pass]) events reach the global
    sink from the main domain only — sinks are single-consumer. A worker
    domain participates by running under {!captured}, which buffers its
    emissions privately for the pool driver to drain on the main domain
    (in deterministic order) after join; {!muted} drops them instead. *)

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  cat : string;  (** subsystem, e.g. ["sched"], ["net"], ["fleet"] *)
  track : int;  (** pid / lane; rendered as the catapult [tid] *)
  ts : int;  (** logical clock stamp ({!Span.now}) *)
  args : (string * Json.t) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

val nil : t
(** Drops everything. The installed default. *)

val tee : t list -> t

(** {2 The global sink} *)

val enabled : unit -> bool
(** Whether the calling domain should construct and emit events. [false]
    when the installed sink is {!nil}; with a sink installed it depends
    on the calling domain's mode: [true] on the main domain (and inside
    {!captured} on any domain), [false] on bare worker domains and
    inside {!muted}. Guard event construction with this:
    [if Sink.enabled () then Sink.emit {...}]. *)

val captured : (unit -> 'a) -> 'a * event list
(** [captured f] runs [f] with the calling domain's emissions redirected
    into a private in-memory buffer and returns them alongside [f]'s
    result. {!enabled} is [true] inside, on any domain — this is how
    parallel workers trace: capture where the work runs, drain on the
    main domain in a deterministic order via {!Span.replay}. Captured
    events carry the capturing domain's clock stamps; replay re-stamps
    them. If [f] raises, the exception propagates and the buffered
    events are dropped (the flight {!Recorder} still holds them). *)

val muted : (unit -> 'a) -> 'a
(** Run [f] with the calling domain's emissions dropped, restoring the
    previous mode afterwards even on exceptions. For internal segments
    of a larger run whose telemetry the driver reports as a whole. *)

val quiesce : (unit -> 'a) -> 'a
(** Historical alias of {!muted}. Note it now silences only the {e
    calling} domain, not the global sink — other domains (in particular
    the main one) keep tracing. *)

val active : bool ref
(** [true] iff a sink other than {!nil} is installed, as a bare ref for
    per-operation hot paths where a call-free [!active] guard matters
    (it over-approximates {!enabled}: mode is not consulted). Read-only
    outside this module — install sinks via {!set}/{!clear}/{!with_sink}. *)

val set : t -> unit

val clear : unit -> unit
(** Flush the installed sink and restore {!nil}. *)

val emit : event -> unit
(** Route an event per the calling domain's mode: global sink ([Pass],
    main-domain callers), private buffer (inside {!captured}), or
    dropped (inside {!muted}). *)

val flush : unit -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install a sink for the call, flush it, restore the previous sink
    (even on exceptions). *)

(** {2 Serialization} *)

val event_fields : event -> (string * Json.t) list
(** The fields of {!event_json}, exposed so writers that prepend their
    own fields (the flight {!Recorder}'s [dom]) stay in one format. *)

val event_json : event -> Json.t
(** Chrome [trace_event] object: [name]/[cat]/[ph]/[ts]/[pid]/[tid],
    [s:"t"] on instants, [args] when non-empty. *)

val event_of_json : Json.t -> event option
(** Inverse of {!event_json}; [None] when [name]/[ph] are missing.
    Unknown fields (e.g. a flight dump's [dom]) are ignored. *)

val kind_to_string : kind -> string

(** {2 Writers} — take a [string -> unit] so they serve both channels
    ([output_string oc]) and buffers ([Buffer.add_string b]). *)

val jsonl : (string -> unit) -> t
(** One {!event_json} object per line. *)

val catapult : (string -> unit) -> t
(** A Chrome [trace_event] JSON array, viewable in [about:tracing] and
    Perfetto. The closing bracket is written on [flush] — flush exactly
    once, e.g. via {!with_sink} or {!clear}. *)

val memory : unit -> t * (unit -> event list)
(** In-memory sink and its accessor, for tests. *)

val console : Format.formatter -> t
(** Accumulates per-event-name counts and span durations; prints the
    summary table on [flush]. *)
