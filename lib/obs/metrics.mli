(** Process-wide registry of named counters, gauges and fixed-bucket
    histograms.

    Resolution happens once: a hot path registers its metric at module
    initialization ([let steps = Obs.Metrics.counter "sched.steps"]) and
    each event is then a plain field mutation — no hashing, no
    allocation. Per-operation sites additionally guard with {!hot} so
    the instrumentation costs one branch while nobody is reading the
    registry. Metrics are monotone event tallies: the exploration
    engine's undo journal rewinds scheduler {e state}, not the count of
    work performed, so re-explored operations count every time they run.

    Registration is idempotent per name; re-registering a name as a
    different kind (or a histogram with different bounds) raises
    [Invalid_argument].

    Domain-safe: cells are [Atomic]-backed, so concurrent domains (the
    parallel exploration workers) tally into the same registry without
    losing increments, and registration/reset/snapshot serialize on a
    mutex. Counters are additionally {e sharded} per domain — concurrent
    increments land on distinct cells instead of one contended cache
    line, and reads merge the shards. Histograms update their fields
    independently, so a snapshot taken {e while} another domain observes
    may see a bucket incremented before the observation count —
    quiescent snapshots (after workers join, which is how every consumer
    in this repo snapshots) are exact. *)

type counter
type gauge
type histogram

val hot : bool ref
(** Gate for {e per-operation} tallies (scheduler steps, memory
    reads/writes, per-terminal depth observations) — paths hot enough
    that even a plain increment costs throughput. Sites guard with
    [if !Obs.Metrics.hot then ...]: one load-and-branch when disabled.
    Enabled by [--metrics] on the CLI and by the bench snapshot
    workloads; coarser sites (per network delivery, per campaign run,
    per exploration) tally unconditionally. Off by default. *)

val counter : string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : string -> gauge
val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** High-watermark write: keeps the larger of old and new. *)

val gauge_value : gauge -> int

val default_bounds : int array
(** Powers of two, 1 to 1024. *)

val histogram : ?bounds:int array -> string -> histogram
(** [bounds] are strictly increasing bucket upper bounds; an implicit
    overflow bucket catches everything above the last. Defaults to
    {!default_bounds}. *)

val observe : histogram -> int -> unit
(** Count [v] in the first bucket with [v <= bound] (else overflow),
    updating the observation count, sum and max. *)

val observations : histogram -> int
val bucket_counts : histogram -> int array

val percentile : histogram -> float -> int option
(** [percentile h p] (for [0 < p <= 100]) reports an upper bound on the
    value at the [p]th percentile: the bucket bound containing the
    rank-[ceil(p/100*n)] observation, or the exact maximum when that
    rank falls in the overflow bucket. [None] on an empty histogram. *)

val reset : unit -> unit
(** Zero every registered cell, keeping the registrations (and the cells
    hot paths already hold) valid. Benchmarks and tests scope a
    measurement with [reset] + {!snapshot}. *)

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    name-sorted fields — equal registry contents give byte-equal JSON.
    Histogram objects carry [count]/[sum]/[max]/[p50]/[p90]/[p99] and
    the per-bucket counts. *)

val snapshot_string : unit -> string
val pp_snapshot : Format.formatter -> unit -> unit

val delta : before:Json.t -> after:Json.t -> Json.t
(** Interval difference of two {!snapshot} values: counters and
    histogram counts/sums/buckets subtract ([after - before]); gauges,
    maxima and percentiles are point-in-time readings, so the [after]
    value passes through unchanged. *)
