(** Minimal JSON values: the wire format of the telemetry layer.

    Everything the observability stack serializes (metric snapshots, JSONL
    trace lines, catapult arrays) is built from this type, and everything
    it reads back ([boundedreg trace summary], the exporter tests) is
    parsed into it. The printer emits canonical one-line JSON with no
    trailing spaces, so byte-identical traces follow from identical
    values. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
(** Constructor projections; [None] on any other constructor. *)

val member_int : string -> t -> int option
val member_str : string -> t -> string option
val member_list : string -> t -> t list option
(** [member] composed with the matching projection — the accessors the
    corpus and witness readers (fleet, trace summary) are built from. *)

val of_string : string -> (t, string) result
(** Full JSON parser (objects, arrays, strings with escapes, numbers,
    literals). [Error] carries a position-tagged message. *)
