(* Deterministic periodic sampling: a counter-driven cadence that emits
   a timeline instant every [every]th tick. Driven by logical progress
   (nodes explored, generations finished), never by wall time, so a
   replayed run emits the same health instants at the same stamps —
   traces stay byte-identical. Args are built lazily: a tick that does
   not fire costs an increment and a compare. *)

type t = {
  name : string;
  cat : string;
  every : int;
  mutable ticks : int;
  mutable emitted : int;
}

let create ?(every = 1) ~cat name =
  { name; cat; every = max 1 every; ticks = 0; emitted = 0 }

let fire t args =
  t.emitted <- t.emitted + 1;
  Span.instant ~cat:t.cat ~args:(args ()) t.name

let tick t args =
  t.ticks <- t.ticks + 1;
  if t.ticks mod t.every = 0 then fire t args

let force = fire
let ticks t = t.ticks
let emitted t = t.emitted
