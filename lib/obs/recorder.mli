(** The flight recorder: a black box for runs that die or misbehave.

    Every event constructed by {!Span} — traced or not — also lands in a
    fixed-capacity per-domain ring buffer of the most recent {!capacity}
    events. When a run hits a watchdog trip, an escaping exception, a
    first NONLINEARIZABLE verdict, or a SIGINT/SIGTERM, the driver calls
    {!dump} and gets a post-mortem [flight-<reason>.jsonl] containing the
    last events from every domain — enough to replay the failing
    schedule without having asked for [--trace] in advance.

    Recording is allocation-free (preallocated arrays, an index store
    and a counter bump) and lock-free on the fast path. Hot
    per-operation instrumentation is unaffected: those sites guard event
    construction on [Sink.enabled ()] / [!Sink.active], so an untraced
    run still pays one load-and-branch per operation and only coarse
    always-constructed events reach the ring. *)

val capacity : int
(** Slots per ring (the last [capacity] events per domain are kept). *)

val armed : bool ref
(** [true] (the default) records every constructed event; set [false] to
    disable recording entirely — the bench harness does this to measure
    the recorder's own overhead. *)

val record : Sink.event -> unit
(** Append to the calling domain's ring, overwriting the oldest slot
    once full. Called by {!Span}'s emission helpers; callers outside the
    emission layer rarely need it. *)

val retire : unit -> unit
(** Merge the calling (worker) domain's ring into a shared graveyard
    ring and unregister it. Pool drivers call this as each worker domain
    exits so a long run's dead domains don't accumulate; the tail of
    their events stays dumpable. No-op on the main domain. *)

val dump : ?dir:string -> reason:string -> unit -> string option
(** [dump ~reason ()] writes [flight-<reason>.jsonl] (under [dir],
    default the current directory): one JSON object per recorded event,
    each prefixed with a ["dom"] field naming the recording domain; the
    main domain's events come first, oldest first. Returns the path, or
    [None] when nothing was recorded or the write failed — a dump is
    best-effort and never raises. *)

val events : unit -> (int * Sink.event) list
(** Current contents of all rings, as [(domain, event)] pairs in dump
    order. For tests. *)

val clear : unit -> unit
(** Empty all rings. For tests. *)
