(* A deliberately small JSON value type, printer and parser. The telemetry
   layer both writes JSON (metric snapshots, JSONL traces, the catapult
   exporter) and reads it back (`boundedreg trace summary`, the exporter
   well-formedness tests), and the project's dependency set has no JSON
   library — so this module is the single place the wire format lives.
   The parser accepts full JSON; the printer never emits anything the
   parser rejects (non-finite floats are printed as null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
      else Buffer.add_string b "null"
  | Str s -> escape_to b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None
let member_int key j = Option.bind (member key j) to_int
let member_str key j = Option.bind (member key j) to_str
let member_list key j = Option.bind (member key j) to_list

(* {2 Parsing} *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Codepoints above one byte round-trip only for the
                  control characters the printer emits; that is all the
                  telemetry format uses. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else begin
                 Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
               end
           | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let acc = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            acc := parse_value () :: !acc;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !acc)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let acc = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            acc := field () :: !acc;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !acc)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e
