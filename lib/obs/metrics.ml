(* The process-wide metrics registry. Hot paths pay for a metric close to
   what they would pay for a bare [int ref]: the name → cell resolution
   happens once, at registration (typically a module-toplevel [let]), and
   [inc]/[add]/[set] are single atomic mutations with no hashing and no
   allocation. Snapshots walk the registry and render sorted JSON, so two
   snapshots of equal counts are byte-identical.

   Cells are [Atomic.t]-backed so concurrent domains (the parallel
   exploration workers) can tally into the same registry without losing
   increments: a plain [mutable int] field would drop updates under
   domain interleaving. [Atomic.fetch_and_add] on a contended cell is a
   few nanoseconds — acceptable even for the [hot]-gated per-operation
   sites, which are off by default anyway. Registration and snapshotting
   are rare; they serialize on a [Mutex] so a domain registering a new
   metric cannot race a snapshot's fold over the hashtable. *)

(* Counters are sharded: [shards] independent cells, a domain picking
   its cell by domain id. Parallel fan-outs (a fleet generation at
   [--jobs 8]) would otherwise serialize every tally on one contended
   cache line; sharding makes concurrent increments land on (mostly)
   distinct cells, and reads sum the shards. Gauges and histograms stay
   single-cell — gauges are last-writer/max semantics where sharding
   has nothing to merge, and histogram updates touch several fields
   anyway. *)
let shards = 8 (* power of two, cell picked by [domain_id land (shards-1)] *)

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; value : int Atomic.t }

type histogram = {
  h_name : string;
  bounds : int array;  (** strictly increasing upper bounds *)
  buckets : int Atomic.t array;
      (** [Array.length bounds + 1]: last = overflow *)
  observations : int Atomic.t;
  sum : int Atomic.t;
  max_seen : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* Per-operation tallies sit on paths the exploration engine drives
   hundreds of thousands of times per run, where even a non-inlined
   increment shows up in throughput (measured: ~17% on the raw-undo
   workload). Sites of that class guard themselves with [if !hot]; the
   flag is a bare ref so the disabled cost is one load and branch. It is
   only toggled from the main domain before/after a measurement, never
   concurrently with workers, so a bare ref is race-free in practice.
   Coarser-grained sites (per network delivery, per campaign run, per
   exploration) tally unconditionally. *)
let hot = ref false

let register name make match_existing =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> match_existing m
      | None ->
          let m = make () in
          Hashtbl.replace registry name
            (match m with
            | `C c -> Counter c
            | `G g -> Gauge g
            | `H h -> Histogram h);
          m)

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is already registered as a %s" name want)

let counter name =
  match
    register name
      (fun () ->
        `C { c_name = name; cells = Array.init shards (fun _ -> Atomic.make 0) })
      (function Counter c -> `C c | _ -> kind_error name "non-counter")
  with
  | `C c -> c
  | _ -> assert false

let gauge name =
  match
    register name
      (fun () -> `G { g_name = name; value = Atomic.make 0 })
      (function Gauge g -> `G g | _ -> kind_error name "non-gauge")
  with
  | `G g -> g
  | _ -> assert false

let default_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let check_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Obs.Metrics: %S needs >= 1 bound" name);
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S bounds must strictly increase" name)
  done

let histogram ?(bounds = default_bounds) name =
  match
    register name
      (fun () ->
        check_bounds name bounds;
        `H
          {
            h_name = name;
            bounds = Array.copy bounds;
            buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            observations = Atomic.make 0;
            sum = Atomic.make 0;
            max_seen = Atomic.make min_int;
          })
      (function
        | Histogram h ->
            if h.bounds <> bounds then
              invalid_arg
                (Printf.sprintf
                   "Obs.Metrics: %S re-registered with different bounds" name)
            else `H h
        | _ -> kind_error name "non-histogram")
  with
  | `H h -> h
  | _ -> assert false

let shard cells =
  Array.unsafe_get cells ((Domain.self () :> int) land (shards - 1))

let inc c = ignore (Atomic.fetch_and_add (shard c.cells) 1)
let add c n = ignore (Atomic.fetch_and_add (shard c.cells) n)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let counter_name c = c.c_name
let set g v = Atomic.set g.value v

(* Lock-free high-watermark: retry the CAS only while our candidate is
   still larger than what another domain published meanwhile. *)
let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let set_max g v = atomic_max g.value v
let gauge_value g = Atomic.get g.value

(* First bucket whose bound covers [v]; beyond the last bound, the
   overflow bucket. Bounds arrays are short and instrumented values small,
   so the linear scan exits in a couple of comparisons on hot sites. The
   scan is a top-level function: an inner [let rec] would capture [v] and
   allocate a closure per observation, which per-write call sites
   (Memory.write) cannot afford. *)
let rec bucket_index bounds k v i =
  if i >= k || v <= Array.unsafe_get bounds i then i
  else bucket_index bounds k v (i + 1)

let observe h v =
  let i = bucket_index h.bounds (Array.length h.bounds) v 0 in
  ignore (Atomic.fetch_and_add (Array.unsafe_get h.buckets i) 1);
  ignore (Atomic.fetch_and_add h.observations 1);
  ignore (Atomic.fetch_and_add h.sum v);
  atomic_max h.max_seen v

let observations h = Atomic.get h.observations
let bucket_counts h = Array.map Atomic.get h.buckets

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
          | Gauge g -> Atomic.set g.value 0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.observations 0;
              Atomic.set h.sum 0;
              Atomic.set h.max_seen min_int)
        registry)

let bucket_label bounds i =
  if i < Array.length bounds then Printf.sprintf "le_%d" bounds.(i)
  else "inf"

(* Percentiles from bucket counts: walk the cumulative distribution to
   the bucket containing the rank-[ceil(p/100 * n)] observation and
   report that bucket's upper bound (the overflow bucket reports the
   exact max seen). An upper bound, not an interpolation — with integer
   buckets "p99 <= 8 hops" is the honest statement the data supports. *)
let percentile h p =
  let total = Atomic.get h.observations in
  if total = 0 || p <= 0. || p > 100. then None
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int total)))
    in
    let n = Array.length h.buckets in
    let rec walk i cum =
      if i >= n then Some (Atomic.get h.max_seen)
      else
        let cum = cum + Atomic.get h.buckets.(i) in
        if cum >= rank then
          if i < Array.length h.bounds then Some h.bounds.(i)
          else Some (Atomic.get h.max_seen)
        else walk (i + 1) cum
    in
    walk 0 0
  end

let histogram_json h =
  let count = Atomic.get h.observations in
  let pct p =
    match percentile h p with None -> Json.Null | Some v -> Json.Int v
  in
  Json.Obj
    [
      ("count", Json.Int count);
      ("sum", Json.Int (Atomic.get h.sum));
      ("max", if count = 0 then Json.Null else Json.Int (Atomic.get h.max_seen));
      ("p50", pct 50.);
      ("p90", pct 90.);
      ("p99", pct 99.);
      ( "buckets",
        Json.Obj
          (List.init (Array.length h.buckets) (fun i ->
               (bucket_label h.bounds i, Json.Int (Atomic.get h.buckets.(i))))) );
    ]

let sorted_fields section =
  locked (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          match (section, m) with
          | `Counters, Counter c -> (name, Json.Int (counter_value c)) :: acc
          | `Gauges, Gauge g -> (name, Json.Int (Atomic.get g.value)) :: acc
          | `Histograms, Histogram h -> (name, histogram_json h) :: acc
          | _ -> acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  Json.Obj
    [
      ("counters", Json.Obj (sorted_fields `Counters));
      ("gauges", Json.Obj (sorted_fields `Gauges));
      ("histograms", Json.Obj (sorted_fields `Histograms));
    ]

let snapshot_string () = Json.to_string (snapshot ())

let pp_snapshot ppf () =
  let section title fields =
    if fields <> [] then begin
      Format.fprintf ppf "%s:@." title;
      List.iter
        (fun (name, v) ->
          Format.fprintf ppf "  %-36s %s@." name (Json.to_string v))
        fields
    end
  in
  section "counters" (sorted_fields `Counters);
  section "gauges" (sorted_fields `Gauges);
  section "histograms" (sorted_fields `Histograms)

(* Interval arithmetic over two snapshot JSONs: what happened {e
   between} them. Counters and histogram counts/sums/buckets subtract;
   gauges, maxima and percentiles are point-in-time readings with no
   meaningful difference, so the [after] value passes through. Metrics
   present only in [after] (registered mid-interval) diff against an
   implicit zero. *)
let delta ~before ~after =
  let int_minus b a =
    match (b, a) with
    | Some (Json.Int b), Json.Int a -> Json.Int (a - b)
    | _, a -> a
  in
  let hist_minus b a =
    match (b, a) with
    | Some bj, Json.Obj afields ->
        Json.Obj
          (List.map
             (fun (k, av) ->
               match k with
               | "count" | "sum" -> (k, int_minus (Json.member k bj) av)
               | "buckets" -> (
                   match (Json.member "buckets" bj, av) with
                   | Some bb, Json.Obj ab ->
                       ( k,
                         Json.Obj
                           (List.map
                              (fun (bk, bv) ->
                                (bk, int_minus (Json.member bk bb) bv))
                              ab) )
                   | _ -> (k, av))
               | _ -> (k, av))
             afields)
    | _, a -> a
  in
  let section name minus =
    let b = Option.value (Json.member name before) ~default:(Json.Obj []) in
    match Json.member name after with
    | Some (Json.Obj fields) ->
        Json.Obj (List.map (fun (k, av) -> (k, minus (Json.member k b) av)) fields)
    | _ -> Json.Obj []
  in
  Json.Obj
    [
      ("counters", section "counters" int_minus);
      ("gauges", section "gauges" (fun _ a -> a));
      ("histograms", section "histograms" hist_minus);
    ]
