(* The flight recorder: an always-on, fixed-capacity ring of the most
   recent events per domain, dumped post mortem when a run dies or
   misbehaves (watchdog trip, escaping exception, first NONLINEARIZABLE
   verdict, SIGINT/SIGTERM). Tracing answers "what happened?" when you
   asked in advance; the recorder answers it when you didn't.

   Recording is deliberately dumb and cheap: every constructed event
   (see {!Span}) lands in the calling domain's preallocated ring — an
   array store and a counter bump, no allocation, no locking. The hot
   per-operation sites are unaffected because they guard event
   {e construction} ([!Sink.active] / [Sink.enabled ()]) before anything
   reaches the recorder: an untraced run still costs one load-and-branch
   per operation, and only the coarse always-constructed events (run and
   campaign boundaries, verdict instants) feed the ring. *)

let capacity = 4096 (* slots per ring; power of two, index by [land] *)
let mask = capacity - 1
let armed = ref true

let dummy =
  { Sink.kind = Sink.Instant; name = ""; cat = ""; track = 0; ts = 0; args = [] }

type ring = {
  domain : int;
  main : bool;
  slots : Sink.event array;
  mutable count : int;  (** total recorded; the ring holds the last [capacity] *)
}

let fresh_ring domain main =
  { domain; main; slots = Array.make capacity dummy; count = 0 }

(* Registry of live rings, for [dump]. Guarded by [lock]; the recording
   fast path never takes it (a domain reaches its own ring through DLS).
   [graveyard] keeps the tail of rings whose domains have exited —
   {!Sched.Par} spawns fresh domains per pool, so without [retire] the
   registry would grow without bound over a long fleet run. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let rings : ring list ref = ref []
let graveyard = fresh_ring (-1) false

let key =
  Domain.DLS.new_key (fun () ->
      let r =
        fresh_ring (Domain.self () :> int) (Domain.is_main_domain ())
      in
      locked (fun () -> rings := r :: !rings);
      r)

let record e =
  let r = Domain.DLS.get key in
  Array.unsafe_set r.slots (r.count land mask) e;
  r.count <- r.count + 1

(* Oldest-to-newest contents of a ring. *)
let ring_events r =
  let n = min r.count capacity in
  let start = r.count - n in
  List.init n (fun i -> r.slots.((start + i) land mask))

let retire () =
  let r = Domain.DLS.get key in
  if not r.main then begin
    locked (fun () ->
        rings := List.filter (fun x -> x != r) !rings;
        List.iter
          (fun e ->
            graveyard.slots.(graveyard.count land mask) <- e;
            graveyard.count <- graveyard.count + 1)
          (ring_events r));
    r.count <- 0
  end

(* Main-domain ring first (it holds the narrative), then the graveyard
   of finished workers, then live worker rings. Reading another domain's
   ring is unsynchronized by design — a dump is a post-mortem best
   effort, and a racy slot read yields some valid event, just possibly a
   stale one. *)
let all_rings () =
  locked (fun () ->
      let live = List.rev !rings in
      let mains, workers = List.partition (fun r -> r.main) live in
      mains @ (if graveyard.count > 0 then [ graveyard ] else []) @ workers)

let events () =
  List.concat_map (fun r -> List.map (fun e -> (r.domain, e)) (ring_events r))
    (all_rings ())

let clear () =
  locked (fun () ->
      List.iter (fun r -> r.count <- 0) !rings;
      graveyard.count <- 0)

let dump ?(dir = Filename.current_dir_name) ~reason () =
  let recorded = events () in
  if recorded = [] then None
  else
    let file = Filename.concat dir (Printf.sprintf "flight-%s.jsonl" reason) in
    match open_out file with
    | exception Sys_error _ -> None
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            List.iter
              (fun (dom, e) ->
                output_string oc
                  (Json.to_string
                     (Json.Obj (("dom", Json.Int dom) :: Sink.event_fields e)));
                output_char oc '\n')
              recorded);
        Some file
