(** Health-report rendering over telemetry artifacts.

    Folds a trace's events plus (optionally) a {!Metrics} snapshot and a
    bench JSON into a small block document, rendered as Markdown or
    self-contained HTML: per-category event counts, span rollups,
    chaos-run verdicts, the fleet's witness inventory, coverage-over-time
    curves (from [fleet.health] / [explore.progress] instants), histogram
    percentiles, and benchmark rows. Pure and deterministic: fixed inputs
    give byte-identical output. The [boundedreg report] subcommand is a
    thin wrapper over this module. *)

type table = { headers : string list; rows : string list list }
type curve = { title : string; points : (int * float) list }

type block =
  | Heading of int * string
  | Para of string
  | Table of table
  | Curve of curve

val of_sources : ?metrics:Json.t -> ?bench:Json.t -> Sink.event list -> block list
(** Build the report document. [metrics] is a {!Metrics.snapshot} value;
    [bench] a [BENCH_*.json] document. Sections for absent inputs are
    omitted. *)

val to_markdown : block list -> string
(** Curves render as unicode sparklines. *)

val to_html : block list -> string
(** Curves render as inline SVG polylines; no external assets. *)
