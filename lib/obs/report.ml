(* The health-report renderer: fold telemetry artifacts (a trace's
   events, a metrics snapshot, a bench JSON) into a small block
   document, then print that document as Markdown or self-contained
   HTML. Pure — no I/O, no clocks — so a report over fixed inputs is
   byte-identical, like every other artifact in this repo. *)

type table = { headers : string list; rows : string list list }
type curve = { title : string; points : (int * float) list }

type block =
  | Heading of int * string
  | Para of string
  | Table of table
  | Curve of curve

(* {2 Event access helpers} *)

let arg e k = List.assoc_opt k e.Sink.args

let arg_int e k =
  match arg e k with Some (Json.Int i) -> Some i | _ -> None

let arg_str e k =
  match arg e k with Some (Json.Str s) -> Some s | _ -> None

let named name e = e.Sink.name = name

(* {2 Sections} *)

let meta_section events =
  match List.find_opt (named "meta") events with
  | None -> []
  | Some m ->
      let field k render =
        match arg m k with None -> [] | Some v -> [ (k, render v) ]
      in
      let str = function Json.Str s -> s | v -> Json.to_string v in
      let fields =
        field "seed" str @ field "jobs" str @ field "ocaml_version" str
      in
      if fields = [] then []
      else
        [
          Para
            (String.concat "  ·  "
               (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k v) fields));
        ]

let overview_section events =
  let last_ts = List.fold_left (fun acc e -> max acc e.Sink.ts) 0 events in
  let by_cat = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace by_cat e.Sink.cat
        (1 + Option.value (Hashtbl.find_opt by_cat e.Sink.cat) ~default:0))
    events;
  let rows =
    Hashtbl.fold (fun cat n acc -> [ cat; string_of_int n ] :: acc) by_cat []
    |> List.sort compare
  in
  [
    Heading (2, "Events");
    Para
      (Printf.sprintf "%d event(s), logical clock 1..%d." (List.length events)
         last_ts);
    Table { headers = [ "category"; "events" ]; rows };
  ]

(* Per-(cat, name) span rollups: pair each End with the innermost open
   Begin on the same track, accumulate count and total ticks inside. *)
let rollup_section events =
  let open_spans : (int, (string * string * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let acc : (string * string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Sink.kind with
      | Sink.Instant -> ()
      | Sink.Begin ->
          let stack =
            Option.value (Hashtbl.find_opt open_spans e.track) ~default:[]
          in
          Hashtbl.replace open_spans e.track
            ((e.cat, e.name, e.ts) :: stack)
      | Sink.End -> (
          match Hashtbl.find_opt open_spans e.track with
          | Some ((cat, name, t0) :: rest) ->
              Hashtbl.replace open_spans e.track rest;
              let n, total =
                Option.value (Hashtbl.find_opt acc (cat, name)) ~default:(0, 0)
              in
              Hashtbl.replace acc (cat, name) (n + 1, total + e.ts - t0)
          | _ -> ()))
    events;
  let rows =
    Hashtbl.fold
      (fun (cat, name) (n, total) acc -> (total, cat, name, n) :: acc)
      acc []
    |> List.sort (fun a b -> compare b a)
    |> List.map (fun (total, cat, name, n) ->
           [
             Printf.sprintf "%s/%s" cat name;
             string_of_int n;
             string_of_int total;
             Printf.sprintf "%.1f" (float_of_int total /. float_of_int n);
           ])
  in
  if rows = [] then []
  else
    [
      Heading (2, "Span rollups");
      Para "Logical ticks spent inside each span kind, largest first.";
      Table { headers = [ "span"; "count"; "ticks"; "mean" ]; rows };
    ]

let verdict_section events =
  let runs = List.filter (named "chaos.run") events in
  if runs = [] then []
  else begin
    let tally = Hashtbl.create 4 in
    List.iter
      (fun e ->
        let v = Option.value (arg_str e "verdict") ~default:"?" in
        Hashtbl.replace tally v
          (1 + Option.value (Hashtbl.find_opt tally v) ~default:0))
      runs;
    let rows =
      Hashtbl.fold (fun v n acc -> [ v; string_of_int n ] :: acc) tally []
      |> List.sort compare
    in
    [
      Heading (2, "Verdicts");
      Table { headers = [ "verdict"; "runs" ]; rows };
    ]
  end

let witness_section events =
  let ws = List.filter (named "fleet.witness") events in
  if ws = [] then []
  else
    let rows =
      List.map
        (fun e ->
          [
            Option.value (arg_str e "class") ~default:"?";
            (match arg_int e "generation" with
            | Some g -> string_of_int g
            | None -> "?");
            (match arg_int e "deliveries" with
            | Some d -> string_of_int d
            | None -> "?");
          ])
        ws
    in
    [
      Heading (2, "Witness inventory");
      Para
        (Printf.sprintf "%d distinct violation class(es) witnessed."
           (List.length ws));
      Table { headers = [ "class"; "generation"; "deliveries" ]; rows };
    ]

let curve_of ~title ~x ~y events name =
  let points =
    List.filter_map
      (fun e ->
        if named name e then
          match (x e, arg_int e y) with
          | Some xv, Some yv -> Some (xv, float_of_int yv)
          | _ -> None
        else None)
      events
  in
  if List.length points < 2 then [] else [ Curve { title; points } ]

let coverage_section events =
  let gen e = arg_int e "generation" in
  let ts e = Some e.Sink.ts in
  let curves =
    curve_of ~title:"corpus size by generation" ~x:gen ~y:"corpus" events
      "fleet.health"
    @ curve_of ~title:"coverage signals by generation" ~x:gen ~y:"signals"
        events "fleet.health"
    @ curve_of ~title:"cumulative violations by generation" ~x:gen
        ~y:"violations" events "fleet.health"
    @ curve_of ~title:"nodes explored over logical time" ~x:ts ~y:"nodes"
        events "explore.progress"
  in
  if curves = [] then [] else Heading (2, "Coverage over time") :: curves

(* {2 Metrics and bench sections} *)

let int_member j k =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

(* Percentile from a snapshot's bucket object — parses the "le_<bound>"
   labels, so it works on snapshots written before p50/p90/p99 fields
   existed. *)
let percentile_of_json hj p =
  match (Json.member "buckets" hj, int_member hj "count") with
  | Some (Json.Obj buckets), Some total when total > 0 ->
      let rank =
        max 1 (int_of_float (ceil (p /. 100. *. float_of_int total)))
      in
      let rec walk cum = function
        | [] -> None
        | (label, Json.Int c) :: rest ->
            let cum = cum + c in
            if cum >= rank then
              if label = "inf" then int_member hj "max"
              else
                int_of_string_opt
                  (String.sub label 3 (String.length label - 3))
            else walk cum rest
        | _ :: rest -> walk cum rest
      in
      walk 0 buckets
  | _ -> None

let metrics_section metrics =
  match metrics with
  | None -> []
  | Some snap ->
      let counters =
        match Json.member "counters" snap with
        | Some (Json.Obj fields) ->
            let rows =
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | Json.Int i -> Some [ k; string_of_int i ]
                  | _ -> None)
                fields
            in
            if rows = [] then []
            else
              [
                Heading (2, "Counters");
                Table { headers = [ "counter"; "count" ]; rows };
              ]
        | _ -> []
      in
      let histograms =
        match Json.member "histograms" snap with
        | Some (Json.Obj fields) when fields <> [] ->
            let cell = function Some i -> string_of_int i | None -> "-" in
            let rows =
              List.map
                (fun (k, hj) ->
                  [
                    k;
                    cell (int_member hj "count");
                    cell (percentile_of_json hj 50.);
                    cell (percentile_of_json hj 90.);
                    cell (percentile_of_json hj 99.);
                    cell (int_member hj "max");
                  ])
                fields
            in
            [
              Heading (2, "Histogram percentiles");
              Para "p50/p90/p99 are bucket upper bounds; max is exact.";
              Table
                {
                  headers = [ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ];
                  rows;
                };
            ]
        | _ -> []
      in
      counters @ histograms

let bench_section bench =
  match bench with
  | None -> []
  | Some doc -> (
      match Json.member "benchmarks" doc with
      | Some (Json.List rows) ->
          let rendered =
            List.filter_map
              (fun row ->
                match
                  (Json.member "name" row, Json.member "ns_per_call" row)
                with
                | Some (Json.Str name), Some ns ->
                    let minor =
                      match Json.member "minor_words_per_call" row with
                      | Some v -> Json.to_string v
                      | None -> "-"
                    in
                    Some [ name; Json.to_string ns; minor ]
                | _ -> None)
              rows
          in
          if rendered = [] then []
          else
            [
              Heading (2, "Benchmarks");
              Table
                {
                  headers = [ "benchmark"; "ns/call"; "minor words/call" ];
                  rows = rendered;
                };
            ]
      | _ -> [])

let of_sources ?metrics ?bench events =
  (Heading (1, "boundedreg health report") :: meta_section events)
  @ (if events = [] then [ Para "No trace events." ]
     else
       overview_section events @ rollup_section events
       @ verdict_section events @ witness_section events
       @ coverage_section events)
  @ metrics_section metrics @ bench_section bench

(* {2 Markdown} *)

let spark values =
  let glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  match values with
  | [] -> ""
  | vs ->
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      String.concat ""
        (List.map
           (fun v ->
             let t =
               if hi -. lo <= 0. then 0. else (v -. lo) /. (hi -. lo)
             in
             glyphs.(min 7 (int_of_float (t *. 7.99))))
           vs)

let md_table b { headers; rows } =
  let row cells = Buffer.add_string b ("| " ^ String.concat " | " cells ^ " |\n") in
  row headers;
  row (List.map (fun _ -> "---") headers);
  List.iter row rows;
  Buffer.add_char b '\n'

let to_markdown blocks =
  let b = Buffer.create 1024 in
  List.iter
    (fun block ->
      match block with
      | Heading (level, text) ->
          Buffer.add_string b (String.make level '#' ^ " " ^ text ^ "\n\n")
      | Para text -> Buffer.add_string b (text ^ "\n\n")
      | Table t -> md_table b t
      | Curve { title; points } ->
          let ys = List.map snd points in
          let xs = List.map fst points in
          Buffer.add_string b
            (Printf.sprintf "**%s** (%d samples, x %d..%d, y %g..%g)\n\n" title
               (List.length points)
               (List.fold_left min max_int xs)
               (List.fold_left max min_int xs)
               (List.fold_left min infinity ys)
               (List.fold_left max neg_infinity ys));
          Buffer.add_string b ("`" ^ spark ys ^ "`\n\n"))
    blocks;
  Buffer.contents b

(* {2 HTML} *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let svg_curve b { title = _; points } =
  let w = 480. and h = 80. and pad = 4. in
  let xs = List.map (fun (x, _) -> float_of_int x) points in
  let ys = List.map snd points in
  let xlo = List.fold_left min infinity xs in
  let xhi = List.fold_left max neg_infinity xs in
  let ylo = List.fold_left min infinity ys in
  let yhi = List.fold_left max neg_infinity ys in
  let sx x = if xhi = xlo then pad else pad +. ((x -. xlo) /. (xhi -. xlo) *. (w -. (2. *. pad))) in
  let sy y = if yhi = ylo then h /. 2. else h -. pad -. ((y -. ylo) /. (yhi -. ylo) *. (h -. (2. *. pad))) in
  Buffer.add_string b
    (Printf.sprintf
       "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\
        <polyline fill=\"none\" stroke=\"#0b6\" stroke-width=\"1.5\" points=\""
       w h w h);
  List.iter2
    (fun x y -> Buffer.add_string b (Printf.sprintf "%.1f,%.1f " (sx x) (sy y)))
    xs ys;
  Buffer.add_string b "\"/></svg>\n"

let to_html blocks =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
     <title>boundedreg health report</title>\n<style>\
     body{font-family:sans-serif;max-width:64em;margin:2em auto;color:#222}\
     table{border-collapse:collapse;margin:1em 0}\
     td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:left}\
     th{background:#f4f4f4}\
     </style></head><body>\n";
  List.iter
    (fun block ->
      match block with
      | Heading (level, text) ->
          Buffer.add_string b
            (Printf.sprintf "<h%d>%s</h%d>\n" level (html_escape text) level)
      | Para text ->
          Buffer.add_string b (Printf.sprintf "<p>%s</p>\n" (html_escape text))
      | Table { headers; rows } ->
          Buffer.add_string b "<table><tr>";
          List.iter
            (fun h -> Buffer.add_string b ("<th>" ^ html_escape h ^ "</th>"))
            headers;
          Buffer.add_string b "</tr>\n";
          List.iter
            (fun cells ->
              Buffer.add_string b "<tr>";
              List.iter
                (fun c ->
                  Buffer.add_string b ("<td>" ^ html_escape c ^ "</td>"))
                cells;
              Buffer.add_string b "</tr>\n")
            rows;
          Buffer.add_string b "</table>\n"
      | Curve c ->
          Buffer.add_string b
            (Printf.sprintf "<p><strong>%s</strong> (%d samples)</p>\n"
               (html_escape c.title) (List.length c.points));
          svg_curve b c)
    blocks;
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b
