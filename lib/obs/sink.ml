(* Pluggable trace consumers. Instrumentation sites produce neutral
   {!event}s; a sink decides what to do with them (JSONL lines, a Chrome
   trace_event array, an in-memory list, a console summary). One global
   sink is consulted by every site: the default [nil] sink makes disabled
   tracing cost a single load-and-compare branch, because sites guard
   event construction with {!enabled}.

   Routing is per-domain. Each domain carries a small mode word:

   - [Pass] (the default): events go to the global sink, and only from
     the main domain — sinks are single-consumer (a Buffer, an
     out_channel), so worker domains must not write into them.
   - [Capture]: events go to a domain-private buffer installed by
     {!captured}. This is how {!Sched.Par} workers stop being
     observability black holes: each unit's events are captured where
     they happen and drained on the main domain, in unit-index order,
     after the pool joins.
   - [Mute]: events are dropped ({!muted} / {!quiesce}) — internal
     segments of a larger run whose telemetry the driver reports as a
     whole. *)

type kind = Begin | End | Instant

type event = {
  kind : kind;
  name : string;
  cat : string;
  track : int;
  ts : int;
  args : (string * Json.t) list;
}

type t = { emit : event -> unit; flush : unit -> unit }

let nil = { emit = ignore; flush = ignore }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

(* {2 The global sink and the per-domain mode} *)

(* [active] mirrors [!current != nil] as a bare bool ref: hot
   instrumentation sites read [!active] directly — a load and a branch,
   no call — where a function-call guard would be measurable. *)
let current = ref nil
let active = ref false

type mode = Pass | Capture | Mute
type local = { mutable sink : t; mutable mode : mode }

let local_key = Domain.DLS.new_key (fun () -> { sink = nil; mode = Pass })

(* [enabled] short-circuits on [!active], so the disabled cost stays one
   load-and-branch; the per-domain mode is only consulted while a sink is
   installed. Under [Capture] any domain may construct and emit (into its
   private buffer); under [Pass] only the main domain may. *)
let enabled () =
  !active
  &&
  match (Domain.DLS.get local_key).mode with
  | Pass -> Domain.is_main_domain ()
  | Capture -> true
  | Mute -> false

let emit e =
  let l = Domain.DLS.get local_key in
  match l.mode with
  | Pass -> !current.emit e
  | Capture -> l.sink.emit e
  | Mute -> ()

let memory () =
  let acc = ref [] in
  ( { emit = (fun e -> acc := e :: !acc); flush = ignore },
    fun () -> List.rev !acc )

let with_mode mode sink f =
  let l = Domain.DLS.get local_key in
  let saved_mode = l.mode and saved_sink = l.sink in
  l.mode <- mode;
  l.sink <- sink;
  Fun.protect
    ~finally:(fun () ->
      l.mode <- saved_mode;
      l.sink <- saved_sink)
    f

(* Capture the calling domain's emissions into a private buffer. Events
   keep the stamps of the capturing domain's logical clock — a consumer
   re-emitting them on the main domain re-stamps via {!Span.replay}, so
   the published trace stays a single monotone main-domain stream. *)
let captured f =
  let sink, events = memory () in
  let r = with_mode Capture sink f in
  (r, events ())

let muted f = with_mode Mute nil f

(* Historical name for [muted]: silences the calling domain for the
   duration of [f]. Kept because "quiesce" is what the parallel drivers
   have called this since PR 5. *)
let quiesce f = muted f

let set s =
  current := s;
  active := s != nil

let clear () =
  !current.flush ();
  current := nil;
  active := false

let flush () = !current.flush ()

let with_sink s f =
  let previous = !current in
  set s;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      set previous)
    f

(* {2 Serialization} *)

let kind_to_string = function Begin -> "B" | End -> "E" | Instant -> "i"

let kind_of_string = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "i" -> Some Instant
  | _ -> None

let event_fields e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (kind_to_string e.kind));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int e.track);
    ]
  in
  let scope = match e.kind with Instant -> [ ("s", Json.Str "t") ] | _ -> [] in
  let args =
    match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ]
  in
  base @ scope @ args

let event_json e = Json.Obj (event_fields e)

let event_of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (str "name", str "ph") with
  | Some name, Some ph -> (
      match kind_of_string ph with
      | None -> None
      | Some kind ->
          Some
            {
              kind;
              name;
              cat = Option.value (str "cat") ~default:"";
              track = Option.value (int "tid") ~default:0;
              ts = Option.value (int "ts") ~default:0;
              args =
                (match Json.member "args" j with
                | Some (Json.Obj fields) -> fields
                | _ -> []);
            })
  | _ -> None

(* {2 Writers}

   Writers take a [string -> unit] so the same code serves out_channels
   ([output_string oc]) and Buffers ([Buffer.add_string b]). *)

let jsonl write =
  {
    emit =
      (fun e ->
        write (Json.to_string (event_json e));
        write "\n");
    flush = ignore;
  }

let catapult write =
  let first = ref true in
  let opened = ref false in
  let closed = ref false in
  {
    emit =
      (fun e ->
        if not !opened then begin
          opened := true;
          write "[\n"
        end;
        if !first then first := false else write ",\n";
        write (Json.to_string (event_json e)));
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          if not !opened then write "[";
          write "\n]\n"
        end);
  }

(* The console summarizer: per-(name, kind) event counts plus total
   logical-clock time inside spans, printed on flush. Span durations pair
   each End with the most recent unmatched Begin on the same track. *)
let console ppf =
  let counts : (string * kind, int) Hashtbl.t = Hashtbl.create 32 in
  let open_spans : (int, (string * int) list) Hashtbl.t = Hashtbl.create 8 in
  let durations : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let bump key =
    Hashtbl.replace counts key
      (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
  in
  let emit e =
    bump (e.name, e.kind);
    match e.kind with
    | Instant -> ()
    | Begin ->
        let stack =
          Option.value (Hashtbl.find_opt open_spans e.track) ~default:[]
        in
        Hashtbl.replace open_spans e.track ((e.name, e.ts) :: stack)
    | End -> (
        match Hashtbl.find_opt open_spans e.track with
        | Some ((name, t0) :: rest) ->
            Hashtbl.replace open_spans e.track rest;
            let n, total =
              Option.value (Hashtbl.find_opt durations name) ~default:(0, 0)
            in
            Hashtbl.replace durations name (n + 1, total + e.ts - t0)
        | _ -> ())
  in
  let flush () =
    let rows =
      Hashtbl.fold (fun (name, kind) n acc -> (name, kind, n) :: acc) counts []
      |> List.sort compare
    in
    Format.fprintf ppf "trace summary: %d event(s)@."
      (List.fold_left (fun acc (_, _, n) -> acc + n) 0 rows);
    List.iter
      (fun (name, kind, n) ->
        Format.fprintf ppf "  %-30s %-2s %6d" name (kind_to_string kind) n;
        (match (kind, Hashtbl.find_opt durations name) with
        | End, Some (spans, total) ->
            Format.fprintf ppf "   (%d span(s), %d ticks inside)" spans total
        | _ -> ());
        Format.fprintf ppf "@.")
      rows
  in
  { emit; flush }
