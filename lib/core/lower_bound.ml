module Q = Bits.Rational
module P = Sched.Program
module Scheduler = Sched.Scheduler
open P.Infix

type 'v two_protocol = {
  name : string;
  bits : int;
  memory : unit -> ('v, int) Sched.Memory.t;
  program : me:int -> input:int -> ('v, int, Q.t) Sched.Program.t;
  equal_value : 'v -> 'v -> bool;
  pp_value : Format.formatter -> 'v -> unit;
}

let pow_int base e =
  let rec loop acc e = if e = 0 then acc else loop (acc * base) (e - 1) in
  loop 1 e

let epsilon_threshold ~bits ~n ~t =
  let k = (2 * pow_int (1 lsl bits) (n - t + 1)) + 1 in
  Q.make 1 k

type 'v bucket = {
  word : 'v * 'v;
  outputs : (Q.t * Q.t) list;
  spread : Q.t;
}

type 'v analysis = {
  executions : int;
  buckets : 'v bucket list;
  max_spread : Q.t;
  distinct_words : int;
  search : Sched.Explore.stats;
}

let analyse proto =
  let executions = ref 0 in
  (* Association list keyed by register word; at most 2^(2 bits) entries by
     construction, so linear scans are cheap no matter how many executions
     there are. *)
  let raw : (('v * 'v) * (Q.t * Q.t) list ref) list ref = ref [] in
  let equal_word (a0, a1) (b0, b1) =
    proto.equal_value a0 b0 && proto.equal_value a1 b1
  in
  let init () =
    Scheduler.start
      ~memory:(proto.memory ())
      ~programs:(fun pid -> proto.program ~me:pid ~input:pid)
      ()
  in
  let result =
    Sched.Explore.explore ~max_steps:1_000_000 ~init (fun state ->
      incr executions;
      let decisions = Scheduler.decisions state in
      let pair =
        match (decisions.(0), decisions.(1)) with
        | Some y0, Some y1 -> (y0, y1)
        | _ -> assert false (* crash-free enumeration: both decide *)
      in
      let contents = Sched.Memory.contents (Scheduler.memory state) in
      let word = (contents.(0), contents.(1)) in
      let cell =
        match List.find_opt (fun (w, _) -> equal_word w word) !raw with
        | Some (_, cell) -> cell
        | None ->
            let cell = ref [] in
            raw := (word, cell) :: !raw;
            cell
      in
      let pair_equal (a0, a1) (b0, b1) = Q.equal a0 b0 && Q.equal a1 b1 in
      if not (List.exists (pair_equal pair) !cell) then cell := pair :: !cell)
  in
  let buckets =
    List.map
      (fun (word, cell) ->
        let values =
          List.concat_map (fun (y0, y1) -> [ y0; y1 ]) !cell
        in
        { word; outputs = !cell; spread = Q.spread values })
      !raw
    |> List.sort (fun a b -> Q.compare b.spread a.spread)
  in
  let max_spread =
    match buckets with [] -> Q.zero | b :: _ -> b.spread
  in
  {
    executions = !executions;
    buckets;
    max_spread;
    distinct_words = List.length buckets;
    search = result.Sched.Explore.stats;
  }

let third_process_error analysis = Q.mul Q.half analysis.max_spread

let coverage analysis =
  let values =
    List.concat_map
      (fun b -> List.concat_map (fun (y0, y1) -> [ y0; y1 ]) b.outputs)
      analysis.buckets
  in
  List.sort_uniq Q.compare values

type 'v witness = {
  word : 'v * 'v;
  low_schedule : int list;
  low_outputs : Q.t * Q.t;
  high_schedule : int list;
  high_outputs : Q.t * Q.t;
  best_third_decision : Q.t;
  forced_error : Q.t;
}

let witness proto =
  (* Re-explore with traces on, remembering per register word the
     executions with the lowest and highest decided value. *)
  let equal_word (a0, a1) (b0, b1) =
    proto.equal_value a0 b0 && proto.equal_value a1 b1
  in
  let extremes :
      (('v * 'v) * (Q.t * (int list * (Q.t * Q.t))) * _) list ref =
    ref []
  in
  let init () =
    Scheduler.start ~record_trace:true
      ~memory:(proto.memory ())
      ~programs:(fun pid -> proto.program ~me:pid ~input:pid)
      ()
  in
  let (_ : Sched.Explore.outcome) =
    Sched.Explore.interleavings ~max_steps:1_000_000 ~init (fun state ->
      let y0, y1 =
        match
          ((Scheduler.decisions state).(0), (Scheduler.decisions state).(1))
        with
        | Some a, Some b -> (a, b)
        | _ -> assert false
      in
      let contents = Sched.Memory.contents (Scheduler.memory state) in
      let word = (contents.(0), contents.(1)) in
      let schedule = Sched.Trace.schedule_of (Scheduler.trace state) in
      let lo = Q.min y0 y1 and hi = Q.max y0 y1 in
      let entry = (schedule, (y0, y1)) in
      let rec update = function
        | [] -> [ (word, (lo, entry), (hi, entry)) ]
        | (w, (best_lo, lo_e), (best_hi, hi_e)) :: rest
          when equal_word w word ->
            let low = if Q.(lo < best_lo) then (lo, entry) else (best_lo, lo_e)
            and high =
              if Q.(hi > best_hi) then (hi, entry) else (best_hi, hi_e)
            in
            (w, low, high) :: rest
        | other :: rest -> other :: update rest
      in
      extremes := update !extremes)
  in
  let best =
    List.fold_left
      (fun acc ((_, (lo, _), (hi, _)) as candidate) ->
        match acc with
        | None -> Some candidate
        | Some (_, (lo', _), (hi', _)) ->
            if Q.(sub hi lo > sub hi' lo') then Some candidate else acc)
      None !extremes
  in
  match best with
  | None -> invalid_arg "Lower_bound.witness: no executions"
  | Some (word, (lo, (low_schedule, low_outputs)), (hi, (high_schedule, high_outputs)))
    ->
      {
        word;
        low_schedule;
        low_outputs;
        high_schedule;
        high_outputs;
        best_third_decision = Q.mul Q.half (Q.add lo hi);
        forced_error = Q.mul Q.half (Q.sub hi lo);
      }

(* The quantized midpoint protocol: an s-bit register can publish one of
   2^s - 1 grid points (one codeword is reserved for "nothing written
   yet"). *)
let quantized_protocol ~bits ~rounds =
  if bits < 2 then invalid_arg "Lower_bound.quantized_protocol: bits >= 2";
  let levels = (1 lsl bits) - 1 in
  let empty = levels in
  let grid m = Q.make m (levels - 1) in
  (* Nearest grid index to v in [0,1]: round(v * (levels - 1)). *)
  let quantize v =
    let scaled = Q.mul v (Q.of_int (levels - 1)) in
    let lo = Q.num scaled / Q.den scaled in
    let m =
      if Q.(sub scaled (of_int lo) <= sub (of_int (lo + 1)) scaled) then lo
      else lo + 1
    in
    max 0 (min (levels - 1) m)
  in
  let program ~me ~input =
    let other = 1 - me in
    let rec run r v =
      if r > rounds then P.return v
      else
        let* () = P.write (quantize v) in
        let* seen = P.read other in
        if seen = empty then run (r + 1) v
        else run (r + 1) (Q.mul Q.half (Q.add v (grid seen)))
    in
    run 1 (Q.of_int input)
  in
  {
    name = Printf.sprintf "quantized(bits=%d,R=%d)" bits rounds;
    bits;
    memory =
      (fun () ->
        Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded bits)
          ~measure:(Bits.Width.uint ~max:empty) ~init:empty);
    program;
    equal_value = Int.equal;
    pp_value = Format.pp_print_int;
  }

let alg1_protocol ~k =
  {
    name = Printf.sprintf "alg1(k=%d)" k;
    bits = 1;
    memory =
      (fun () ->
        Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 1)
          ~measure:(Bits.Width.uint ~max:1) ~init:0);
    program =
      (fun ~me ~input ->
        Alg1_one_bit.protocol ~env:Alg1_one_bit.env_standalone ~k ~me ~input);
    equal_value = Int.equal;
    pp_value = Format.pp_print_int;
  }
