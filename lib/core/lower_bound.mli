(** The Section 4 impossibility (Theorem 1.1 / Proposition 4.1), made
    executable.

    The proof: in a t-resilient system with [t > n/2] and registers of [s]
    bits, run two processes to completion with inputs 0 and 1. Their final
    register word takes at most [2^(2s)] values, yet solving epsilon-agreement
    forces executions whose output pairs realize [1/(2 epsilon)] mutually
    exclusive sets [O_l = {l e, (l+1) e}]. By pigeonhole two conflicting
    executions leave {e identical} register words; a third process that wakes
    up after they finish cannot distinguish them, so whatever it decides is
    more than epsilon from some output it must match.

    This module runs that adversary against concrete two-process protocols:
    it enumerates {e all} their executions with inputs (0, 1), buckets the
    final states by register word, and reports the widest output spread
    within a single bucket — the error the third process cannot avoid.
    Theorem 1.1 predicts this spread cannot be pushed below
    [1 / 2^(2s + 1)] no matter the protocol; the experiment shows it for a
    family of protocols of increasing register width. *)

module Q := Bits.Rational

type 'v two_protocol = {
  name : string;
  bits : int;  (** register budget the protocol respects *)
  memory : unit -> ('v, int) Sched.Memory.t;  (** fresh 2-process memory *)
  program : me:int -> input:int -> ('v, int, Q.t) Sched.Program.t;
  equal_value : 'v -> 'v -> bool;
  pp_value : Format.formatter -> 'v -> unit;
}

val epsilon_threshold : bits:int -> n:int -> t:int -> Q.t
(** [1/k] for [k = 2 (2^bits)^(n-t+1) + 1] — the paper's setting of the
    agreement grain below which the pigeonhole argument bites. *)

type 'v bucket = {
  word : 'v * 'v;  (** final contents of (R_0, R_1) *)
  outputs : (Q.t * Q.t) list;  (** decision pairs of executions ending here *)
  spread : Q.t;  (** widest gap among all decisions in the bucket *)
}

type 'v analysis = {
  executions : int;  (** distinct terminal states visited *)
  buckets : 'v bucket list;  (** sorted by decreasing spread *)
  max_spread : Q.t;
  distinct_words : int;
  search : Sched.Explore.stats;  (** exploration-engine counters *)
}

val analyse : 'v two_protocol -> 'v analysis
(** Exhaustive over all interleavings of the two processes with inputs
    (0, 1); both processes run to decision. The engine merges converging
    interleavings, so [executions] counts distinct final states — the
    pigeonhole object itself — rather than schedules. *)

val third_process_error : 'v analysis -> Q.t
(** [max_spread / 2]: the best-possible worst-case distance between the
    third process's decision and some decision it must be within epsilon of.
    An epsilon below this value is therefore unachievable by {e this}
    protocol extended to three processes. *)

val coverage : 'v analysis -> Q.t list
(** All decision values observed, sorted ascending — Claim 4.1's output sets
    [O_l] must all be realized by a correct protocol, and for Algorithm 1
    they are. *)

type 'v witness = {
  word : 'v * 'v;  (** the register word both executions leave behind *)
  low_schedule : int list;  (** replayable schedule of the low execution *)
  low_outputs : Q.t * Q.t;
  high_schedule : int list;  (** replayable schedule of the high execution *)
  high_outputs : Q.t * Q.t;
  best_third_decision : Q.t;  (** the midpoint — optimal for the third process *)
  forced_error : Q.t;  (** its distance to the farthest output it must match *)
}

val witness : 'v two_protocol -> 'v witness
(** The theorem made concrete: two complete executions of the protocol
    (replayable with {!Sched.Scheduler.run_schedule}) that end with the same
    register word but outputs [forced_error * 2] apart. Whatever a third
    process decides after reading that word, it is at least [forced_error]
    from a decision it must be within epsilon of; the protocol's extension
    to three processes fails whenever [forced_error > epsilon]. *)

val quantized_protocol : bits:int -> rounds:int -> int two_protocol
(** A natural candidate family: the midpoint baseline with estimates
    quantized to [2^bits] levels before writing — the best an algorithm can
    publish through an s-bit register. As [bits] grows the unavoidable
    third-process error shrinks like [2^-bits], but for fixed [bits] no
    number of rounds pushes it to zero: the Theorem 1.1 phenomenon. *)

val alg1_protocol : k:int -> int two_protocol
(** Algorithm 1 as a [two_protocol] (1-bit registers). *)
