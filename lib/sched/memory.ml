(* Register-width telemetry: every write's bit-accounted size lands in
   one process-wide histogram, so the width/step trade-off curve can be
   read off a metrics snapshot. Fine-grained bounds at the small end —
   that is where the paper's registers (1, 3, 6, 3(t+1) bits) live.
   Gated on [Obs.Metrics.hot]: reads and writes are the explorer's inner
   loop, and the gate keeps its untelemetered throughput intact. *)
let width_hist =
  Obs.Metrics.histogram
    ~bounds:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 |]
    "sched.register_bits"

let m_writes = Obs.Metrics.counter "sched.writes"
let m_reads = Obs.Metrics.counter "sched.reads"

type ('v, 'i) t = {
  n : int;
  budget : Bits.Width.budget;
  measure : 'v Bits.Width.measure;
  untracked : bool;
      (* Unbounded budget with the canonical zero measure: no width to
         check, no maximum to bump, no histogram to feed. *)
  regs : 'v array;
  inputs : 'i option array;
  mutable reads : int;
  mutable writes : int;
  mutable max_bits : int;
}

let create ~n ~budget ~measure ~init =
  Bits.Width.check budget (measure init);
  let untracked =
    match budget with
    | Bits.Width.Unbounded ->
        (* [Bits.Width.unbounded] is a top-level constant closure, so
           physical equality identifies the canonical zero measure. *)
        measure == Bits.Width.unbounded
    | Bits.Width.Bounded _ -> false
  in
  {
    n;
    budget;
    measure;
    untracked;
    regs = Array.make n init;
    inputs = Array.make n None;
    reads = 0;
    writes = 0;
    max_bits = 0;
  }

let n t = t.n
let budget t = t.budget
let is_untracked t = t.untracked

let write_tracked t pid v =
  let bits = t.measure v in
  Bits.Width.check t.budget bits;
  if bits > t.max_bits then t.max_bits <- bits;
  t.regs.(pid) <- v;
  t.writes <- t.writes + 1;
  if !Obs.Metrics.hot then begin
    Obs.Metrics.inc m_writes;
    Obs.Metrics.observe width_hist bits
  end

let[@inline] write t ~pid v =
  if t.untracked && not !Obs.Metrics.hot then begin
    t.regs.(pid) <- v;
    t.writes <- t.writes + 1
  end
  else write_tracked t pid v

let read t j =
  t.reads <- t.reads + 1;
  if !Obs.Metrics.hot then Obs.Metrics.inc m_reads;
  t.regs.(j)

let[@inline] peek t j = t.regs.(j)

(* [j] comes from the scheduler's fused walk (a running pid) — in range
   by construction. *)
let[@inline] peek_trusted t j = Array.unsafe_get t.regs j

(* [poke]/[unpoke] pids come from the scheduler's fused walk, which only
   steps pids it started — in range by construction. *)
let[@inline] poke t ~pid v =
  Array.unsafe_set t.regs pid v;
  t.writes <- t.writes + 1

let[@inline] unpoke t ~pid ~old =
  Array.unsafe_set t.regs pid old;
  t.writes <- t.writes - 1

(* [poke_imm]/[unpoke_imm]: the caller has checked that both the stored
   value and the value it overwrites are runtime immediates
   ([Obj.is_int]), so the store needs no write barrier — neither the
   remembered set (nothing young is being pointed at) nor the deletion
   barrier (nothing white is being dropped) applies. The [int array] cast
   is sound for the same reason: an array observed to hold an immediate
   cannot be a flat float array. *)
let[@inline] poke_imm t ~pid v =
  Array.unsafe_set (Obj.magic t.regs : int array) pid (Obj.magic v : int);
  t.writes <- t.writes + 1

let[@inline] unpoke_imm t ~pid ~old =
  Array.unsafe_set (Obj.magic t.regs : int array) pid (Obj.magic old : int);
  t.writes <- t.writes - 1

let write_input t ~pid v =
  (match t.inputs.(pid) with
  | Some _ -> invalid_arg "Memory.write_input: input register is write-once"
  | None -> ());
  t.inputs.(pid) <- Some v

let read_input t j = t.inputs.(j)
let contents t = Array.copy t.regs

let copy t =
  { t with regs = Array.copy t.regs; inputs = Array.copy t.inputs }

let reads_performed t = t.reads
let writes_performed t = t.writes
let max_bits_written t = t.max_bits

let[@inline] unwrite t ~pid ~old ~old_max_bits =
  t.regs.(pid) <- old;
  t.writes <- t.writes - 1;
  t.max_bits <- old_max_bits

let[@inline] unread t = t.reads <- t.reads - 1
let[@inline] unwrite_input t pid = t.inputs.(pid) <- None
