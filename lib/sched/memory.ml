(* Register-width telemetry: every write's bit-accounted size lands in
   one process-wide histogram, so the width/step trade-off curve can be
   read off a metrics snapshot. Fine-grained bounds at the small end —
   that is where the paper's registers (1, 3, 6, 3(t+1) bits) live.
   Gated on [Obs.Metrics.hot]: reads and writes are the explorer's inner
   loop, and the gate keeps its untelemetered throughput intact. *)
let width_hist =
  Obs.Metrics.histogram
    ~bounds:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 |]
    "sched.register_bits"

let m_writes = Obs.Metrics.counter "sched.writes"
let m_reads = Obs.Metrics.counter "sched.reads"

type ('v, 'i) t = {
  n : int;
  budget : Bits.Width.budget;
  measure : 'v Bits.Width.measure;
  regs : 'v array;
  inputs : 'i option array;
  mutable reads : int;
  mutable writes : int;
  mutable max_bits : int;
}

let create ~n ~budget ~measure ~init =
  Bits.Width.check budget (measure init);
  {
    n;
    budget;
    measure;
    regs = Array.make n init;
    inputs = Array.make n None;
    reads = 0;
    writes = 0;
    max_bits = 0;
  }

let n t = t.n
let budget t = t.budget

let write t ~pid v =
  let bits = t.measure v in
  Bits.Width.check t.budget bits;
  if bits > t.max_bits then t.max_bits <- bits;
  t.regs.(pid) <- v;
  t.writes <- t.writes + 1;
  if !Obs.Metrics.hot then begin
    Obs.Metrics.inc m_writes;
    Obs.Metrics.observe width_hist bits
  end

let read t j =
  t.reads <- t.reads + 1;
  if !Obs.Metrics.hot then Obs.Metrics.inc m_reads;
  t.regs.(j)

let peek t j = t.regs.(j)

let write_input t ~pid v =
  (match t.inputs.(pid) with
  | Some _ -> invalid_arg "Memory.write_input: input register is write-once"
  | None -> ());
  t.inputs.(pid) <- Some v

let read_input t j = t.inputs.(j)
let contents t = Array.copy t.regs

let copy t =
  { t with regs = Array.copy t.regs; inputs = Array.copy t.inputs }

let reads_performed t = t.reads
let writes_performed t = t.writes
let max_bits_written t = t.max_bits

type ('v, 'i) undo =
  | U_none
  | U_write of { pid : int; old : 'v; old_max_bits : int }
  | U_read
  | U_write_input of int

let undo t = function
  | U_none -> ()
  | U_write { pid; old; old_max_bits } ->
      t.regs.(pid) <- old;
      t.writes <- t.writes - 1;
      t.max_bits <- old_max_bits
  | U_read -> t.reads <- t.reads - 1
  | U_write_input pid -> t.inputs.(pid) <- None
