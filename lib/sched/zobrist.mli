(** Incremental (Zobrist-style) hashing of exploration states.

    A state's hash is the XOR of one {!cell} contribution per
    observation-history entry. XOR is self-inverse, so the explorer
    maintains the hash in O(1) per step and per undo instead of
    rehashing the O(depth) history at every node. The contribution
    table is derived from a fixed seed at module initialization —
    hashes are identical across runs, processes, and domains, keeping
    fixed-seed traces byte-deterministic — and is immutable afterwards,
    so reads from parallel workers are race-free. *)

val cell : pid:int -> pos:int -> vhash:int -> int
(** The pseudo-random contribution of one observation cell: [pid] is
    the observing process, [pos] its per-process history position
    (0-based), [vhash] the {!value_hash} of the cell. Non-negative.
    Deterministic in its arguments. *)

val value_hash : 'a -> int
(** Structural hash of a cell value via [Hashtbl.hash_param 256 256] —
    unlike [Hashtbl.hash], which inspects at most 10 meaningful nodes
    and therefore conflates deep values, this distinguishes values
    differing anywhere in their first 256 nodes. Non-negative. *)

val table_size : int
(** Size of the seeded contribution table (a power of two). *)

val combine : int -> int -> int
(** [combine acc h] folds one element hash into a sequence hash —
    order-sensitive (unlike the explorer's self-inverse per-cell XOR) and
    deterministic across runs, processes and domains. The chaos fleet
    names terminal run states by folding {!value_hash}es of their history
    events through this; start from [0]. Non-negative. *)
