(** Exhaustive enumeration of schedules — the model-checking side of the
    simulator.

    Impossibility arguments in the paper quantify over {e all} executions;
    for small systems (2–3 processes, short protocols) we can visit all of
    them. The engine walks a single scheduler state depth-first, undoing
    steps on backtrack instead of copying the state per branch, merges
    interleavings that converge to the same canonical state, and prunes
    redundant orderings of commuting operations (sleep-set partial-order
    reduction). Together these preserve the set of reachable {e final}
    states — every distinct terminal state is still visited exactly once —
    while the number of explored nodes collapses from the full
    [C(2L, L) ~ 4^L] interleaving tree. {!interleavings_naive} is the
    original copy-per-branch walker, kept as the reference oracle for
    differential tests. See DESIGN.md "Exploration engine" for the
    soundness argument. *)

type stats = {
  nodes : int;  (** DFS nodes expanded (including terminals) *)
  terminals : int;  (** complete executions handed to the visitor *)
  deduped : int;  (** subtree re-entries skipped by the visited set *)
  pruned : int;  (** step branches skipped by sleep-set POR *)
  truncated : int;  (** paths abandoned at the step budget *)
  peak_depth : int;  (** deepest path, in memory steps *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val pp_stats : Format.formatter -> stats -> unit
(** One line: [nodes=… terminals=… deduped=… pruned=… truncated=…
    peak_depth=…] — the same keys as the [explore.*] metrics and the
    bench JSON, so every surface reports identical names. *)

val publish_stats : stats -> unit
(** Fold one run's tallies into the [explore.*] metrics registry (and
    count one run). [explore] does this itself unless [quiet]; the
    parallel driver publishes its merged totals through here so a
    partitioned run still registers as a single exploration. *)

type outcome =
  | Complete  (** every reachable terminal state was visited *)
  | Exhausted of exhausted
      (** a {!Budget} cap tripped first; the unvisited subtrees are on the
          frontier *)

and exhausted = {
  frontier : Budget.frontier;
      (** the root-to-subtree choice path of every part of the state space
          the budgeted run did not enter — serializable
          ({!Budget.frontier_to_string}) and resumable ([explore ~resume]) *)
  reason : Budget.stop_reason;
}

type result = { stats : stats; outcome : outcome }

val pp_outcome : Format.formatter -> outcome -> unit
(** [complete], or [exhausted (node-cap, 17 frontier paths)]. *)

val explore :
  ?max_steps:int ->
  ?max_crashes:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?budget:Budget.t ->
  ?resume:Budget.frontier ->
  ?clock:(unit -> float) ->
  ?quiet:bool ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  result
(** The engine. Visits every reachable terminal state (all processes decided
    or crashed) of every interleaving of the running processes, branching on
    crashing any running process before any step while fewer than
    [max_crashes] (default 0) have crashed. Crash branches are canonical:
    between two steps, crash pids only increase — the crash {e set} is what
    matters, not its order. [dedup] (default true) keys a visited set on the
    per-process observation histories; [por] (default true) enables
    sleep-set commutativity pruning. With both off the engine expands
    exactly the naive walker's tree (one terminal visit per schedule).
    Paths exceeding [max_steps] (default 10_000) memory steps are abandoned
    after calling [on_truncated] (default: nothing) — the guard against
    non-wait-free protocols.

    [budget] (default {!Budget.unlimited}) bounds the whole exploration:
    when its deadline, node cap, or terminal cap trips, no further subtree
    is entered and the result's outcome is [Exhausted] with the frontier of
    abandoned subtrees; the dedup-table cap degrades memoization instead of
    stopping. [resume] (a frontier from an earlier [Exhausted] result over
    the {e same} [init]) explores exactly the abandoned subtrees: chaining
    budgeted calls until [Complete] visits every terminal state a single
    unbudgeted call would have, and with [dedup]/[por] off the terminal
    counts partition exactly. [clock] (default: the shared {!Budget.now})
    is the deadline's time source, overridable for deterministic tests —
    the shared default means concurrent explorations judge the same
    deadline. [quiet] (default false) marks the call as an internal
    segment of a larger run: no span, no budget-trip instant, no registry
    publication — {!Par.explore} uses it for seed passes and per-unit
    worker calls and reports the merged whole once.

    The visitor receives the engine's single journaled state; it may read
    anything ({!Scheduler.decisions}, {!Scheduler.trace}, memory contents,
    step counts — all reflect exactly the current path) but must not step,
    crash, or undo it, and must not retain it after returning. *)

val interleavings :
  ?max_steps:int ->
  ?budget:Budget.t ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  outcome
(** [explore] with no crashes and the default reductions: the visitor runs
    once per distinct reachable final state, and the outcome says whether
    the enumeration was complete. Callers that need one visit per schedule
    (counting, probability weighting) use {!interleavings_naive} or
    [explore ~dedup:false ~por:false]. *)

val interleavings_with_crashes :
  ?max_steps:int ->
  ?budget:Budget.t ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  max_crashes:int ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  outcome
(** [explore ~max_crashes] keeping only the outcome. *)

val interleavings_naive :
  ?max_steps:int ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  unit
(** The original engine: fork the full state ({!Scheduler.copy}) at every
    branch, visit once per maximal schedule, no reductions. Kept as the
    reference oracle — the differential property tests assert the optimized
    engine reaches exactly the same terminal states. *)

val interleavings_with_crashes_naive :
  ?max_steps:int ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  max_crashes:int ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  unit
(** Copy-per-branch walker with crash branching (canonical increasing-pid
    crash order, so each crash set is enumerated once per position). *)

val find :
  ?max_steps:int ->
  ?budget:Budget.t ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> bool) ->
  ('v, 'i, 'a) Scheduler.state option * outcome
(** First complete crash-free execution satisfying the predicate. [None]
    paired with [Complete] means no such execution exists; [None] with
    [Exhausted _] means the budget tripped before the search could say. *)

val count :
  ?max_steps:int ->
  ?budget:Budget.t ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  unit ->
  int * outcome
(** Number of complete crash-free interleavings — schedules, not distinct
    states, so this runs with [dedup] and [por] off. The count is exact
    only when the outcome is [Complete]. *)
