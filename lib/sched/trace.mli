(** Step-level execution traces. *)

type 'v op =
  | Write of 'v  (** wrote own coordination register *)
  | Read of int * 'v  (** read register [j], obtaining the value *)
  | Write_input
  | Read_input of int
  | Crash
  | Decide

type 'v event = { pid : int; op : 'v op }

val pp_event :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v event -> unit

val pp :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v event list -> unit
(** One event per line, oldest first. *)

val schedule_of : 'v event list -> int list
(** The sequence of process ids of the memory steps in the trace (crash and
    decide events excluded) — feeding it back to
    {!Scheduler.run_schedule} replays the execution. *)

val crashes_of : 'v event list -> (int * int) list
(** Crash placements recoverable from the trace: [(pid, steps the process
    had taken when it crashed)], in crash order — the format
    {!Scheduler.run_random}'s [crashes] argument and the harness's replay
    mode consume. *)
