type ('v, 'i, 'a) t =
  | Return of 'a
  | Write of 'v * (unit -> ('v, 'i, 'a) t)
  | Read of int * ('v -> ('v, 'i, 'a) t)
  | Write_input of 'i * (unit -> ('v, 'i, 'a) t)
  | Read_input of int * ('i option -> ('v, 'i, 'a) t)
  | Output of 'a * (unit -> ('v, 'i, 'a) t)

let return x = Return x

let rec bind m f =
  match m with
  | Return x -> f x
  | Write (v, k) -> Write (v, fun () -> bind (k ()) f)
  | Read (j, k) -> Read (j, fun v -> bind (k v) f)
  | Write_input (i, k) -> Write_input (i, fun () -> bind (k ()) f)
  | Read_input (j, k) -> Read_input (j, fun v -> bind (k v) f)
  | Output (_, _) ->
      invalid_arg "Program.bind: cannot bind past an Output decision"

let map f m = bind m (fun x -> Return (f x))
let write v = Write (v, fun () -> Return ())
let read j = Read (j, fun v -> Return v)
let write_input i = Write_input (i, fun () -> Return ())
let read_input j = Read_input (j, fun v -> Return v)
let output a rest = Output (a, fun () -> rest)

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

open Infix

let collect n =
  let rec loop j acc =
    if j = n then Return (Array.of_list (List.rev acc))
    else
      let* v = read j in
      loop (j + 1) (v :: acc)
  in
  loop 0 []

let rec iter_list f = function
  | [] -> Return ()
  | x :: xs ->
      let* () = f x in
      iter_list f xs

(* {2 Step-compiled programs} *)

module Compiled = struct
  (* The free monad is the authoring surface; executing it allocates a
     fresh constructor (and runs a closure) per atomic step, every time
     the step runs — and the explorer runs the same program positions
     hundreds of thousands of times. Compilation lowers the monad into
     flat parallel arrays indexed by a program counter: one slot per
     {e reached} program position, opcode and register operand as ints,
     continuations resolved to slot indices. Lowering is lazy and
     memoized: the first execution of a position calls the free monad's
     continuation once and records where it went; every later execution
     is an int array read. Unconditional continuations (write, output)
     resolve to a single [next] index; value-dependent ones (the reads)
     memoize one index per distinct value read, keyed structurally —
     sound because programs are pure between steps, so a continuation
     applied to structurally equal values reaches structurally equal
     programs.

     A [code] value is mutable (it grows as new positions are reached)
     and therefore single-domain: share it freely across sequential
     runs and undo-based backtracking, never across [Domain]s. *)

  (* Opcodes. [op] is the scheduler's dispatch value; keep them dense. *)
  let op_write = 0
  let op_read = 1
  let op_write_input = 2
  let op_read_input = 3
  let op_return = 4
  let op_output = 5

  type ('v, 'i, 'a) payload =
    | P_read  (** reads carry no payload *)
    | P_write of 'v
    | P_write_input of 'i
    | P_decide of 'a option
        (** return / output; always [Some] — stored boxed so the scheduler
            announces a decision by writing this very block into its
            outputs array, instead of allocating a fresh [Some] on every
            one of the hundreds of thousands of re-executions *)

  (* The suspended continuation of a not-yet-resolved slot. Unit
     continuations are dropped once resolved (the closure and the
     program prefix it captures become garbage); read continuations are
     kept alongside their value memo since new values can always show
     up. *)
  type ('v, 'i, 'a) kont =
    | K_resolved
    | K_unit of (unit -> ('v, 'i, 'a) t)
    | K_read of ('v -> ('v, 'i, 'a) t) * ('v, int) Hashtbl.t
    | K_read_input of
        ('i option -> ('v, 'i, 'a) t) * ('i option, int) Hashtbl.t

  type ('v, 'i, 'a) code = {
    mutable ops : int array;  (** opcode per pc *)
    mutable regs : int array;  (** register operand (reads); 0 otherwise *)
    mutable nexts : int array;  (** resolved continuation pc, or -1 *)
    mutable pays : ('v, 'i, 'a) payload array;
    mutable konts : ('v, 'i, 'a) kont array;
    mutable len : int;
  }

  let length c = c.len

  let grow c =
    let cap = Array.length c.ops in
    let cap' = if cap = 0 then 16 else 2 * cap in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    c.ops <- extend c.ops 0;
    c.regs <- extend c.regs 0;
    c.nexts <- extend c.nexts (-1);
    c.pays <- extend c.pays P_read;
    c.konts <- extend c.konts K_resolved

  let add c ~op ~reg ~pay ~kont =
    if c.len = Array.length c.ops then grow c;
    let pc = c.len in
    c.ops.(pc) <- op;
    c.regs.(pc) <- reg;
    c.nexts.(pc) <- -1;
    c.pays.(pc) <- pay;
    c.konts.(pc) <- kont;
    c.len <- pc + 1;
    pc

  (* Lower the head of a program into a fresh slot, suspending its
     continuation. *)
  let enter c (p : ('v, 'i, 'a) t) =
    match p with
    | Return a ->
        add c ~op:op_return ~reg:0 ~pay:(P_decide (Some a)) ~kont:K_resolved
    | Write (v, k) -> add c ~op:op_write ~reg:0 ~pay:(P_write v) ~kont:(K_unit k)
    | Read (j, k) ->
        add c ~op:op_read ~reg:j ~pay:P_read
          ~kont:(K_read (k, Hashtbl.create 4))
    | Write_input (x, k) ->
        add c ~op:op_write_input ~reg:0 ~pay:(P_write_input x) ~kont:(K_unit k)
    | Read_input (j, k) ->
        add c ~op:op_read_input ~reg:j ~pay:P_read
          ~kont:(K_read_input (k, Hashtbl.create 4))
    | Output (a, k) ->
        add c ~op:op_output ~reg:0 ~pay:(P_decide (Some a)) ~kont:(K_unit k)

  let root = 0

  let of_program p =
    let c =
      { ops = [||]; regs = [||]; nexts = [||]; pays = [||]; konts = [||];
        len = 0 }
    in
    ignore (enter c p : int);
    c

  (* {3 Hot accessors — one array read each}

     Unsafe indexing: every pc handed to these comes from [root] or a
     [next_*] result, both of which are [add] return values and therefore
     [< len <= capacity]. The scheduler executes each one several times
     per edge of a walk with hundreds of thousands of edges, so the bounds
     checks are measurable. *)

  let[@inline] op c pc = Array.unsafe_get c.ops pc
  let[@inline] reg c pc = Array.unsafe_get c.regs pc

  let[@inline] write_value c pc =
    match Array.unsafe_get c.pays pc with
    | P_write v -> v
    | P_read | P_write_input _ | P_decide _ -> assert false

  let[@inline] input_value c pc =
    match Array.unsafe_get c.pays pc with
    | P_write_input x -> x
    | P_read | P_write _ | P_decide _ -> assert false

  let[@inline] decision c pc =
    match Array.unsafe_get c.pays pc with
    | P_decide (Some a) -> a
    | P_decide None | P_read | P_write _ | P_write_input _ -> assert false

  (* The decision as its compile-time [Some] block: storing it announces
     the decision without allocating. Never [None] at a decide slot. *)
  let[@inline] decision_some c pc =
    match Array.unsafe_get c.pays pc with
    | P_decide s -> s
    | P_read | P_write _ | P_write_input _ -> assert false

  (* Resolve an unconditional continuation: one int read after the first
     execution; the first execution runs the suspended closure once and
     drops it. The resolved case is split into an [@inline] wrapper so
     the steady state is two loads and a branch at the call site. *)
  let resolve_unit c pc =
    match c.konts.(pc) with
    | K_unit k ->
        let nx = enter c (k ()) in
        c.nexts.(pc) <- nx;
        c.konts.(pc) <- K_resolved;
        nx
    | K_resolved | K_read _ | K_read_input _ -> assert false

  let[@inline] next_unit c pc =
    let nx = Array.unsafe_get c.nexts pc in
    if nx >= 0 then nx else resolve_unit c pc

  (* Resolve a read continuation for the value just read: a memo probe
     (no allocation on the hit path) after the first time that value is
     seen at this position. *)
  let next_read c pc v =
    match c.konts.(pc) with
    | K_read (k, memo) -> (
        match Hashtbl.find memo v with
        | nx -> nx
        | exception Not_found ->
            let nx = enter c (k v) in
            Hashtbl.add memo v nx;
            nx)
    | K_resolved | K_unit _ | K_read_input _ -> assert false

  let next_read_input c pc v =
    match c.konts.(pc) with
    | K_read_input (k, memo) -> (
        match Hashtbl.find memo v with
        | nx -> nx
        | exception Not_found ->
            let nx = enter c (k v) in
            Hashtbl.add memo v nx;
            nx)
    | K_resolved | K_unit _ | K_read _ -> assert false
end

let compile = Compiled.of_program
