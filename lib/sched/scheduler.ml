type 'a status = Running | Decided of 'a | Crashed

module C = Program.Compiled

(* Execution runs over the step-compiled form ({!Program.Compiled}): a
   process's suspended program is an int program counter into its
   compiled code, so a step is opcode dispatch plus a couple of array
   stores — no constructor or closure allocation per atomic op. [start]
   compiles the free-monad programs it is given; [start_compiled] reuses
   code compiled earlier (single-domain reuse only — compiled code
   memoizes in place).

   The undo journal is a flat column arena rather than a list of entry
   records: one slot per {!step}/{!crash} spread over parallel arrays
   (kind, pid, old pc, old write value, old width statistic, old output,
   old trace head). A mark is the arena cursor; undoing rewinds the
   cursor, replaying slots in reverse. A step changes at most: the
   process's pc, its status/output (via [settle]), the trace head, one
   memory cell and the memory counters, and the two step counters — so
   a slot is O(1) to write and to revert, and pushing one allocates
   nothing (growth is amortized doubling). *)

(* Statuses live in an int array ([s_running]/[s_decided]/[s_crashed]),
   not an ['a status array]: the hot loop then never allocates a
   [Decided] block or pays a [caml_modify] write barrier to flip a
   status, and the public {!status} view is reconstructed on demand — a
   decided process's pc still sits on its [Return] slot, so the decision
   value is one payload read away. [running] caches the running-pid
   bitmask ({!running_mask} is a field read); it is maintained by
   [settle], [crash] and [undo_to] and meaningful for [pid < Sys.int_size]
   like the mask itself. *)
type ('v, 'i, 'a) state = {
  mem : ('v, 'i) Memory.t;
  code : ('v, 'i, 'a) C.code array;  (* per pid; may share elements *)
  pcs : int array;
  status : int array;
  mutable running : int;
  (* Announced decisions, as the pc of the [Return]/[Output] slot whose
     payload holds the value ([-1] = none yet). An int store per decide
     instead of a [Some] store into an ['a option array] — no write
     barrier on the explorer's final edges; the option view is
     reconstructed on demand from the payload's compile-time [Some]
     block, so reading allocates nothing either. *)
  out_pcs : int array;
  step_counts : int array;
  mutable total_steps : int;
  mutable events : 'v Trace.event list;
  record_trace : bool;
  mutable journaling : bool;
  (* journal columns; all the same capacity, [j_len] slots live *)
  mutable j_kind : int array;
  mutable j_pid : int array;
  mutable j_pc : int array;
  mutable j_bits : int array;
  mutable j_val : 'v array;
  mutable j_events : 'v Trace.event list array;
  mutable j_len : int;
}

let s_running = 0
let s_decided = 1
let s_crashed = 2

(* Journal slot kinds, in the low bits of [j_kind]. [k_decided_bit] is
   ORed in when the step's [settle] announced the process's decision
   (outputs transition once, [-1] to a payload pc, so undoing such a step
   just resets the slot's pid to [-1] — no old-output column needed).
   The trace-head column [j_events] is only written and restored when
   [record_trace] is on: an untraced run's event list is always [], and
   skipping the store also skips its write barrier in the hot loop. *)
let k_read = 0
let k_write = 1
let k_write_input = 2
let k_read_input = 3
let k_crash = 4
let k_base_mask = 7
let k_decided_bit = 8

let m_steps = Obs.Metrics.counter "sched.steps"
let m_crashes = Obs.Metrics.counter "sched.crashes"
let m_decides = Obs.Metrics.counter "sched.decides"

(* Per-operation timeline events, one track per pid. Values are
   polymorphic and stay out of the trace; Sched.Trace still carries them
   for callers that record it. Gated on the sink so the disabled cost is
   the one branch in [record]. *)
let emit_op pid (op : _ Trace.op) =
  let name, args =
    match op with
    | Trace.Write _ -> ("write", [])
    | Trace.Read (j, _) -> ("read", [ ("reg", Obs.Json.Int j) ])
    | Trace.Write_input -> ("write_input", [])
    | Trace.Read_input j -> ("read_input", [ ("reg", Obs.Json.Int j) ])
    | Trace.Crash -> ("crash", [])
    | Trace.Decide -> ("decide", [])
  in
  Obs.Span.instant ~cat:"sched" ~track:pid ~args name

let record t pid op =
  if t.record_trace then t.events <- { Trace.pid; op } :: t.events;
  if Obs.Sink.enabled () then emit_op pid op

(* [Write]/[Read] ops carry values, so building one allocates. The
   exhaustive explorer runs with tracing and the sink both off and takes
   these paths hundreds of thousands of times per run — the op is only
   constructed once a consumer exists ([!Obs.Sink.active] is the
   call-free spelling of [Sink.enabled ()]). *)
let record_write t pid v =
  if t.record_trace || !Obs.Sink.active then record t pid (Trace.Write v)

let record_read t pid j v =
  if t.record_trace || !Obs.Sink.active then record t pid (Trace.Read (j, v))

(* [Return] and [Output] heads need no memory step: deciding is local.
   When the settled step is journaled (its slot is [j_len - 1] — [step]
   pushes the slot before settling), a [None -> Some] output transition
   marks that slot with [k_decided_bit] so undo can reset the output. *)
let mark_decided t =
  if t.journaling then begin
    let l = t.j_len - 1 in
    t.j_kind.(l) <- t.j_kind.(l) lor k_decided_bit
  end

let rec settle t pid =
  let code = t.code.(pid) in
  let pc = t.pcs.(pid) in
  let op = C.op code pc in
  if op = C.op_return then begin
    t.status.(pid) <- s_decided;
    t.running <- t.running land lnot (1 lsl pid);
    if t.out_pcs.(pid) < 0 then begin
      t.out_pcs.(pid) <- pc;
      mark_decided t
    end;
    if !Obs.Metrics.hot then Obs.Metrics.inc m_decides;
    if t.record_trace || !Obs.Sink.active then record t pid Trace.Decide
  end
  else if op = C.op_output then begin
    if t.out_pcs.(pid) < 0 then begin
      t.out_pcs.(pid) <- pc;
      mark_decided t;
      if !Obs.Metrics.hot then Obs.Metrics.inc m_decides;
      if t.record_trace || !Obs.Sink.active then record t pid Trace.Decide
    end;
    t.pcs.(pid) <- C.next_unit code pc;
    settle t pid
  end

let start_compiled ?(record_trace = false) ~memory ~programs () =
  let n = Memory.n memory in
  let t =
    {
      mem = memory;
      code = Array.init n programs;
      pcs = Array.make n C.root;
      status = Array.make n s_running;
      running = (if n >= Sys.int_size then -1 else (1 lsl n) - 1);
      out_pcs = Array.make n (-1);
      step_counts = Array.make n 0;
      total_steps = 0;
      events = [];
      record_trace;
      journaling = false;
      j_kind = [||];
      j_pid = [||];
      j_pc = [||];
      j_bits = [||];
      j_val = [||];
      j_events = [||];
      j_len = 0;
    }
  in
  for pid = 0 to n - 1 do
    settle t pid
  done;
  t

let start ?record_trace ~memory ~programs () =
  start_compiled ?record_trace ~memory
    ~programs:(fun pid -> Program.compile (programs pid))
    ()

let memory t = t.mem
let n t = Memory.n t.mem

(* Grow every journal column together. The value column needs a fill
   element of type ['v]; any live register supplies one ([pid] indexes a
   process that is mid-step, so the memory is nonempty). *)
let grow_journal t pid =
  let cap = Array.length t.j_kind in
  let cap' = if cap = 0 then 256 else 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.j_kind <- extend t.j_kind 0;
  t.j_pid <- extend t.j_pid 0;
  t.j_pc <- extend t.j_pc 0;
  t.j_bits <- extend t.j_bits 0;
  t.j_val <- extend t.j_val (Memory.peek t.mem pid);
  t.j_events <- extend t.j_events []

let step t pid =
  if t.status.(pid) <> s_running then
    invalid_arg (Printf.sprintf "Scheduler.step: process %d halted" pid);
  let code = t.code.(pid) in
  let pc = t.pcs.(pid) in
  let op = C.op code pc in
  let journaling = t.journaling in
  let l = t.j_len in
  (* Journal-column writes at [l] use unsafe indexing: the grow check
     just above guarantees [l < capacity], and every column shares that
     capacity. [pid] was bounds-checked by the status guard. *)
  if journaling then begin
    if l = Array.length t.j_kind then grow_journal t pid;
    Array.unsafe_set t.j_pid l pid;
    Array.unsafe_set t.j_pc l pc;
    if t.record_trace then t.j_events.(l) <- t.events;
    t.j_len <- l + 1
  end;
  if op = C.op_write then begin
    if journaling then begin
      Array.unsafe_set t.j_kind l k_write;
      t.j_val.(l) <- Memory.peek t.mem pid;
      Array.unsafe_set t.j_bits l (Memory.max_bits_written t.mem)
    end;
    let v = C.write_value code pc in
    Memory.write t.mem ~pid v;
    record_write t pid v;
    t.pcs.(pid) <- C.next_unit code pc
  end
  else if op = C.op_read then begin
    if journaling then Array.unsafe_set t.j_kind l k_read;
    let j = C.reg code pc in
    let v = Memory.read t.mem j in
    record_read t pid j v;
    t.pcs.(pid) <- C.next_read code pc v
  end
  else if op = C.op_write_input then begin
    if journaling then Array.unsafe_set t.j_kind l k_write_input;
    Memory.write_input t.mem ~pid (C.input_value code pc);
    record t pid Trace.Write_input;
    t.pcs.(pid) <- C.next_unit code pc
  end
  else if op = C.op_read_input then begin
    if journaling then Array.unsafe_set t.j_kind l k_read_input;
    let j = C.reg code pc in
    let v = Memory.read_input t.mem j in
    record t pid (Trace.Read_input j);
    t.pcs.(pid) <- C.next_read_input code pc v
  end
  else assert false (* Return/Output heads are settled away *);
  t.step_counts.(pid) <- t.step_counts.(pid) + 1;
  t.total_steps <- t.total_steps + 1;
  if !Obs.Metrics.hot then Obs.Metrics.inc m_steps;
  (* [settle] only acts on [Return]/[Output] heads ([op >= op_return]);
     checking here keeps non-final steps call-free. *)
  if C.op code t.pcs.(pid) >= C.op_return then settle t pid

let crash t pid =
  if t.status.(pid) <> s_running then
    invalid_arg (Printf.sprintf "Scheduler.crash: process %d halted" pid);
  if t.journaling then begin
    let l = t.j_len in
    if l = Array.length t.j_kind then grow_journal t pid;
    t.j_kind.(l) <- k_crash;
    t.j_pid.(l) <- pid;
    if t.record_trace then t.j_events.(l) <- t.events;
    t.j_len <- l + 1
  end;
  t.status.(pid) <- s_crashed;
  t.running <- t.running land lnot (1 lsl pid);
  if !Obs.Metrics.hot then Obs.Metrics.inc m_crashes;
  record t pid Trace.Crash

(* {2 Undo journal} *)

type journal_mark = int

let enable_journal t = t.journaling <- true
let journal_mark t = t.j_len

let undo_to t m =
  if m > t.j_len || m < 0 then
    invalid_arg "Scheduler.undo_to: mark is not in the journal";
  (* Unsafe journal-column reads: [l < j_len <= capacity] throughout. *)
  while t.j_len > m do
    let l = t.j_len - 1 in
    t.j_len <- l;
    let pid = Array.unsafe_get t.j_pid l in
    let kind = Array.unsafe_get t.j_kind l in
    let base = kind land k_base_mask in
    (* The status before any journaled step or crash is [s_running]. *)
    if base = k_crash then begin
      t.status.(pid) <- s_running;
      t.running <- t.running lor (1 lsl pid);
      if t.record_trace then t.events <- t.j_events.(l)
    end
    else begin
      t.pcs.(pid) <- Array.unsafe_get t.j_pc l;
      t.status.(pid) <- s_running;
      t.running <- t.running lor (1 lsl pid);
      (* Outputs transition once ([-1] -> a payload pc), so the decided
         bit is a full inverse: the pre-step output was necessarily
         unset. *)
      if kind land k_decided_bit <> 0 then t.out_pcs.(pid) <- -1;
      if t.record_trace then t.events <- t.j_events.(l);
      t.step_counts.(pid) <- t.step_counts.(pid) - 1;
      t.total_steps <- t.total_steps - 1;
      if base = k_write then
        Memory.unwrite t.mem ~pid ~old:(t.j_val.(l))
          ~old_max_bits:(Array.unsafe_get t.j_bits l)
      else if base = k_read then Memory.unread t.mem
      else if base = k_write_input then Memory.unwrite_input t.mem pid
    end
  done

(* {2 Fused raw exploration}

   The explorer's raw mode (no dedup, no POR, no budget, no trace, no
   crash budget left) is a pure depth-first product walk: step, recurse,
   undo. Driving it through {!step}/{!undo_to} pays the journal arena a
   full slot of stores and loads per edge, plus cross-module calls, for
   undo state that is only ever consumed by the matching undo one frame
   up. [raw_dfs] fuses the walk: each frame keeps the undo data (old pc,
   overwritten register value, width statistic, output transition) in
   locals on the OCaml stack and reverts in place, so an edge touches no
   journal at all. Journaling is suspended for the duration (the walk
   pushes nothing, and [settle]'s decided-bit marking must not touch a
   caller's older slots); any enclosing journal (e.g. a replayed parallel
   prefix) is untouched and still undoable afterwards, because the walk
   restores the state exactly.

   Observable behavior matches the journaled walk: same visit order,
   same counters and metrics, same sink events. Requires an untraced
   state ([record_trace = false]) — the caller gates on
   {!recording_trace}. *)

let raw_dfs t ~depth ~max_depth ~visit ~on_truncated =
  if t.record_trace then invalid_arg "Scheduler.raw_dfs: state records traces";
  let terminals = ref 0 and truncated = ref 0 in
  let peak = ref depth in
  let n = Array.length t.status in
  (* Metrics/sink gates are snapshotted once per walk (the journaled path
     polls them per step): a walk is one uninterrupted call, and nothing
     in this codebase toggles either mid-exploration. *)
  let hot = !Obs.Metrics.hot in
  let sink = !Obs.Sink.active in
  (* Untracked memory with metrics cold: writes go through
     {!Memory.poke} — the [is_untracked]/hot test is paid once here
     instead of on every edge inside {!Memory.write}. *)
  let fast = Memory.is_untracked t.mem && not hot in
  (* The arrays below are immutable fields of [t] (only the journal
     columns are ever replaced, and the walk does not touch them):
     hoisting them drops a dependent field load from every access in
     the loop. [running]/[total_steps] are mutable fields and stay
     behind [t]. *)
  let mem = t.mem in
  let codes = t.code in
  let pcs = t.pcs in
  let status = t.status in
  let out_pcs = t.out_pcs in
  let steps = t.step_counts in
  (* [acc] threads the node count through the recursion as a register
     instead of a heap ref bumped per node. [peak] only needs updating at
     leaves: the deepest node of any walk ends a path. *)
  let rec go depth acc =
    let mask = t.running in
    if mask = 0 then begin
      incr terminals;
      if depth > !peak then peak := depth;
      visit t depth;
      acc + 1
    end
    else if depth >= max_depth then begin
      incr truncated;
      if depth > !peak then peak := depth;
      on_truncated t;
      acc + 1
    end
    else over mask 0 depth (acc + 1)
  and over mask p depth acc =
    if p >= n then acc
    else
      over mask (p + 1) depth
        (if mask land (1 lsl p) <> 0 then child p depth acc else acc)
  (* Execute process [p]'s next op, recurse ([descend]), revert — the
     op's inverse operands live in this frame. Mirrors {!step} exactly
     (including metrics and sink events), minus the journal pushes. *)
  and child p depth acc =
    let code = Array.unsafe_get codes p in
    let pc = Array.unsafe_get pcs p in
    let op = C.op code pc in
    Array.unsafe_set steps p (Array.unsafe_get steps p + 1);
    t.total_steps <- t.total_steps + 1;
    if hot then Obs.Metrics.inc m_steps;
    if op = C.op_write then begin
      let old_v = Memory.peek_trusted mem p in
      let v = C.write_value code pc in
      (* When both the new and the overwritten value are immediates the
         store (and its inverse below) can skip the write barrier — on
         int-valued protocols that is every edge of the walk. *)
      let imm =
        fast && Obj.is_int (Obj.repr v) && Obj.is_int (Obj.repr old_v)
      in
      let old_bits = if imm then 0 else Memory.max_bits_written mem in
      if imm then Memory.poke_imm mem ~pid:p v
      else if fast then Memory.poke mem ~pid:p v
      else Memory.write mem ~pid:p v;
      if sink then record t p (Trace.Write v);
      let nx = C.next_unit code pc in
      Array.unsafe_set pcs p nx;
      let acc = descend code nx p depth acc in
      Array.unsafe_set pcs p pc;
      if imm then Memory.unpoke_imm mem ~pid:p ~old:old_v
      else if fast then Memory.unpoke mem ~pid:p ~old:old_v
      else Memory.unwrite mem ~pid:p ~old:old_v ~old_max_bits:old_bits;
      unstep p acc
    end
    else if op = C.op_read then begin
      let j = C.reg code pc in
      let v = Memory.read mem j in
      if sink then record t p (Trace.Read (j, v));
      let nx = C.next_read code pc v in
      Array.unsafe_set pcs p nx;
      let acc = descend code nx p depth acc in
      Array.unsafe_set pcs p pc;
      Memory.unread mem;
      unstep p acc
    end
    else if op = C.op_write_input then begin
      Memory.write_input mem ~pid:p (C.input_value code pc);
      if sink then record t p Trace.Write_input;
      let nx = C.next_unit code pc in
      Array.unsafe_set pcs p nx;
      let acc = descend code nx p depth acc in
      Array.unsafe_set pcs p pc;
      Memory.unwrite_input mem p;
      unstep p acc
    end
    else begin
      (* op_read_input: reads an input register, no memory counter *)
      let j = C.reg code pc in
      let v = Memory.read_input mem j in
      if sink then record t p (Trace.Read_input j);
      let nx = C.next_read_input code pc v in
      Array.unsafe_set pcs p nx;
      let acc = descend code nx p depth acc in
      Array.unsafe_set pcs p pc;
      unstep p acc
    end
  (* Revert the step-counter bump; tail position of every child branch. *)
  and unstep p acc =
    Array.unsafe_set steps p (Array.unsafe_get steps p - 1);
    t.total_steps <- t.total_steps - 1;
    acc
  (* Recurse below a step that moved [p]'s pc to [nx]. A landing op
     below [op_return] leaves [p] running, so that child node cannot be
     terminal: only the depth gate applies before fanning out ([go]'s
     mask test is dead there and skipped). Final edges settle first. *)
  and descend code nx p depth acc =
    let opn = C.op code nx in
    if opn >= C.op_return then settled opn nx p depth acc
    else begin
      let d1 = depth + 1 in
      if d1 >= max_depth then begin
        incr truncated;
        if d1 > !peak then peak := d1;
        on_truncated t;
        acc + 1
      end
      else over t.running 0 d1 (acc + 1)
    end
  (* The step landed on the Return/Output head [pc] (opcode [opn]):
     settle the decision, recurse, revert. [settle] with journaling
     suspended touches exactly: status, the running mask, outputs (once,
     unset -> a payload pc), pc (over Output heads — covered by the
     caller's pc restore), and metrics/sink. *)
  and settled opn pc p depth acc =
    let had_output = Array.unsafe_get out_pcs p >= 0 in
    (* The landing head is a plain [Return] on every final edge of a
       non-[Output] protocol; with telemetry cold its settle is three
       stores, inlined here along with [go] on the already-known mask,
       and the undo is unconditional (the status certainly flipped).
       [Output] chains and live telemetry take the general [settle]
       (journaling is off, so [mark_decided] is inert either way). *)
    if opn = C.op_return && (not hot) && not sink then begin
      let mask = t.running land lnot (1 lsl p) in
      Array.unsafe_set status p s_decided;
      t.running <- mask;
      if not had_output then Array.unsafe_set out_pcs p pc;
      let d1 = depth + 1 in
      let acc =
        if mask = 0 then begin
          incr terminals;
          if d1 > !peak then peak := d1;
          visit t d1;
          acc + 1
        end
        else if d1 >= max_depth then begin
          incr truncated;
          if d1 > !peak then peak := d1;
          on_truncated t;
          acc + 1
        end
        else over mask 0 d1 (acc + 1)
      in
      Array.unsafe_set status p s_running;
      t.running <- t.running lor (1 lsl p);
      if not had_output then Array.unsafe_set out_pcs p (-1);
      acc
    end
    else begin
      settle t p;
      let acc = go (depth + 1) acc in
      if Array.unsafe_get status p <> s_running then begin
        Array.unsafe_set status p s_running;
        t.running <- t.running lor (1 lsl p)
      end;
      (* [settle] on a Return/Output head with no prior output always
         announces one, so [not had_output] pins the inverse. *)
      if not had_output then Array.unsafe_set out_pcs p (-1);
      acc
    end
  in
  let journaling = t.journaling in
  t.journaling <- false;
  let nodes =
    Fun.protect
      ~finally:(fun () -> t.journaling <- journaling)
      (fun () -> go depth 0)
  in
  (nodes, !terminals, !truncated, !peak)

let recording_trace t = t.record_trace

(* {2 Inspection} *)

type op_view =
  | Op_write
  | Op_read of int
  | Op_write_input
  | Op_read_input of int
  | Op_halted

let peek t pid =
  if t.status.(pid) <> s_running then Op_halted
  else begin
    let code = t.code.(pid) in
    let pc = t.pcs.(pid) in
    let op = C.op code pc in
    if op = C.op_write then Op_write
    else if op = C.op_read then Op_read (C.reg code pc)
    else if op = C.op_write_input then Op_write_input
    else if op = C.op_read_input then Op_read_input (C.reg code pc)
    else assert false (* settled *)
  end

let is_running t pid = t.status.(pid) = s_running

(* Reconstruct the variant view: a decided process's pc rests on its
   [Return] slot, whose payload is the decision. *)
let status t pid =
  let s = t.status.(pid) in
  if s = s_running then Running
  else if s = s_crashed then Crashed
  else Decided (C.decision t.code.(pid) t.pcs.(pid))

let iter_running t f =
  for pid = 0 to n t - 1 do
    if t.status.(pid) = s_running then f pid
  done

(* Bitmask of running pids: maintained incrementally (one bit flip per
   decide, crash, or undo slot), so the explorer's per-node enabled-set
   query is a field read. *)
let running_mask t = t.running

let running_count t =
  let c = ref 0 in
  for pid = 0 to n t - 1 do
    if t.status.(pid) = s_running then incr c
  done;
  !c

let running t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    if t.status.(pid) = s_running then acc := pid :: !acc
  done;
  !acc

let all_halted t = running_count t = 0

(* The option view of one announced decision: the payload's compile-time
   [Some] block, so no allocation. *)
let output t pid =
  let o = t.out_pcs.(pid) in
  if o < 0 then None else C.decision_some t.code.(pid) o

let decisions t = Array.init (n t) (output t)

let decided_values t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    match output t pid with Some v -> acc := v :: !acc | None -> ()
  done;
  !acc

(* Every non-crashed process has announced a decision (via [Return] or
   [Output]). *)
let all_output t =
  let ok = ref true in
  for pid = 0 to n t - 1 do
    if t.status.(pid) <> s_crashed && t.out_pcs.(pid) < 0 then ok := false
  done;
  !ok

let crashed t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    if t.status.(pid) = s_crashed then acc := pid :: !acc
  done;
  !acc

let steps_taken t = t.total_steps
let steps_of t pid = t.step_counts.(pid)
let trace t = List.rev t.events

let copy t =
  {
    t with
    mem = Memory.copy t.mem;
    (* Compiled code is shared, not copied: it is an append-only memo of
       the programs themselves, identical for every fork, and sharing it
       lets forks reuse positions the original already compiled. (Like
       the original, a copy must stay within one domain.) *)
    pcs = Array.copy t.pcs;
    status = Array.copy t.status;
    out_pcs = Array.copy t.out_pcs;
    step_counts = Array.copy t.step_counts;
    (* The copy cannot rewind past its creation point, and sharing the
       journal arena would corrupt it on divergent pushes. *)
    j_kind = [||];
    j_pid = [||];
    j_pc = [||];
    j_bits = [||];
    j_val = [||];
    j_events = [||];
    j_len = 0;
  }

let run_schedule t pids =
  List.iter (fun pid -> if t.status.(pid) = s_running then step t pid) pids

let run_round_robin ?(max_steps = 1_000_000) t =
  let budget = ref max_steps in
  let continue_ = ref true in
  while !continue_ && running_count t > 0 do
    iter_running t (fun pid ->
        if !budget > 0 && is_running t pid then begin
          step t pid;
          decr budget
        end);
    if !budget <= 0 then continue_ := false
  done

let run_random ?(max_steps = 1_000_000) ?(crashes = []) ?(until_outputs = false)
    rng t =
  let crash_after = Array.make (n t) max_int in
  List.iter (fun (pid, after) -> crash_after.(pid) <- after) crashes;
  let maybe_crash pid =
    is_running t pid && t.step_counts.(pid) >= crash_after.(pid)
  in
  let budget = ref max_steps in
  let rec loop () =
    List.iter (fun pid -> if maybe_crash pid then crash t pid) (running t);
    if not (until_outputs && all_output t) then
      match running t with
      | [] -> ()
      | procs ->
          if !budget > 0 then begin
            step t (Bits.Rng.pick rng procs);
            decr budget;
            loop ()
          end
  in
  loop ()

let run_solo ?(max_steps = 1_000_000) t pid =
  let budget = ref max_steps in
  while is_running t pid && !budget > 0 do
    step t pid;
    decr budget
  done
