type 'a status = Running | Decided of 'a | Crashed

(* One journal entry per {!step}/{!crash} when journaling is on. A step
   changes at most: the process's program, its status/output (via [settle]),
   the trace head, one memory cell and the memory counters, and the two step
   counters — so reverting is O(1) regardless of system size. *)
type ('v, 'i, 'a) undo_entry =
  | U_step of {
      pid : int;
      old_prog : ('v, 'i, 'a) Program.t;
      old_status : 'a status;
      old_output : 'a option;
      old_events : 'v Trace.event list;
      mem_undo : ('v, 'i) Memory.undo;
    }
  | U_crash of { pid : int; old_events : 'v Trace.event list }

type ('v, 'i, 'a) state = {
  mem : ('v, 'i) Memory.t;
  progs : ('v, 'i, 'a) Program.t array;
  status : 'a status array;
  outputs : 'a option array;
  step_counts : int array;
  mutable total_steps : int;
  mutable events : 'v Trace.event list;
  record_trace : bool;
  mutable journaling : bool;
  mutable journal : ('v, 'i, 'a) undo_entry array;
  mutable journal_len : int;
}

let m_steps = Obs.Metrics.counter "sched.steps"
let m_crashes = Obs.Metrics.counter "sched.crashes"
let m_decides = Obs.Metrics.counter "sched.decides"

(* Per-operation timeline events, one track per pid. Values are
   polymorphic and stay out of the trace; Sched.Trace still carries them
   for callers that record it. Gated on the sink so the disabled cost is
   the one branch in [record]. *)
let emit_op pid (op : _ Trace.op) =
  let name, args =
    match op with
    | Trace.Write _ -> ("write", [])
    | Trace.Read (j, _) -> ("read", [ ("reg", Obs.Json.Int j) ])
    | Trace.Write_input -> ("write_input", [])
    | Trace.Read_input j -> ("read_input", [ ("reg", Obs.Json.Int j) ])
    | Trace.Crash -> ("crash", [])
    | Trace.Decide -> ("decide", [])
  in
  Obs.Span.instant ~cat:"sched" ~track:pid ~args name

let record t pid op =
  if t.record_trace then t.events <- { Trace.pid; op } :: t.events;
  if Obs.Sink.enabled () then emit_op pid op

(* [Write]/[Read] ops carry values, so building one allocates. The
   exhaustive explorer runs with tracing and the sink both off and takes
   these paths hundreds of thousands of times per run — the op is only
   constructed once a consumer exists ([!Obs.Sink.active] is the
   call-free spelling of [Sink.enabled ()]). *)
let record_write t pid v =
  if t.record_trace || !Obs.Sink.active then record t pid (Trace.Write v)

let record_read t pid j v =
  if t.record_trace || !Obs.Sink.active then record t pid (Trace.Read (j, v))

(* [Return] and [Output] heads need no memory step: deciding is local. *)
let rec settle t pid =
  match t.progs.(pid) with
  | Program.Return v ->
      t.status.(pid) <- Decided v;
      if t.outputs.(pid) = None then t.outputs.(pid) <- Some v;
      if !Obs.Metrics.hot then Obs.Metrics.inc m_decides;
      record t pid Trace.Decide
  | Program.Output (v, k) ->
      if t.outputs.(pid) = None then begin
        t.outputs.(pid) <- Some v;
        if !Obs.Metrics.hot then Obs.Metrics.inc m_decides;
        record t pid Trace.Decide
      end;
      t.progs.(pid) <- k ();
      settle t pid
  | Program.Write _ | Program.Read _ | Program.Write_input _
  | Program.Read_input _ ->
      ()

let start ?(record_trace = false) ~memory ~programs () =
  let n = Memory.n memory in
  let t =
    {
      mem = memory;
      progs = Array.init n programs;
      status = Array.make n Running;
      outputs = Array.make n None;
      step_counts = Array.make n 0;
      total_steps = 0;
      events = [];
      record_trace;
      journaling = false;
      journal = [||];
      journal_len = 0;
    }
  in
  for pid = 0 to n - 1 do
    settle t pid
  done;
  t

let memory t = t.mem
let n t = Memory.n t.mem

let push_entry t e =
  let cap = Array.length t.journal in
  if t.journal_len = cap then begin
    let grown = Array.make (if cap = 0 then 64 else 2 * cap) e in
    Array.blit t.journal 0 grown 0 cap;
    t.journal <- grown
  end;
  t.journal.(t.journal_len) <- e;
  t.journal_len <- t.journal_len + 1

let step t pid =
  (match t.status.(pid) with
  | Running -> ()
  | Decided _ | Crashed ->
      invalid_arg (Printf.sprintf "Scheduler.step: process %d halted" pid));
  let journaling = t.journaling in
  let old_prog = t.progs.(pid)
  and old_output = t.outputs.(pid)
  and old_events = t.events in
  let mem_undo =
    match t.progs.(pid) with
    | Program.Return _ | Program.Output _ -> assert false (* settled away *)
    | Program.Write (v, k) ->
        let u =
          if journaling then
            Memory.U_write
              {
                pid;
                old = Memory.peek t.mem pid;
                old_max_bits = Memory.max_bits_written t.mem;
              }
          else Memory.U_none
        in
        Memory.write t.mem ~pid v;
        record_write t pid v;
        t.progs.(pid) <- k ();
        u
    | Program.Read (j, k) ->
        let v = Memory.read t.mem j in
        record_read t pid j v;
        t.progs.(pid) <- k v;
        if journaling then Memory.U_read else Memory.U_none
    | Program.Write_input (v, k) ->
        Memory.write_input t.mem ~pid v;
        record t pid Trace.Write_input;
        t.progs.(pid) <- k ();
        if journaling then Memory.U_write_input pid else Memory.U_none
    | Program.Read_input (j, k) ->
        let v = Memory.read_input t.mem j in
        record t pid (Trace.Read_input j);
        t.progs.(pid) <- k v;
        Memory.U_none
  in
  t.step_counts.(pid) <- t.step_counts.(pid) + 1;
  t.total_steps <- t.total_steps + 1;
  if !Obs.Metrics.hot then Obs.Metrics.inc m_steps;
  settle t pid;
  if journaling then
    push_entry t
      (U_step
         { pid; old_prog; old_status = Running; old_output; old_events;
           mem_undo })

let crash t pid =
  (match t.status.(pid) with
  | Running -> ()
  | Decided _ | Crashed ->
      invalid_arg (Printf.sprintf "Scheduler.crash: process %d halted" pid));
  if t.journaling then push_entry t (U_crash { pid; old_events = t.events });
  t.status.(pid) <- Crashed;
  if !Obs.Metrics.hot then Obs.Metrics.inc m_crashes;
  record t pid Trace.Crash

(* {2 Undo journal} *)

type journal_mark = int

let enable_journal t = t.journaling <- true
let journal_mark t = t.journal_len

let undo_to t m =
  if m > t.journal_len || m < 0 then
    invalid_arg "Scheduler.undo_to: mark is not in the journal";
  while t.journal_len > m do
    t.journal_len <- t.journal_len - 1;
    match t.journal.(t.journal_len) with
    | U_step { pid; old_prog; old_status; old_output; old_events; mem_undo }
      ->
        t.progs.(pid) <- old_prog;
        t.status.(pid) <- old_status;
        t.outputs.(pid) <- old_output;
        t.events <- old_events;
        t.step_counts.(pid) <- t.step_counts.(pid) - 1;
        t.total_steps <- t.total_steps - 1;
        Memory.undo t.mem mem_undo
    | U_crash { pid; old_events } ->
        t.status.(pid) <- Running;
        t.events <- old_events
  done

(* {2 Inspection} *)

type op_view =
  | Op_write
  | Op_read of int
  | Op_write_input
  | Op_read_input of int
  | Op_halted

let peek t pid =
  match t.status.(pid) with
  | Decided _ | Crashed -> Op_halted
  | Running -> (
      match t.progs.(pid) with
      | Program.Write _ -> Op_write
      | Program.Read (j, _) -> Op_read j
      | Program.Write_input _ -> Op_write_input
      | Program.Read_input (j, _) -> Op_read_input j
      | Program.Return _ | Program.Output _ -> assert false (* settled *))

let is_running t pid =
  match t.status.(pid) with Running -> true | Decided _ | Crashed -> false

let status t pid = t.status.(pid)

let iter_running t f =
  for pid = 0 to n t - 1 do
    match t.status.(pid) with
    | Running -> f pid
    | Decided _ | Crashed -> ()
  done

let running_count t =
  let c = ref 0 in
  for pid = 0 to n t - 1 do
    match t.status.(pid) with
    | Running -> incr c
    | Decided _ | Crashed -> ()
  done;
  !c

let running t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    match t.status.(pid) with
    | Running -> acc := pid :: !acc
    | Decided _ | Crashed -> ()
  done;
  !acc

let all_halted t = running_count t = 0

let decisions t = Array.copy t.outputs

let decided_values t =
  Array.to_list t.outputs |> List.filter_map (fun o -> o)

(* Every non-crashed process has announced a decision (via [Return] or
   [Output]). *)
let all_output t =
  let ok = ref true in
  for pid = 0 to n t - 1 do
    match t.status.(pid) with
    | Crashed -> ()
    | Running | Decided _ -> if t.outputs.(pid) = None then ok := false
  done;
  !ok

let crashed t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    match t.status.(pid) with
    | Crashed -> acc := pid :: !acc
    | Running | Decided _ -> ()
  done;
  !acc

let steps_taken t = t.total_steps
let steps_of t pid = t.step_counts.(pid)
let trace t = List.rev t.events

let copy t =
  {
    t with
    mem = Memory.copy t.mem;
    progs = Array.copy t.progs;
    status = Array.copy t.status;
    outputs = Array.copy t.outputs;
    step_counts = Array.copy t.step_counts;
    (* The copy cannot rewind past its creation point, and sharing the
       journal buffer would corrupt it on divergent pushes. *)
    journal = [||];
    journal_len = 0;
  }

let run_schedule t pids =
  List.iter
    (fun pid ->
      match t.status.(pid) with
      | Running -> step t pid
      | Decided _ | Crashed -> ())
    pids

let run_round_robin ?(max_steps = 1_000_000) t =
  let budget = ref max_steps in
  let continue_ = ref true in
  while !continue_ && running_count t > 0 do
    iter_running t (fun pid ->
        if !budget > 0 && is_running t pid then begin
          step t pid;
          decr budget
        end);
    if !budget <= 0 then continue_ := false
  done

let run_random ?(max_steps = 1_000_000) ?(crashes = []) ?(until_outputs = false)
    rng t =
  let crash_after = Array.make (n t) max_int in
  List.iter (fun (pid, after) -> crash_after.(pid) <- after) crashes;
  let maybe_crash pid =
    is_running t pid && t.step_counts.(pid) >= crash_after.(pid)
  in
  let budget = ref max_steps in
  let rec loop () =
    List.iter (fun pid -> if maybe_crash pid then crash t pid) (running t);
    if not (until_outputs && all_output t) then
      match running t with
      | [] -> ()
      | procs ->
          if !budget > 0 then begin
            step t (Bits.Rng.pick rng procs);
            decr budget;
            loop ()
          end
  in
  loop ()

let run_solo ?(max_steps = 1_000_000) t pid =
  let budget = ref max_steps in
  while is_running t pid && !budget > 0 do
    step t pid;
    decr budget
  done
