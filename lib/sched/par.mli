(** Domain-parallel exploration: frontier-partitioned fan-out of
    {!Explore.explore} over a pool of OCaml 5 domains.

    A budgeted sequential {e seed} pass grows a {!Budget.frontier} of
    disjoint subtree prefixes, the prefixes fan out to a worker pool
    (one atomic work-queue index; each unit rebuilds a private journaled
    scheduler state from its own [init ()] call and replays its prefix
    via [explore ~resume]), and per-unit results merge in unit-index
    order. Three guarantees, tested in [test/test_sched.ml]:

    - {b same terminal-state set}: frontier prefixes are disjoint and,
      together with the seed pass, cover the whole tree; fresh per-worker
      dedup/sleep sets only ever make a unit explore {e more} below its
      root, never less.
    - {b race-free telemetry}: metrics cells are atomic, and each unit's
      trace events are captured privately on the executing domain
      ({!Obs.Sink.captured}) and drained into the trace on the main
      domain in unit-index order after the join — worker spans and
      instants appear in traces, yet the published stream stays a single
      main-domain stream.
    - {b deterministic output}: stats, visitor values and leftover
      frontiers reduce in unit-index order — fixed workload and seed give
      byte-identical merged results regardless of worker scheduling.

    With [dedup] on, a canonical state reachable under several prefixes
    may be visited by more than one worker (the sequential run would have
    deduped the later arrivals): the visitor can run more than once per
    terminal {e state}, [deduped] may drop, and [terminals] may exceed
    the sequential count. Set-style [merge]s absorb this. With [dedup]
    and [por] off, counts partition exactly: parallel [stats] equals the
    sequential record field-for-field. *)

type 'r result = {
  stats : Explore.stats;  (** seed segments + all units, {!Explore.add_stats}ed *)
  outcome : Explore.outcome;
      (** [Complete], or [Exhausted] with every subtree no unit finished *)
  value : 'r;  (** seed value merged with per-unit values, in unit order *)
  jobs : int;  (** pool width actually used (after clamping) *)
  units : int;  (** parallel work units dispatched (0 = never went parallel) *)
}

val run_units : jobs:int -> units:'a array -> ('a -> 'b) -> 'b array
(** Run [f] over every element of [units] on a pool of [jobs] domains
    (clamped to [1 .. min (Array.length units) 64]; the calling domain
    participates, so [jobs - 1] domains are spawned). Results come back
    indexed like [units].

    When the caller is tracing ({!Obs.Sink.enabled} at entry), each
    unit's events are captured on the executing domain and replayed into
    the trace in unit-index order after the join ({!Obs.Span.replay}) —
    the trace therefore does not depend on [jobs]. When not tracing,
    units run muted. Worker domains fold their flight-recorder rings
    into the graveyard as they exit ({!Obs.Recorder.retire}).

    If a unit raises, the pool stops claiming new units, in-flight units
    finish, and the lowest-index exception is re-raised on the caller
    (with its backtrace) after all domains join; captured events of a
    failed pool are dropped.

    [f] must be domain-safe: it runs off the main domain and concurrently
    with itself on other units. *)

val run_units_ev :
  jobs:int -> units:'a array -> ('a -> 'b) -> ('b * Obs.Sink.event list) array
(** Like {!run_units} but hands each unit's captured events back to the
    caller instead of replaying them, for drivers that interleave their
    own per-unit telemetry with the replay (see {!Msgpass.Chaos}). The
    event lists are empty when the caller was not tracing at entry.
    Captured stamps are scratch — emit them via {!Obs.Span.replay},
    which re-stamps on the draining domain's clock. *)

val explore :
  ?max_steps:int ->
  ?max_crashes:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?budget:Budget.t ->
  ?resume:Budget.frontier ->
  ?clock:(unit -> float) ->
  ?jobs:int ->
  ?split_factor:int ->
  ?seed_nodes:int ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  fold:(('v, 'i, 'a) Scheduler.state -> 'r -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  'r ->
  'r result
(** [explore ~jobs ~init ~fold ~merge zero] visits the same terminal
    states as [Explore.explore] with the same engine arguments, folding
    each visited terminal into a per-unit accumulator ([fold state acc],
    starting from [zero]) and combining accumulators with [merge] in
    deterministic unit-index order (seed value first).

    [jobs] (default 1) is the pool width; 1 is exactly the sequential
    engine — same spans, same metrics, one [Explore.explore] call. For
    [jobs > 1], a seed pass of node-capped segments (each [seed_nodes]
    nodes, default 512) runs on the calling domain until the frontier
    holds at least [split_factor * jobs] prefixes (default factor 4 — a
    few units per worker evens out skewed subtree sizes), then the pool
    drains the frontier. Trees smaller than the seed budget complete
    sequentially ([units = 0]).

    [fold] and [init] must be domain-safe: units run concurrently, each
    with its own [init ()] state and its own accumulator. In particular,
    an [init] built on {!Scheduler.start} compiles the programs afresh
    inside each unit — compiled code is mutable and single-domain, so
    [init] must never close over a shared {!Program.Compiled.code} (use
    {!Scheduler.start_compiled} only for sequential reuse). [fold] gets
    the engine's usual journaled-state view (read, don't step/retain).
    [merge] needs no commutativity — the reduction order is fixed — but
    [zero] should be its identity, since every unit starts from [zero].

    [budget] caps the whole parallel run. Each unit snapshots the
    remaining budget when it starts, so global node/terminal caps can
    overshoot by up to [jobs - 1] unit-sized runs (deadlines cannot: all
    monitors share {!Budget.now}). Unfinished and unstarted subtrees come
    back on the merged [Exhausted] frontier, resumable like any other
    checkpoint. *)
