(** The shared memory: [n] SWMR coordination registers R_0..R_{n-1} under a
    bit budget, plus [n] write-once input registers I_0..I_{n-1}.

    Every write to a coordination register is measured by the memory's
    {!Bits.Width.measure} and checked against its {!Bits.Width.budget}; the
    memory also records the largest width ever written, so experiments can
    report the bits an algorithm {e actually} used, not just the budget it
    declared. Input registers are outside the budget (the paper's model:
    they carry inputs only and cannot be used for coordination) — writing one
    twice raises. *)

type ('v, 'i) t

val create :
  n:int -> budget:Bits.Width.budget -> measure:'v Bits.Width.measure ->
  init:'v -> ('v, 'i) t
(** Fresh memory with every coordination register holding [init] (the paper
    assumes a known initial value, e.g. 0) and every input register empty.
    [init] is itself width-checked. *)

val n : ('v, 'i) t -> int
val budget : ('v, 'i) t -> Bits.Width.budget

val write : ('v, 'i) t -> pid:int -> 'v -> unit
(** @raise Bits.Width.Overflow when the value exceeds the budget. *)

val read : ('v, 'i) t -> int -> 'v

val peek : ('v, 'i) t -> int -> 'v
(** Like {!read} but without bumping the read counter — for explorers and
    adversaries that inspect memory outside the protocol's own step
    accounting. *)

val write_input : ('v, 'i) t -> pid:int -> 'i -> unit
(** @raise Invalid_argument on a second write to the same input register. *)

val read_input : ('v, 'i) t -> int -> 'i option

val contents : ('v, 'i) t -> 'v array
(** Copy of the coordination registers — the "binary word formed by
    concatenating the register contents" of the Section 4 pigeonhole
    argument, compared structurally. *)

val copy : ('v, 'i) t -> ('v, 'i) t
(** Deep copy; used by the exhaustive scheduler to branch. *)

val reads_performed : ('v, 'i) t -> int
val writes_performed : ('v, 'i) t -> int

val max_bits_written : ('v, 'i) t -> int
(** Largest measured width over all writes so far (0 if none). *)

(** {1 Untracked fast path}

    A memory is {e untracked} when its budget is [Unbounded] and its
    measure is the canonical {!Bits.Width.unbounded}: every width is 0 by
    construction, so there is no budget to check, no maximum to bump and
    no histogram to feed. Hot loops that have hoisted the test (and the
    metrics gate) may then write through {!poke}/{!unpoke} — a register
    store and a counter bump, nothing else. *)

val is_untracked : ('v, 'i) t -> bool

val peek_trusted : ('v, 'i) t -> int -> 'v
(** {!peek} without the bounds check — the index must be a valid pid. *)

val poke : ('v, 'i) t -> pid:int -> 'v -> unit
(** {!write} minus width accounting and metrics. Only sound on an
    untracked memory with metrics cold. *)

val unpoke : ('v, 'i) t -> pid:int -> old:'v -> unit
(** Revert one {!poke}. *)

val poke_imm : ('v, 'i) t -> pid:int -> 'v -> unit
(** {!poke} without the write barrier. Only sound when both the stored
    value and the register's current value are runtime immediates
    ([Obj.is_int]) — the caller must check both. *)

val unpoke_imm : ('v, 'i) t -> pid:int -> old:'v -> unit
(** Revert one {!poke_imm}; same immediacy obligation. *)

(** {1 Undo support}

    Reverse operations, called by {!Scheduler.undo_to} when replaying its
    journal backwards. Operands arrive as plain arguments (the journal
    keeps them in flat arrays), so reverting allocates nothing. Reverting
    a write restores both the register and the statistics counters, so a
    backtracking search observes exactly the counters of the execution
    path it is currently on. Calls must mirror the forward operations in
    LIFO order. *)

val unwrite : ('v, 'i) t -> pid:int -> old:'v -> old_max_bits:int -> unit
(** Revert one {!write}: restore the register's previous value, the write
    counter, and the max-width statistic. *)

val unread : ('v, 'i) t -> unit
(** Revert one {!read} (the read counter). *)

val unwrite_input : ('v, 'i) t -> int -> unit
(** Revert one {!write_input}: the input register becomes empty again. *)
