(** The shared memory: [n] SWMR coordination registers R_0..R_{n-1} under a
    bit budget, plus [n] write-once input registers I_0..I_{n-1}.

    Every write to a coordination register is measured by the memory's
    {!Bits.Width.measure} and checked against its {!Bits.Width.budget}; the
    memory also records the largest width ever written, so experiments can
    report the bits an algorithm {e actually} used, not just the budget it
    declared. Input registers are outside the budget (the paper's model:
    they carry inputs only and cannot be used for coordination) — writing one
    twice raises. *)

type ('v, 'i) t

val create :
  n:int -> budget:Bits.Width.budget -> measure:'v Bits.Width.measure ->
  init:'v -> ('v, 'i) t
(** Fresh memory with every coordination register holding [init] (the paper
    assumes a known initial value, e.g. 0) and every input register empty.
    [init] is itself width-checked. *)

val n : ('v, 'i) t -> int
val budget : ('v, 'i) t -> Bits.Width.budget

val write : ('v, 'i) t -> pid:int -> 'v -> unit
(** @raise Bits.Width.Overflow when the value exceeds the budget. *)

val read : ('v, 'i) t -> int -> 'v

val peek : ('v, 'i) t -> int -> 'v
(** Like {!read} but without bumping the read counter — for explorers and
    adversaries that inspect memory outside the protocol's own step
    accounting. *)

val write_input : ('v, 'i) t -> pid:int -> 'i -> unit
(** @raise Invalid_argument on a second write to the same input register. *)

val read_input : ('v, 'i) t -> int -> 'i option

val contents : ('v, 'i) t -> 'v array
(** Copy of the coordination registers — the "binary word formed by
    concatenating the register contents" of the Section 4 pigeonhole
    argument, compared structurally. *)

val copy : ('v, 'i) t -> ('v, 'i) t
(** Deep copy; used by the exhaustive scheduler to branch. *)

val reads_performed : ('v, 'i) t -> int
val writes_performed : ('v, 'i) t -> int

val max_bits_written : ('v, 'i) t -> int
(** Largest measured width over all writes so far (0 if none). *)

(** {1 Undo support}

    One token per memory operation, built by {!Scheduler.step} when its undo
    journal is enabled and applied in reverse order on backtrack. Reverting a
    write restores both the register and the statistics counters, so a
    backtracking search observes exactly the counters of the execution path
    it is currently on. *)

type ('v, 'i) undo =
  | U_none  (** operations that left the memory untouched *)
  | U_write of { pid : int; old : 'v; old_max_bits : int }
  | U_read
  | U_write_input of int

val undo : ('v, 'i) t -> ('v, 'i) undo -> unit
(** Revert one operation. Tokens must be applied in LIFO order with respect
    to the operations they describe. *)
