type 'v op =
  | Write of 'v
  | Read of int * 'v
  | Write_input
  | Read_input of int
  | Crash
  | Decide

type 'v event = { pid : int; op : 'v op }

let pp_event pp_v ppf { pid; op } =
  match op with
  | Write v -> Format.fprintf ppf "p%d: write %a" pid pp_v v
  | Read (j, v) -> Format.fprintf ppf "p%d: read R%d -> %a" pid j pp_v v
  | Write_input -> Format.fprintf ppf "p%d: write input" pid
  | Read_input j -> Format.fprintf ppf "p%d: read I%d" pid j
  | Crash -> Format.fprintf ppf "p%d: crash" pid
  | Decide -> Format.fprintf ppf "p%d: decide" pid

let pp pp_v ppf events =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline (pp_event pp_v) ppf
    events

let schedule_of events =
  List.filter_map
    (fun { pid; op } ->
      match op with
      | Write _ | Read _ | Write_input | Read_input _ -> Some pid
      | Crash | Decide -> None)
    events

let crashes_of events =
  let steps = Hashtbl.create 8 in
  let taken pid = Option.value (Hashtbl.find_opt steps pid) ~default:0 in
  List.filter_map
    (fun { pid; op } ->
      match op with
      | Write _ | Read _ | Write_input | Read_input _ ->
          Hashtbl.replace steps pid (taken pid + 1);
          None
      | Crash -> Some (pid, taken pid)
      | Decide -> None)
    events
