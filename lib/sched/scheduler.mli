(** Executing [n] protocol programs against a shared memory, one atomic step
    at a time.

    A {!state} holds the memory, each process's suspended program, and each
    process's status. The primitive is {!step}: perform the next atomic
    operation of one chosen process. Everything else — round-robin runs,
    seeded random fair schedules, crash injection, replay — is built from it.
    Exhaustive interleaving enumeration lives in {!module:Explore}. *)

type 'a status =
  | Running
  | Decided of 'a
  | Crashed

type ('v, 'i, 'a) state

val start :
  ?record_trace:bool ->
  memory:('v, 'i) Memory.t ->
  programs:(int -> ('v, 'i, 'a) Program.t) ->
  unit ->
  ('v, 'i, 'a) state
(** One program per process id [0..n-1] where [n = Memory.n memory]. A
    program that decides without taking any memory step is immediately
    [Decided]. Traces are off by default (they cost allocation per step).
    Programs are lowered to their step-compiled form
    ({!Program.Compiled}) on entry; execution never re-interprets the
    free monad. *)

val start_compiled :
  ?record_trace:bool ->
  memory:('v, 'i) Memory.t ->
  programs:(int -> ('v, 'i, 'a) Program.Compiled.code) ->
  unit ->
  ('v, 'i, 'a) state
(** Like {!start} but reusing already-compiled programs, so repeated runs
    of the same protocol (harness sampling, benchmarks) skip re-lowering
    and share the positions memoized by earlier runs. Compiled code is
    mutable: states sharing it must stay within one domain. *)

val memory : ('v, 'i, 'a) state -> ('v, 'i) Memory.t
val n : ('v, 'i, 'a) state -> int

val step : ('v, 'i, 'a) state -> int -> unit
(** Execute one atomic operation of process [pid].
    @raise Invalid_argument if the process is not [Running]. *)

val crash : ('v, 'i, 'a) state -> int -> unit
(** Process takes no further steps, ever.
    @raise Invalid_argument if the process is not [Running]. *)

(** {1 Undo journal}

    Backtracking support for {!module:Explore}: with the journal enabled,
    every {!step} and {!crash} records what it overwrote, and {!undo_to}
    rewinds the state to an earlier {!journal_mark} in O(steps undone) —
    no copying of the memory or the per-process arrays. *)

type journal_mark

val enable_journal : ('v, 'i, 'a) state -> unit
(** Start journaling. Off by default ([step] stays allocation-free for plain
    runs). Steps taken before enabling cannot be undone. *)

val journal_mark : ('v, 'i, 'a) state -> journal_mark
(** The current rewind point. *)

val undo_to : ('v, 'i, 'a) state -> journal_mark -> unit
(** Rewind to a previously obtained mark, reverting programs, statuses,
    outputs, step counters, memory contents and memory statistics, and the
    recorded trace. Marks must be used LIFO.
    @raise Invalid_argument if the mark is ahead of the journal. *)

(** {1 Fused raw exploration} *)

val raw_dfs :
  ('v, 'i, 'a) state ->
  depth:int ->
  max_depth:int ->
  visit:(('v, 'i, 'a) state -> int -> unit) ->
  on_truncated:(('v, 'i, 'a) state -> unit) ->
  int * int * int * int
(** Depth-first walk of every schedule of the running processes from the
    current state, visiting each terminal state ([visit state depth]) and
    restoring the state exactly on return. Equivalent to the explorer's
    raw mode (no dedup, no partial-order reduction, no crashes) driven
    through {!step}/{!undo_to}, but each edge's undo data lives in the
    recursion frame instead of the journal, so an edge costs no journal
    traffic at all. Nodes at [depth >= max_depth] that are not terminal
    are not expanded: [on_truncated state] fires instead. Returns
    [(nodes, terminals, truncated, peak_depth)], counted as the explorer
    counts them ([depth] is the starting node's depth).

    Any enclosing journal is suspended during the walk and intact after
    it; marks taken before the call remain valid.
    @raise Invalid_argument on a [record_trace] state — the per-step
    trace would have to be journaled, which this walk avoids; callers
    gate on {!recording_trace}. *)

val recording_trace : ('v, 'i, 'a) state -> bool
(** Whether the state was started with [~record_trace:true]. *)

(** {1 Inspection} *)

type op_view =
  | Op_write  (** next op writes the process's own register *)
  | Op_read of int  (** next op reads register [j] *)
  | Op_write_input  (** next op writes the process's input register *)
  | Op_read_input of int  (** next op reads input register [j] *)
  | Op_halted

val peek : ('v, 'i, 'a) state -> int -> op_view
(** The next atomic operation process [pid] would perform — what {!step}
    is about to do, without doing it. Explorers use this for commutativity
    analysis (two reads commute; a read and a write conflict iff they touch
    the same register). *)

val status : ('v, 'i, 'a) state -> int -> 'a status
val running : ('v, 'i, 'a) state -> int list
(** Running process ids, ascending. Allocates; prefer {!iter_running} in hot
    loops. *)

val iter_running : ('v, 'i, 'a) state -> (int -> unit) -> unit
(** [f] applied to each running pid in ascending order, allocation-free.
    Statuses are consulted live: a process halted by an earlier callback in
    the same sweep is skipped. *)

val running_count : ('v, 'i, 'a) state -> int
(** Number of running processes, allocation-free. *)

val running_mask : ('v, 'i, 'a) state -> int
(** Bitmask of running pids (bit [pid] set iff running), allocation-free —
    the explorer's per-node enabled set. Requires [n <= Sys.int_size]. *)

val all_halted : ('v, 'i, 'a) state -> bool

val all_output : ('v, 'i, 'a) state -> bool
(** Every non-crashed process has announced a decision — through [Return] or
    the decide-and-continue [Output]. *)

val decisions : ('v, 'i, 'a) state -> 'a option array
(** Announced decisions ([Return] or [Output]); [None] for processes that
    have not decided (crashed or still working). *)

val decided_values : ('v, 'i, 'a) state -> 'a list
val crashed : ('v, 'i, 'a) state -> int list
val steps_taken : ('v, 'i, 'a) state -> int
val steps_of : ('v, 'i, 'a) state -> int -> int
val trace : ('v, 'i, 'a) state -> 'v Trace.event list
(** Oldest first; empty unless [record_trace] was set. *)

val copy : ('v, 'i, 'a) state -> ('v, 'i, 'a) state
(** Independent copy (memory deep-copied). Programs must be pure between
    steps — all per-process state in the continuation — for the copy to be a
    true fork; every protocol in this repository is. The copy shares the
    original's compiled code (an append-only memo, identical for every
    fork), so both must stay within one domain. The copy starts with an
    empty undo journal: it cannot be rewound past the copy point. *)

(** {1 Drivers} *)

val run_schedule : ('v, 'i, 'a) state -> int list -> unit
(** Step the given pids in order. Entries for processes that have already
    halted are skipped, so a schedule can be written without tracking exact
    program lengths. *)

val run_round_robin : ?max_steps:int -> ('v, 'i, 'a) state -> unit
(** Cycle over running processes in id order until all halt or [max_steps]
    (default 1_000_000) memory steps have been taken. *)

val run_random :
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?until_outputs:bool ->
  Bits.Rng.t ->
  ('v, 'i, 'a) state ->
  unit
(** Fair random schedule: each step picks uniformly among running processes.
    [crashes] is a list of [(pid, after_steps)]: the process crashes once it
    has taken [after_steps] steps (0 = crashes before taking any step).
    [until_outputs] (default false) stops as soon as {!all_output} holds —
    the termination condition for never-halting simulation protocols that
    decide via [Output]. Random schedules are fair with probability 1, so
    with [max_steps] large enough every wait-free protocol run completes. *)

val run_solo : ?max_steps:int -> ('v, 'i, 'a) state -> int -> unit
(** Run only process [pid] until it halts: the paper's solo execution, all
    other processes crashed at the start. *)
