type t = {
  deadline : float option;
  max_nodes : int option;
  max_terminals : int option;
  max_visited : int option;
}

let unlimited =
  { deadline = None; max_nodes = None; max_terminals = None;
    max_visited = None }

let make ?deadline ?max_nodes ?max_terminals ?max_visited () =
  { deadline; max_nodes; max_terminals; max_visited }

let is_unlimited b = b = unlimited

let opt_min a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let min_caps a b =
  {
    deadline = opt_min a.deadline b.deadline;
    max_nodes = opt_min a.max_nodes b.max_nodes;
    max_terminals = opt_min a.max_terminals b.max_terminals;
    max_visited = opt_min a.max_visited b.max_visited;
  }

let pp ppf b =
  if is_unlimited b then Format.pp_print_string ppf "unlimited"
  else begin
    let cap pp_v ppf = function
      | None -> Format.pp_print_string ppf "-"
      | Some v -> pp_v ppf v
    in
    Format.fprintf ppf "deadline=%a nodes=%a terminals=%a visited=%a"
      (cap (fun ppf s -> Format.fprintf ppf "%.3gs" s))
      b.deadline (cap Format.pp_print_int) b.max_nodes
      (cap Format.pp_print_int) b.max_terminals (cap Format.pp_print_int)
      b.max_visited
  end

type stop_reason =
  | Deadline
  | Node_cap
  | Terminal_cap

let stop_reason_to_string = function
  | Deadline -> "deadline"
  | Node_cap -> "node-cap"
  | Terminal_cap -> "terminal-cap"

let pp_stop_reason ppf r =
  Format.pp_print_string ppf (stop_reason_to_string r)

(* How many [stopped] polls to skip between clock reads. *)
let clock_stride = 64

(* One process-wide clock: every monitor armed without an explicit
   override reads the same time source, so concurrent explorations (the
   parallel driver's workers) judge the same deadline instead of each
   call site defaulting to its own [Unix.gettimeofday] closure. Tests
   swap it with [set_clock] to drive time deterministically. *)
let default_clock : (unit -> float) ref = ref Unix.gettimeofday

let now () = !default_clock ()
let set_clock c = default_clock := c

type monitor = {
  b : t;
  clock : unit -> float;
  started : float;
  mutable polls : int;
  mutable tripped : stop_reason option;
}

let arm ?(clock = now) b =
  { b; clock; started = clock (); polls = 0; tripped = None }

let budget m = m.b
let elapsed m = max 0. (m.clock () -. m.started)

let exceeds cap used =
  match cap with None -> false | Some cap -> used >= cap

let stopped m ~nodes ~terminals =
  match m.tripped with
  | Some _ as r -> r
  | None ->
      let r =
        if exceeds m.b.max_nodes nodes then Some Node_cap
        else if exceeds m.b.max_terminals terminals then Some Terminal_cap
        else begin
          m.polls <- m.polls + 1;
          match m.b.deadline with
          | Some d when m.polls mod clock_stride = 1 && elapsed m >= d ->
              Some Deadline
          | _ -> None
        end
      in
      m.tripped <- r;
      r

let visited_full m ~visited = exceeds m.b.max_visited visited

let remaining m ~nodes ~terminals =
  let minus cap used =
    Option.map (fun c -> max 0 (c - used)) cap
  in
  {
    deadline = Option.map (fun d -> max 0. (d -. elapsed m)) m.b.deadline;
    max_nodes = minus m.b.max_nodes nodes;
    max_terminals = minus m.b.max_terminals terminals;
    max_visited = m.b.max_visited;
  }

(* {1 Frontiers} *)

type choice =
  | Step of int
  | Crash of int

type frontier = choice list list

let frontier_size = List.length

let pp_choice ppf = function
  | Step p -> Format.fprintf ppf "s%d" p
  | Crash p -> Format.fprintf ppf "c%d" p

let pp_frontier ppf f =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf path ->
         Format.fprintf ppf "@[<hov>%a@]"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
              pp_choice)
           path))
    f

(* The empty path (a budget that tripped at the root: the whole tree is
   the frontier) gets an explicit token, so it survives the round trip
   instead of reading back as a blank line. *)
let frontier_to_string f =
  let b = Buffer.create 256 in
  List.iter
    (fun path ->
      if path = [] then Buffer.add_char b '.'
      else
        List.iteri
          (fun i c ->
            if i > 0 then Buffer.add_char b ' ';
            match c with
            | Step p -> Buffer.add_string b (Printf.sprintf "s%d" p)
            | Crash p -> Buffer.add_string b (Printf.sprintf "c%d" p))
          path;
      Buffer.add_char b '\n')
    f;
  Buffer.contents b

let frontier_of_string s =
  let parse_token tok =
    let pid tail =
      match int_of_string_opt tail with
      | Some p when p >= 0 -> Ok p
      | _ -> Error (Printf.sprintf "bad pid in frontier token %S" tok)
    in
    if String.length tok < 2 then
      Error (Printf.sprintf "bad frontier token %S" tok)
    else
      let tail = String.sub tok 1 (String.length tok - 1) in
      match tok.[0] with
      | 's' -> Result.map (fun p -> Step p) (pid tail)
      | 'c' -> Result.map (fun p -> Crash p) (pid tail)
      | _ -> Error (Printf.sprintf "bad frontier token %S" tok)
  in
  let parse_line line =
    if String.trim line = "." then Ok []
    else
      String.split_on_char ' ' line
      |> List.filter (fun t -> t <> "")
      |> List.fold_left
           (fun acc tok ->
             Result.bind acc (fun path ->
                 Result.map (fun c -> c :: path) (parse_token tok)))
           (Ok [])
      |> Result.map List.rev
  in
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.fold_left
       (fun acc line ->
         Result.bind acc (fun paths ->
             Result.map (fun p -> p :: paths) (parse_line line)))
       (Ok [])
  |> Result.map List.rev
