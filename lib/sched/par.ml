(* Domain-parallel exploration. The sequential engine is already
   partition-friendly: a budgeted run hands back a frontier of disjoint
   subtree prefixes, and [explore ~resume] replays a prefix without
   counting its nodes, so budgeted segments partition the search tree
   exactly (PR 3's resume-partition test). The parallel driver leans on
   that invariant:

   1. a short budgeted seed pass on the calling domain grows the frontier
      until it holds enough disjoint prefixes to feed the pool;
   2. the prefixes fan out to [jobs] domains pulling from one atomic
      queue; each unit is an independent [Explore.explore ~resume] over a
      private journaled scheduler state built by its own [init ()] call —
      no scheduler state is ever shared between domains;
   3. per-unit stats merge with [add_stats] and per-unit visitor results
      merge with the caller's [merge], both in unit-index order, so the
      merged output is a pure function of the workload, never of worker
      scheduling.

   Soundness of the partition: frontier prefixes are exactly the roots of
   the subtrees the seed pass did not enter, they are pairwise disjoint,
   and together with the seed pass's visited terminals they cover the
   whole tree. Workers use fresh dedup and sleep sets, which only ever
   make a unit explore {e more} than the sequential run would have below
   the same root — the terminal-state *set* is preserved. With dedup on,
   a canonical state reachable under several prefixes may be visited by
   several workers (the sequential run would have deduped the later
   arrivals), so [deduped] can drop and visit counts can exceed the
   sequential run's; with dedup and POR off the counts partition exactly. *)

type 'r result = {
  stats : Explore.stats;
  outcome : Explore.outcome;
  value : 'r;
  jobs : int;
  units : int;
}

(* {2 The worker pool} *)

(* More domains than this buys nothing on machines we target and costs
   per-domain runtime structures; [run_units] also never spawns more
   domains than there are units. *)
let max_jobs = 64

let run_units_ev ~jobs ~units f =
  let n = Array.length units in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min (min jobs n) max_jobs) in
    (* Decide once, on the main domain, whether units trace. Each unit
       then runs under [Sink.captured] — events buffered privately on
       whichever domain executes it — or [Sink.muted] when the caller
       isn't tracing. Sinks are single-consumer, so even the main
       domain's own units capture rather than emitting directly: the
       caller drains the buffers in unit-index order after the join,
       which is what keeps traces byte-identical at any pool width. *)
    let capture = Obs.Sink.enabled () in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let exec u =
      if capture then
        (* Scratch clock: a unit executing on the main domain must not
           advance the clock [replay] will stamp the drained events
           with, or stamps would depend on the unit-to-domain split. *)
        Obs.Span.scratched (fun () -> Obs.Sink.captured (fun () -> f u))
      else (Obs.Sink.muted (fun () -> f u), [])
    in
    (* Workers claim unit indices from one atomic counter; result and
       error slots are per-index, so writes from distinct domains never
       alias. A failed unit flips [failed] and the pool drains: in-flight
       units finish, unclaimed ones stay untouched. *)
    let rec worker () =
      if not (Atomic.get failed) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match exec units.(i) with
          | r -> results.(i) <- Some r
          | exception exn ->
              errors.(i) <- Some (exn, Printexc.get_raw_backtrace ());
              Atomic.set failed true);
          worker ()
        end
      end
    in
    let spawned =
      List.init (jobs - 1) (fun _ ->
          Domain.spawn (fun () ->
              (* Fold the dying domain's flight-recorder ring into the
                 shared graveyard: pools spawn fresh domains per call,
                 and a long fleet run must not accumulate dead rings. *)
              Fun.protect ~finally:Obs.Recorder.retire worker))
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Par.run_units: unit skipped after failure")
      results
  end

let run_units ~jobs ~units f =
  let pairs = run_units_ev ~jobs ~units f in
  (* Drain captured events into the live trace in unit-index order —
     the same order a sequential pass over [units] would have emitted
     them — re-stamped on the main domain's clock. *)
  Array.iter (fun (_, events) -> Obs.Span.replay events) pairs;
  Array.map fst pairs

(* {2 The parallel exploration driver} *)

(* Same registry cells as the sequential engine (registration is
   idempotent per name): a partitioned run reports through the same
   metrics surface. *)
let m_budget_trips = Obs.Metrics.counter "explore.budget_trips"

let budget_spent (b : Budget.t) =
  (match b.Budget.deadline with Some d -> d <= 0. | None -> false)
  || b.Budget.max_nodes = Some 0
  || b.Budget.max_terminals = Some 0

let stop_reason_of_remaining (b : Budget.t) =
  if match b.Budget.deadline with Some d -> d <= 0. | None -> false then
    Some Budget.Deadline
  else if b.Budget.max_nodes = Some 0 then Some Budget.Node_cap
  else if b.Budget.max_terminals = Some 0 then Some Budget.Terminal_cap
  else None

(* How many seed segments to run before settling for whatever frontier we
   have: each segment costs [seed_nodes] nodes, so this also bounds the
   sequential prelude. *)
let grow_rounds = 64

let explore ?max_steps ?max_crashes ?(dedup = true) ?(por = true)
    ?(budget = Budget.unlimited) ?resume ?clock ?(jobs = 1)
    ?(split_factor = 4) ?(seed_nodes = 512) ~init ~fold ~merge zero =
  let jobs = max 1 (min jobs max_jobs) in
  if jobs = 1 then begin
    (* The sequential path, untouched: one engine call, spans and metrics
       exactly as before. *)
    let acc = ref zero in
    let r =
      Explore.explore ?max_steps ?max_crashes ~dedup ~por ~budget ?resume
        ?clock ~init (fun st -> acc := fold st !acc)
    in
    {
      stats = r.Explore.stats;
      outcome = r.Explore.outcome;
      value = !acc;
      jobs = 1;
      units = 0;
    }
  end
  else begin
    let monitor = Budget.arm ?clock budget in
    let target = split_factor * jobs in
    Obs.Span.begin_ ~cat:"explore"
      ~args:
        [
          ("jobs", Obs.Json.Int jobs);
          ("split_factor", Obs.Json.Int split_factor);
          ("seed_nodes", Obs.Json.Int seed_nodes);
        ]
      "explore.par";
    let finish ~units ~stats ~value ~outcome ~aborted =
      Explore.publish_stats stats;
      (match outcome with
      | Explore.Exhausted _ -> Obs.Metrics.inc m_budget_trips
      | Explore.Complete -> ());
      Obs.Span.end_ ~cat:"explore"
        ~args:
          [
            ("nodes", Obs.Json.Int stats.Explore.nodes);
            ("terminals", Obs.Json.Int stats.Explore.terminals);
            ("units", Obs.Json.Int units);
            ( "outcome",
              Obs.Json.Str
                (if aborted then "aborted"
                 else
                   match outcome with
                   | Explore.Complete -> "complete"
                   | Explore.Exhausted { reason; _ } ->
                       Budget.stop_reason_to_string reason) );
          ]
        "explore.par";
      { stats; outcome; value; jobs; units }
    in
    let body () =
      (* Seed pass: budgeted segments on this domain, each capped at
         [seed_nodes] fresh nodes, resumed on their own frontier until it
         is wide enough to keep [jobs] workers busy (or the tree, or the
         caller's budget, runs out first). *)
      let seed_acc = ref zero in
      let seed_stats = ref Explore.zero_stats in
      let nodes_done = ref 0 and terminals_done = ref 0 in
      let remaining () =
        Budget.remaining monitor ~nodes:!nodes_done ~terminals:!terminals_done
      in
      let segment resume =
        let b =
          Budget.min_caps (remaining ()) (Budget.make ~max_nodes:seed_nodes ())
        in
        let r =
          Explore.explore ?max_steps ?max_crashes ~dedup ~por ~budget:b
            ?resume ~quiet:true ~init (fun st -> seed_acc := fold st !seed_acc)
        in
        seed_stats := Explore.add_stats !seed_stats r.Explore.stats;
        nodes_done := !nodes_done + r.Explore.stats.Explore.nodes;
        terminals_done := !terminals_done + r.Explore.stats.Explore.terminals;
        r.Explore.outcome
      in
      (* One progress instant per seed segment: logical-clock driven, so
         the cadence replays identically run over run. Rate fields only
         appear when the user opted into wall time. *)
      let progress = Obs.Progress.create ~cat:"explore" "explore.progress" in
      let progress_args phase extra () =
        [
          ("phase", Obs.Json.Str phase);
          ("nodes", Obs.Json.Int !nodes_done);
          ("terminals", Obs.Json.Int !terminals_done);
        ]
        @ extra
        @
        if Obs.Span.wall_enabled () then
          let dt = Budget.elapsed monitor in
          [ ("elapsed_s", Obs.Json.Float dt) ]
          @
          if dt > 0. then
            [
              ( "nodes_per_s",
                Obs.Json.Float (float_of_int !nodes_done /. dt) );
            ]
          else []
        else []
      in
      let rec grow resume round =
        match segment resume with
        | Explore.Complete -> `Seed_complete
        | Explore.Exhausted { frontier; reason } ->
            Obs.Progress.tick progress
              (progress_args "seed"
                 [
                   ("round", Obs.Json.Int round);
                   ( "frontier",
                     Obs.Json.Int (Budget.frontier_size frontier) );
                 ]);
            if budget_spent (remaining ()) then `Spent (frontier, reason)
            else if
              Budget.frontier_size frontier >= target || round >= grow_rounds
            then `Frontier frontier
            else grow (Some frontier) (round + 1)
      in
      match grow resume 1 with
      | `Seed_complete ->
          finish ~units:0 ~stats:!seed_stats ~value:!seed_acc
            ~outcome:Explore.Complete ~aborted:false
      | `Spent (frontier, reason) ->
          finish ~units:0 ~stats:!seed_stats ~value:!seed_acc
            ~outcome:(Explore.Exhausted { frontier; reason })
            ~aborted:false
      | `Frontier frontier ->
          let units = Array.of_list frontier in
          (* Cumulative progress across the pool, so a unit starting late
             sees a budget already charged for finished units. The
             per-unit snapshot is taken once at unit start: a unit never
             stops because a *concurrent* unit consumed the budget, so
             the global node/terminal caps can overshoot by at most
             (jobs - 1) unit-sized runs. Deadlines don't overshoot: every
             monitor reads the shared Budget.now. *)
          let nodes_a = Atomic.make !nodes_done in
          let terminals_a = Atomic.make !terminals_done in
          let run_unit path =
            let rem =
              Budget.remaining monitor ~nodes:(Atomic.get nodes_a)
                ~terminals:(Atomic.get terminals_a)
            in
            if budget_spent rem then `Skipped path
            else begin
              let acc = ref zero in
              let r =
                Explore.explore ?max_steps ?max_crashes ~dedup ~por
                  ~budget:rem ~resume:[ path ] ~quiet:true ~init (fun st ->
                    acc := fold st !acc)
              in
              ignore
                (Atomic.fetch_and_add nodes_a r.Explore.stats.Explore.nodes);
              ignore
                (Atomic.fetch_and_add terminals_a
                   r.Explore.stats.Explore.terminals);
              let leftover, reason =
                match r.Explore.outcome with
                | Explore.Complete -> ([], None)
                | Explore.Exhausted { frontier; reason } ->
                    (frontier, Some reason)
              in
              `Done (!acc, r.Explore.stats, leftover, reason)
            end
          in
          let results = run_units ~jobs ~units run_unit in
          (* Deterministic reduction: stats, values and leftover frontier
             paths combine in unit-index order, which is frontier order,
             which the seed pass fixed before any domain was spawned. *)
          let stats = ref !seed_stats in
          let value = ref !seed_acc in
          let first_reason = ref None in
          Array.iter
            (function
              | `Done (_, st, _, reason) ->
                  stats := Explore.add_stats !stats st;
                  if !first_reason = None then first_reason := reason
              | `Skipped _ -> ())
            results;
          Array.iter
            (function
              | `Done (acc, _, _, _) -> value := merge !value acc
              | `Skipped _ -> ())
            results;
          let leftovers =
            Array.to_list results
            |> List.concat_map (function
                 | `Done (_, _, leftover, _) -> leftover
                 | `Skipped path -> [ path ])
          in
          let outcome =
            if leftovers = [] then Explore.Complete
            else
              let reason =
                match
                  stop_reason_of_remaining
                    (Budget.remaining monitor ~nodes:(Atomic.get nodes_a)
                       ~terminals:(Atomic.get terminals_a))
                with
                | Some r -> r
                | None ->
                    Option.value !first_reason ~default:Budget.Node_cap
              in
              Explore.Exhausted { frontier = leftovers; reason }
          in
          nodes_done := Atomic.get nodes_a;
          terminals_done := Atomic.get terminals_a;
          Obs.Progress.force progress
            (progress_args "merged"
               [ ("units", Obs.Json.Int (Array.length units)) ]);
          finish ~units:(Array.length units) ~stats:!stats ~value:!value
            ~outcome ~aborted:false
    in
    match body () with
    | r -> r
    | exception exn ->
        (* Close the span before the exception continues, mirroring the
           sequential engine's abort path. *)
        let bt = Printexc.get_raw_backtrace () in
        Obs.Span.end_ ~cat:"explore"
          ~args:[ ("outcome", Obs.Json.Str "aborted") ]
          "explore.par";
        Printexc.raise_with_backtrace exn bt
  end
