(** Composable resource budgets for the verification stack.

    Exhaustive state spaces blow up without warning: a budget turns "run
    until done" into "run until done {e or} until a resource cap trips",
    and every consumer reports {e which} cap tripped instead of silently
    truncating. One [t] bundles the caps the exploration engine (and the
    chaos campaigns, and the experiment supervisor) understand:

    - a wall-clock deadline, in seconds from the moment the budget is
      {!arm}ed;
    - a cap on expanded search nodes (total steps across the whole
      exploration, not per path — per-path bounds stay [max_steps]);
    - a cap on complete interleavings handed to the visitor;
    - a cap on dedup-table entries (memory, not progress: when it fills,
      the explorer keeps running and merely stops memoizing new states).

    A budgeted exploration that stops early hands back a {!frontier}: the
    schedule prefixes of every subtree it did not visit. The frontier is a
    plain serializable value — write it to disk, and a later call resumes
    exactly the missing work ({!Explore.explore}'s [resume]). *)

type t = {
  deadline : float option;  (** wall-clock seconds, from {!arm} *)
  max_nodes : int option;  (** total search nodes expanded *)
  max_terminals : int option;  (** complete executions visited *)
  max_visited : int option;  (** dedup-table entries retained *)
}

val unlimited : t

val make :
  ?deadline:float ->
  ?max_nodes:int ->
  ?max_terminals:int ->
  ?max_visited:int ->
  unit ->
  t
(** Omitted caps are unlimited. *)

val is_unlimited : t -> bool

val min_caps : t -> t -> t
(** Pointwise strictest combination: the smaller of each pair of caps
    (composing an outer supervisor budget with a per-call one). *)

val pp : Format.formatter -> t -> unit
(** [deadline=2.0s nodes=100000 terminals=- visited=-]; [unlimited] when
    nothing is capped. *)

(** {1 Stop reasons} *)

type stop_reason =
  | Deadline
  | Node_cap
  | Terminal_cap

val pp_stop_reason : Format.formatter -> stop_reason -> unit
val stop_reason_to_string : stop_reason -> string

(** {1 Armed monitors}

    A monitor is a budget plus a start time. Consumers poll {!stopped}
    with their own progress counters; the monitor answers with the first
    cap that tripped. The deadline is only consulted every few dozen
    polls (a [gettimeofday] per search node would dominate small
    workloads); [clock] exists so tests can drive time deterministically. *)

type monitor

val now : unit -> float
(** The shared wall-clock all monitors read by default. One process-wide
    source (rather than a [Unix.gettimeofday] default captured per call
    site) means concurrent explorations judge the {e same} deadline. *)

val set_clock : (unit -> float) -> unit
(** Replace the shared clock — tests drive time deterministically with
    this. Affects every monitor armed afterwards without an explicit
    [clock] override. *)

val arm : ?clock:(unit -> float) -> t -> monitor
(** Start the wall-clock. [clock] defaults to the shared {!now}. *)

val budget : monitor -> t

val stopped : monitor -> nodes:int -> terminals:int -> stop_reason option
(** First tripped cap, if any. Once a monitor has reported a stop it keeps
    reporting it (a tripped deadline does not untrip). *)

val visited_full : monitor -> visited:int -> bool
(** True when the dedup-table cap is reached: stop memoizing, keep going. *)

val elapsed : monitor -> float

val remaining : monitor -> nodes:int -> terminals:int -> t
(** The budget minus what the caller has already consumed — thread this
    into a sub-call so a sequence of explorations shares one budget. *)

(** {1 Frontiers}

    The checkpoint of an exhausted exploration: for every subtree the
    budgeted run abandoned, the exact choice sequence (steps and crashes,
    from the initial state) that leads to its root. *)

type choice =
  | Step of int  (** step process [pid] *)
  | Crash of int  (** crash process [pid] *)

type frontier = choice list list
(** Each element is one unexplored subtree, as the path from the initial
    state to its root, oldest choice first. *)

val frontier_size : frontier -> int

val pp_frontier : Format.formatter -> frontier -> unit

val frontier_to_string : frontier -> string
(** One path per line, tokens [s<pid>] (step) and [c<pid>] (crash)
    separated by spaces; the empty path (whole tree) is the line [.].
    The empty frontier is the empty string. *)

val frontier_of_string : string -> (frontier, string) Result.t
(** Inverse of {!frontier_to_string}; [Error] names the offending token. *)
