(* Incremental state hashing for the explorer's dedup table.

   The canonical name of an exploration state is the per-process
   observation history; hashing it from scratch is O(depth), and the
   engine names a state at {e every} node. Zobrist hashing makes the
   name O(1) to maintain instead: each observation cell contributes one
   pseudo-random word determined by (pid, position-in-history, cell
   value), the state hash is the XOR of all contributions, and XOR is
   its own inverse — stepping XORs a contribution in, undoing XORs the
   same contribution out. Including the per-process position keeps the
   hash order-sensitive (plain XOR over cells would cancel repeated
   cells and ignore history order).

   The table is seeded from a fixed constant, never from entropy:
   explorations must stay byte-deterministic across runs and across
   domains (the table is immutable after module initialization, so
   sharing it between domains is safe).

   Hash collisions route two states to the same dedup bucket; the
   explorer still compares full observation keys structurally inside a
   bucket, so a collision costs a comparison, never a wrongly merged
   state. *)

let table_bits = 12
let table_size = 1 lsl table_bits
let table_mask = table_size - 1

(* splitmix64, the usual seed-expansion PRNG: one immutable stream of
   well-mixed words from one fixed seed. *)
let fixed_seed = 0x7f4a7c15_9e3779b9L

let table =
  let state = ref fixed_seed in
  Array.init table_size (fun _ ->
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))
      land max_int)

(* A fast 63-bit finalizer (splitmix64's, on native ints): the table
   word randomizes the position, the finalizer entangles it with the
   value hash so swapping two cells' values across positions cannot
   cancel. *)
let[@inline] mix x =
  let x = x * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xBF58476D1CE4E5B in
  (x lxor (x lsr 32)) land max_int

(* [Stdlib.Hashtbl.hash] stops after 10 meaningful nodes: two register
   values that differ only past the tenth leaf hash identically, so deep
   observation values all landed in one dedup bucket (the old explorer
   hashed cells with it directly). 256 nodes of both kinds is deep
   enough for every value this repository stores in a register while
   staying O(1) per cell. *)
let value_hash v = Hashtbl.hash_param 256 256 v

let cell ~pid ~pos ~vhash =
  let slot = table.(((pid lsl 7) + pos) land table_mask) in
  mix (slot lxor vhash lxor ((pid * 0x1003F) + (pos lsl 20)))

(* Sequence hashing for consumers outside the explorer (the chaos fleet
   names run outcomes with this): fold [combine] over the element hashes.
   Multiplying the accumulator before XORing the next element keeps the
   result order-sensitive, unlike the self-inverse per-cell XOR above. *)
let combine acc h = mix ((acc * 0x100002B) lxor h)
