(* The exploration engine. Three independent mechanisms stack on top of a
   depth-first walk over one shared, journaled scheduler state:

   - undo-based backtracking: instead of [Scheduler.copy] at every branch
     (memory copy + five array copies), a branch is [step]; recurse;
     [undo_to] — the journal is a flat arena, so a branch allocates
     nothing at all in raw mode.

   - state deduplication: the canonical name of a state is the per-process
     observation history (which ops ran, and what every read returned).
     Programs are deterministic and registers are single-writer, so equal
     histories imply equal continuations, statuses, and memory — a revisited
     canonical state's subtree is skipped. The hash of the canonical name
     is maintained incrementally, Zobrist-style: each observation cell
     contributes a pseudo-random word indexed by (pid, per-pid position,
     value), XORed into one running hash — stepping and undoing are both
     a single XOR, never a rehash of the histories. Exact structural
     comparison inside each bucket remains the correctness backstop.

   - sleep-set partial-order reduction: after the subtree stepping process
     [p] is explored, sibling subtrees need not step [p] again until some
     process performs an operation conflicting with [p]'s next op. In SWMR
     memory only a read and a write of the same register conflict: any two
     reads commute, and writes by distinct processes land in distinct
     registers.

   Sleep sets and the visited set interact (Godefroid's state-matching
   caveat): a state first met with sleep set S had the transitions in S
   pruned, so a later visit with sleep set T only skips the subtree when
   S ⊆ T; otherwise the transitions in S \ T are re-expanded and the stored
   set shrinks to S ∩ T. The canonical crash order (increasing pid between
   steps) is tracked the same way: each visited state remembers the lowest
   crash floor it was expanded with. See DESIGN.md "Exploration engine".

   The raw walk (dedup and POR off) is the benchmark floor and the
   differential baseline, so its inner loop is kept allocation-free:
   enabled sets come from {!Scheduler.running_mask}, observation keys and
   hashes are only maintained when dedup is on, conflict peeks only when
   POR is on, and root-to-node choice paths are only consed when a budget
   could trip and need them for the resumable frontier. *)

type stats = {
  nodes : int;
  terminals : int;
  deduped : int;
  pruned : int;
  truncated : int;
  peak_depth : int;
}

let zero_stats =
  { nodes = 0; terminals = 0; deduped = 0; pruned = 0; truncated = 0;
    peak_depth = 0 }

let add_stats a b =
  {
    nodes = a.nodes + b.nodes;
    terminals = a.terminals + b.terminals;
    deduped = a.deduped + b.deduped;
    pruned = a.pruned + b.pruned;
    truncated = a.truncated + b.truncated;
    peak_depth = max a.peak_depth b.peak_depth;
  }

(* Field names match the Obs.Metrics registry (explore.nodes, ...,
   explore.peak_depth) and the bench JSON, so every surface that reports
   the engine reports identical keys. *)
let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d terminals=%d deduped=%d pruned=%d truncated=%d peak_depth=%d"
    s.nodes s.terminals s.deduped s.pruned s.truncated s.peak_depth

(* The per-run [stats] record is a view the engine also folds into the
   process-wide registry when a run finishes: local refs keep the hot
   loop allocation-free, the registry keeps the cross-run tallies that
   snapshots and traces export. *)
let m_nodes = Obs.Metrics.counter "explore.nodes"
let m_terminals = Obs.Metrics.counter "explore.terminals"
let m_deduped = Obs.Metrics.counter "explore.deduped"
let m_pruned = Obs.Metrics.counter "explore.pruned"
let m_truncated = Obs.Metrics.counter "explore.truncated"
let m_peak_depth = Obs.Metrics.gauge "explore.peak_depth"
let m_budget_trips = Obs.Metrics.counter "explore.budget_trips"
let m_runs = Obs.Metrics.counter "explore.runs"

let h_terminal_depth =
  Obs.Metrics.histogram
    ~bounds:[| 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 |]
    "explore.terminal_depth"

let publish_stats s =
  Obs.Metrics.inc m_runs;
  Obs.Metrics.add m_nodes s.nodes;
  Obs.Metrics.add m_terminals s.terminals;
  Obs.Metrics.add m_deduped s.deduped;
  Obs.Metrics.add m_pruned s.pruned;
  Obs.Metrics.add m_truncated s.truncated;
  Obs.Metrics.set_max m_peak_depth s.peak_depth

(* One observation per step of one process. A write's value is a
   deterministic function of the history so far, so only reads need to
   record what they returned. *)
type ('v, 'i) cell =
  | C_write
  | C_read of 'v
  | C_write_input
  | C_read_input of 'i option
  | C_crash

type visited_entry = { mutable sleep_stored : int; mutable floor_stored : int }

type outcome =
  | Complete
  | Exhausted of exhausted

and exhausted = { frontier : Budget.frontier; reason : Budget.stop_reason }

type result = { stats : stats; outcome : outcome }

let pp_outcome ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Exhausted { frontier; reason } ->
      Format.fprintf ppf "exhausted (%a, %d frontier paths)"
        Budget.pp_stop_reason reason
        (Budget.frontier_size frontier)

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    c := !c + (!m land 1);
    m := !m lsr 1
  done;
  !c

let explore ?(max_steps = 10_000) ?(max_crashes = 0) ?(dedup = true)
    ?(por = true) ?(budget = Budget.unlimited) ?resume ?clock ?(quiet = false)
    ?(on_truncated = fun _ -> ()) ~init visit =
  let state = init () in
  Scheduler.enable_journal state;
  let n = Scheduler.n state in
  if n >= Sys.int_size - 1 then
    invalid_arg "Explore.explore: sleep-set bitmasks need n < word size";
  let mem = Scheduler.memory state in
  (* Per-pid observation histories (newest cell first), their lengths, and
     the single running Zobrist hash over all of them. Maintained only
     when [dedup] is on — the raw walk never touches them. *)
  let keys = Array.make n ([] : _ cell list) in
  let pdepth = Array.make n 0 in
  let zhash = ref 0 in
  let crash_vh = Zobrist.value_hash C_crash in
  let visited : (int, (('v, 'i) cell list array * visited_entry) list ref)
      Hashtbl.t =
    Hashtbl.create 1024
  in
  let monitor = Budget.arm ?clock budget in
  (* An unlimited budget can never trip: skip the per-node poll, and skip
     consing root-to-node choice paths — they exist only to seed the
     resumable frontier a trip would produce. *)
  let track_budget = not (Budget.is_unlimited budget) in
  (* [quiet] marks an internal segment of a larger run (the parallel
     driver's seed passes and per-unit worker calls): no span, no
     budget-trip instant, no registry publication — the driver reports
     the merged whole once, so telemetry keeps the shape of a single
     exploration regardless of how the work was partitioned. *)
  if not quiet then
    Obs.Span.begin_ ~cat:"explore"
      ~args:
        [
          ("n", Obs.Json.Int n);
          ("max_steps", Obs.Json.Int max_steps);
          ("max_crashes", Obs.Json.Int max_crashes);
          ("dedup", Obs.Json.Bool dedup);
          ("por", Obs.Json.Bool por);
        ]
      "explore";
  (* Once a cap trips, no further subtree is entered: every node reached
     after the trip records its root-to-node choice path instead, and the
     collected paths become the resumable frontier. *)
  let stop = ref None in
  let frontier = ref [] in
  let visited_count = ref 0 in
  let nodes = ref 0 and terminals = ref 0 and deduped = ref 0
  and pruned = ref 0 and truncated = ref 0 and peak_depth = ref 0 in
  (* Does the next op of process [i] conflict with the next op of process
     [j]?  Only a read and a write of the same (SWMR) register do. *)
  let conflict a i b j =
    match (a, b) with
    | Scheduler.Op_write, Scheduler.Op_read r -> r = i
    | Scheduler.Op_read r, Scheduler.Op_write -> r = j
    | Scheduler.Op_write_input, Scheduler.Op_read_input r -> r = i
    | Scheduler.Op_read_input r, Scheduler.Op_write_input -> r = j
    | _ -> false
  in
  let indep_filter op p mask =
    let kept = ref 0 in
    for u = 0 to n - 1 do
      if
        mask land (1 lsl u) <> 0
        && not (conflict op p (Scheduler.peek state u) u)
      then kept := !kept lor (1 lsl u)
    done;
    !kept
  in
  let observation p =
    match Scheduler.peek state p with
    | Scheduler.Op_write -> C_write
    | Scheduler.Op_read j -> C_read (Memory.peek mem j)
    | Scheduler.Op_write_input -> C_write_input
    | Scheduler.Op_read_input j -> C_read_input (Memory.read_input mem j)
    | Scheduler.Op_halted -> assert false
  in
  (* Record one observation of process [p]: cons the cell, XOR its
     Zobrist contribution into the running hash. Undo is the caller
     restoring the saved list head, length, and hash word. *)
  let push_obs p obs =
    keys.(p) <- obs :: keys.(p);
    zhash :=
      !zhash
      lxor Zobrist.cell ~pid:p ~pos:pdepth.(p) ~vhash:(Zobrist.value_hash obs);
    pdepth.(p) <- pdepth.(p) + 1
  in
  (* A crashed process's trailing reads are invisible: they wrote nothing
     and its decision is void, so crashing right away and crashing after a
     few more reads reach the same state. Canonicalizing the victim's key
     (drop the read suffix, then append the crash marker) merges them.
     Reads that precede a write must stay — they determined its value.
     Each dropped cell's Zobrist contribution is XORed back out, so the
     canonicalization is O(dropped suffix), not O(history). *)
  let rec strip_reads p key pos h =
    match key with
    | ((C_read _ | C_read_input _) as c) :: rest ->
        strip_reads p rest (pos - 1)
          (h lxor Zobrist.cell ~pid:p ~pos:(pos - 1)
                 ~vhash:(Zobrist.value_hash c))
    | _ -> (key, pos, h)
  in
  let push_crash_obs p =
    let stripped, pos, h = strip_reads p keys.(p) pdepth.(p) !zhash in
    keys.(p) <- C_crash :: stripped;
    zhash := h lxor Zobrist.cell ~pid:p ~pos ~vhash:crash_vh;
    pdepth.(p) <- pos + 1
  in
  (* Whenever a subtree has no dedup, no POR, no budget to poll, no trace
     to journal and no crash budget left, it is a pure product walk:
     hand it to the fused scheduler-level DFS, which keeps per-edge undo
     data on the call stack instead of in the journal. This covers the
     whole tree in raw mode, and the post-last-crash subtrees of a raw
     crashy run. *)
  let fused =
    (not dedup) && (not por) && (not track_budget)
    && not (Scheduler.recording_trace state)
  in
  let fused_visit state depth =
    if !Obs.Metrics.hot then Obs.Metrics.observe h_terminal_depth depth;
    visit state
  in
  let rec node ~sleep ~depth ~crashes ~floor ~path =
    if fused && crashes >= max_crashes then begin
      let nd, tm, tr, pk =
        Scheduler.raw_dfs state ~depth ~max_depth:max_steps ~visit:fused_visit
          ~on_truncated
      in
      nodes := !nodes + nd;
      terminals := !terminals + tm;
      truncated := !truncated + tr;
      if pk > !peak_depth then peak_depth := pk
    end
    else if track_budget && !stop <> None then
      frontier := List.rev path :: !frontier
    else
      match
        if track_budget then
          Budget.stopped monitor ~nodes:!nodes ~terminals:!terminals
        else None
      with
      | Some r ->
          stop := Some r;
          if not quiet then begin
            Obs.Metrics.inc m_budget_trips;
            Obs.Span.instant ~cat:"explore"
              ~args:
                [
                  ("reason", Obs.Json.Str (Budget.stop_reason_to_string r));
                  ("nodes", Obs.Json.Int !nodes);
                  ("terminals", Obs.Json.Int !terminals);
                ]
              "budget-trip"
          end;
          frontier := List.rev path :: !frontier
      | None -> begin
          incr nodes;
          (* Periodic progress sample, cadenced on the node count so the
             instants replay identically; [quiet] internal segments (and
             the fused raw walk, which never reaches this function per
             node) emit none. *)
          if (not quiet) && !nodes land 4095 = 0 then
            Obs.Span.instant ~cat:"explore"
              ~args:
                [
                  ("nodes", Obs.Json.Int !nodes);
                  ("terminals", Obs.Json.Int !terminals);
                  ("peak_depth", Obs.Json.Int !peak_depth);
                ]
              "explore.progress";
          if depth > !peak_depth then peak_depth := depth;
          let enabled = Scheduler.running_mask state in
          let terminal = enabled = 0 in
          let sleep = if por then sleep land enabled else 0 in
          if (not terminal) && depth >= max_steps then begin
            incr truncated;
            on_truncated state
          end
          else if not dedup then
            fresh ~sleep ~depth ~crashes ~floor ~enabled ~path
          else begin
            let h = !zhash in
            let bucket =
              match Hashtbl.find_opt visited h with
              | Some b -> b
              | None ->
                  let b = ref [] in
                  Hashtbl.add visited h b;
                  b
            in
            match List.find_opt (fun (k, _) -> k = keys) !bucket with
            | None ->
                (* The dedup-table cap bounds memory, not progress: a full
                   table stops memoizing new states and the walk carries
                   on, merely re-exploring convergent interleavings. *)
                if not (Budget.visited_full monitor ~visited:!visited_count)
                then begin
                  bucket :=
                    ( Array.copy keys,
                      { sleep_stored = sleep; floor_stored = floor } )
                    :: !bucket;
                  incr visited_count
                end;
                fresh ~sleep ~depth ~crashes ~floor ~enabled ~path
            | Some (_, _) when terminal -> incr deduped
            | Some (_, e) ->
                (* Transitions slept on every earlier visit but awake now
                   must be expanded; likewise crash pids below every
                   earlier floor. *)
                let reopen_steps =
                  e.sleep_stored land lnot sleep land enabled
                in
                let reopen_crashes =
                  crashes < max_crashes && floor < e.floor_stored
                in
                if reopen_steps = 0 && not reopen_crashes then incr deduped
                else begin
                  let covered =
                    sleep lor (enabled land lnot e.sleep_stored)
                  in
                  let crash_hi =
                    if reopen_crashes then e.floor_stored else floor
                  in
                  e.sleep_stored <- e.sleep_stored land sleep;
                  e.floor_stored <- min e.floor_stored floor;
                  expand ~step_mask:reopen_steps ~covered ~crash_lo:floor
                    ~crash_hi ~depth ~crashes ~enabled ~path
                end
          end
        end
  and fresh ~sleep ~depth ~crashes ~floor ~enabled ~path =
    if enabled = 0 then begin
      incr terminals;
      if !Obs.Metrics.hot then Obs.Metrics.observe h_terminal_depth depth;
      visit state
    end
    else begin
      if sleep <> 0 then pruned := !pruned + popcount sleep;
      expand ~step_mask:(enabled land lnot sleep) ~covered:sleep
        ~crash_lo:floor ~crash_hi:n ~depth ~crashes ~enabled ~path
    end
  and expand ~step_mask ~covered ~crash_lo ~crash_hi ~depth ~crashes ~enabled
      ~path =
    let covered = ref covered in
    for p = 0 to n - 1 do
      if step_mask land (1 lsl p) <> 0 then begin
        let child_sleep =
          if por then indep_filter (Scheduler.peek state p) p !covered else 0
        in
        let old_key = keys.(p) and old_h = !zhash in
        if dedup then push_obs p (observation p);
        let m = Scheduler.journal_mark state in
        Scheduler.step state p;
        node ~sleep:child_sleep ~depth:(depth + 1) ~crashes ~floor:0
          ~path:(if track_budget then Budget.Step p :: path else path);
        Scheduler.undo_to state m;
        if dedup then begin
          keys.(p) <- old_key;
          pdepth.(p) <- pdepth.(p) - 1;
          zhash := old_h
        end;
        covered := !covered lor (1 lsl p)
      end
    done;
    if crashes < max_crashes then
      for p = max 0 crash_lo to crash_hi - 1 do
        if enabled land (1 lsl p) <> 0 then begin
          (* A crash only touches the victim's status: it commutes with
             every other process's next op, so the whole covered set stays
             asleep in the crash subtree. *)
          let child_sleep = if por then !covered land lnot (1 lsl p) else 0 in
          let old_key = keys.(p) and old_h = !zhash and old_d = pdepth.(p) in
          if dedup then push_crash_obs p;
          let m = Scheduler.journal_mark state in
          Scheduler.crash state p;
          node ~sleep:child_sleep ~depth ~crashes:(crashes + 1)
            ~floor:(p + 1)
            ~path:(if track_budget then Budget.Crash p :: path else path);
          Scheduler.undo_to state m;
          if dedup then begin
            keys.(p) <- old_key;
            pdepth.(p) <- old_d;
            zhash := old_h
          end
        end
      done
  in
  (* Resuming re-executes a frontier path's choices (maintaining the
     observation keys exactly as [expand] would have) and explores the
     subtree below it. Fresh visited and sleep sets only ever make the
     resumed walk explore {e more} than the original would have — sound,
     and complete because every abandoned subtree is on the frontier. *)
  let run_prefix prefix =
    if !stop <> None then frontier := prefix :: !frontier
    else begin
      let saved_keys = Array.copy keys
      and saved_pdepth = Array.copy pdepth
      and saved_zhash = !zhash in
      let m0 = Scheduler.journal_mark state in
      let depth = ref 0 and crashes = ref 0 and floor = ref 0 in
      List.iter
        (fun choice ->
          match choice with
          | Budget.Step p ->
              if dedup then push_obs p (observation p);
              Scheduler.step state p;
              incr depth;
              floor := 0
          | Budget.Crash p ->
              if dedup then push_crash_obs p;
              Scheduler.crash state p;
              incr crashes;
              floor := p + 1)
        prefix;
      node ~sleep:0 ~depth:!depth ~crashes:!crashes ~floor:!floor
        ~path:(List.rev prefix);
      Scheduler.undo_to state m0;
      Array.blit saved_keys 0 keys 0 n;
      Array.blit saved_pdepth 0 pdepth 0 n;
      zhash := saved_zhash
    end
  in
  (* Visitors may abort the walk by raising ([find], the harness's early
     stop): the span still closes and the partial tallies still reach the
     registry before the exception continues. *)
  let escaped =
    match
      match resume with
      | None -> node ~sleep:0 ~depth:0 ~crashes:0 ~floor:0 ~path:[]
      | Some paths -> List.iter run_prefix paths
    with
    | () -> None
    | exception exn -> Some (exn, Printexc.get_raw_backtrace ())
  in
  let stats =
    {
      nodes = !nodes;
      terminals = !terminals;
      deduped = !deduped;
      pruned = !pruned;
      truncated = !truncated;
      peak_depth = !peak_depth;
    }
  in
  let outcome =
    match !stop with
    | None -> Complete
    | Some reason -> Exhausted { frontier = List.rev !frontier; reason }
  in
  if not quiet then begin
    publish_stats stats;
    Obs.Span.end_ ~cat:"explore"
      ~args:
        [
          ("nodes", Obs.Json.Int stats.nodes);
          ("terminals", Obs.Json.Int stats.terminals);
          ("deduped", Obs.Json.Int stats.deduped);
          ("pruned", Obs.Json.Int stats.pruned);
          ("truncated", Obs.Json.Int stats.truncated);
          ("peak_depth", Obs.Json.Int stats.peak_depth);
          ( "outcome",
            Obs.Json.Str
              (match (escaped, outcome) with
              | Some _, _ -> "aborted"
              | None, Complete -> "complete"
              | None, Exhausted { reason; _ } ->
                  Budget.stop_reason_to_string reason) );
        ]
      "explore"
  end;
  (match escaped with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  { stats; outcome }

(* {2 The naive reference walker} *)

let interleavings_naive ?(max_steps = 10_000) ?(on_truncated = fun _ -> ())
    ~init visit =
  let rec go state depth =
    match Scheduler.running state with
    | [] -> visit state
    | procs ->
        if depth >= max_steps then on_truncated state
        else
          List.iter
            (fun pid ->
              let fork = Scheduler.copy state in
              Scheduler.step fork pid;
              go fork (depth + 1))
            procs
  in
  go (init ()) 0

let interleavings_with_crashes_naive ?(max_steps = 10_000)
    ?(on_truncated = fun _ -> ()) ~max_crashes ~init visit =
  let rec go state depth crashes crash_floor =
    match Scheduler.running state with
    | [] -> visit state
    | procs ->
        if depth >= max_steps then on_truncated state
        else begin
          List.iter
            (fun pid ->
              let fork = Scheduler.copy state in
              Scheduler.step fork pid;
              go fork (depth + 1) crashes 0)
            procs;
          (* Crashes between two steps commute; enumerating only the
             increasing-pid order visits each crash set once. *)
          if crashes < max_crashes then
            List.iter
              (fun pid ->
                if pid >= crash_floor then begin
                  let fork = Scheduler.copy state in
                  Scheduler.crash fork pid;
                  go fork depth (crashes + 1) (pid + 1)
                end)
              procs
        end
  in
  go (init ()) 0 0 0

(* {2 Compatibility wrappers} *)

let interleavings ?max_steps ?budget ?on_truncated ~init visit =
  (explore ?max_steps ?budget ?on_truncated ~init visit).outcome

let interleavings_with_crashes ?max_steps ?budget ?on_truncated ~max_crashes
    ~init visit =
  (explore ?max_steps ~max_crashes ?budget ?on_truncated ~init visit).outcome

exception Found

let find ?max_steps ?budget ~init pred =
  let result = ref None in
  let outcome = ref Complete in
  (try
     let r =
       explore ?max_steps ?budget ~init (fun state ->
           if pred state then begin
             result := Some state;
             raise Found
           end)
     in
     outcome := r.outcome
   with Found -> ());
  (!result, !outcome)

let count ?max_steps ?budget ~init () =
  let r =
    explore ?max_steps ?budget ~dedup:false ~por:false ~init (fun _ -> ())
  in
  (r.stats.terminals, r.outcome)
