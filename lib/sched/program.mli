(** Protocols as resumable step machines.

    A protocol for one process is a value of type [('v, 'i, 'a) t]: a free
    monad over the four atomic shared-memory operations of the paper's model
    — write the process's own SWMR register, read any register, write the
    process's write-once input register, read any input register. ['v] is the
    coordination-register value type, ['i] the input-register type, ['a] the
    decision type.

    Because the program is a value suspended between atomic steps, a
    scheduler can interleave processes arbitrarily, replay a schedule
    bit-for-bit, stop a process forever (a crash), or exhaustively enumerate
    interleavings. Protocol code must be pure between steps (all state in the
    continuation), which the combinators below make natural. *)

type ('v, 'i, 'a) t =
  | Return of 'a  (** decide and halt *)
  | Write of 'v * (unit -> ('v, 'i, 'a) t)  (** write own register R_i *)
  | Read of int * ('v -> ('v, 'i, 'a) t)  (** read register R_j *)
  | Write_input of 'i * (unit -> ('v, 'i, 'a) t)
      (** write own input register I_i (write-once) *)
  | Read_input of int * ('i option -> ('v, 'i, 'a) t)
      (** read input register I_j; [None] when not yet written *)
  | Output of 'a * (unit -> ('v, 'i, 'a) t)
      (** announce the decision but keep running — used by simulations whose
          processes must keep serving others after deciding (deciding and
          halting are distinct events in the model); costs no memory step *)

val return : 'a -> ('v, 'i, 'a) t
val bind : ('v, 'i, 'a) t -> ('a -> ('v, 'i, 'b) t) -> ('v, 'i, 'b) t
val map : ('a -> 'b) -> ('v, 'i, 'a) t -> ('v, 'i, 'b) t

val write : 'v -> ('v, 'i, unit) t
val read : int -> ('v, 'i, 'v) t
val write_input : 'i -> ('v, 'i, unit) t
val read_input : int -> ('v, 'i, 'i option) t
val output : 'a -> ('v, 'i, 'a) t -> ('v, 'i, 'a) t
(** [output a rest] announces [a] and continues as [rest]. *)

val collect : int -> ('v, 'i, 'v array) t
(** [collect n] reads registers [0..n-1] one by one in index order (a
    non-atomic collect, [n] steps). *)

val iter_list : ('a -> ('v, 'i, unit) t) -> 'a list -> ('v, 'i, unit) t

module Infix : sig
  val ( let* ) : ('v, 'i, 'a) t -> ('a -> ('v, 'i, 'b) t) -> ('v, 'i, 'b) t
  val ( let+ ) : ('v, 'i, 'a) t -> ('a -> 'b) -> ('v, 'i, 'b) t
end

(** {1 Step-compiled programs}

    The free monad above is the authoring surface; {!Compiled} is the
    execution surface. {!compile} lowers a program into flat parallel
    arrays indexed by a program counter — opcode and register operand
    as ints, continuations resolved to slot indices — so a scheduler's
    inner loop dispatches on [op code pc] with {e zero} allocation per
    atomic operation. Lowering is lazy and memoized: the first
    execution of a position invokes the free-monad continuation once
    (for reads, once per distinct value read, keyed by structural
    equality — sound because protocol code is pure between steps) and
    every later execution is an array read.

    A compiled program is mutable (it grows as new positions are
    reached). Sharing one across sequential runs, copies, and
    undo-based backtracking is safe and is where the memoization pays;
    sharing one across [Domain]s is not — parallel drivers give each
    worker its own compilation (see {!Par}). *)

module Compiled : sig
  type ('v, 'i, 'a) code

  val of_program : ('v, 'i, 'a) t -> ('v, 'i, 'a) code
  (** Lower a program; only the root slot is materialized, the rest
      compiles on first execution. *)

  val root : int
  (** The entry program counter of every compiled program. *)

  val length : ('v, 'i, 'a) code -> int
  (** Number of program positions materialized so far. *)

  (** {2 Execution interface (used by {!Scheduler})}

      Opcodes are dense small ints so the dispatch compiles to a jump
      table. *)

  val op_write : int
  val op_read : int
  val op_write_input : int
  val op_read_input : int
  val op_return : int
  val op_output : int

  val op : ('v, 'i, 'a) code -> int -> int
  val reg : ('v, 'i, 'a) code -> int -> int

  val write_value : ('v, 'i, 'a) code -> int -> 'v
  val input_value : ('v, 'i, 'a) code -> int -> 'i
  val decision : ('v, 'i, 'a) code -> int -> 'a

  val decision_some : ('v, 'i, 'a) code -> int -> 'a option
  (** The decision of a return / output slot as its compile-time [Some]
      block — always [Some]; storing it announces the decision without
      allocating per execution. *)

  val next_unit : ('v, 'i, 'a) code -> int -> int
  (** Continuation of a write / write_input / output slot. *)

  val next_read : ('v, 'i, 'a) code -> int -> 'v -> int
  (** Continuation of a read slot for the value just read. *)

  val next_read_input : ('v, 'i, 'a) code -> int -> 'i option -> int
end

val compile : ('v, 'i, 'a) t -> ('v, 'i, 'a) Compiled.code
(** Alias for {!Compiled.of_program}. *)
