(* Split [xs] into [n] contiguous chunks of near-equal length. *)
let chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let taken, left = take (k - 1) rest in
          (x :: taken, left)
  in
  let rec go i xs =
    if i >= n || xs = [] then []
    else
      let size = base + if i < extra then 1 else 0 in
      let c, rest = take size xs in
      c :: go (i + 1) rest
  in
  go 0 xs

let rec remove_chunk i = function
  | [] -> []
  | c :: rest -> if i = 0 then rest else c :: remove_chunk (i - 1) rest

let ddmin_count ~test xs =
  let tests = ref 0 in
  let test xs =
    incr tests;
    test xs
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 || n > len then xs
    else begin
      let cs = chunks n xs in
      (* Reduce to a single failing chunk... *)
      match List.find_opt test cs with
      | Some c -> go c 2
      | None -> (
          (* ...or to the complement of one chunk. *)
          let rec complements i =
            if i >= List.length cs then None
            else
              let comp = List.concat (remove_chunk i cs) in
              if test comp then Some comp else complements (i + 1)
          in
          match complements 0 with
          | Some comp -> go comp (max (n - 1) 2)
          | None -> if n < len then go xs (min len (2 * n)) else xs)
    end
  in
  if not (test xs) then (xs, !tests)
  else begin
    let shrunk = go xs 2 in
    (shrunk, !tests)
  end

let ddmin ~test xs = fst (ddmin_count ~test xs)

(* Drop element [i] and element [j] (i < j). *)
let without2 i j xs =
  List.filteri (fun k _ -> k <> i && k <> j) xs

let minimize_count ~test xs =
  let tests = ref 0 in
  let counted xs =
    incr tests;
    test xs
  in
  let start, dd = ddmin_count ~test xs in
  tests := dd;
  (* ddmin is 1-minimal; a pair-elimination pass catches mutually-dependent
     leftovers (an action and its compensation that only fail together),
     which matters for fault plans where e.g. a duplicate and the delivery
     of its copy survive chunk removal as a pair. *)
  let rec pairs xs =
    let len = List.length xs in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < len - 1 do
      let j = ref (!i + 1) in
      while !found = None && !j < len do
        let candidate = without2 !i !j xs in
        if counted candidate then found := Some candidate;
        incr j
      done;
      incr i
    done;
    match !found with
    | Some smaller -> pairs (ddmin ~test:counted smaller)
    | None -> xs
  in
  let result = pairs start in
  (result, !tests)

let minimize ~test xs = fst (minimize_count ~test xs)
