type 'v op = Read of 'v | Write of 'v

type 'v event = {
  proc : int;
  reg : int;
  op : 'v op;
  inv : int;
  res : int option;
}

type 'v verdict =
  | Linearizable of 'v event list
  | Nonlinearizable of { reg : int; reason : string }

let pp_event pp_v ppf e =
  let kind, v = match e.op with Read v -> ("R", v) | Write v -> ("W", v) in
  Format.fprintf ppf "p%d:%s%d=%a[%d,%s]" e.proc kind e.reg pp_v v e.inv
    (match e.res with Some r -> string_of_int r | None -> "?")

let pp_verdict pp_v ppf = function
  | Linearizable witness ->
      Format.fprintf ppf "@[<h>linearizable:@ %a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (pp_event pp_v))
        witness
  | Nonlinearizable { reg; reason } ->
      Format.fprintf ppf "NONLINEARIZABLE (register %d): %s" reg reason

let completed e = e.res <> None
let is_read e = match e.op with Read _ -> true | Write _ -> false

(* [e] may be linearized next iff no other remaining completed operation
   finished before [e] was invoked. Pending operations never constrain
   others (their response is in the open future). *)
let minimal used evs i =
  let e = evs.(i) in
  let blocked = ref false in
  Array.iteri
    (fun j e' ->
      if (not !blocked) && j <> i && not used.(j) then
        match e'.res with
        | Some r when r < e.inv -> blocked := true
        | Some _ | None -> ())
    evs;
  not !blocked

(* Decide one register's history. Pending reads were dropped by the caller;
   pending writes are optional. Greedy rule: a minimal completed read that
   returns the current value can always be linearized immediately — reads
   leave the register unchanged, so hoisting one to the front of any witness
   keeps the witness legal. Backtracking is only over writes.

   This is the compiled form of the search: event fields are unpacked into
   flat int arrays up front, the minimality test reads the smallest live
   response time off a res-sorted index instead of rescanning the history,
   undo pops a trail of taken indices instead of copying the [used] array,
   and the write backtracking runs on an explicit frame stack. Candidate
   enumeration order is untouched, so witnesses — and hence every digest
   built over verdicts — are byte-identical to the recursive search;
   [check_naive] below stays as the differential oracle. *)
let check_reg ~pp ~init ~equal evs =
  let nn = Array.length evs in
  if nn = 0 then Ok []
  else begin
    (* [res_a.(i) = max_int] encodes pending: never blocks minimality and
       never counts toward [remaining]. *)
    let inv_a = Array.make nn 0 in
    let res_a = Array.make nn max_int in
    let read_a = Array.make nn false in
    let val_a =
      Array.make nn (match evs.(0).op with Read v | Write v -> v)
    in
    let remaining = ref 0 in
    for i = 0 to nn - 1 do
      let e = evs.(i) in
      inv_a.(i) <- e.inv;
      (match e.res with
      | Some r ->
          res_a.(i) <- r;
          incr remaining
      | None -> ());
      match e.op with
      | Read v ->
          read_a.(i) <- true;
          val_a.(i) <- v
      | Write v -> val_a.(i) <- v
    done;
    (* Indices sorted by response time; [first_live] is a lazy pointer to
       the first unused entry. Ties in [res] are interchangeable for the
       minimality test, so the sort's instability cannot change verdicts. *)
    let by_res = Array.init nn (fun i -> i) in
    Array.sort (fun a b -> compare res_a.(a) res_a.(b)) by_res;
    let rank = Array.make nn 0 in
    Array.iteri (fun pos i -> rank.(i) <- pos) by_res;
    let first_live = ref 0 in
    let used = Array.make nn false in
    (* [e_i] may go next iff no unused completed operation other than [i]
       responded before [e_i]'s invocation — i.e. the smallest live [res]
       excluding [i] is [>= inv_a.(i)]. Only called with [used.(i) = false]. *)
    let minimal_fast i =
      let p = ref !first_live in
      while !p < nn && used.(by_res.(!p)) do incr p done;
      first_live := !p;
      if !p >= nn then true
      else begin
        let j = by_res.(!p) in
        if j <> i then res_a.(j) >= inv_a.(i)
        else begin
          let q = ref (!p + 1) in
          while !q < nn && used.(by_res.(!q)) do incr q done;
          !q >= nn || res_a.(by_res.(!q)) >= inv_a.(i)
        end
      end
    in
    let witness = ref [] in
    let trail = Array.make nn 0 in
    let trail_len = ref 0 in
    let take i =
      used.(i) <- true;
      if res_a.(i) <> max_int then decr remaining;
      witness := evs.(i) :: !witness;
      trail.(!trail_len) <- i;
      incr trail_len
    in
    let restore_to sp saved_witness =
      while !trail_len > sp do
        decr trail_len;
        let i = trail.(!trail_len) in
        used.(i) <- false;
        if res_a.(i) <> max_int then incr remaining;
        if rank.(i) < !first_live then first_live := rank.(i)
      done;
      witness := saved_witness
    in
    let rec greedy_reads value =
      let progress = ref false in
      for i = 0 to nn - 1 do
        if
          (not used.(i)) && read_a.(i) && res_a.(i) <> max_int
          && equal val_a.(i) value
          && minimal_fast i
        then begin
          take i;
          progress := true
        end
      done;
      if !progress then greedy_reads value
    in
    (* One frame per tentatively taken write: the next candidate index to
       try, the trail savepoint, and the witness at savepoint. Depth is
       bounded by the number of writes, hence by [nn]. *)
    let fr_i = Array.make (nn + 1) 0 in
    let fr_sp = Array.make (nn + 1) 0 in
    let fr_wit = Array.make (nn + 1) [] in
    let depth = ref 0 in
    let push_frame () =
      fr_i.(!depth) <- 0;
      fr_sp.(!depth) <- !trail_len;
      fr_wit.(!depth) <- !witness;
      incr depth
    in
    let ok = ref false in
    greedy_reads (init ());
    if !remaining = 0 then ok := true
    else begin
      push_frame ();
      let running = ref true in
      while !running do
        let f = !depth - 1 in
        (* Advance to the next untaken minimal write, in index order. *)
        let i = ref fr_i.(f) in
        while
          !i < nn
          && not ((not read_a.(!i)) && (not used.(!i)) && minimal_fast !i)
        do
          incr i
        done;
        if !i < nn then begin
          fr_i.(f) <- !i + 1;
          take !i;
          greedy_reads val_a.(!i);
          if !remaining = 0 then begin
            ok := true;
            running := false
          end
          else push_frame ()
        end
        else begin
          (* This branch is exhausted: unwind to the caller's savepoint. *)
          decr depth;
          if !depth = 0 then running := false
          else restore_to fr_sp.(!depth - 1) fr_wit.(!depth - 1)
        end
      done
    end;
    if !ok then Ok (List.rev !witness)
  else begin
    (* For the message: the earliest-invoked completed operation that the
       search could not place. The greedy pass consumed everything
       consistent, so after a failed search some completed read disagrees
       with every reachable register value. *)
    let stuck = ref None in
    Array.iter
      (fun e ->
        if completed e then
          match !stuck with
          | Some s when s.inv <= e.inv -> ()
          | Some _ | None -> ( match e.op with Read _ -> stuck := Some e | Write _ -> ()))
      evs;
    let reason =
      match !stuck with
      | Some ({ op = Read v; _ } as e) ->
          Format.asprintf
            "read by p%d over [%d,%s] returned %a, which no interleaving of \
             the writes consistent with real-time order can produce"
            e.proc e.inv
            (match e.res with Some r -> string_of_int r | None -> "?")
            pp v
      | Some _ | None ->
          "no linearization of the completed operations exists"
      in
      Error reason
    end
  end

let group_by_reg events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let l = Option.value (Hashtbl.find_opt tbl e.reg) ~default:[] in
      Hashtbl.replace tbl e.reg (e :: l))
    events;
  Hashtbl.fold (fun reg l acc -> (reg, List.rev l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let default_pp ppf _ = Format.pp_print_string ppf "<v>"

let check ?(pp = default_pp) ~init ~equal events =
  let rec per_reg acc = function
    | [] -> Linearizable (List.concat (List.rev acc))
    | (reg, evs) :: rest -> (
        (* Pending reads promise nothing: drop them. *)
        let evs =
          List.filter (fun e -> completed e || not (is_read e)) evs
        in
        match
          check_reg ~pp ~init:(fun () -> init reg) ~equal
            (Array.of_list evs)
        with
        | Ok witness -> per_reg (witness :: acc) rest
        | Error reason -> Nonlinearizable { reg; reason })
  in
  per_reg [] (group_by_reg events)

(* The oracle: plain Wing–Gong, branching over every minimal candidate. *)
let check_naive ~init ~equal events =
  let one_reg (reg, evs) =
    let evs =
      Array.of_list
        (List.filter (fun e -> completed e || not (is_read e)) evs)
    in
    let nn = Array.length evs in
    let used = Array.make nn false in
    let rec go value remaining =
      if remaining = 0 then true
      else begin
        let ok = ref false in
        for i = 0 to nn - 1 do
          if (not !ok) && (not used.(i)) && minimal used evs i then begin
            let attempt value' =
              used.(i) <- true;
              if go value' (if completed evs.(i) then remaining - 1 else remaining)
              then ok := true
              else used.(i) <- false
            in
            match evs.(i).op with
            | Read v -> if equal v value then attempt value
            | Write v -> attempt v
          end
        done;
        !ok
      end
    in
    go (init reg)
      (Array.fold_left (fun k e -> if completed e then k + 1 else k) 0 evs)
  in
  List.for_all one_reg (group_by_reg events)
