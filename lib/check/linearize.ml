type 'v op = Read of 'v | Write of 'v

type 'v event = {
  proc : int;
  reg : int;
  op : 'v op;
  inv : int;
  res : int option;
}

type 'v verdict =
  | Linearizable of 'v event list
  | Nonlinearizable of { reg : int; reason : string }

let pp_event pp_v ppf e =
  let kind, v = match e.op with Read v -> ("R", v) | Write v -> ("W", v) in
  Format.fprintf ppf "p%d:%s%d=%a[%d,%s]" e.proc kind e.reg pp_v v e.inv
    (match e.res with Some r -> string_of_int r | None -> "?")

let pp_verdict pp_v ppf = function
  | Linearizable witness ->
      Format.fprintf ppf "@[<h>linearizable:@ %a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (pp_event pp_v))
        witness
  | Nonlinearizable { reg; reason } ->
      Format.fprintf ppf "NONLINEARIZABLE (register %d): %s" reg reason

let completed e = e.res <> None
let is_read e = match e.op with Read _ -> true | Write _ -> false

(* [e] may be linearized next iff no other remaining completed operation
   finished before [e] was invoked. Pending operations never constrain
   others (their response is in the open future). *)
let minimal used evs i =
  let e = evs.(i) in
  let blocked = ref false in
  Array.iteri
    (fun j e' ->
      if (not !blocked) && j <> i && not used.(j) then
        match e'.res with
        | Some r when r < e.inv -> blocked := true
        | Some _ | None -> ())
    evs;
  not !blocked

(* Decide one register's history. Pending reads were dropped by the caller;
   pending writes are optional. Greedy rule: a minimal completed read that
   returns the current value can always be linearized immediately — reads
   leave the register unchanged, so hoisting one to the front of any witness
   keeps the witness legal. Backtracking is only over writes. *)
let check_reg ~pp ~init ~equal evs =
  let nn = Array.length evs in
  let used = Array.make nn false in
  let remaining = ref (Array.fold_left (fun k e -> if completed e then k + 1 else k) 0 evs) in
  let witness = ref [] in
  let take i =
    used.(i) <- true;
    if completed evs.(i) then decr remaining;
    witness := evs.(i) :: !witness
  in
  let rec greedy_reads value =
    let progress = ref false in
    for i = 0 to nn - 1 do
      if
        (not used.(i)) && completed evs.(i) && is_read evs.(i)
        && (match evs.(i).op with Read v -> equal v value | Write _ -> false)
        && minimal used evs i
      then begin
        take i;
        progress := true
      end
    done;
    if !progress then greedy_reads value
  in
  (* Explore from register state [value]; returns true on success with
     [witness] holding the order found (newest first). *)
  let rec go value =
    greedy_reads value;
    if !remaining = 0 then true
    else begin
      let saved_witness = !witness and saved_used = Array.copy used in
      let saved_remaining = !remaining in
      let restore () =
        witness := saved_witness;
        Array.blit saved_used 0 used 0 nn;
        remaining := saved_remaining
      in
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < nn do
        (match evs.(!i).op with
        | Write v when (not used.(!i)) && minimal used evs !i ->
            take !i;
            if go v then ok := true else restore ()
        | Write _ | Read _ -> ());
        incr i
      done;
      !ok
    end
  in
  if go (init ()) then Ok (List.rev !witness)
  else begin
    (* For the message: the earliest-invoked completed operation that the
       search could not place. The greedy pass consumed everything
       consistent, so after a failed search some completed read disagrees
       with every reachable register value. *)
    let stuck = ref None in
    Array.iter
      (fun e ->
        if completed e then
          match !stuck with
          | Some s when s.inv <= e.inv -> ()
          | Some _ | None -> ( match e.op with Read _ -> stuck := Some e | Write _ -> ()))
      evs;
    let reason =
      match !stuck with
      | Some ({ op = Read v; _ } as e) ->
          Format.asprintf
            "read by p%d over [%d,%s] returned %a, which no interleaving of \
             the writes consistent with real-time order can produce"
            e.proc e.inv
            (match e.res with Some r -> string_of_int r | None -> "?")
            pp v
      | Some _ | None ->
          "no linearization of the completed operations exists"
    in
    Error reason
  end

let group_by_reg events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let l = Option.value (Hashtbl.find_opt tbl e.reg) ~default:[] in
      Hashtbl.replace tbl e.reg (e :: l))
    events;
  Hashtbl.fold (fun reg l acc -> (reg, List.rev l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let default_pp ppf _ = Format.pp_print_string ppf "<v>"

let check ?(pp = default_pp) ~init ~equal events =
  let rec per_reg acc = function
    | [] -> Linearizable (List.concat (List.rev acc))
    | (reg, evs) :: rest -> (
        (* Pending reads promise nothing: drop them. *)
        let evs =
          List.filter (fun e -> completed e || not (is_read e)) evs
        in
        match
          check_reg ~pp ~init:(fun () -> init reg) ~equal
            (Array.of_list evs)
        with
        | Ok witness -> per_reg (witness :: acc) rest
        | Error reason -> Nonlinearizable { reg; reason })
  in
  per_reg [] (group_by_reg events)

(* The oracle: plain Wing–Gong, branching over every minimal candidate. *)
let check_naive ~init ~equal events =
  let one_reg (reg, evs) =
    let evs =
      Array.of_list
        (List.filter (fun e -> completed e || not (is_read e)) evs)
    in
    let nn = Array.length evs in
    let used = Array.make nn false in
    let rec go value remaining =
      if remaining = 0 then true
      else begin
        let ok = ref false in
        for i = 0 to nn - 1 do
          if (not !ok) && (not used.(i)) && minimal used evs i then begin
            let attempt value' =
              used.(i) <- true;
              if go value' (if completed evs.(i) then remaining - 1 else remaining)
              then ok := true
              else used.(i) <- false
            in
            match evs.(i).op with
            | Read v -> if equal v value then attempt value
            | Write v -> attempt v
          end
        done;
        !ok
      end
    in
    go (init reg)
      (Array.fold_left (fun k e -> if completed e then k + 1 else k) 0 evs)
  in
  List.for_all one_reg (group_by_reg events)
