(** Delta-debugging counterexamples down to minimal failing cores.

    A random chaos campaign that finds a violation hands back a long event
    plan; replaying hundreds of events is a poor witness. [ddmin] (Zeller &
    Hildebrandt) repeatedly removes chunks of the plan while the failure
    predicate still holds, converging on a 1-minimal subsequence: removing
    any single remaining element makes the failure disappear. Element order
    is preserved, so a shrunk fault plan replays with the same relative
    delivery order as the original. *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list
(** [ddmin ~test xs] with [test xs = true] ("still fails") returns a
    1-minimal [ys], a subsequence of [xs], with [test ys = true]. If
    [test xs = false] the input is returned unchanged — there is nothing
    to shrink. [test] must be deterministic; it is invoked O(n²) times in
    the worst case. *)

val ddmin_count : test:('a list -> bool) -> 'a list -> 'a list * int
(** [ddmin] exposing the number of [test] invocations — the campaign's
    shrink-cost counter. *)

val minimize : test:('a list -> bool) -> 'a list -> 'a list
(** {!ddmin} followed by pair elimination to a fixpoint: additionally, no
    {e pair} of remaining elements can be removed together. Catches
    mutually-dependent leftovers 1-minimality cannot see (e.g. a fault and
    the event that compensates it), at O(n²) extra [test] calls on the
    already-shrunk core. *)

val minimize_count : test:('a list -> bool) -> 'a list -> 'a list * int
