(** Deciding linearizability of recorded register histories.

    The Section 6 simulation chain stands on the claim that ABD emulates
    {e atomic} registers; this module turns that claim into a machine
    decision. A campaign records every emulated read/write as an interval
    [[inv, res]] on a logical clock, and {!check} searches for a
    linearization: a total order of the operations that (a) respects
    real-time precedence ([res a < inv b] forces [a] before [b]), (b) keeps
    every process's operations in program order (guaranteed by precedence
    when the recorder stamps events from one monotone clock), and (c) is a
    legal sequential register history — every read returns the latest
    preceding write, or the initial value.

    The search is Wing–Gong style, specialised to registers: operations are
    scheduled one at a time, always choosing among the {e minimal} remaining
    operations (those no other remaining completed operation precedes in
    real time). Reads do not change the register, so a minimal read that
    matches the current value can always be taken greedily without losing
    completeness; backtracking is only ever over writes. Histories with [w]
    writes therefore cost O(w! · len) worst case but are near-linear in
    practice — campaigns use a handful of writes. {!check_naive} is the
    unoptimised full backtracking search, kept as the differential oracle.

    Incomplete operations (crashed or starved mid-flight, [res = None]) may
    or may not have taken effect: pending writes are linearized optionally,
    pending reads are vacuous and dropped. *)

type 'v op =
  | Read of 'v  (** returned this value *)
  | Write of 'v

type 'v event = {
  proc : int;
  reg : int;  (** emulated register (histories are checked per register) *)
  op : 'v op;
  inv : int;  (** invocation time on the recorder's logical clock *)
  res : int option;  (** response time; [None] = never completed *)
}

type 'v verdict =
  | Linearizable of 'v event list
      (** a witness order, per-register sections concatenated *)
  | Nonlinearizable of { reg : int; reason : string }

val pp_event :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v event -> unit

val pp_verdict :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v verdict -> unit

val check :
  ?pp:(Format.formatter -> 'v -> unit) ->
  init:(int -> 'v) ->
  equal:('v -> 'v -> bool) ->
  'v event list ->
  'v verdict
(** Partition the history by register and decide each part. [init reg] is
    the register's value before any write; [pp] is only used to render the
    [reason] of a failure. Event order in the input list is irrelevant —
    only the [inv]/[res] stamps matter. *)

val check_naive :
  init:(int -> 'v) -> equal:('v -> 'v -> bool) -> 'v event list -> bool
(** Reference oracle: exhaustive backtracking over every minimal candidate
    (no greedy reads). Exponential — differential tests on small histories
    only. *)
