(* E5 — Theorem 1.3 / Proposition 6.1: the minority-crash compilation to
   3(t+1)-bit registers, plus the chunk-width ablation. *)

module Q = Bits.Rational
module W = Msgpass.Wire
module H = Tasks.Harness

let value_codec = W.list_codec (W.pair_codec W.int_codec W.rational_codec)

let algorithm ~n ~t ~rounds ~chunk =
  Msgpass.Pipeline.algorithm ~n ~t ~chunk ~value:value_codec
    ~input:W.int_codec ~init:[]
    ~source:(fun ~pid ~input ->
      Core.Baseline_unbounded.protocol ~n ~rounds ~me:pid ~input)
    ~name:(Printf.sprintf "pipeline(n=%d,t=%d)" n t)
    ()

let measure ~n ~t ~rounds ~chunk ~runs ~seed =
  let task =
    Tasks.Eps_agreement.task ~n
      ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  match
    H.check_random
      ~task
      ~algorithm:(algorithm ~n ~t ~rounds ~chunk)
      ~resilience:t ~max_steps:400_000_000 ~runs ~seed ()
  with
  | H.Pass stats -> Ok stats
  | H.Fail v -> Error v

let run ctx ppf =
  Format.fprintf ppf
    "Compile the unbounded-register eps-agreement baseline through ABD@\n\
     quorums, t-augmented-ring flooding, and per-link alternating-bit@\n\
     channels. Register width is 3(t+1) bits regardless of the source@\n\
     protocol; runs include up to t crash injections.@\n@\n";
  (* The n = 7 row alone takes ~80 s (message volume grows with n(t+1)
     link copies), so under a supervision deadline the remaining rows are
     skipped — degraded, not killed. The deadline is polled between rows:
     each row is a single indivisible simulation. *)
  let monitor = Sched.Budget.arm ctx.Ctx.budget in
  let overdue () =
    match ctx.Ctx.budget.Sched.Budget.deadline with
    | Some d -> Sched.Budget.elapsed monitor >= d
    | None -> false
  in
  let skipped = ref 0 in
  let skip row_prefix cols =
    incr skipped;
    row_prefix @ List.init cols (fun _ -> "-") @ [ "skipped (deadline)" ]
  in
  let rows =
    List.map
      (fun (n, t, rounds, runs) ->
        if overdue () then skip [ string_of_int n; string_of_int t ] 4
        else
          let declared = Msgpass.Pipeline.register_bits ~t ~chunk:1 in
          match measure ~n ~t ~rounds ~chunk:1 ~runs ~seed:31 with
          | Ok stats ->
              [
                string_of_int n;
                string_of_int t;
                Table.cell_q (Q.make 1 (Core.Baseline_unbounded.denominator ~rounds));
                Printf.sprintf "%d (= 3(t+1) = %d)" stats.H.max_bits declared;
                string_of_int stats.H.max_process_steps;
                string_of_int stats.H.runs;
                "pass";
              ]
          | Error _ ->
              [ string_of_int n; string_of_int t; "-"; "-"; "-"; "-";
                "VIOLATION" ])
      [ (3, 1, 2, 2); (5, 2, 1, 1); (7, 3, 1, 1) ]
  in
  Table.print ppf
    ~title:"E5a  Theorem 1.3 pipeline (t < n/2, crash injection <= t)"
    ~headers:[ "n"; "t"; "eps"; "register bits"; "steps/proc"; "runs"; "verdict" ]
    rows;
  let ablation =
    List.map
      (fun chunk ->
        if overdue () then skip [ string_of_int chunk ] 2
        else
          match measure ~n:3 ~t:1 ~rounds:2 ~chunk ~runs:1 ~seed:5 with
          | Ok stats ->
              [
                string_of_int chunk;
                string_of_int (Msgpass.Pipeline.register_bits ~t:1 ~chunk);
                string_of_int stats.H.max_process_steps;
                "pass";
              ]
          | Error _ -> [ string_of_int chunk; "-"; "-"; "VIOLATION" ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print ppf
    ~title:
      "E5b  Ablation (n=3, t=1): alternating-bit payload width vs steps — \
       the register-size/time trade-off"
    ~headers:[ "chunk bits"; "register bits"; "steps/proc"; "verdict" ]
    ablation;
  if !skipped > 0 then
    ctx.Ctx.degraded
      (Printf.sprintf "pipeline: %d row(s) skipped at the deadline" !skipped)
