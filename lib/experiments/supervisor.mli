(** Crash-isolated experiment runs.

    [boundedreg run all] used to be as reliable as its least reliable
    experiment: one uncaught exception or non-terminating search lost
    every report after it. The supervisor runs each {!Registry.t} entry
    in isolation — output buffered, exceptions caught with their
    backtraces, a wall-clock alarm ({!Unix.setitimer} + [SIGALRM])
    aborting hung runs — and renders a summary table plus a process exit
    code, so the full suite always completes and CI can still fail. *)

type status =
  | Passed
  | Degraded of string list
      (** completed, but some check fell back to sampled coverage; the
          notes come from {!Ctx.t}'s [degraded] callback *)
  | Timed_out of float  (** aborted by the per-experiment deadline *)
  | Crashed of { exn_text : string; backtrace : string }

type result = {
  experiment : Registry.t;
  status : status;
  seconds : float;  (** wall clock, summed over attempts *)
  attempts : int;  (** 2 when a seeded experiment was retried *)
  output : string;  (** everything the experiment printed (possibly partial) *)
}

val pp_status : Format.formatter -> status -> unit
val status_ok : status -> bool

val run_one :
  ?deadline:float ->
  ?budget:Sched.Budget.t ->
  ?jobs:int ->
  Registry.t ->
  result
(** Run one experiment under a [deadline] (seconds of wall clock, default
    none) and a {!Ctx.t} carrying [budget] (default unlimited) and [jobs]
    (default 1, the domain-pool width for parallelizable checks). A seeded
    experiment that crashes is retried once — flakes surface as
    [attempts = 2] rather than a failed run; timeouts are not retried.

    Caveat when combining [deadline] with [jobs > 1]: the SIGALRM abort
    interrupts the main domain only, so worker domains mid-unit finish
    their unit before the process can exit — the timeout is best-effort
    under parallelism, exactly as precise as the units are short. *)

val run_all :
  ?deadline:float ->
  ?budget:Sched.Budget.t ->
  ?jobs:int ->
  ?ppf:Format.formatter ->
  ?experiments:Registry.t list ->
  unit ->
  result list
(** {!run_one} over [experiments] (default {!Registry.all}), printing each
    experiment's buffered output — and, for failures, the exception and
    backtrace — to [ppf] (default stdout) as it completes. Always returns
    all results: no experiment can prevent a later one from running. *)

val summary : Format.formatter -> result list -> unit
(** The per-experiment status table (id, status, wall clock, attempts),
    degradation notes, and a one-line verdict. *)

val exit_code : result list -> int
(** [0] when every status is {!status_ok}, [1] otherwise — the process
    exit code for [boundedreg run]. *)
