type t = {
  id : string;
  slug : string;
  paper : string;
  seeded : bool;
  run : Ctx.t -> Format.formatter -> unit;
}

let all =
  [
    {
      id = "E1";
      slug = "fig1-universality-map";
      paper = "Figure 1 (summary of results)";
      seeded = false;
      run = Exp_summary.run;
    };
    {
      id = "E2";
      slug = "fig2-alg1-executions";
      paper = "Figure 2, Algorithm 1, Lemmas 5.1-5.5, Prop 5.1";
      seeded = false;
      run = Exp_alg1.run;
    };
    {
      id = "E3";
      slug = "thm1.1-lower-bound";
      paper = "Theorem 1.1, Proposition 4.1, Claim 4.1";
      seeded = false;
      run = Exp_lower_bound.run;
    };
    {
      id = "E4";
      slug = "thm1.2-universal-2proc";
      paper = "Theorem 1.2, Algorithm 2, Lemma 5.7";
      seeded = false;
      run = Exp_universal.run;
    };
    {
      id = "E5";
      slug = "thm1.3-pipeline";
      paper = "Theorem 1.3, Proposition 6.1, Figure 3";
      seeded = true;
      run = Exp_pipeline.run;
    };
    {
      id = "E6";
      slug = "thm1.4-iis-1bit";
      paper = "Theorem 1.4, Proposition 7.1, Algorithm 4";
      seeded = false;
      run = Exp_iterated.run_one_bit;
    };
    {
      id = "E7";
      slug = "lem8.1-labelling";
      paper = "Lemma 8.1, Figure 5";
      seeded = false;
      run = Exp_section8.run_labelling;
    };
    {
      id = "E8";
      slug = "lem8.7-exec-count";
      paper = "Lemma 8.7, Figure 6, Proposition 8.1";
      seeded = false;
      run = Exp_section8.run_exec_count;
    };
    {
      id = "E9";
      slug = "thm8.1-step-complexity";
      paper = "Theorem 8.1 and the Section 3.2 remark";
      seeded = true;
      run = Exp_section8.run_race;
    };
    {
      id = "E10";
      slug = "fig4-is-growth";
      paper = "Figure 4, Section 8 introduction";
      seeded = false;
      run = Exp_iterated.run_growth;
    };
    {
      id = "E11";
      slug = "lem2.1-consensus";
      paper = "Lemma 2.1 (consensus impossibility)";
      seeded = false;
      run = Exp_consensus.run;
    };
    {
      id = "E12";
      slug = "lem2.3-bg-snapshot";
      paper = "Lemma 2.3, Algorithm 5, Proposition 7.2";
      seeded = false;
      run = Exp_iterated.run_bg;
    };
    {
      id = "E13";
      slug = "half-frontier";
      paper = "Section 9 open problem: the t = n/2 boundary";
      seeded = false;
      run = Exp_half.run;
    };
    {
      id = "E14";
      slug = "lem2.4-iis-in-sm";
      paper = "Lemma 2.4 (IIS = shared memory, the embedding direction)";
      seeded = true;
      run = Exp_embedding.run;
    };
    {
      id = "E15";
      slug = "chaos-campaigns";
      paper = "Section 6 step 1 (ABD atomicity) vs the Section 9 frontier";
      seeded = true;
      run = Exp_chaos.run;
    };
    {
      id = "E17";
      slug = "churn-feasibility";
      paper = "Bounded registers under dynamic membership (ACEKW adversary)";
      seeded = true;
      run = Exp_churn.run;
    };
  ]

let find key =
  let key = String.lowercase_ascii key in
  List.find_opt
    (fun e ->
      String.lowercase_ascii e.id = key || String.lowercase_ascii e.slug = key)
    all
