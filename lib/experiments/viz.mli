(** Graphviz (DOT) renderings of the paper's combinatorial objects — the
    output graphs of Lemma 5.7 and the chromatic-path protocol complexes of
    Sections 3.2 and 8. Feed the output to [dot -Tsvg]. *)

val bmz_graph : ('i, 'o) Tasks.Bmz.two_task -> string
(** The output graph G(O): vertices are output configurations, edges join
    configurations differing in one component. *)

val labelling_path : rounds:int -> string
(** The 1-bit labelling protocol's complex after [rounds] rounds: the
    chromatic path of 3^r + 1 labels, each annotated with its value f;
    edges are the 3^r executions. Keep [rounds <= 5]. *)

val pruned_path : delta:int -> rounds:int -> string
(** The Algorithm 6 pruned complex: the labels reachable with the [delta]
    cutoff and their pruned-path values (vertices found by exhausting the
    simulation's schedules — keep [rounds <= 5]). The first line is a DOT
    comment with the exploration-engine counters. *)
