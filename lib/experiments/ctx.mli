(** Per-experiment execution context.

    The supervisor hands every experiment a context: a {!Sched.Budget.t}
    bounding its expensive checks, a [degraded] callback the experiment
    calls (with a short human-readable note) whenever a check fell back
    from exhaustive to sampled coverage, so the run summary can flag the
    row instead of silently weakening the claim, and a [jobs] pool width
    experiments thread into their parallelizable checks. *)

type t = {
  budget : Sched.Budget.t;
      (** budget for the experiment's exploration-backed checks *)
  degraded : string -> unit;
      (** report a check that was degraded to sampling, with a note *)
  jobs : int;
      (** domain-pool width for parallelizable checks (default 1);
          deterministic verdicts are preserved for any value *)
}

val default : t
(** Unlimited budget, degradation notes dropped, [jobs = 1] — the
    standalone-run context. *)

val make :
  ?budget:Sched.Budget.t ->
  ?degraded:(string -> unit) ->
  ?jobs:int ->
  unit ->
  t
(** [jobs] is clamped to at least 1. *)
