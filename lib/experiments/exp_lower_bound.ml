(* E3 — Theorem 1.1 / Proposition 4.1: the pigeonhole adversary. *)

module Q = Bits.Rational
module LB = Core.Lower_bound

let run _ctx ppf =
  Format.fprintf ppf
    "With s-bit registers, two processes leave one of at most 2^(2s) register@\n\
     words; a third process waking up after they finish decides from that@\n\
     word alone. Bucketing all executions (inputs (0,1)) by final word, some@\n\
     bucket's decisions span > 2 eps once 1/eps > 2^(2s+1): the third process@\n\
     cannot be within eps of everything it must match.@\n@\n";
  let protocol_row proto eps =
    let a = LB.analyse proto in
    let ratio = Q.div a.LB.max_spread eps in
    [
      proto.LB.name;
      string_of_int proto.LB.bits;
      Printf.sprintf "%d/%d" a.LB.distinct_words (1 lsl (2 * proto.LB.bits));
      string_of_int a.LB.executions;
      string_of_int a.LB.search.Sched.Explore.nodes;
      Table.cell_q a.LB.max_spread;
      Table.cell_q ratio;
      Table.cell_bool Q.(ratio > Q.of_int 2);
    ]
  in
  let alg1_rows =
    List.map
      (fun k -> protocol_row (LB.alg1_protocol ~k) (Q.make 1 ((2 * k) + 1)))
      [ 2; 3; 4; 5 ]
  in
  Table.print ppf
    ~title:
      "E3a  Algorithm 1 extended to a third process: bucket spread vs its \
       own eps"
    ~headers:
      [ "protocol"; "bits"; "words/2^2s"; "states"; "nodes"; "bucket spread";
        "spread/eps"; "> 2eps" ]
    alg1_rows;
  let quant_rows =
    List.map
      (fun bits ->
        let proto = LB.quantized_protocol ~bits ~rounds:3 in
        (* no target eps of its own: report spread against the quantization
           grain 1/(2^bits - 2) *)
        protocol_row proto (Q.make 1 (max 1 ((1 lsl bits) - 2))))
      [ 2; 3; 4; 5 ]
  in
  Table.print ppf
    ~title:"E3b  Quantized-midpoint family: more bits, narrower buckets"
    ~headers:
      [ "protocol"; "bits"; "words/2^2s"; "states"; "nodes"; "bucket spread";
        "spread/grain"; "> 2grain" ]
    quant_rows;
  let w = LB.witness (LB.alg1_protocol ~k:3) in
  Format.fprintf ppf
    "E3w  A concrete witness (alg1, k = 3, eps = 1/7): two complete@\n\
     executions leaving register word (%a, %a):@\n\
    \  low : outputs (%s, %s)  schedule %s@\n\
    \  high: outputs (%s, %s)  schedule %s@\n\
    \  best third-process decision %s is %s from the far output@\n\
     (> eps, so the extension to three processes fails).@\n@\n"
    Format.pp_print_int (fst w.LB.word) Format.pp_print_int (snd w.LB.word)
    (Q.to_string (fst w.LB.low_outputs))
    (Q.to_string (snd w.LB.low_outputs))
    (String.concat "" (List.map string_of_int w.LB.low_schedule))
    (Q.to_string (fst w.LB.high_outputs))
    (Q.to_string (snd w.LB.high_outputs))
    (String.concat "" (List.map string_of_int w.LB.high_schedule))
    (Q.to_string w.LB.best_third_decision)
    (Q.to_string w.LB.forced_error);
  let thresholds =
    List.map
      (fun bits ->
        [
          string_of_int bits;
          Table.cell_q (LB.epsilon_threshold ~bits ~n:3 ~t:2);
          Table.cell_q (LB.epsilon_threshold ~bits ~n:5 ~t:3);
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  Table.print ppf
    ~title:
      "E3c  Proposition 4.1 thresholds: eps below which s-bit registers \
       cannot solve eps-agreement"
    ~headers:[ "s (bits)"; "n=3, t=2"; "n=5, t=3" ]
    thresholds
