module Q = Bits.Rational
module L = Core.Labelling

let buffer_dot f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph {\n  rankdir=LR;\n  node [shape=box];\n";
  f buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let bmz_graph (t : _ Tasks.Bmz.two_task) =
  let configs =
    List.mapi (fun idx c -> (idx, c)) t.Tasks.Bmz.outputs
  in
  let label (a, b) =
    Format.asprintf "(%a, %a)" t.Tasks.Bmz.pp_output a t.Tasks.Bmz.pp_output b
  in
  buffer_dot (fun buf ->
      List.iter
        (fun (idx, c) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"%s\"];\n" idx (label c)))
        configs;
      List.iter
        (fun (i, ci) ->
          List.iter
            (fun (j, cj) ->
              if i < j && Tasks.Bmz.adjacent t ci cj then
                Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" i j))
            configs)
        configs)

(* Shared skeleton: collect (label pairs per execution), then emit vertices
   annotated with their values and one edge per distinct execution. *)
let path_dot ~value pairs =
  let labels = ref [] in
  let add l = if not (List.exists (L.equal l) !labels) then labels := l :: !labels in
  List.iter
    (fun (l0, l1) ->
      add l0;
      add l1)
    pairs;
  let sorted =
    List.sort (fun a b -> Q.compare (value a) (value b)) !labels
  in
  let id l =
    let rec index i = function
      | [] -> assert false
      | x :: rest -> if L.equal x l then i else index (i + 1) rest
    in
    index 0 sorted
  in
  buffer_dot (fun buf ->
      List.iter
        (fun l ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d [label=\"%s\\nf=%s\"%s];\n" (id l)
               (Format.asprintf "%a" L.pp l)
               (Q.to_string (value l))
               (if l.L.me = 0 then " style=filled fillcolor=lightgrey"
                else "")))
        sorted;
      let seen = ref [] in
      List.iter
        (fun (l0, l1) ->
          let e = (min (id l0) (id l1), max (id l0) (id l1)) in
          if not (List.mem e !seen) then begin
            seen := e :: !seen;
            Buffer.add_string buf
              (Printf.sprintf "  v%d -- v%d;\n" (fst e) (snd e))
          end)
        pairs)

let labelling_path ~rounds =
  let pairs = ref [] in
  Iterated.Iis.enumerate ~n:2 ~budget:(Bits.Width.Bounded 1)
    ~measure:(Bits.Width.uint ~max:1)
    ~programs:(fun pid -> L.protocol ~rounds ~me:pid)
    ~max_rounds:rounds
    (fun o ->
      match (o.Iterated.Iis.decisions.(0), o.Iterated.Iis.decisions.(1)) with
      | Some l0, Some l1 -> pairs := (l0, l1) :: !pairs
      | _ -> ());
  path_dot ~value:L.value !pairs

let pruned_path ~delta ~rounds =
  let pairs = ref [] in
  let init () =
    Sched.Scheduler.start
      ~memory:
        (Sched.Memory.create ~n:2
           ~budget:(Bits.Width.Bounded (Core.Ring_sim.register_bits ~delta))
           ~measure:(Core.Ring_sim.measure ~delta)
           ~init:(Core.Ring_sim.initial ~delta))
      ~programs:(fun pid -> Core.Ring_sim.protocol ~delta ~rounds ~me:pid)
      ()
  in
  let search =
    Sched.Explore.explore ~max_steps:1_000_000 ~init (fun st ->
        match
          ( (Sched.Scheduler.decisions st).(0),
            (Sched.Scheduler.decisions st).(1) )
        with
        | Some l0, Some l1 -> pairs := (l0, l1) :: !pairs
        | _ -> ())
  in
  Format.asprintf "// explorer: %a@\n%s" Sched.Explore.pp_stats
    search.Sched.Explore.stats
    (path_dot ~value:(Core.Ring_sim.value ~delta ~rounds) !pairs)
