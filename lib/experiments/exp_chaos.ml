(* E15 — chaos campaigns: ABD atomicity as a machine-checked property under
   randomized fault injection.

   E13 stages the t = n/2 stale read by hand. This experiment finds the same
   violation by search: seeded campaigns drive ABD register emulations
   through the Faults layer (drop, duplication, reordering, delay bursts,
   crashes), every recorded history is decided by Check.Linearize, and the
   first failing fault plan is delta-debugged to a minimal replayable
   counterexample. The sound quorum (n - t, t < n/2) must survive every
   seed; the frontier quorum (n/2) must not. *)

module C = Msgpass.Chaos
module L = Check.Linearize

(* Fixed published seeds: the sound sweep and the frontier counterexample
   quoted in EXPERIMENTS.md and smoked in check.sh. *)
let sound_seed = 1
let sound_runs = 50
let frontier_seed = 127

let row ctx label config ~seed ~runs =
  let c =
    C.campaign ?deadline:ctx.Ctx.budget.Sched.Budget.deadline
      ~jobs:ctx.Ctx.jobs ~seed ~runs
      config
  in
  if c.C.degraded then
    ctx.Ctx.degraded
      (Printf.sprintf "chaos %s: deadline stopped campaign at %d/%d runs"
         label c.C.runs c.C.requested);
  let found =
    match c.C.first with
    | None -> [ "-"; "-"; "-" ]
    | Some f ->
        [
          string_of_int f.C.seed;
          Printf.sprintf "%d -> %d (%d deliveries)"
            (Msgpass.Faults.compiled_length f.C.original.C.plan)
            (List.length f.C.shrunk)
            (Msgpass.Faults.deliveries f.C.shrunk);
          (match f.C.shrunk_outcome.C.verdict with
          | L.Nonlinearizable _ -> "NONLINEARIZABLE"
          | L.Linearizable _ -> "linearizable (?)");
        ]
  in
  (c,
   [
     label;
     Printf.sprintf "%d/%d" c.C.violations c.C.runs;
     string_of_int c.C.total_completed;
   ]
   @ found)

let run ctx ppf =
  Format.fprintf ppf
    "ABD's atomicity claim, attacked instead of assumed: seeded campaigns@\n\
     inject drops, duplications, reorderings, delay bursts and crashes@\n\
     (lib/msgpass/faults.ml), record every emulated operation's interval,@\n\
     and hand the history to the Check.Linearize Wing–Gong search. A@\n\
     failing fault plan is ddmin-shrunk and replayed bit-for-bit.@\n@\n";
  let _sound, sound_row =
    row ctx "sound (n=4, t=1, quorum 3)" (C.sound ()) ~seed:sound_seed
      ~runs:sound_runs
  in
  let frontier, frontier_row =
    row ctx "frontier (n=4, quorum 2)" (C.frontier ()) ~seed:frontier_seed
      ~runs:1
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "E15  chaos campaigns (sound: seeds %d..%d; frontier: seed %d)"
         sound_seed
         (sound_seed + sound_runs - 1)
         frontier_seed)
    ~headers:
      [
        "configuration"; "violations"; "completed ops"; "found at";
        "plan shrunk"; "replayed verdict";
      ]
    [ sound_row; frontier_row ];
  (match frontier.C.first with
  | Some f ->
      Format.fprintf ppf
        "Minimal frontier counterexample (replay with: boundedreg chaos@\n\
         --frontier --seed %d --runs 1 --plan):@\n  @[<hov>%a@]@\n@\n"
        frontier_seed Msgpass.Faults.pp_plan f.C.shrunk;
      Format.fprintf ppf "Replayed verdict: %a@\n@\n"
        (L.pp_verdict Format.pp_print_int)
        f.C.shrunk_outcome.C.verdict
  | None ->
      Format.fprintf ppf
        "(frontier seed %d produced no violation — unexpected)@\n@\n"
        frontier_seed);
  Format.fprintf ppf
    "The sound quorum survives every fault the adversary rolls because any@\n\
     write quorum intersects any read quorum; the frontier quorum loses a@\n\
     completed write to a disjoint read quorum, and the shrinker reduces@\n\
     the found run to the few deliveries that stage exactly E13's split.@\n@\n"
