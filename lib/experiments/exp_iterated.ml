(* E6, E10, E12 — the iterated models: Algorithm 4's 1-bit simulation,
   Figure 4's growth, and the Borowsky-Gafni snapshot. *)

module Q = Bits.Rational
module Proto = Iterated.Proto
module Iis = Iterated.Iis
module Ic = Iterated.Ic
module Views = Iterated.Views
module Sim1 = Iterated.One_bit_sim

let binary_configs n =
  let rec go k =
    if k = 0 then [ [] ]
    else List.concat_map (fun tl -> [ 0 :: tl; 1 :: tl ]) (go (k - 1))
  in
  List.map Array.of_list (go n)

(* E6 *)
let run_one_bit _ctx ppf =
  Format.fprintf ppf
    "Algorithm 4 simulates a full-information iterated-collect protocol in@\n\
     IIS writing one bit per memory level: round r of the source costs@\n\
     |C^(r-1)| levels, one per reachable configuration. Validation: over@\n\
     random IIS schedules (with crashes), the simulated final views always@\n\
     form a reachable IC configuration, and registers never exceed 1 bit.@\n@\n";
  let rows =
    List.map
      (fun (n, rounds, samples) ->
        let table =
          Sim1.build_table ~n ~rounds ~inputs:(binary_configs n)
            ~equal_input:Int.equal
        in
        let ok = ref true in
        let bits = ref 0 in
        for seed = 0 to samples - 1 do
          let rng = Bits.Rng.make (7000 + seed) in
          let inputs = Array.init n (fun _ -> Bits.Rng.int rng 2) in
          let o =
            Iis.run_random ~n ~budget:(Bits.Width.Bounded 1)
              ~measure:(Bits.Width.uint ~max:1)
              ~programs:(fun pid ->
                Sim1.protocol ~table ~me:pid ~input:inputs.(pid)
                  ~decide:(fun v -> v))
              ~rng ~crash_probability:0.02 ()
          in
          bits := max !bits o.Iis.max_bits;
          if not (Sim1.is_reachable table ~round:rounds o.Iis.decisions) then
            ok := false
        done;
        let sizes =
          List.init rounds (fun r ->
              string_of_int (List.length (Sim1.reachable table ~round:r)))
        in
        [
          string_of_int n;
          string_of_int rounds;
          String.concat "," sizes;
          string_of_int (Sim1.total_iterations table);
          string_of_int samples;
          string_of_int !bits;
          Table.cell_bool !ok;
        ])
      [ (2, 1, 300); (2, 2, 300); (2, 3, 200); (3, 1, 200); (3, 2, 100) ]
  in
  Table.print ppf
    ~title:"E6  Algorithm 4: 1-bit IIS simulation of IC protocols"
    ~headers:
      [ "n"; "IC rounds"; "|C^r| sizes"; "IIS levels"; "runs"; "bits";
        "configs reachable" ]
    rows;
  (* Theorem 1.4 chain: agreement through BG then Algorithm 4. *)
  let n = 2 and rounds = 1 in
  let make ~pid:_ ~input =
    Iterated.Bg_snapshot.simulate ~n
      (Iterated.Agreement.protocol ~rounds ~input)
  in
  let decide view =
    match Iterated.Full_info.replay ~make view with
    | Proto.Decide d -> d
    | Proto.Round _ -> assert false
  in
  let table =
    Sim1.build_table ~n ~rounds:(n * rounds) ~inputs:(binary_configs n)
      ~equal_input:Int.equal
  in
  let eps = Q.make 1 (Iterated.Agreement.denominator ~rounds) in
  let ok = ref true in
  for seed = 0 to 499 do
    let rng = Bits.Rng.make (9000 + seed) in
    let inputs = Array.init n (fun _ -> Bits.Rng.int rng 2) in
    let o =
      Iis.run_random ~n ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid ->
          Sim1.protocol ~table ~me:pid ~input:inputs.(pid) ~decide)
        ~rng ~crash_probability:0.02 ()
    in
    let ds = Array.to_list o.Iis.decisions |> List.filter_map (fun d -> d) in
    let same x = Array.for_all (Int.equal x) inputs in
    if Q.(Q.spread ds > eps) then ok := false;
    if same 0 && List.exists (fun d -> not (Q.equal d Q.zero)) ds then
      ok := false;
    if same 1 && List.exists (fun d -> not (Q.equal d Q.one)) ds then
      ok := false
  done;
  Format.fprintf ppf
    "Theorem 1.4 chain (IIS agreement -> BG -> IC -> 1-bit IIS), 500 random \
     runs: %s@\n@\n"
    (Table.cell_bool !ok)

(* E10 *)
let run_growth _ctx ppf =
  Format.fprintf ppf
    "The one-round outcome counts drive the protocol complex growth: 3@\n\
     ordered partitions for two processes (so 3^r executions and a path of@\n\
     3^r + 1 states after r rounds, Figure 4), 13 for three; collect is@\n\
     weaker and admits 25.@\n@\n";
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let count_states r =
    let execs = ref 0 in
    let states = ref [] in
    let eq = Iterated.Full_info.equal Int.equal in
    Iis.enumerate ~n:2 ~budget:Bits.Width.Unbounded
      ~measure:Bits.Width.unbounded
      ~programs:(fun pid ->
        Iterated.Full_info.protocol ~rounds:r ~me:pid ~input:0
          ~decide:(fun v -> v))
      ~max_rounds:r
      (fun o ->
        incr execs;
        Array.iter
          (function
            | Some v ->
                if not (List.exists (eq v) !states) then states := v :: !states
            | None -> ())
          o.Iis.decisions);
    (!execs, List.length !states)
  in
  let rows =
    List.map
      (fun r ->
        let execs, states = count_states r in
        [
          string_of_int r;
          Printf.sprintf "%d (= 3^%d)" execs r;
          Printf.sprintf "%d (= 3^%d + 1)" states r;
          (if r <= 3 then string_of_int (pow 13 r) else "-");
          (if r <= 3 then string_of_int (pow 25 r) else "-");
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print ppf
    ~title:"E10  Protocol-complex growth per round (Figure 4)"
    ~headers:
      [ "rounds"; "IS execs (n=2)"; "IS states (n=2)"; "IS execs (n=3)";
        "IC execs (n=3)" ]
    rows

(* E12 *)
let run_bg _ctx ppf =
  Format.fprintf ppf
    "Algorithm 5 (Borowsky-Gafni) builds one immediate-snapshot round from@\n\
     n iterated-collect rounds. Over every IC execution, the outputs must@\n\
     satisfy the four snapshot properties of Section 7.@\n@\n";
  let rows =
    List.map
      (fun n ->
        let programs pid =
          Iterated.Bg_snapshot.simulate ~n
            (Proto.Round (pid, fun view -> Proto.Decide view))
        in
        let total = ref 0 in
        let validity = ref true
        and selfc = ref true
        and incl = ref true
        and immed = ref true in
        Ic.enumerate ~n ~budget:Bits.Width.Unbounded
          ~measure:Bits.Width.unbounded ~programs ~max_rounds:n (fun o ->
            incr total;
            let views =
              Array.map
                (function Some v -> v | None -> assert false)
                o.Ic.decisions
            in
            let written = Array.init n (fun i -> i) in
            if not (Views.validity ~equal:Int.equal ~written views) then
              validity := false;
            if not (Views.self_containment views) then selfc := false;
            if not (Views.inclusion ~equal:Int.equal views) then incl := false;
            if not (Views.immediacy ~equal:Int.equal views) then immed := false);
        [
          string_of_int n;
          string_of_int !total;
          Table.cell_bool !validity;
          Table.cell_bool !selfc;
          Table.cell_bool !incl;
          Table.cell_bool !immed;
        ])
      [ 2; 3 ]
  in
  Table.print ppf
    ~title:"E12  BG snapshot from collects: all IC executions"
    ~headers:
      [ "n"; "IC executions"; "validity"; "self-cont."; "inclusion";
        "immediacy" ]
    rows
