(** The experiment registry: every figure and theorem of the paper mapped to
    a runnable report (the per-experiment index of DESIGN.md). *)

type t = {
  id : string;  (** e.g. "E2" *)
  slug : string;  (** e.g. "fig2-alg1-executions" *)
  paper : string;  (** the figure/theorem reproduced *)
  seeded : bool;
      (** uses seeded randomness (random schedules, chaos campaigns) —
          the supervisor retries these once before reporting a crash *)
  run : Ctx.t -> Format.formatter -> unit;
      (** run the experiment under a {!Ctx.t}; standalone callers pass
          {!Ctx.default} *)
}

val all : t list
(** In id order. *)

val find : string -> t option
(** Lookup by id or slug, case-insensitive. *)
