(* E17 — dynamic membership: the churn-rate × register-width feasibility
   grid.

   E15 attacks the static ABD emulation; here the membership itself is
   the adversary. Dynreg peers (lib/msgpass/dynreg.ml) size quorums
   against gossiped views of who has entered, activated and left, and a
   rate-bounded random schedule of enter/leave events — the ACEKW
   adversary in the fault layer's logical time — churns the fleet while
   the Wing–Gong checker decides every recorded history. Two knobs span
   the grid: the churn regime (none / below the slack bound / above it
   with unwidened quorums) and the register width (timestamps wrap mod
   2^b). The emulation should stay linearizable exactly when the slack
   covers the churn AND the width outruns the write count; every other
   cell should leak a machine-checked stale read. *)

module C = Msgpass.Chaos
module L = Check.Linearize

(* Fixed published seeds: the grid sweep, and the churn-frontier
   counterexample quoted in EXPERIMENTS.md and smoked in check.sh. *)
let grid_seed = 1
let grid_runs = 500
let witness_seed = 29

(* One grid cell: the churn-frontier preset's fault mix (delay bursts
   and reordering, the static frontier's profile) with the writer's
   script stretched to 8 writes so bounded widths have something to
   wrap — 4 bits (timestamps 0..15) never wraps under 8 writes, 2 bits
   wraps at the fourth write and cycles twice, 1 bit at the second. *)
let cell ~rate ~window ~slack ~width_bits =
  let base = C.churn_frontier () in
  let dyn = Option.get base.C.membership in
  {
    base with
    C.writes = 8;
    membership =
      Some
        {
          dyn with
          C.churn_rate = rate;
          churn_window = window;
          churn_slack = slack;
          width_bits;
        };
  }

let regimes =
  [
    ("no churn, slack 0", 0, 60, 0);
    ("churn 1/60, slack 1", 1, 60, 1);
    ("churn 6/12, slack 0", 6, 12, 0);
  ]

let widths = [ None; Some 4; Some 2; Some 1 ]

let pp_width = function
  | None -> "unbounded"
  | Some b -> Printf.sprintf "%d bits" b

let run ctx ppf =
  Format.fprintf ppf
    "Register emulation in a system that never stops changing: Dynreg@\n\
     (after ACEKW) replaces ABD's static n - t quorum with a majority of@\n\
     the gossiped membership view, widened by a slack that must cover the@\n\
     churn rate. Seeded campaigns roll rate-bounded enter/leave schedules@\n\
     into the fault plans, every history is machine-checked, and the grid@\n\
     below sweeps churn regime x timestamp width (wrapping mod 2^b).@\n@\n";
  let deadline = ctx.Ctx.budget.Sched.Budget.deadline in
  let rows =
    List.map
      (fun (label, rate, window, slack) ->
        label
        :: List.map
             (fun width_bits ->
               let c =
                 C.campaign ?deadline ~jobs:ctx.Ctx.jobs ~seed:grid_seed
                   ~runs:grid_runs
                   (cell ~rate ~window ~slack ~width_bits)
               in
               if c.C.degraded then
                 ctx.Ctx.degraded
                   (Printf.sprintf
                      "churn grid (%s, %s): deadline stopped campaign at \
                       %d/%d runs"
                      label (pp_width width_bits) c.C.runs c.C.requested);
               if c.C.violations = 0 then
                 Printf.sprintf "ok (0/%d)" c.C.runs
               else Printf.sprintf "%d/%d BAD" c.C.violations c.C.runs)
             widths)
      regimes
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "E17  churn-rate x register-width feasibility (seeds %d..%d, 8 \
          writes)"
         grid_seed
         (grid_seed + grid_runs - 1))
    ~headers:("churn regime" :: List.map pp_width widths)
    rows;
  Format.fprintf ppf
    "Feasible cells are exactly the sound quadrant: slack at least the@\n\
     churn rate AND 2^width exceeding the write count. Unwidened quorums@\n\
     under above-bound churn lose a completed write to a majority of@\n\
     survivors; a wrapped timestamp makes fresh data compare below stale.@\n@\n";
  (* The pinned counterexample: the churn-frontier preset's first
     violating seed, shrunk to a minimal replayable plan. *)
  let frontier =
    C.campaign ?deadline ~jobs:ctx.Ctx.jobs ~seed:witness_seed ~runs:1
      (C.churn_frontier ())
  in
  (match frontier.C.first with
  | Some f ->
      Format.fprintf ppf
        "Minimal churn counterexample (replay with: boundedreg chaos@\n\
         --churn-frontier --seed %d --runs 1 --plan): %d events shrunk@\n\
         to %d (%d deliveries, %d churn actions):@\n  @[<hov>%a@]@\n@\n"
        witness_seed
        (Msgpass.Faults.compiled_length f.C.original.C.plan)
        (List.length f.C.shrunk)
        (Msgpass.Faults.deliveries f.C.shrunk)
        (List.length
           (List.filter
              (function
                | Msgpass.Faults.Enter _ | Msgpass.Faults.Leave _ -> true
                | _ -> false)
              f.C.shrunk))
        Msgpass.Faults.pp_plan f.C.shrunk;
      Format.fprintf ppf "Replayed verdict: %a@\n@\n"
        (L.pp_verdict Format.pp_print_int)
        f.C.shrunk_outcome.C.verdict
  | None ->
      Format.fprintf ppf
        "(churn-frontier seed %d produced no violation — unexpected)@\n@\n"
        witness_seed);
  Format.fprintf ppf
    "The shrunk plan reads as a reconfiguration story: seed members leave@\n\
     mid-write, joiners adopt state from the survivors, and a joiner's@\n\
     read completes against a majority that never heard the write — the@\n\
     hazard the ACEKW slack widening exists to absorb.@\n@\n"
