(* E11 — Lemma 2.1: consensus impossibility by exhaustive protocol search. *)

module CS = Core.Consensus_search

let run _ctx ppf =
  Format.fprintf ppf
    "Every symmetric two-process protocol with 1-bit registers and a fixed@\n\
     number of write/read rounds is enumerated and model-checked against@\n\
     1-resilient binary consensus (all inputs, all interleavings, up to one@\n\
     crash). Lemma 2.1 predicts zero survivors.@\n@\n";
  let rows =
    List.map
      (fun rounds ->
        let s = CS.search ~rounds in
        [
          string_of_int rounds;
          string_of_int (CS.state_count ~rounds);
          string_of_int s.CS.total;
          string_of_int (List.length s.CS.survivors);
          Table.cell_bool (s.CS.survivors = []);
        ])
      [ 1; 2 ]
  in
  Table.print ppf
    ~title:"E11  Exhaustive consensus-protocol search (Lemma 2.1)"
    ~headers:
      [ "rounds"; "states"; "candidates"; "survivors"; "impossibility holds" ]
    rows
