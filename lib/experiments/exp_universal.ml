(* E4 — Theorem 1.2: Algorithm 2 solves every BMZ-solvable two-process task
   with 3-bit registers. *)

module Bmz = Tasks.Bmz
module H = Tasks.Harness

let check : type i o. Ctx.t -> (i, o) Bmz.two_task -> string list =
 fun ctx task_def ->
  match Bmz.plan_searching task_def with
  | Error e ->
      [
        task_def.Bmz.name; "-"; "-"; "-"; "-";
        (let cut = min (String.length e) 46 in
         "rejected: " ^ String.sub e 0 cut);
      ]
  | Ok plan -> (
      let algorithm = Core.Alg2_universal.algorithm ~plan in
      let task = Bmz.to_task task_def in
      let solved how stats =
        [
          task_def.Bmz.name;
          string_of_int plan.Bmz.length;
          string_of_int stats.H.runs;
          string_of_int stats.H.max_process_steps;
          string_of_int stats.H.max_bits;
          how;
        ]
      in
      match
        H.check_supervised ~task ~algorithm ~max_crashes:1
          ~budget:ctx.Ctx.budget ~jobs:ctx.Ctx.jobs ()
      with
      | H.Verified_exhaustive stats -> solved "solved" stats
      | H.Verified_sampled (stats, c) ->
          ctx.Ctx.degraded
            (Format.asprintf "Alg2 %s sampled (%a)" task_def.Bmz.name
               H.pp_coverage c);
          solved "solved (sampled)" stats
      | H.Violation _ ->
          [ task_def.Bmz.name; string_of_int plan.Bmz.length; "-"; "-"; "-";
            "VIOLATION" ])

let run ctx ppf =
  Format.fprintf ppf
    "Algorithm 2 plans a path through the task's output graph (Lemma 5.7)@\n\
     and walks it with embedded Algorithm 1 (eps = 1/L). Coordination uses@\n\
     one 3-bit register per process; task inputs live in the write-once@\n\
     input registers. Unsolvable tasks are rejected at planning time.@\n@\n";
  let rows =
    [
      check ctx (Tasks.Gallery.eps_grid ~k:1);
      check ctx (Tasks.Gallery.eps_grid ~k:2);
      check ctx Tasks.Gallery.renaming3;
      check ctx Tasks.Gallery.always_zero;
      check ctx Tasks.Gallery.hull_agreement;
      check ctx Tasks.Gallery.weak_consensus;
      check ctx Tasks.Gallery.noisy_grid;
      check ctx Tasks.Gallery.binary_consensus;
      check ctx Tasks.Gallery.or_task;
      check ctx Tasks.Gallery.exact_max;
    ]
  in
  Table.print ppf
    ~title:
      "E4  Universal 2-process construction (exhaustive schedules, <= 1 \
       crash)"
    ~headers:[ "task"; "L"; "executions"; "steps"; "bits"; "verdict" ]
    rows
