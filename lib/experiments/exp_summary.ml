(* E1 — Figure 1: the universality map, each regime re-verified live by a
   small instance of the corresponding construction. *)

module Q = Bits.Rational
module H = Tasks.Harness

let passes = function H.Pass _ -> true | H.Fail _ -> false

let theorem_1_2 ctx =
  let supervised task algorithm =
    let v =
      H.check_supervised ~task ~algorithm ~max_crashes:1
        ~budget:ctx.Ctx.budget ~jobs:ctx.Ctx.jobs ()
    in
    (match v with
    | H.Verified_sampled (_, c) ->
        ctx.Ctx.degraded
          (Format.asprintf "Thm 1.2 check sampled (%a)" H.pp_coverage c)
    | H.Verified_exhaustive _ | H.Violation _ -> ());
    H.verdict_ok v
  in
  let alg1 =
    supervised
      (Tasks.Eps_agreement.task ~n:2
         ~k:(Core.Alg1_one_bit.denominator ~k:2))
      (Core.Alg1_one_bit.algorithm ~k:2)
  in
  let alg2 =
    match Tasks.Bmz.plan (Tasks.Gallery.eps_grid ~k:1) with
    | Error _ -> false
    | Ok plan ->
        supervised
          (Tasks.Bmz.to_task plan.Tasks.Bmz.task)
          (Core.Alg2_universal.algorithm ~plan)
  in
  alg1 && alg2

let theorem_1_3 () =
  let n = 3 and t = 1 and rounds = 1 in
  let value =
    Msgpass.Wire.(list_codec (pair_codec int_codec rational_codec))
  in
  let algorithm =
    Msgpass.Pipeline.algorithm ~n ~t ~value ~input:Msgpass.Wire.int_codec
      ~init:[]
      ~source:(fun ~pid ~input ->
        Core.Baseline_unbounded.protocol ~n ~rounds ~me:pid ~input)
      ~name:"fig1-pipeline" ()
  in
  passes
    (H.check_random
       ~task:
         (Tasks.Eps_agreement.task ~n
            ~k:(Core.Baseline_unbounded.denominator ~rounds))
       ~algorithm ~resilience:t ~max_steps:60_000_000 ~runs:1 ~seed:77 ())

let theorem_1_1 () =
  (* The witness: a 1-bit protocol's register word forces a third process
     more than eps away from decisions it must match. *)
  let a = Core.Lower_bound.analyse (Core.Lower_bound.alg1_protocol ~k:3) in
  let eps = Q.make 1 7 in
  Q.(Core.Lower_bound.third_process_error a > eps)

let theorem_1_4 () =
  let n = 2 in
  let table =
    Iterated.One_bit_sim.build_table ~n ~rounds:1
      ~inputs:[ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
      ~equal_input:Int.equal
  in
  let ok = ref true in
  List.iter
    (fun inputs ->
      Iterated.Iis.enumerate ~n ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid ->
          Iterated.One_bit_sim.protocol ~table ~me:pid ~input:inputs.(pid)
            ~decide:(fun v -> v))
        ~max_rounds:(Iterated.One_bit_sim.total_iterations table)
        (fun o ->
          if
            not
              (Iterated.One_bit_sim.is_reachable table ~round:1
                 o.Iterated.Iis.decisions)
          then ok := false))
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ];
  !ok

let run ctx ppf =
  Format.fprintf ppf
    "Each regime of Figure 1 re-verified on a live instance:@\n@\n";
  let rows =
    [
      [
        "n = 2 (wait-free = 1-resilient)";
        "1 bit (3 with embedded input)";
        "universal (Thm 1.2)";
        Table.cell_bool (theorem_1_2 ctx);
      ];
      [
        "t < n/2";
        "3(t+1) = O(t) bits";
        "universal (Thm 1.3)";
        Table.cell_bool (theorem_1_3 ());
      ];
      [
        "n > 2, t > n/2 (incl. wait-free)";
        "any f(n) bits";
        "NOT universal (Thm 1.1)";
        Table.cell_bool (theorem_1_1 ());
      ];
      [
        "IIS model, wait-free";
        "1 bit per level";
        "universal (Thm 1.4)";
        Table.cell_bool (theorem_1_4 ());
      ];
    ]
  in
  Table.print ppf ~title:"E1  The universality map (Figure 1)"
    ~headers:[ "regime"; "register size"; "paper's claim"; "verified here" ]
    rows
