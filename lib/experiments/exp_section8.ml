(* E7, E8, E9 — Section 8: the labelling protocol, the pruned-complex
   growth, and the step-complexity race (the headline crossover). *)

module Q = Bits.Rational
module H = Tasks.Harness
module L = Core.Labelling
module RS = Core.Ring_sim
module FA = Core.Fast_agreement

(* E7 *)
let run_labelling _ctx ppf =
  Format.fprintf ppf
    "The solo-parity labelling protocol writes 1 bit per IS round; its@\n\
     labels must be exactly the 3^r + 1 vertices of the protocol-complex@\n\
     path, with the closed-form value map placing co-final labels one grain@\n\
     apart (Lemma 8.1 and Figure 5).@\n@\n";
  let rows =
    List.map
      (fun r ->
        let pow3 =
          let rec go acc i = if i = 0 then acc else go (3 * acc) (i - 1) in
          go 1 r
        in
        let labels = ref [] in
        let path_ok = ref true in
        Iterated.Iis.enumerate ~n:2 ~budget:(Bits.Width.Bounded 1)
          ~measure:(Bits.Width.uint ~max:1)
          ~programs:(fun pid -> L.protocol ~rounds:r ~me:pid)
          ~max_rounds:r
          (fun o ->
            match
              (o.Iterated.Iis.decisions.(0), o.Iterated.Iis.decisions.(1))
            with
            | Some l0, Some l1 ->
                if
                  not
                    (Q.equal
                       (Q.abs (Q.sub (L.value l0) (L.value l1)))
                       (Q.make 1 pow3))
                then path_ok := false;
                List.iter
                  (fun l ->
                    if not (List.exists (L.equal l) !labels) then
                      labels := l :: !labels)
                  [ l0; l1 ]
            | _ -> path_ok := false);
        let values = List.map L.value !labels in
        [
          string_of_int r;
          Printf.sprintf "%d/%d" (List.length !labels) (pow3 + 1);
          string_of_int (List.length (List.sort_uniq Q.compare values));
          Table.cell_bool
            (List.exists (Q.equal Q.zero) values
            && List.exists (Q.equal Q.one) values);
          Table.cell_bool !path_ok;
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print ppf
    ~title:"E7  1-bit labelling protocol (all 3^r IS executions)"
    ~headers:
      [ "rounds"; "labels/3^r+1"; "distinct f"; "ends 0,1";
        "cofinal 1 grain" ]
    rows

(* E8 *)
let run_exec_count _ctx ppf =
  Format.fprintf ppf
    "Algorithm 6 cuts a process off after Delta consecutive solo rounds, so@\n\
     only a pruned subset of IS executions is simulable — but still at least@\n\
     2^R of them (Lemma 8.7), which is what gives eps = 2^-R from O(R)@\n\
     steps.@\n@\n";
  let rows =
    List.map
      (fun rounds ->
        let c2 = RS.executions_count ~delta:2 ~rounds in
        let c3 = RS.executions_count ~delta:3 ~rounds in
        let pow b e =
          let rec go acc i = if i = 0 then acc else go (b * acc) (i - 1) in
          go 1 e
        in
        [
          string_of_int rounds;
          string_of_int (pow 2 rounds);
          string_of_int c2;
          string_of_int c3;
          string_of_int (pow 3 rounds);
          Table.cell_bool (c2 >= pow 2 rounds && c3 >= pow 2 rounds);
        ])
      [ 3; 4; 6; 8; 10; 12; 16; 20 ]
  in
  Table.print ppf
    ~title:"E8  Pruned executions vs Lemma 8.7's 2^R floor"
    ~headers:
      [ "R"; "2^R"; "Delta=2"; "Delta=3"; "3^R (unpruned)"; ">= 2^R" ]
    rows

(* E9 — the headline: step complexity of the three agreement algorithms.
   Random schedules tend to desynchronize the processes early, which lets
   Algorithm 1 exit long before its worst case; the lockstep schedule
   (strict alternation) is the adversary that forces all k iterations, so
   the reported figure is the max over both. *)
let steps_of_algorithm algorithm ~k ~runs ~seed =
  let task = Tasks.Eps_agreement.task ~n:2 ~k in
  let lockstep_steps =
    let state =
      Sched.Scheduler.start
        ~memory:(algorithm.H.memory ())
        ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
        ()
    in
    Sched.Adversary.run Sched.Adversary.lockstep state;
    max
      (Sched.Scheduler.steps_of state 0)
      (Sched.Scheduler.steps_of state 1)
  in
  match H.check_random ~task ~algorithm ~runs ~seed () with
  | H.Pass stats ->
      Ok (max stats.H.max_process_steps lockstep_steps, stats.H.max_bits)
  | H.Fail _ -> Error ()

let run_race _ctx ppf =
  Format.fprintf ppf
    "Three wait-free 2-process eps-agreement algorithms at matching@\n\
     precision (steps = worst per-process over 60 random runs each):@\n\
     Algorithm 1 pays Theta(1/eps) through 1-bit registers; the Algorithm 6@\n\
     simulation gets O(log 1/eps) from 6-bit registers (Theorem 8.1),@\n\
     matching the unbounded-register baseline's asymptotics.@\n@\n";
  let rows =
    List.filter_map
      (fun exponent ->
        (* target eps = 2^-exponent *)
        let alg1_k = ((1 lsl exponent) - 1 + 1) / 2 in
        let alg1_k = max 1 alg1_k in
        let fast_rounds = exponent in
        let fast_den = FA.denominator ~delta:2 ~rounds:fast_rounds in
        let results =
          ( steps_of_algorithm
              (Core.Alg1_one_bit.algorithm ~k:alg1_k)
              ~k:(Core.Alg1_one_bit.denominator ~k:alg1_k)
              ~runs:60 ~seed:100,
            steps_of_algorithm
              (FA.algorithm ~delta:2 ~rounds:fast_rounds)
              ~k:fast_den ~runs:60 ~seed:200,
            steps_of_algorithm
              (Core.Baseline_unbounded.algorithm ~n:2 ~rounds:exponent)
              ~k:(Core.Baseline_unbounded.denominator ~rounds:exponent)
              ~runs:60 ~seed:300 )
        in
        match results with
        | Ok (s1, b1), Ok (s2, b2), Ok (s3, _) ->
            Some
              [
                Printf.sprintf "2^-%d" exponent;
                Printf.sprintf "%d  [%d bit]" s1 b1;
                Printf.sprintf "%d  [%d bit]" s2 b2;
                Printf.sprintf "%d  [unbounded]" s3;
              ]
        | _ -> Some [ Printf.sprintf "2^-%d" exponent; "FAIL"; "FAIL"; "FAIL" ])
      [ 1; 2; 4; 6; 8; 10; 12 ]
  in
  Table.print ppf
    ~title:
      "E9  Steps per process to reach eps (Theorem 8.1's exponential gap)"
    ~headers:
      [ "eps"; "Algorithm 1 (1-bit)"; "Fast sim (6-bit)";
        "Baseline (unbounded)" ]
    rows
