(* The execution context handed to every experiment by the supervisor:
   a resource budget the experiment may (but need not) honour, and a
   channel for reporting that it degraded some check to sampling so the
   summary table can say so. *)

type t = {
  budget : Sched.Budget.t;
  degraded : string -> unit;
}

let default = { budget = Sched.Budget.unlimited; degraded = ignore }

let make ?(budget = Sched.Budget.unlimited) ?(degraded = ignore) () =
  { budget; degraded }
