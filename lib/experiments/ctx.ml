(* The execution context handed to every experiment by the supervisor:
   a resource budget the experiment may (but need not) honour, a
   channel for reporting that it degraded some check to sampling so the
   summary table can say so, and the domain-pool width for checks that
   can fan out (Harness.check_supervised sampling, chaos campaigns). *)

type t = {
  budget : Sched.Budget.t;
  degraded : string -> unit;
  jobs : int;
}

let default = { budget = Sched.Budget.unlimited; degraded = ignore; jobs = 1 }

let make ?(budget = Sched.Budget.unlimited) ?(degraded = ignore) ?(jobs = 1)
    () =
  { budget; degraded; jobs = max 1 jobs }
