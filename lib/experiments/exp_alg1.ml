(* E2 — Figure 2 and Lemmas 5.1-5.5: Algorithm 1's executions. *)

module Q = Bits.Rational
module H = Tasks.Harness
module Scheduler = Sched.Scheduler

let decision_pairs ~k =
  let algorithm = Core.Alg1_one_bit.algorithm ~k in
  let pairs = ref [] in
  let result =
    Sched.Explore.explore
      ~init:(fun () ->
        Scheduler.start
          ~memory:(algorithm.H.memory ())
          ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
          ())
      (fun st ->
        match ((Scheduler.decisions st).(0), (Scheduler.decisions st).(1)) with
        | Some a, Some b ->
            if
              not
                (List.exists
                   (fun (x, y) -> Q.equal x a && Q.equal y b)
                   !pairs)
            then pairs := (a, b) :: !pairs
        | _ -> ())
  in
  (result.Sched.Explore.stats, List.rev !pairs)

let run ctx ppf =
  Format.fprintf ppf
    "Algorithm 1: 2-process eps-agreement with 1-bit registers.@\n\
     All interleavings with inputs (0, 1); eps = 1/(2k+1). Lemma 5.5 bounds@\n\
     every decision pair's gap by eps; Prop 5.1 bounds steps by 2k+3.@\n@\n";
  let rows =
    List.map
      (fun k ->
        let den = Core.Alg1_one_bit.denominator ~k in
        let task = Tasks.Eps_agreement.task ~n:2 ~k:den in
        let algorithm = Core.Alg1_one_bit.algorithm ~k in
        let search, pairs = decision_pairs ~k in
        let spread =
          List.fold_left
            (fun acc (a, b) -> Q.max acc (Q.abs (Q.sub a b)))
            Q.zero pairs
        in
        let verdict, steps, bits =
          match
            H.check_supervised ~task ~algorithm ~max_crashes:1
              ~budget:ctx.Ctx.budget ~jobs:ctx.Ctx.jobs ()
          with
          | H.Verified_exhaustive s -> (true, s.H.max_process_steps, s.H.max_bits)
          | H.Verified_sampled (s, c) ->
              ctx.Ctx.degraded
                (Format.asprintf "Alg1 k=%d sampled (%a)" k H.pp_coverage c);
              (true, s.H.max_process_steps, s.H.max_bits)
          | H.Violation _ -> (false, 0, 0)
        in
        [
          string_of_int k;
          Table.cell_q (Q.make 1 den);
          string_of_int search.Sched.Explore.terminals;
          Printf.sprintf "%d/%d" search.Sched.Explore.nodes
            (search.Sched.Explore.deduped + search.Sched.Explore.pruned);
          string_of_int (List.length pairs);
          Table.cell_q spread;
          Printf.sprintf "%d (<= %d)" steps ((2 * k) + 3);
          string_of_int bits;
          Table.cell_bool verdict;
        ])
      [ 1; 2; 3; 4 ]
  in
  Table.print ppf ~title:"E2  Algorithm 1 over all schedules (+1 crash)"
    ~headers:
      [
        "k"; "eps"; "states(0,1)"; "nodes/cut"; "pairs"; "max gap"; "steps";
        "bits"; "pass";
      ]
    rows;
  (* The k = 4 decision-pair chain, Figure 2's data. *)
  let _, pairs = decision_pairs ~k:4 in
  let sorted =
    List.sort
      (fun (a, b) (c, d) ->
        match Q.compare (Q.add a b) (Q.add c d) with
        | 0 -> Q.compare a c
        | cmp -> cmp)
      pairs
  in
  Format.fprintf ppf "Decision pairs at k = 4 (the chromatic path of Fig. 2):@\n  ";
  List.iter
    (fun (a, b) -> Format.fprintf ppf "(%a,%a) " Q.pp a Q.pp b)
    sorted;
  Format.fprintf ppf "@\n@\n"
