(* Crash-isolated experiment runs: every registry entry executes under
   exception capture and a wall-clock alarm, so one hung or crashing
   experiment cannot take down `boundedreg run all`. *)

type status =
  | Passed
  | Degraded of string list
  | Timed_out of float
  | Crashed of { exn_text : string; backtrace : string }

type result = {
  experiment : Registry.t;
  status : status;
  seconds : float;
  attempts : int;
  output : string;
}

exception Timeout

let pp_status ppf = function
  | Passed -> Format.pp_print_string ppf "pass"
  | Degraded notes ->
      Format.fprintf ppf "pass (degraded x%d)" (List.length notes)
  | Timed_out s -> Format.fprintf ppf "TIMEOUT after %.1fs" s
  | Crashed { exn_text; _ } -> Format.fprintf ppf "CRASH: %s" exn_text

let status_ok = function
  | Passed | Degraded _ -> true
  | Timed_out _ | Crashed _ -> false

(* Run [f ()] with a SIGALRM firing after [deadline] seconds. OCaml
   delivers signals at allocation points, so the handler's exception
   interrupts pure-OCaml loops too (anything that allocates — which the
   explorer does constantly). The previous handler and timer are restored
   whatever happens: the supervisor itself runs many experiments in
   sequence and must not leak an armed timer into the next one. *)
let with_alarm deadline f =
  match deadline with
  | None -> f ()
  | Some deadline ->
      let previous = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timeout)) in
      let set span =
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_value = span; it_interval = 0. })
      in
      Fun.protect
        ~finally:(fun () ->
          set 0.;
          Sys.set_signal Sys.sigalrm previous)
        (fun () ->
          set deadline;
          f ())

(* One attempt: output goes to a buffer so a crash mid-table still leaves
   the partial output attached to the result instead of interleaved
   garbage on the terminal. *)
let attempt ?deadline ~budget ~jobs (e : Registry.t) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let notes = ref [] in
  let ctx =
    Ctx.make ~budget ~degraded:(fun n -> notes := n :: !notes) ~jobs ()
  in
  let started = Unix.gettimeofday () in
  let status =
    match with_alarm deadline (fun () -> e.run ctx ppf) with
    | () -> if !notes = [] then Passed else Degraded (List.rev !notes)
    | exception Timeout ->
        Timed_out (Option.value deadline ~default:0.)
    | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        Crashed { exn_text = Printexc.to_string exn; backtrace }
  in
  Format.pp_print_flush ppf ();
  (status, Unix.gettimeofday () -. started, Buffer.contents buf)

let status_args status =
  let tag, detail =
    match status with
    | Passed -> ("passed", Obs.Json.Null)
    | Degraded notes ->
        ("degraded", Obs.Json.List (List.map (fun n -> Obs.Json.Str n) notes))
    | Timed_out s -> ("timed_out", Obs.Json.Float s)
    | Crashed { exn_text; _ } -> ("crashed", Obs.Json.Str exn_text)
  in
  [ ("status", Obs.Json.Str tag); ("detail", detail) ]

let run_one ?deadline ?(budget = Sched.Budget.unlimited) ?(jobs = 1)
    (e : Registry.t) =
  Printexc.record_backtrace true;
  Obs.Span.begin_ ~cat:"experiment"
    ~args:
      [
        ("id", Obs.Json.Str e.id);
        ("slug", Obs.Json.Str e.slug);
        ("seeded", Obs.Json.Bool e.seeded);
      ]
    e.id;
  let status, seconds, output = attempt ?deadline ~budget ~jobs e in
  (* Seeded experiments are retried once: a crash there can be an
     artefact of one unlucky seed interacting with a budget, and the
     second attempt makes the flake visible as [attempts = 2] instead of
     failing the whole run. Timeouts are not retried — the second attempt
     would spend the same wall clock to learn the same thing. *)
  let result =
    match status with
    | Crashed _ when e.seeded ->
        Obs.Span.instant ~cat:"experiment"
          ~args:[ ("id", Obs.Json.Str e.id) ]
          "experiment.retry";
        let status2, seconds2, output2 = attempt ?deadline ~budget ~jobs e in
        let status2, output2 =
          match status2 with
          | Crashed _ -> (status, output)  (* report the first failure *)
          | _ -> (status2, output2)
        in
        {
          experiment = e;
          status = status2;
          seconds = seconds +. seconds2;
          attempts = 2;
          output = output2;
        }
    | _ -> { experiment = e; status; seconds; attempts = 1; output }
  in
  Obs.Span.end_ ~cat:"experiment"
    ~args:
      (status_args result.status
      @ [
          ("attempts", Obs.Json.Int result.attempts);
          ("seconds", Obs.Json.Float result.seconds);
        ])
    e.id;
  (* Post-mortem for a tripped watchdog or a crash that survived the
     retry: the flight rings hold the last events of the dying run —
     its campaign/exploration boundaries and verdict instants — without
     the user having traced. *)
  (let dump reason =
     match Obs.Recorder.dump ~reason () with
     | Some f -> Format.eprintf "flight recorder: wrote %s@." f
     | None -> ()
   in
   match result.status with
   | Timed_out _ -> dump "watchdog"
   | Crashed _ -> dump "exception"
   | Passed | Degraded _ -> ());
  result

let run_all ?deadline ?budget ?jobs ?(ppf = Format.std_formatter)
    ?(experiments = Registry.all) () =
  List.map
    (fun (e : Registry.t) ->
      let r = run_one ?deadline ?budget ?jobs e in
      Format.fprintf ppf "%s@." r.output;
      (match r.status with
      | Passed | Degraded _ -> ()
      | Timed_out s ->
          Format.fprintf ppf "*** %s %s: timed out after %.1fs@.@." e.id
            e.slug s
      | Crashed { exn_text; backtrace } ->
          Format.fprintf ppf "*** %s %s: uncaught exception %s@.%s@." e.id
            e.slug exn_text backtrace);
      r)
    experiments

let summary ppf results =
  let rows =
    List.map
      (fun r ->
        [
          r.experiment.Registry.id;
          r.experiment.Registry.slug;
          Format.asprintf "%a" pp_status r.status;
          Printf.sprintf "%.1fs" r.seconds;
          (if r.attempts > 1 then string_of_int r.attempts else "1");
        ])
      results
  in
  Table.print ppf ~title:"Supervisor summary"
    ~headers:[ "id"; "experiment"; "status"; "time"; "attempts" ]
    rows;
  List.iter
    (fun r ->
      match r.status with
      | Degraded notes ->
          List.iter
            (fun n ->
              Format.fprintf ppf "  %s degraded: %s@."
                r.experiment.Registry.id n)
            notes
      | _ -> ())
    results;
  let failed = List.filter (fun r -> not (status_ok r.status)) results in
  if failed = [] then
    Format.fprintf ppf "all %d experiment(s) completed@."
      (List.length results)
  else
    Format.fprintf ppf "%d of %d experiment(s) FAILED: %s@."
      (List.length failed) (List.length results)
      (String.concat ", "
         (List.map (fun r -> r.experiment.Registry.id) failed))

let exit_code results =
  if List.for_all (fun r -> status_ok r.status) results then 0 else 1
