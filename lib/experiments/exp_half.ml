(* E13 — the t = n/2 frontier (the paper's open problem, Section 9).

   Theorem 1.3's pipeline rests on ABD quorums of size n - t intersecting,
   which needs t < n/2. At t = n/2 two quorums can be disjoint; this
   experiment drives a concrete schedule in which a completed write is
   invisible to a subsequent read — the atomicity failure that breaks step 1
   of the compilation — and shows the same schedule cannot complete at
   t < n/2. *)

(* Deliver a batch of (destination, message) pairs to the chosen recipients
   only, feeding replies back to their senders; returns each recipient's
   replies destined for [home]. *)
let deliver_to ~recipients ~home ~peers msgs =
  List.concat_map
    (fun (dst, m) ->
      if List.mem dst recipients then
        Msgpass.Abd.handle peers.(dst) ~from:home m
        |> List.filter (fun (back, _) -> back = home)
        |> List.map snd
      else [])
    msgs

let stale_read ~n ~quorum =
  let peers =
    Array.init n (fun me ->
        Msgpass.Abd.create ~n ~t:0 ~me ~quorum ~registers:n
          ~init:(fun _ -> 0) ())
  in
  (* Process 0 writes 42; only processes {0, 1} (a quorum at t = n/2) ever
     see it. *)
  let writer = peers.(0) in
  let write_msgs = Msgpass.Abd.begin_write writer ~reg:0 42 in
  let acks = deliver_to ~recipients:[ 0; 1 ] ~home:0 ~peers write_msgs in
  List.iter
    (fun m -> ignore (Msgpass.Abd.handle writer ~from:0 m))
    acks;
  let write_done =
    match Msgpass.Abd.take_completion writer with
    | Some Msgpass.Abd.Wrote -> true
    | Some (Msgpass.Abd.Read_value _) | None -> false
  in
  (* Process 2 then reads register 0, reaching only {2, 3}. *)
  let reader = peers.(2) in
  let read_msgs = Msgpass.Abd.begin_read reader ~reg:0 in
  let replies = deliver_to ~recipients:[ 2; 3 ] ~home:2 ~peers read_msgs in
  let write_back =
    List.concat_map
      (fun m -> Msgpass.Abd.handle reader ~from:2 m)
      replies
  in
  let wb_acks = deliver_to ~recipients:[ 2; 3 ] ~home:2 ~peers write_back in
  List.iter (fun m -> ignore (Msgpass.Abd.handle reader ~from:2 m)) wb_acks;
  let read_result =
    match Msgpass.Abd.take_completion reader with
    | Some (Msgpass.Abd.Read_value v) -> Some v
    | Some Msgpass.Abd.Wrote | None -> None
  in
  (write_done, read_result)

(* The staged schedule as a recorded history on a logical clock: the write
   spans [1,2] (or never completes), the read spans [3,4] — sequential, so
   a stale read is not excusable as concurrency. Handing this history to
   Check.Linearize turns the experiment's "STALE READ" label into a machine
   decision. *)
let verdict_of ~write_done ~read_result =
  let open Check.Linearize in
  let write =
    { proc = 0; reg = 0; op = Write 42; inv = 1;
      res = (if write_done then Some 2 else None) }
  in
  let read =
    match read_result with
    | Some v -> [ { proc = 2; reg = 0; op = Read v; inv = 3; res = Some 4 } ]
    | None -> []
  in
  check ~pp:Format.pp_print_int ~init:(fun _ -> 0) ~equal:Int.equal
    (write :: read)

let verdict_cell = function
  | Check.Linearize.Linearizable _ -> "linearizable"
  | Check.Linearize.Nonlinearizable _ -> "NONLINEARIZABLE"

let run _ctx ppf =
  Format.fprintf ppf
    "Section 9 leaves t = n/2 open. The Theorem 1.3 compilation needs ABD@\n\
     quorums (size n - t) to intersect, i.e. t < n/2. With n = 4 we run the@\n\
     same adversarial schedule — a write acknowledged by {0,1}, then a read@\n\
     served by {2,3} — at both quorum sizes:@\n@\n";
  let rows =
    List.map
      (fun (quorum, t_label) ->
        let write_done, read_result = stale_read ~n:4 ~quorum in
        let outcome =
          match (write_done, read_result) with
          | true, Some 0 -> "STALE READ: write lost (atomicity broken)"
          | true, Some v when v = 42 -> "fresh read (would be sound)"
          | true, Some v -> Printf.sprintf "read %d" v
          | true, None -> "read blocked awaiting a third reply (sound)"
          | false, _ -> "write blocked"
        in
        [
          t_label;
          string_of_int quorum;
          Table.cell_bool write_done;
          outcome;
          verdict_cell (verdict_of ~write_done ~read_result);
        ])
      [ (2, "t = n/2 = 2"); (3, "t = 1 < n/2") ]
  in
  Table.print ppf
    ~title:"E13  ABD under the adversarial split-quorum schedule (n = 4)"
    ~headers:
      [ "resilience"; "quorum"; "write completes"; "read outcome"; "Check.Linearize" ]
    rows;
  Format.fprintf ppf
    "At quorum 2 the write completes and the read returns the initial value:@\n\
     a completed write vanished, so no register emulation — and hence no@\n\
     Theorem 1.3-style universality — can be built this way at t = n/2.@\n\
     At quorum 3 the very same delivery pattern cannot even complete the@\n\
     write: completing it requires reaching a third process, whose copy@\n\
     then intersects every read quorum — that intersection is the whole@\n\
     proof of ABD's atomicity, and it is exactly what t = n/2 forfeits.@\n\
     The last column is not a label: the recorded history is decided by@\n\
     the Check.Linearize Wing–Gong search. E15 finds the same violation@\n\
     by seeded fault-injection search instead of a hand-staged schedule.@\n@\n"
