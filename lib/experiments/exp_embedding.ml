(* E14 — Lemma 2.4: the iterated model embeds in plain shared memory. *)

module H = Tasks.Harness

let run _ctx ppf =
  Format.fprintf ppf
    "One IIS round becomes n Borowsky-Gafni write/collect iterations over@\n\
     history registers — n(n+1) plain steps per round. The embedded rounds@\n\
     are genuine immediate snapshots, so any IIS protocol runs unchanged in@\n\
     the ordinary wait-free model (the non-trivial direction of the@\n\
     equivalence the asynchronous computability theorem relies on).@\n@\n";
  let rows =
    List.map
      (fun (n, rounds, runs) ->
        let task =
          Tasks.Eps_agreement.task ~n
            ~k:(Iterated.Agreement.denominator ~rounds)
        in
        let algorithm =
          Core.Iis_in_sm.algorithm ~n ~name:"iis-in-sm"
            ~source:(fun ~pid:_ ~input ->
              Iterated.Agreement.protocol ~rounds ~input)
        in
        match H.check_random ~task ~algorithm ~runs ~seed:41 () with
        | H.Pass stats ->
            [
              string_of_int n;
              string_of_int rounds;
              Printf.sprintf "%d (<= n(n+1)R = %d)" stats.H.max_process_steps
                (rounds * n * (n + 1));
              string_of_int stats.H.runs;
              "pass";
            ]
        | H.Fail _ ->
            [ string_of_int n; string_of_int rounds; "-"; "-"; "VIOLATION" ])
      [ (2, 4, 300); (3, 3, 300); (4, 2, 200); (5, 2, 100) ]
  in
  Table.print ppf
    ~title:
      "E14  IIS epsilon-agreement embedded in plain shared memory \
       (wait-free crash injection)"
    ~headers:[ "n"; "IIS rounds"; "steps/proc"; "runs"; "verdict" ]
    rows
