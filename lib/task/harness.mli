(** Running an algorithm against a task specification over many schedules and
    crash patterns, and checking every outcome against Delta.

    This is the workhorse behind most experiments: positive theorems are
    demonstrated by surviving the harness (exhaustive schedules where
    feasible, seeded random fair schedules with crash injection otherwise);
    the Section 4 impossibility is demonstrated by the harness {e finding}
    violations for protocols the theorem rules out. *)

type ('v, 'i, 'o) algorithm = {
  name : string;
  memory : unit -> ('v, 'i) Sched.Memory.t;
  program : pid:int -> input:'i -> ('v, 'i, 'o) Sched.Program.t;
}
(** [memory] builds a fresh shared memory (fixing n and the register budget);
    [program] is the per-process protocol, given the process's private
    input. *)

type 'i violation = {
  inputs : 'i array;
  crashes : (int * int) list;  (** (pid, crashed after this many steps) *)
  seed : int option;  (** random-run seed, when applicable *)
  schedule : int list option;
      (** the concrete failing interleaving — pids in step order. Always
          present for exhaustive failures (recovered from the explorer's
          trace, crashes included); present for random failures up to a
          2M-step cap (re-derived by replaying the seed with tracing on).
          Feed it back through [run_once ~schedule:(`Replay ...)] — or
          {!replay} — to re-execute the failure bit-for-bit. *)
  reason : string;
}

val pp_violation :
  (Format.formatter -> 'i -> unit) -> Format.formatter -> 'i violation -> unit

type stats = {
  runs : int;
  max_process_steps : int;  (** worst per-process step count observed *)
  max_bits : int;  (** widest register value ever written *)
  explored : Sched.Explore.stats option;
      (** exploration-engine counters, summed over input configurations —
          [Some] for {!check_exhaustive}, [None] for {!check_random} *)
}

type 'i report = Pass of stats | Fail of 'i violation

val pp_report :
  (Format.formatter -> 'i -> unit) -> Format.formatter -> 'i report -> unit

val run_once :
  ?record_trace:bool ->
  ('v, 'i, 'o) algorithm -> inputs:'i array ->
  schedule:
    [ `Random of Bits.Rng.t * (int * int) list
    | `List of int list
    | `Replay of int list * (int * int) list ] ->
  ?max_steps:int -> unit -> ('v, 'i, 'o) Sched.Scheduler.state
(** One execution. With [`Random (rng, crashes)] the run uses a fair random
    schedule with the given crash points; with [`List pids] it replays the
    given schedule (no crashes, remaining processes finished round-robin);
    with [`Replay (pids, crashes)] it re-executes a recorded failure
    bit-for-bit — exactly the listed steps, crash placements applied, no
    round-robin tail. *)

val replay :
  ('v, 'i, 'o) algorithm -> 'i violation ->
  ('v, 'i, 'o) Sched.Scheduler.state option
(** Re-execute a violation from its recorded schedule and crash pattern
    ([None] when the violation carries no schedule). The returned state
    exhibits the reported failure: same decisions, same step counts. *)

val check_random :
  task:('i, 'o) Task.t ->
  algorithm:('v, 'i, 'o) algorithm ->
  ?resilience:int ->
  ?max_steps:int ->
  runs:int ->
  seed:int ->
  unit ->
  'i report
(** [runs] executions with uniformly drawn admissible inputs, a fair random
    schedule, and a uniformly drawn crash pattern of at most [resilience]
    processes (default: arity - 1, i.e. wait-free) crashing at random times.
    Fails if a surviving process does not decide within [max_steps] (default
    100_000) total steps, or if the decided outputs violate Delta. *)

(** {1 Supervised checking}

    {!check_exhaustive} is all-or-nothing: it either finishes or it does
    not come back. Under a {!Sched.Budget.t} the harness degrades
    gracefully instead — when the exhaustive pass is cut short, the
    abandoned frontier is {e sampled} with seeded random completions, and
    the verdict says exactly how much of the state space backs the claim. *)

type coverage = {
  explored : int;  (** terminal states visited by the exhaustive pass *)
  frontier : int;  (** subtrees abandoned when the budget tripped *)
  sampled : int;  (** frontier subtrees finished under a random schedule *)
  sample_seed : int;  (** rng seed of the sampling pass *)
  truncated : int;
      (** interleavings abandoned at [max_steps] under [~truncation:`Warn] *)
  first_truncated : int list option;
      (** schedule prefix of the first truncated interleaving, for
          diagnosis — [None] when nothing was truncated *)
  stop : Sched.Budget.stop_reason option;
      (** which budget cap ended the exhaustive pass; [None] when the
          verdict is degraded only by truncation warnings *)
}

val pp_coverage : Format.formatter -> coverage -> unit

type 'i verdict =
  | Verified_exhaustive of stats
      (** every interleaving was checked; this is a proof over the model *)
  | Verified_sampled of stats * coverage
      (** no violation found, but the search was cut short — the coverage
          says how much was exhaustive and how much merely sampled *)
  | Violation of 'i violation
      (** a counterexample, with its replayable schedule *)

val pp_verdict :
  (Format.formatter -> 'i -> unit) -> Format.formatter -> 'i verdict -> unit

val verdict_ok : 'i verdict -> bool
(** [true] unless the verdict is a {!Violation}. *)

val report_of_verdict : 'i verdict -> 'i report
(** Collapse to the two-valued report: both [Verified_*] become [Pass].
    Lossy — the coverage disclaimer is dropped. *)

val check_supervised :
  task:('i, 'o) Task.t ->
  algorithm:('v, 'i, 'o) algorithm ->
  ?max_crashes:int ->
  ?max_steps:int ->
  ?budget:Sched.Budget.t ->
  ?samples:int ->
  ?seed:int ->
  ?truncation:[ `Fail | `Warn ] ->
  ?jobs:int ->
  unit ->
  'i verdict
(** {!check_exhaustive} under a resource [budget] (default
    {!Sched.Budget.unlimited}) shared across all input configurations:
    each configuration's exploration gets what the previous ones left
    over ({!Sched.Budget.remaining}). When the budget trips, up to
    [samples] (default 64) abandoned frontier subtrees are completed
    under a fair random schedule seeded with [seed] (default 1) and
    judged like any other execution — a violation found while sampling
    is still a [Violation]; surviving yields [Verified_sampled] with the
    coverage counters. [truncation] decides what an interleaving
    exceeding [max_steps] means: [`Fail] (default) reports it as a
    non-termination violation exactly like {!check_exhaustive}; [`Warn]
    counts it, records the first truncated schedule prefix, and degrades
    the verdict to [Verified_sampled] — for protocols whose tail is
    legitimately unbounded rather than buggy.

    [jobs] (default 1) fans the frontier sampling over a domain pool
    ({!Sched.Par.run_units}): samples are independent completions, each
    with an rng derived from [seed] and its sample index, and outcomes
    fold back in sample order — the verdict is the same for any
    [jobs > 1], regardless of worker scheduling. [jobs = 1] keeps the
    original single-rng sampling stream byte-for-byte, so existing seeds
    reproduce; the exhaustive pass itself is not parallelized (its budget
    accounting is what partitions the frontier in the first place). *)

val check_exhaustive :
  task:('i, 'o) Task.t ->
  algorithm:('v, 'i, 'o) algorithm ->
  ?max_crashes:int ->
  ?max_steps:int ->
  unit ->
  'i report
(** Every admissible input configuration crossed with every interleaving
    (and, when [max_crashes > 0], every crash placement up to that budget).
    Interleavings longer than [max_steps] (default 10_000) are reported as a
    termination failure rather than skipped. Equivalent to
    {!check_supervised} with an unlimited budget, collapsed through
    {!report_of_verdict}. *)
