module Scheduler = Sched.Scheduler

type ('v, 'i, 'o) algorithm = {
  name : string;
  memory : unit -> ('v, 'i) Sched.Memory.t;
  program : pid:int -> input:'i -> ('v, 'i, 'o) Sched.Program.t;
}

type 'i violation = {
  inputs : 'i array;
  crashes : (int * int) list;
  seed : int option;
  reason : string;
}

let pp_violation pp_i ppf { inputs; crashes; seed; reason } =
  Format.fprintf ppf "@[<v>violation: %s@ inputs: %a@ crashes: %a@ seed: %a@]"
    reason
    (Task.pp_config pp_i)
    (Array.map Option.some inputs)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (pid, after) -> Format.fprintf ppf "p%d@%d" pid after))
    crashes
    (Format.pp_print_option Format.pp_print_int)
    seed

type stats = {
  runs : int;
  max_process_steps : int;
  max_bits : int;
  explored : Sched.Explore.stats option;
}

type 'i report = Pass of stats | Fail of 'i violation

let pp_report pp_i ppf = function
  | Pass { runs; max_process_steps; max_bits; explored } ->
      Format.fprintf ppf
        "pass: %d runs, <=%d steps/process, <=%d bits/register" runs
        max_process_steps max_bits;
      Option.iter
        (fun s -> Format.fprintf ppf " (%a)" Sched.Explore.pp_stats s)
        explored
  | Fail v -> pp_violation pp_i ppf v

let start algorithm ~inputs =
  Scheduler.start ~memory:(algorithm.memory ())
    ~programs:(fun pid -> algorithm.program ~pid ~input:inputs.(pid))
    ()

let run_once algorithm ~inputs ~schedule ?(max_steps = 100_000) () =
  let state = start algorithm ~inputs in
  (match schedule with
  | `Random (rng, crashes) ->
      Scheduler.run_random ~max_steps ~crashes ~until_outputs:true rng state
  | `List pids ->
      Scheduler.run_schedule state pids;
      Scheduler.run_round_robin ~max_steps state);
  state

(* Check one finished (or abandoned) execution; crashed processes contribute
   [None] outputs, surviving ones must have announced a decision (halting is
   not required: simulations may decide via [Output] and keep serving). *)
let judge task ~inputs ~crashes ~seed state =
  if not (Scheduler.all_output state) then
    Some
      {
        inputs;
        crashes;
        seed;
        reason =
          Printf.sprintf
            "process(es) %s did not decide within the step budget"
            (String.concat ","
               (List.map string_of_int (Scheduler.running state)));
      }
  else
    let outputs = Scheduler.decisions state in
    match Task.check task ~inputs ~outputs with
    | Ok () -> None
    | Error reason -> Some { inputs; crashes; seed; reason }

let observe stats state =
  let per_proc = ref 0 in
  for pid = 0 to Scheduler.n state - 1 do
    per_proc := max !per_proc (Scheduler.steps_of state pid)
  done;
  {
    stats with
    runs = stats.runs + 1;
    max_process_steps = max stats.max_process_steps !per_proc;
    max_bits =
      max stats.max_bits
        (Sched.Memory.max_bits_written (Scheduler.memory state));
  }

let initial_stats =
  { runs = 0; max_process_steps = 0; max_bits = 0; explored = None }

let random_crash_pattern rng ~n ~resilience =
  let how_many = Bits.Rng.int rng (resilience + 1) in
  let pids = Array.init n (fun i -> i) in
  Bits.Rng.shuffle rng pids;
  List.init how_many (fun i -> (pids.(i), Bits.Rng.int rng 30))

let check_random ~task ~algorithm ?resilience ?(max_steps = 100_000) ~runs
    ~seed () =
  let n = task.Task.arity in
  let resilience = Option.value resilience ~default:(n - 1) in
  let configurations = Array.of_list (Task.input_configurations task) in
  if Array.length configurations = 0 then
    invalid_arg "Harness.check_random: task admits no input configuration";
  let rec loop run stats =
    if run >= runs then Pass stats
    else
      let run_seed = seed + run in
      let rng = Bits.Rng.make run_seed in
      let inputs =
        configurations.(Bits.Rng.int rng (Array.length configurations))
      in
      let crashes = random_crash_pattern rng ~n ~resilience in
      let state =
        run_once algorithm ~inputs ~schedule:(`Random (rng, crashes))
          ~max_steps ()
      in
      match judge task ~inputs ~crashes ~seed:(Some run_seed) state with
      | Some v -> Fail v
      | None -> loop (run + 1) (observe stats state)
  in
  loop 0 initial_stats

exception Stop

let check_exhaustive ~task ~algorithm ?(max_crashes = 0) ?(max_steps = 10_000)
    () =
  let stats = ref initial_stats in
  let search = ref Sched.Explore.zero_stats in
  let failure = ref None in
  (try
     List.iter
       (fun inputs ->
         let init () = start algorithm ~inputs in
         let stop reason =
           failure := Some { inputs; crashes = []; seed = None; reason };
           raise Stop
         in
         let visit state =
           (match judge task ~inputs ~crashes:[] ~seed:None state with
           | Some v -> stop v.reason
           | None -> ());
           stats := observe !stats state
         in
         let on_truncated _ =
           stop "interleaving exceeded the step budget (non-termination?)"
         in
         search :=
           Sched.Explore.add_stats !search
             (Sched.Explore.explore ~max_steps ~max_crashes ~on_truncated
                ~init visit))
       (Task.input_configurations task)
   with Stop -> ());
  match !failure with
  | Some v -> Fail v
  | None -> Pass { !stats with explored = Some !search }
