module Scheduler = Sched.Scheduler

let m_checks = Obs.Metrics.counter "harness.checks"
let m_violations = Obs.Metrics.counter "harness.violations"
let m_sampled = Obs.Metrics.counter "harness.sampled_paths"
let m_random_runs = Obs.Metrics.counter "harness.random_runs"

type ('v, 'i, 'o) algorithm = {
  name : string;
  memory : unit -> ('v, 'i) Sched.Memory.t;
  program : pid:int -> input:'i -> ('v, 'i, 'o) Sched.Program.t;
}

type 'i violation = {
  inputs : 'i array;
  crashes : (int * int) list;
  seed : int option;
  schedule : int list option;
  reason : string;
}

let pp_schedule ppf pids =
  let shown, extra =
    let rec take k = function
      | [] -> ([], 0)
      | _ :: _ as l when k = 0 -> ([], List.length l)
      | x :: rest ->
          let taken, dropped = take (k - 1) rest in
          (x :: taken, dropped)
    in
    take 400 pids
  in
  Format.fprintf ppf "@[<hov>%a%t@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
       Format.pp_print_int)
    shown
    (fun ppf ->
      if extra > 0 then Format.fprintf ppf "@ ... (+%d steps)" extra)

let pp_violation pp_i ppf { inputs; crashes; seed; schedule; reason } =
  Format.fprintf ppf
    "@[<v>violation: %s@ inputs: %a@ crashes: %a@ seed: %a@ schedule: %a@]"
    reason
    (Task.pp_config pp_i)
    (Array.map Option.some inputs)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (pid, after) -> Format.fprintf ppf "p%d@%d" pid after))
    crashes
    (Format.pp_print_option Format.pp_print_int)
    seed
    (Format.pp_print_option pp_schedule)
    schedule

type stats = {
  runs : int;
  max_process_steps : int;
  max_bits : int;
  explored : Sched.Explore.stats option;
}

type 'i report = Pass of stats | Fail of 'i violation

let pp_report pp_i ppf = function
  | Pass { runs; max_process_steps; max_bits; explored } ->
      Format.fprintf ppf
        "pass: %d runs, <=%d steps/process, <=%d bits/register" runs
        max_process_steps max_bits;
      Option.iter
        (fun s -> Format.fprintf ppf " (%a)" Sched.Explore.pp_stats s)
        explored
  | Fail v -> pp_violation pp_i ppf v

let start ?record_trace algorithm ~inputs =
  Scheduler.start ?record_trace
    ~memory:(algorithm.memory ())
    ~programs:(fun pid -> algorithm.program ~pid ~input:inputs.(pid))
    ()

(* Replay mode: step the recorded pids in order, applying the recorded
   crash placements with the same trigger rule as {!Scheduler.run_random}
   (crash once the process has taken its quota of steps). The crashed
   process takes no steps inside the recorded schedule either way, so
   crash-at-first-opportunity reproduces the original memory evolution
   bit-for-bit. *)
let run_replay state pids crashes =
  let n = Scheduler.n state in
  let crash_after = Array.make n max_int in
  List.iter (fun (pid, after) -> crash_after.(pid) <- after) crashes;
  let maybe_crash () =
    Scheduler.iter_running state (fun pid ->
        if Scheduler.steps_of state pid >= crash_after.(pid) then
          Scheduler.crash state pid)
  in
  List.iter
    (fun pid ->
      maybe_crash ();
      match Scheduler.status state pid with
      | Scheduler.Running -> Scheduler.step state pid
      | Scheduler.Decided _ | Scheduler.Crashed -> ())
    pids;
  maybe_crash ()

let run_once ?record_trace algorithm ~inputs ~schedule ?(max_steps = 100_000)
    () =
  let state = start ?record_trace algorithm ~inputs in
  (match schedule with
  | `Random (rng, crashes) ->
      Scheduler.run_random ~max_steps ~crashes ~until_outputs:true rng state
  | `List pids ->
      Scheduler.run_schedule state pids;
      Scheduler.run_round_robin ~max_steps state
  | `Replay (pids, crashes) -> run_replay state pids crashes);
  state

(* Check one finished (or abandoned) execution; crashed processes contribute
   [None] outputs, surviving ones must have announced a decision (halting is
   not required: simulations may decide via [Output] and keep serving). *)
let judge task ~inputs ~crashes ~seed ~schedule state =
  if not (Scheduler.all_output state) then
    Some
      {
        inputs;
        crashes;
        seed;
        schedule;
        reason =
          Printf.sprintf
            "process(es) %s did not decide within the step budget"
            (String.concat ","
               (List.map string_of_int (Scheduler.running state)));
      }
  else
    let outputs = Scheduler.decisions state in
    match Task.check task ~inputs ~outputs with
    | Ok () -> None
    | Error reason -> Some { inputs; crashes; seed; schedule; reason }

let observe stats state =
  let per_proc = ref 0 in
  for pid = 0 to Scheduler.n state - 1 do
    per_proc := max !per_proc (Scheduler.steps_of state pid)
  done;
  {
    stats with
    runs = stats.runs + 1;
    max_process_steps = max stats.max_process_steps !per_proc;
    max_bits =
      max stats.max_bits
        (Sched.Memory.max_bits_written (Scheduler.memory state));
  }

let initial_stats =
  { runs = 0; max_process_steps = 0; max_bits = 0; explored = None }

let random_crash_pattern rng ~n ~resilience =
  let how_many = Bits.Rng.int rng (resilience + 1) in
  let pids = Array.init n (fun i -> i) in
  Bits.Rng.shuffle rng pids;
  List.init how_many (fun i -> (pids.(i), Bits.Rng.int rng 30))

(* Schedules longer than this are reported without a replayable schedule:
   re-deriving and printing hundreds of millions of pids helps nobody. *)
let schedule_cap = 2_000_000

let replay algorithm (v : 'i violation) =
  match v.schedule with
  | None -> None
  | Some pids ->
      Some
        (run_once algorithm ~inputs:v.inputs
           ~schedule:(`Replay (pids, v.crashes))
           ())

let check_random ~task ~algorithm ?resilience ?(max_steps = 100_000) ~runs
    ~seed () =
  let n = task.Task.arity in
  let resilience = Option.value resilience ~default:(n - 1) in
  let configurations = Array.of_list (Task.input_configurations task) in
  if Array.length configurations = 0 then
    invalid_arg "Harness.check_random: task admits no input configuration";
  (* Compiled-program cache, one slot per input configuration: the seeded
     loop replays the same protocols up to [runs] times, and compiled
     code both skips re-lowering and keeps the positions earlier runs
     already memoized. Sound here because this loop is sequential;
     [check_supervised]'s jobs>1 sampling compiles per worker instead
     (compiled code must not cross domains). *)
  let compiled = Array.make (Array.length configurations) None in
  let start_cached ?record_trace ci =
    let inputs = configurations.(ci) in
    let codes =
      match compiled.(ci) with
      | Some codes -> codes
      | None ->
          let codes =
            Array.init n (fun pid ->
                Sched.Program.compile
                  (algorithm.program ~pid ~input:inputs.(pid)))
          in
          compiled.(ci) <- Some codes;
          codes
    in
    Scheduler.start_compiled ?record_trace
      ~memory:(algorithm.memory ())
      ~programs:(fun pid -> codes.(pid))
      ()
  in
  (* One seeded run; [record_trace] replays the identical rng stream with
     tracing on, which is how a failure's concrete schedule is recovered
     without paying trace allocation on the happy path. *)
  let seeded_run ?record_trace run_seed =
    let rng = Bits.Rng.make run_seed in
    let ci = Bits.Rng.int rng (Array.length configurations) in
    let inputs = configurations.(ci) in
    let crashes = random_crash_pattern rng ~n ~resilience in
    let state = start_cached ?record_trace ci in
    Scheduler.run_random ~max_steps ~crashes ~until_outputs:true rng state;
    (inputs, crashes, state)
  in
  let extract_schedule run_seed state =
    if Scheduler.steps_taken state > schedule_cap then None
    else
      let _, _, traced = seeded_run ~record_trace:true run_seed in
      Some (Sched.Trace.schedule_of (Scheduler.trace traced))
  in
  let rec loop run stats =
    if run >= runs then Pass stats
    else
      let run_seed = seed + run in
      let inputs, crashes, state = seeded_run run_seed in
      Obs.Metrics.inc m_random_runs;
      match
        judge task ~inputs ~crashes ~seed:(Some run_seed) ~schedule:None
          state
      with
      | Some v ->
          Obs.Metrics.inc m_violations;
          Fail { v with schedule = extract_schedule run_seed state }
      | None -> loop (run + 1) (observe stats state)
  in
  loop 0 initial_stats

exception Stop

type coverage = {
  explored : int;
  frontier : int;
  sampled : int;
  sample_seed : int;
  truncated : int;
  first_truncated : int list option;
  stop : Sched.Budget.stop_reason option;
}

type 'i verdict =
  | Verified_exhaustive of stats
  | Verified_sampled of stats * coverage
  | Violation of 'i violation

let pp_coverage ppf c =
  Format.fprintf ppf "explored=%d frontier=%d sampled=%d (seed %d)"
    c.explored c.frontier c.sampled c.sample_seed;
  if c.truncated > 0 then
    Format.fprintf ppf " truncated=%d" c.truncated;
  Option.iter
    (fun r -> Format.fprintf ppf " stop=%a" Sched.Budget.pp_stop_reason r)
    c.stop

let pp_verdict pp_i ppf = function
  | Verified_exhaustive stats ->
      Format.fprintf ppf "verified (exhaustive): %a" (pp_report pp_i)
        (Pass stats)
  | Verified_sampled (stats, c) ->
      Format.fprintf ppf "verified (SAMPLED, not exhaustive): %a@ coverage: %a"
        (pp_report pp_i) (Pass stats) pp_coverage c;
      Option.iter
        (fun pids ->
          Format.fprintf ppf "@ warning: first truncated schedule: %a"
            pp_schedule pids)
        c.first_truncated
  | Violation v -> pp_violation pp_i ppf v

let verdict_ok = function
  | Verified_exhaustive _ | Verified_sampled _ -> true
  | Violation _ -> false

let report_of_verdict = function
  | Verified_exhaustive stats | Verified_sampled (stats, _) -> Pass stats
  | Violation v -> Fail v

(* Supervised checking: the exhaustive pass runs under a resource budget;
   if the budget trips, the abandoned frontier is sampled with seeded
   random completions instead of being silently dropped, and the verdict
   records exactly how hard the claim was checked. *)
let check_supervised ~task ~algorithm ?(max_crashes = 0) ?(max_steps = 10_000)
    ?(budget = Sched.Budget.unlimited) ?(samples = 64) ?(seed = 1)
    ?(truncation = `Fail) ?(jobs = 1) () =
  Obs.Metrics.inc m_checks;
  Obs.Span.begin_ ~cat:"harness"
    ~args:
      [
        ("task", Obs.Json.Str task.Task.name);
        ("algorithm", Obs.Json.Str algorithm.name);
        ("max_crashes", Obs.Json.Int max_crashes);
      ]
    "harness.check";
  let stats = ref initial_stats in
  let search = ref Sched.Explore.zero_stats in
  let failure = ref None in
  let truncated_count = ref 0 in
  let first_truncated = ref None in
  let frontier_total = ref 0 in
  let sampled = ref 0 in
  let samples_left = ref samples in
  let stop_reason = ref None in
  let rng = Bits.Rng.make seed in
  (* One budget for the whole check: each input configuration's exploration
     gets whatever the previous ones left over. *)
  let monitor = Sched.Budget.arm budget in
  (try
     List.iter
       (fun inputs ->
         (* Traces stay on here: exhaustive runs are short, and they are
            what lets a violation report the exact interleaving (and crash
            placements) of the failing branch. *)
         let init () = start ~record_trace:true algorithm ~inputs in
         let stop v =
           failure := Some v;
           raise Stop
         in
         let witness state reason =
           let events = Scheduler.trace state in
           {
             inputs;
             crashes = Sched.Trace.crashes_of events;
             seed = None;
             schedule = Some (Sched.Trace.schedule_of events);
             reason;
           }
         in
         let visit state =
           (* Trace extraction is deferred to [witness]: only a failing
              branch pays for it. *)
           (match
              judge task ~inputs ~crashes:[] ~seed:None ~schedule:None state
            with
           | Some v -> stop (witness state v.reason)
           | None -> ());
           stats := observe !stats state
         in
         let on_truncated state =
           match truncation with
           | `Fail ->
               stop
                 (witness state
                    "interleaving exceeded the step budget \
                     (non-termination?)")
           | `Warn ->
               incr truncated_count;
               if !first_truncated = None then
                 first_truncated :=
                   Some (Sched.Trace.schedule_of (Scheduler.trace state))
         in
         (* Sample one abandoned subtree: re-execute its choice prefix and
            finish the run under a seeded fair random schedule. *)
         let sample_path path =
           let state = init () in
           List.iter
             (fun choice ->
               match choice with
               | Sched.Budget.Step p -> Scheduler.step state p
               | Sched.Budget.Crash p -> Scheduler.crash state p)
             path;
           Scheduler.run_random ~max_steps:(max 1 max_steps)
             ~until_outputs:true rng state;
           incr sampled;
           Obs.Metrics.inc m_sampled;
           let events = Scheduler.trace state in
           match
             judge task ~inputs
               ~crashes:(Sched.Trace.crashes_of events)
               ~seed:(Some seed) ~schedule:None state
           with
           | None -> stats := observe !stats state
           | Some v -> (
               match (truncation, Scheduler.all_output state) with
               | `Warn, false ->
                   (* An undecided sampled run under `Warn is a truncation
                      warning, exactly like an undecided exhaustive path. *)
                   incr truncated_count;
                   if !first_truncated = None then
                     first_truncated :=
                       Some (Sched.Trace.schedule_of events)
               | _ ->
                   stop
                     { (witness state v.reason) with seed = Some seed })
         in
         let sub_budget =
           Sched.Budget.remaining monitor ~nodes:!search.Sched.Explore.nodes
             ~terminals:!search.Sched.Explore.terminals
         in
         let r =
           Sched.Explore.explore ~max_steps ~max_crashes ~budget:sub_budget
             ~on_truncated ~init visit
         in
         (* Parallel sampling: the paths are independent completions, so
            they fan out over the pool. Each sample derives a private rng
            from [seed] and its global sample index — results depend on
            the workload and seed, never on how many domains ran them
            (though they differ from the jobs=1 path, which keeps the
            original single-rng stream byte-for-byte). Outcomes fold on
            this domain in sample order: stats, truncation warnings and
            the winning violation are the same for any [jobs > 1]. *)
         let sample_parallel paths =
           let base = !sampled in
           let units =
             Array.of_list (List.mapi (fun i path -> (base + i, path)) paths)
           in
           let sample_unit (gi, path) =
             let rng = Bits.Rng.make (seed + (7919 * (gi + 1))) in
             let state = init () in
             List.iter
               (fun choice ->
                 match choice with
                 | Sched.Budget.Step p -> Scheduler.step state p
                 | Sched.Budget.Crash p -> Scheduler.crash state p)
               path;
             Scheduler.run_random ~max_steps:(max 1 max_steps)
               ~until_outputs:true rng state;
             let events = Scheduler.trace state in
             match
               judge task ~inputs
                 ~crashes:(Sched.Trace.crashes_of events)
                 ~seed:(Some seed) ~schedule:None state
             with
             | None -> `Ok state
             | Some v -> (
                 match (truncation, Scheduler.all_output state) with
                 | `Warn, false -> `Trunc (Sched.Trace.schedule_of events)
                 | _ -> `Viol { (witness state v.reason) with seed = Some seed })
           in
           let results = Sched.Par.run_units ~jobs ~units sample_unit in
           Array.iter
             (fun r ->
               incr sampled;
               Obs.Metrics.inc m_sampled;
               match r with
               | `Ok state -> stats := observe !stats state
               | `Trunc schedule ->
                   incr truncated_count;
                   if !first_truncated = None then
                     first_truncated := Some schedule
               | `Viol v -> stop v)
             results
         in
         search := Sched.Explore.add_stats !search r.Sched.Explore.stats;
         match r.Sched.Explore.outcome with
         | Sched.Explore.Complete -> ()
         | Sched.Explore.Exhausted { frontier; reason } ->
             stop_reason := Some reason;
             frontier_total := !frontier_total + List.length frontier;
             if jobs > 1 then begin
               let rec take k = function
                 | path :: rest when k > 0 -> path :: take (k - 1) rest
                 | _ -> []
               in
               let paths = take !samples_left frontier in
               samples_left := !samples_left - List.length paths;
               sample_parallel paths
             end
             else
               List.iter
                 (fun path ->
                   if !samples_left > 0 then begin
                     decr samples_left;
                     sample_path path
                   end)
                 frontier)
       (Task.input_configurations task)
   with Stop -> ());
  let verdict =
    match !failure with
    | Some v -> Violation v
    | None ->
        let stats = { !stats with explored = Some !search } in
        if !stop_reason = None && !truncated_count = 0 then
          Verified_exhaustive stats
        else
          Verified_sampled
            ( stats,
              {
                explored = !search.Sched.Explore.terminals;
                frontier = !frontier_total;
                sampled = !sampled;
                sample_seed = seed;
                truncated = !truncated_count;
                first_truncated = !first_truncated;
                stop = !stop_reason;
              } )
  in
  (match verdict with Violation _ -> Obs.Metrics.inc m_violations | _ -> ());
  Obs.Span.end_ ~cat:"harness"
    ~args:
      [
        ( "verdict",
          Obs.Json.Str
            (match verdict with
            | Verified_exhaustive _ -> "verified_exhaustive"
            | Verified_sampled _ -> "verified_sampled"
            | Violation _ -> "violation") );
        ("explored", Obs.Json.Int !search.Sched.Explore.terminals);
        ("frontier", Obs.Json.Int !frontier_total);
        ("sampled", Obs.Json.Int !sampled);
        ("truncated", Obs.Json.Int !truncated_count);
      ]
    "harness.check";
  verdict

let check_exhaustive ~task ~algorithm ?max_crashes ?max_steps () =
  (* Unbudgeted and strict about truncation: [Verified_sampled] cannot
     happen, so this collapses losslessly to the two-valued report. *)
  report_of_verdict
    (check_supervised ~task ~algorithm ?max_crashes ?max_steps ())
