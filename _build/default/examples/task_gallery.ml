(* Solving arbitrary two-process tasks with 3-bit registers (Algorithm 2 /
   Theorem 1.2): the universal construction over the BMZ characterization.

   Run with: dune exec examples/task_gallery.exe *)

module Bmz = Tasks.Bmz
module H = Tasks.Harness

let show_solvable : type i o. (i, o) Bmz.two_task -> unit =
 fun task_def ->
  Format.printf "--- %s ---@\n" task_def.Bmz.name;
  match Bmz.plan task_def with
  | Error e -> Format.printf "  not solvable: %s@\n@\n" e
  | Ok plan ->
      Format.printf "  solvable; common path length L = %d@\n"
        plan.Bmz.length;
      let path = plan.Bmz.path (List.hd task_def.Bmz.inputs,
                                List.nth task_def.Bmz.inputs
                                  (List.length task_def.Bmz.inputs - 1))
                   ~missing:1 in
      Format.printf "  a path (missing process 1): ";
      Array.iter
        (fun (a, b) ->
          Format.printf "(%a,%a) " task_def.Bmz.pp_output a
            task_def.Bmz.pp_output b)
        path;
      Format.printf "@\n";
      let algorithm = Core.Alg2_universal.algorithm ~plan in
      let task = Bmz.to_task task_def in
      Format.printf "  exhaustive check with a crash: %a@\n@\n"
        (H.pp_report task_def.Bmz.pp_input)
        (H.check_exhaustive ~task ~algorithm ~max_crashes:1 ())

let () =
  Format.printf
    "Algorithm 2: any wait-free solvable 2-process task, 3-bit registers@\n@\n";
  show_solvable (Tasks.Gallery.eps_grid ~k:2);
  show_solvable Tasks.Gallery.renaming3;
  show_solvable Tasks.Gallery.always_zero;
  (* The rejections are as interesting as the successes: Lemma 5.7's
     conditions correctly rule out consensus-strength tasks. *)
  show_solvable Tasks.Gallery.binary_consensus;
  show_solvable Tasks.Gallery.or_task
