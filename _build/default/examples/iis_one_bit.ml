(* Theorem 1.4: any task solvable in the iterated model with unbounded
   registers is solvable there with 1-bit registers.

   The chain, end to end: an IIS epsilon-agreement protocol (unbounded
   views) is transported to the iterated-collect model by the
   Borowsky-Gafni snapshot (Algorithm 5), expressed as a full-information
   protocol, and simulated in IIS writing a single bit per memory level
   (Algorithm 4).

   Run with: dune exec examples/iis_one_bit.exe *)

module Q = Bits.Rational
module Proto = Iterated.Proto
module Sim1 = Iterated.One_bit_sim

let () =
  let n = 2 and rounds = 1 in
  let ic_rounds = n * rounds in
  Printf.printf "source: IIS eps-agreement, %d round(s), eps = 1/%d\n" rounds
    (Iterated.Agreement.denominator ~rounds);
  Printf.printf "after BG expansion: %d IC rounds\n" ic_rounds;

  let make ~pid:_ ~input =
    Iterated.Bg_snapshot.simulate ~n (Iterated.Agreement.protocol ~rounds ~input)
  in
  let decide view =
    match Iterated.Full_info.replay ~make view with
    | Proto.Decide d -> d
    | Proto.Round _ -> failwith "replay still running"
  in
  let inputs_domain =
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
  in
  let table =
    Sim1.build_table ~n ~rounds:ic_rounds ~inputs:inputs_domain
      ~equal_input:Int.equal
  in
  List.init ic_rounds (fun r -> r)
  |> List.iter (fun r ->
         Printf.printf "|C^%d| = %d reachable IC configurations\n" r
           (List.length (Sim1.reachable table ~round:r)));
  Printf.printf "1-bit IIS simulation: %d memory levels, 1 bit per register\n\n"
    (Sim1.total_iterations table);

  let rng = Bits.Rng.make 11 in
  List.iter
    (fun inputs ->
      let outcome =
        Iterated.Iis.run_random ~n ~budget:(Bits.Width.Bounded 1)
          ~measure:(Bits.Width.uint ~max:1)
          ~programs:(fun pid ->
            Sim1.protocol ~table ~me:pid ~input:inputs.(pid) ~decide)
          ~rng ()
      in
      let ds =
        Array.to_list outcome.Iterated.Iis.decisions
        |> List.filter_map (fun d -> d)
      in
      Format.printf "inputs (%d, %d) -> decisions (%a)  [max bits: %d]@\n"
        inputs.(0) inputs.(1)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Q.pp)
        ds outcome.Iterated.Iis.max_bits)
    inputs_domain
