examples/quickstart.mli:
