examples/task_gallery.ml: Array Core Format List Tasks
