examples/lower_bound_hunt.mli:
