examples/complex_atlas.ml: Bits Core Experiments Printf Sched String Tasks Unix
