examples/resilient_pipeline.mli:
