examples/iis_one_bit.ml: Array Bits Format Int Iterated List Printf
