examples/task_gallery.mli:
