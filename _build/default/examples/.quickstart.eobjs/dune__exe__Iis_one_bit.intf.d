examples/iis_one_bit.mli:
