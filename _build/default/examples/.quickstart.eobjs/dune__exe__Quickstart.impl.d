examples/quickstart.ml: Array Bits Core Format List Printf Sched Tasks
