examples/complex_atlas.mli:
