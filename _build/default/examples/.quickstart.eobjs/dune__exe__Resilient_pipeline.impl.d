examples/resilient_pipeline.ml: Array Bits Core Format List Msgpass Printf Sched String Tasks
