examples/lower_bound_hunt.ml: Bits Core Format List
