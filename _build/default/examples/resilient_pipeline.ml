(* Theorem 1.3 end-to-end: a t-resilient unbounded-register protocol
   compiled down to 3(t+1)-bit registers via ABD quorums, t-augmented-ring
   flooding, and per-link alternating-bit channels.

   Run with: dune exec examples/resilient_pipeline.exe *)

module Q = Bits.Rational
module W = Msgpass.Wire
module H = Tasks.Harness

let () =
  let n = 5 and t = 2 and rounds = 2 in
  Printf.printf "n = %d processes, t = %d (< n/2) crash resilience\n" n t;
  Printf.printf "source protocol: eps-agreement, eps = 1/%d, unbounded registers\n"
    (Core.Baseline_unbounded.denominator ~rounds);
  Printf.printf "compiled registers: %d bits (= 3(t+1))\n\n"
    (Msgpass.Pipeline.register_bits ~t ~chunk:1);

  let ring = Msgpass.Topology.augmented_ring ~n ~t in
  Printf.printf "t-augmented ring, successors per node:\n";
  for i = 0 to n - 1 do
    Printf.printf "  %d -> %s\n" i
      (String.concat ", "
         (List.map string_of_int (Msgpass.Topology.successors ring i)))
  done;
  Printf.printf "ring stays connected under any %d faults: %b\n\n" t
    (Msgpass.Topology.survivor_connected ring ~faults:t);

  let value = W.list_codec (W.pair_codec W.int_codec W.rational_codec) in
  let algorithm =
    Msgpass.Pipeline.algorithm ~n ~t ~value ~input:W.int_codec ~init:[]
      ~source:(fun ~pid ~input ->
        Core.Baseline_unbounded.protocol ~n ~rounds ~me:pid ~input)
      ~name:"pipeline" ()
  in
  let inputs = [| 0; 1; 1; 0; 1 |] in
  Printf.printf "one run with inputs (%s), two processes crashing:\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int inputs)));
  let rng = Bits.Rng.make 7 in
  let state =
    H.run_once algorithm ~inputs
      ~schedule:(`Random (rng, [ (1, 5_000); (4, 60_000) ]))
      ~max_steps:40_000_000 ()
  in
  Array.iteri
    (fun pid d ->
      match d with
      | Some v ->
          Format.printf "  process %d decides %a (%d register steps)@\n" pid
            Q.pp v
            (Sched.Scheduler.steps_of state pid)
      | None -> Format.printf "  process %d crashed@\n" pid)
    (Sched.Scheduler.decisions state);
  Printf.printf "widest register value observed: %d bits\n"
    (Sched.Memory.max_bits_written (Sched.Scheduler.memory state));
  let task =
    Tasks.Eps_agreement.task ~n
      ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  (match
     Tasks.Task.check task ~inputs
       ~outputs:(Sched.Scheduler.decisions state)
   with
  | Ok () -> Printf.printf "outputs legal for the task: yes\n"
  | Error e -> Printf.printf "VIOLATION: %s\n" e)
