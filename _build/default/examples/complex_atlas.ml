(* An atlas of the paper's combinatorial objects, plus the adversary that
   realizes Algorithm 1's worst case.

   Writes Graphviz files under ./atlas/ (render with `dot -Tsvg`):
     - labelling-r3.dot   the chromatic path of Lemma 8.1 (28 labels)
     - pruned-d2-r4.dot   the Delta-pruned complex of Algorithm 6
     - renaming3.dot      the output graph of the renaming task
     - hull.dot           the output graph of ternary hull-agreement

   Run with: dune exec examples/complex_atlas.exe *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)

let () =
  (try Unix.mkdir "atlas" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file "atlas/labelling-r3.dot"
    (Experiments.Viz.labelling_path ~rounds:3);
  write_file "atlas/pruned-d2-r4.dot"
    (Experiments.Viz.pruned_path ~delta:2 ~rounds:4);
  write_file "atlas/renaming3.dot"
    (Experiments.Viz.bmz_graph Tasks.Gallery.renaming3);
  write_file "atlas/hull.dot"
    (Experiments.Viz.bmz_graph Tasks.Gallery.hull_agreement);

  (* The lockstep adversary vs a fair random schedule on Algorithm 1: the
     worst case is a strategy, not an accident. *)
  let k = 12 in
  let algorithm = Core.Alg1_one_bit.algorithm ~k in
  let fresh () =
    Sched.Scheduler.start
      ~memory:(algorithm.Tasks.Harness.memory ())
      ~programs:(fun pid -> algorithm.Tasks.Harness.program ~pid ~input:pid)
      ()
  in
  let lockstep = fresh () in
  Sched.Adversary.run Sched.Adversary.lockstep lockstep;
  let random = fresh () in
  Sched.Scheduler.run_random (Bits.Rng.make 5) random;
  Printf.printf
    "\nAlgorithm 1 (k = %d, bound 2k+3 = %d steps):\n\
    \  lockstep adversary: %d steps per process\n\
    \  fair random schedule: %d steps (desynchronizes early)\n"
    k
    ((2 * k) + 3)
    (Sched.Scheduler.steps_of lockstep 0)
    (max (Sched.Scheduler.steps_of random 0) (Sched.Scheduler.steps_of random 1))
