(* Theorem 1.1: the pigeonhole adversary at work.

   Two processes running any bounded-register protocol leave one of at most
   2^(2s) register words behind; a third process waking up afterwards must
   decide from that word alone. This example enumerates all executions of
   Algorithm 1, buckets them by final register word, and shows the widest
   bucket: whatever the third process decides, it is 3/2 eps away from a
   value it must match (the theorem's floor is eps).

   Run with: dune exec examples/lower_bound_hunt.exe *)

module Q = Bits.Rational
module LB = Core.Lower_bound

let show proto =
  let a = LB.analyse proto in
  Format.printf "--- %s (%d-bit registers) ---@\n" proto.LB.name proto.LB.bits;
  Format.printf "  executions with inputs (0,1): %d@\n" a.LB.executions;
  Format.printf "  distinct final register words: %d (<= 2^%d = %d)@\n"
    a.LB.distinct_words (2 * proto.LB.bits)
    (1 lsl (2 * proto.LB.bits));
  List.iteri
    (fun i (bucket : _ LB.bucket) ->
      if i < 3 then begin
        let w0, w1 = bucket.LB.word in
        Format.printf "  word (%a, %a): spread %a from decision pairs "
          proto.LB.pp_value w0 proto.LB.pp_value w1 Q.pp bucket.LB.spread;
        List.iteri
          (fun j (a, b) ->
            if j < 4 then Format.printf "(%a,%a) " Q.pp a Q.pp b)
          bucket.LB.outputs;
        Format.printf "@\n"
      end)
    a.LB.buckets;
  Format.printf "  unavoidable third-process error: %a@\n@\n" Q.pp
    (LB.third_process_error a)

let () =
  Format.printf
    "Pigeonhole adversary (Section 4): bucketing executions by register \
     word@\n@\n";
  List.iter (fun k -> show (LB.alg1_protocol ~k)) [ 2; 3; 4 ];
  List.iter
    (fun bits -> show (LB.quantized_protocol ~bits ~rounds:3))
    [ 2; 3; 4 ];
  Format.printf
    "Theorem 1.1 thresholds (n = 3, t = 2): eps below which no protocol \
     can work:@\n";
  List.iter
    (fun bits ->
      Format.printf "  s = %d bits: eps < %a@\n" bits Q.pp
        (LB.epsilon_threshold ~bits ~n:3 ~t:2))
    [ 1; 2; 3; 4 ]
