type ('v, 'a) t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) t)
