(** The shared program shape of the iterated models: decide, or write one
    value into the current round's memory and continue on the view obtained
    back (an immediate snapshot in {!Iis}, a collect in {!Ic}). *)

type ('v, 'a) t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) t)
