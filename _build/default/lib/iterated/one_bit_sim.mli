(** Algorithm 4: simulating a full-information iterated-collect protocol in
    the IIS model with {e 1-bit} registers (Proposition 7.1, the heart of
    Theorem 1.4).

    The trick: both parties can precompute the finite, round-ordered list
    [C = C^0, C^1, ..., C^k] of all reachable IC configurations (the task has
    finitely many inputs). Simulating IC round [r] then takes [|C^(r-1)|]
    IIS iterations, one per candidate configuration [c]: a process writes
    bit 1 exactly in the iteration whose configuration's own entry equals its
    current simulated view, and whoever it observes writing 1 in iteration
    [rho] must hold view [c_rho[j]] — so views travel through memory indices,
    not register contents. *)

type 'i configuration = 'i Full_info.view array

type 'i table
(** The precomputed configuration lists for a given process count, round
    count, and input set. *)

val build_table :
  n:int ->
  rounds:int ->
  inputs:'i array list ->
  equal_input:('i -> 'i -> bool) ->
  'i table
(** [C^0] is the given list of input configurations; [C^(r+1)] extends every
    configuration of [C^r] by every realizable sees matrix. Sizes grow as
    [|C^0| * 25^r] already for three processes — keep [rounds] small. *)

val reachable : 'i table -> round:int -> 'i configuration list
(** [C^round]. @raise Invalid_argument when [round] exceeds the table. *)

val total_iterations : 'i table -> int
(** IIS rounds the simulation takes: [|C^0| + ... + |C^(k-1)|]. *)

val is_reachable :
  'i table -> round:int -> 'i Full_info.view option array -> bool
(** Membership in [C^round] modulo view equality, for possibly partial
    configurations: [None] entries (crashed or unobserved processes) match
    anything. *)

val protocol :
  table:'i table ->
  me:int ->
  input:'i ->
  decide:('i Full_info.view -> 'a) ->
  (int, 'a) Proto.t
(** The 1-bit IIS program of process [me]: writes only 0 or 1, runs
    [total_iterations table] IIS rounds, and decides [decide view] on the
    simulated final full-information view. *)
