type 'i configuration = 'i Full_info.view array

type 'i table = {
  n : int;
  rounds : int;
  per_round : 'i configuration array array;  (** index r holds C^r *)
  equal_input : 'i -> 'i -> bool;
}

let extend ~n ~matrices configs =
  List.concat_map
    (fun (c : _ configuration) ->
      List.map
        (fun sees ->
          Array.init n (fun i ->
              Full_info.Observed
                {
                  pid = i;
                  seen =
                    Array.init n (fun j ->
                        if sees.(i).(j) then Some c.(j) else None);
                }))
        matrices)
    configs

let build_table ~n ~rounds ~inputs ~equal_input =
  let matrices = Ic.all_matrices ~n ~participants:(List.init n (fun i -> i)) in
  let c0 =
    List.map
      (fun input ->
        Array.init n (fun i ->
            Full_info.Input { pid = i; value = input.(i) }))
      inputs
  in
  let rec levels acc current r =
    if r > rounds then List.rev acc
    else
      let next = extend ~n ~matrices current in
      levels (next :: acc) next (r + 1)
  in
  let per_round =
    List.map Array.of_list (levels [ c0 ] c0 1) |> Array.of_list
  in
  { n; rounds; per_round; equal_input }

let reachable t ~round =
  if round < 0 || round >= Array.length t.per_round then
    invalid_arg "One_bit_sim.reachable: round out of range";
  Array.to_list t.per_round.(round)

let total_iterations t =
  let sum = ref 0 in
  for r = 0 to t.rounds - 1 do
    sum := !sum + Array.length t.per_round.(r)
  done;
  !sum

let is_reachable t ~round partial =
  let eq = Full_info.equal t.equal_input in
  if round < 0 || round >= Array.length t.per_round then
    invalid_arg "One_bit_sim.is_reachable: round out of range";
  Array.exists
    (fun c ->
      Array.for_all (fun ok -> ok)
        (Array.mapi
           (fun i entry ->
             match entry with None -> true | Some v -> eq v c.(i))
           partial))
    t.per_round.(round)

let protocol ~table ~me ~input ~decide =
  let n = table.n in
  let eq = Full_info.equal table.equal_input in
  let rec round r current_view =
    if r > table.rounds then Proto.Decide (decide current_view)
    else
      let configs = table.per_round.(r - 1) in
      (* [acc] maps pids to the round-(r-1) view each was observed holding;
         threaded functionally so exploration forks stay independent. *)
      let rec iterations idx acc =
        if idx = Array.length configs then
          let seen = Array.init n (fun j -> List.assoc_opt j acc) in
          round (r + 1) (Full_info.Observed { pid = me; seen })
        else
          let c = configs.(idx) in
          let bit = if eq c.(me) current_view then 1 else 0 in
          Proto.Round
            ( bit,
              fun snap ->
                let acc =
                  List.fold_left
                    (fun acc j ->
                      match snap.(j) with
                      | Some 1 when not (List.mem_assoc j acc) ->
                          (j, c.(j)) :: acc
                      | Some _ | None -> acc)
                    acc
                    (List.init n (fun j -> j))
                in
                iterations (idx + 1) acc )
      in
      iterations 0 []
  in
  round 1 (Full_info.Input { pid = me; value = input })
