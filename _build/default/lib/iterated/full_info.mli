(** Full-information protocols (Algorithm 3): every round, write everything
    learned so far; the view after round [r] is the vector of round-[r-1]
    views observed.

    Views are the values the unbounded-register iterated models manipulate;
    both {!Iis} and {!Ic} run the same generic program, differing only in
    which vectors the model hands back. Decision maps from final views to
    outputs are supplied by the task being solved. *)

type 'i view =
  | Input of { pid : int; value : 'i }  (** the view "before round 1" *)
  | Observed of { pid : int; seen : 'i view Views.vector }
      (** the view after one more round: what the round returned *)

val pid : 'i view -> int
val equal : ('i -> 'i -> bool) -> 'i view -> 'i view -> bool
val pp : (Format.formatter -> 'i -> unit) -> Format.formatter -> 'i view -> unit

val depth : 'i view -> int
(** Number of rounds baked into the view (0 for [Input]). *)

val inputs_seen : 'i view -> (int * 'i) list
(** All (pid, input) pairs transitively visible in the view, deduplicated by
    pid, ascending. *)

val protocol :
  rounds:int -> me:int -> input:'i -> decide:('i view -> 'a) ->
  ('i view, 'a) Proto.t
(** [rounds] write/view iterations, then [Decide (decide final_view)]. Runs
    in either model. *)

val replay :
  make:(pid:int -> input:'i -> ('v, 'a) Proto.t) ->
  'i view ->
  ('v, 'a) Proto.t
(** The "w.l.o.g. full information" lemma, executable: the local state of a
    deterministic protocol is a function of the full-information view. [make]
    gives each process's program from its input; [replay] reconstructs,
    recursively, what every observed process wrote in every round, and
    returns the caller's program state after [depth view] rounds.
    @raise Invalid_argument if the view outlives the protocol (a process
    observed after it decided). *)

val unbounded : 'i view Bits.Width.measure
(** Views are the unbounded-register baseline; they are never bit-checked. *)
