(** The iterated collect (IC) model: per round each process writes its
    register of [M_r] and then reads the [n] registers one by one in an
    arbitrary order.

    A round's outcome is fully described by its {e sees matrix}:
    [sees.(i).(j)] tells whether [i]'s read of [j]'s register returned the
    written value. A matrix is realizable by some interleaving iff it is
    reflexive on participants (a process finds its own write) and its
    {e misses} relation — [i] missed [j] — is acyclic: [i] missing [j] means
    [i]'s read of [j] preceded [j]'s write, which itself precedes all of
    [j]'s reads, so the misses order embeds in the write order.
    [matrices_by_interleaving] re-derives the same set by brute-force
    scheduling, and the test suite checks both agree. *)

type ('v, 'a) program = ('v, 'a) Proto.t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) program)

val all_matrices : n:int -> participants:int list -> bool array array list
(** Every realizable sees matrix for one round ([n x n]; rows and columns of
    non-participants are all-false). 3 matrices for two participants, 25 for
    three. *)

val matrices_by_interleaving :
  n:int -> participants:int list -> bool array array list
(** The same set derived operationally: enumerate every interleaving of the
    participants' writes and single-register reads (reads in every possible
    order) and collect the distinct outcomes. Exponential — for tests with
    at most 3 participants. *)

type round_plan = {
  survivors : int list;  (** participants that execute this round *)
  sees : bool array array;
}
(** Participants not in [survivors] crash before writing this round. *)

type 'a outcome = {
  decisions : 'a option array;
  rounds_taken : int array;
  max_bits : int;
  history : bool array array list;  (** sees matrix of each round *)
}

val run :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  schedule:(round:int -> participants:int list -> round_plan) ->
  ?max_rounds:int ->
  unit ->
  'a outcome

val run_random :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  rng:Bits.Rng.t ->
  ?crash_probability:float ->
  ?max_rounds:int ->
  unit ->
  'a outcome

val enumerate :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  max_rounds:int ->
  ('a outcome -> unit) ->
  unit
(** Every crash-free execution (all realizable matrices each round). *)
