(** Algorithm 5: the Borowsky–Gafni immediate-snapshot construction, adapted
    to the iterated collect model (Proposition 7.2).

    One IS round is simulated by [n] IC iterations. In each iteration every
    process writes its round input together with a flag saying whether it
    already holds a snapshot; a process whose collect shows exactly
    [n + 1 - rho] flagless entries at iteration [rho] adopts them as its
    snapshot. The snapshots obtained are nested, contain their owners, and
    satisfy immediacy — the IS properties — so a whole IIS protocol can be
    transported into IC by expanding every round. *)

val simulate : n:int -> ('v, 'a) Proto.t -> ('v * bool, 'a) Proto.t
(** [simulate ~n prog] runs the IIS program [prog] in the IC model: each of
    its rounds becomes [n] IC rounds of Algorithm 5. A process that obtains
    its snapshot early keeps writing (flagged) through the remaining
    iterations so that all processes stay aligned on memory indices. *)

val measure :
  'v Bits.Width.measure -> ('v * bool) Bits.Width.measure
(** Width of the simulation's register contents: payload plus the flag
    bit. *)
