type ('v, 'a) program = ('v, 'a) Proto.t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) program)

type partition = int list list

(* All ordered partitions: insert each element either into an existing block
   or as a new singleton block at every position. *)
let ordered_partitions elements =
  let insert_everywhere x partition =
    let rec positions prefix = function
      | [] -> [ List.rev ([ x ] :: prefix) ]
      | block :: rest ->
          List.rev_append prefix (((x :: block) :: rest))
          :: List.rev_append prefix ([ x ] :: block :: rest)
          :: positions (block :: prefix) rest
    in
    positions [] partition
  in
  List.fold_left
    (fun partitions x ->
      List.concat_map (insert_everywhere x) partitions)
    [ [] ] elements
  |> List.map (List.map (List.sort compare))

type 'a outcome = {
  decisions : 'a option array;
  rounds_taken : int array;
  max_bits : int;
  history : partition list;
}

type ('v, 'a) state = {
  progs : ('v, 'a) program array;
  alive : bool array;  (** false once crashed *)
  rounds : int array;
  mutable bits : int;
  mutable past : partition list;  (** newest first *)
}

let initial_state ~n ~programs =
  {
    progs = Array.init n programs;
    alive = Array.make n true;
    rounds = Array.make n 0;
    bits = 0;
    past = [];
  }

let copy_state s =
  {
    progs = Array.copy s.progs;
    alive = Array.copy s.alive;
    rounds = Array.copy s.rounds;
    bits = s.bits;
    past = s.past;
  }

let participants s =
  let acc = ref [] in
  for pid = Array.length s.progs - 1 downto 0 do
    (match s.progs.(pid) with
    | Round _ when s.alive.(pid) -> acc := pid :: !acc
    | Round _ | Decide _ -> ())
  done;
  !acc

let decisions_of s =
  Array.map (function Decide v -> Some v | Round _ -> None) s.progs

let outcome_of s =
  {
    decisions = decisions_of s;
    rounds_taken = Array.copy s.rounds;
    max_bits = s.bits;
    history = List.rev s.past;
  }

(* Execute one round under the given ordered partition. Participants omitted
   from the partition crash. *)
let exec_round ~budget ~measure s partition =
  let n = Array.length s.progs in
  let current = participants s in
  let in_partition = List.concat partition in
  List.iter
    (fun pid ->
      if not (List.mem pid in_partition) then s.alive.(pid) <- false)
    current;
  List.iter
    (fun pid ->
      if not (List.mem pid current) then
        invalid_arg
          (Printf.sprintf "Iis: pid %d scheduled but not a participant" pid))
    in_partition;
  let memory : 'v option array = Array.make n None in
  let continuations = Array.make n None in
  List.iter
    (fun block ->
      (* Whole block writes... *)
      List.iter
        (fun pid ->
          match s.progs.(pid) with
          | Decide _ -> assert false
          | Round (v, k) ->
              let bits = measure v in
              Bits.Width.check budget bits;
              if bits > s.bits then s.bits <- bits;
              memory.(pid) <- Some v;
              continuations.(pid) <- Some k)
        block;
      (* ... then the whole block snapshots. *)
      let snap = Array.copy memory in
      List.iter
        (fun pid ->
          match continuations.(pid) with
          | None -> assert false
          | Some k ->
              s.progs.(pid) <- k snap;
              s.rounds.(pid) <- s.rounds.(pid) + 1)
        block)
    partition;
  s.past <- partition :: s.past

let run ~n ~budget ~measure ~programs ~schedule ?(max_rounds = 10_000) () =
  let s = initial_state ~n ~programs in
  let rec loop round =
    if round > max_rounds then outcome_of s
    else
      match participants s with
      | [] -> outcome_of s
      | procs ->
          let partition = schedule ~round ~participants:procs in
          exec_round ~budget ~measure s partition;
          loop (round + 1)
  in
  loop 1

let random_partition rng participants =
  let all = ordered_partitions participants in
  Bits.Rng.pick rng all

let run_random ~n ~budget ~measure ~programs ~rng ?(crash_probability = 0.)
    ?max_rounds () =
  let schedule ~round:_ ~participants =
    let survivors =
      match
        List.filter
          (fun _ -> Bits.Rng.float rng >= crash_probability)
          participants
      with
      | [] -> [ List.nth participants 0 ]  (* keep at least one alive *)
      | l -> l
    in
    random_partition rng survivors
  in
  run ~n ~budget ~measure ~programs ~schedule ?max_rounds ()

let enumerate ~n ~budget ~measure ~programs ~max_rounds visit =
  let rec go s round =
    match participants s with
    | [] -> visit (outcome_of s)
    | procs ->
        if round > max_rounds then visit (outcome_of s)
        else
          List.iter
            (fun partition ->
              let fork = copy_state s in
              exec_round ~budget ~measure fork partition;
              go fork (round + 1))
            (ordered_partitions procs)
  in
  go (initial_state ~n ~programs) 1
