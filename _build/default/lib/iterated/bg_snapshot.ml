let measure measure_v (v, flag) = measure_v v + Bits.Width.bit flag

let rec simulate ~n prog =
  match prog with
  | Proto.Decide a -> Proto.Decide a
  | Proto.Round (x, k) ->
      (* Once the snapshot is obtained, keep writing (flagged) so every
         process advances through the same n memories. *)
      let rec pad rho snapshot =
        if rho > n then simulate ~n (k snapshot)
        else Proto.Round ((x, true), fun _ -> pad (rho + 1) snapshot)
      in
      let rec iterate rho =
        Proto.Round
          ( (x, false),
            fun view ->
              let fresh =
                List.filter_map
                  (fun j ->
                    match view.(j) with
                    | Some (xj, false) -> Some (j, xj)
                    | Some (_, true) | None -> None)
                  (List.init n (fun j -> j))
              in
              if List.length fresh = n + 1 - rho then begin
                let snapshot = Array.make n None in
                List.iter (fun (j, xj) -> snapshot.(j) <- Some xj) fresh;
                pad (rho + 1) snapshot
              end
              else if rho = n then
                (* The invariant "at most n+1-rho processes lack a snapshot
                   at iteration rho" makes the threshold 1 test succeed at
                   rho = n: the collect always contains the caller's own
                   flagless entry. *)
                assert false
              else iterate (rho + 1) )
      in
      iterate 1
