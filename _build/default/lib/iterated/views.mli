(** Round views and their structural properties (Section 7 preliminaries).

    A view is an n-entry vector whose entries are either [None] (the paper's
    bottom) or a written value. The paper's containment order and the four
    properties distinguishing snapshot from collect outcomes are checked
    here; the experiments use them both as test oracles and as the
    specification the Borowsky–Gafni simulation must meet. *)

type 'v vector = 'v option array

val subseteq : equal:('v -> 'v -> bool) -> 'v vector -> 'v vector -> bool
(** [subseteq v v']: every defined entry of [v] is defined and equal in
    [v']. *)

val subset : equal:('v -> 'v -> bool) -> 'v vector -> 'v vector -> bool
(** Strict containment (the paper's [v ⊂ v']). *)

val validity : equal:('v -> 'v -> bool) -> written:'v array -> 'v vector array -> bool
(** Every defined entry [v_i[j]] equals the value [written.(j)]. *)

val self_containment : 'v vector array -> bool
(** [v_i[i]] is defined for every [i]. *)

val inclusion : equal:('v -> 'v -> bool) -> 'v vector array -> bool
(** Any two views are comparable under containment — snapshots only. *)

val immediacy : equal:('v -> 'v -> bool) -> 'v vector array -> bool
(** If [v_i[j]] is defined then [v_j ⊆ v_i] — immediate snapshots only. *)

val write_order_consistency :
  equal:('v -> 'v -> bool) -> written:'v array -> order:int list ->
  'v vector array -> bool
(** The collect property of Section 7: under the given write order, a
    process that wrote earlier is seen by every later writer —
    [order = [i; j; ...]] meaning [i] wrote first. *)

val consistent_with_some_order :
  equal:('v -> 'v -> bool) -> written:'v array -> 'v vector array -> bool
(** Some write order satisfies {!write_order_consistency} — the semantic
    test that a family of views is a possible collect outcome (checked by
    enumerating permutations; use for small n). *)

val support : 'v vector -> int list
(** Indices of defined entries, ascending. *)

val pp :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v vector -> unit
