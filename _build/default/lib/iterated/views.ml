type 'v vector = 'v option array

let subseteq ~equal v v' =
  let n = Array.length v in
  let rec loop i =
    i = n
    ||
    (match (v.(i), v'.(i)) with
    | None, _ -> loop (i + 1)
    | Some x, Some y -> equal x y && loop (i + 1)
    | Some _, None -> false)
  in
  Array.length v' = n && loop 0

let subset ~equal v v' =
  subseteq ~equal v v' && not (subseteq ~equal v' v)

let validity ~equal ~written views =
  Array.for_all
    (fun view ->
      Array.length view = Array.length written
      && Array.for_all (fun ok -> ok)
           (Array.mapi
              (fun j entry ->
                match entry with
                | None -> true
                | Some x -> equal x written.(j))
              view))
    views

let self_containment views =
  Array.for_all (fun ok -> ok)
    (Array.mapi (fun i view -> view.(i) <> None) views)

let inclusion ~equal views =
  Array.for_all
    (fun v ->
      Array.for_all (fun v' -> subseteq ~equal v v' || subseteq ~equal v' v)
        views)
    views

let immediacy ~equal views =
  Array.for_all (fun ok -> ok)
    (Array.mapi
       (fun _ v ->
         Array.for_all (fun ok -> ok)
           (Array.mapi
              (fun j entry ->
                match entry with
                | None -> true
                | Some _ -> subseteq ~equal views.(j) v)
              v))
       views)

let write_order_consistency ~equal ~written ~order views =
  let position = Hashtbl.create 8 in
  List.iteri (fun idx pid -> Hashtbl.replace position pid idx) order;
  let pos pid = Hashtbl.find position pid in
  List.for_all
    (fun i ->
      List.for_all
        (fun j ->
          (not (pos i < pos j))
          ||
          match views.(j).(i) with
          | Some x -> equal x written.(i)
          | None -> false)
        order)
    order

let consistent_with_some_order ~equal ~written views =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (permutations (List.filter (fun y -> y <> x) l)))
          l
  in
  let pids = List.init (Array.length views) (fun i -> i) in
  List.exists
    (fun order -> write_order_consistency ~equal ~written ~order views)
    (permutations pids)

let support v =
  Array.to_list v
  |> List.mapi (fun i entry -> (i, entry))
  |> List.filter_map (fun (i, entry) ->
         match entry with Some _ -> Some i | None -> None)

let pp pp_v ppf v =
  let pp_entry ppf = function
    | None -> Format.pp_print_string ppf "_"
    | Some x -> pp_v ppf x
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_entry)
    (Array.to_seq v)
