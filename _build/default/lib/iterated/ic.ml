type ('v, 'a) program = ('v, 'a) Proto.t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) program)

(* Acyclicity of the misses digraph (edge i -> j when i missed j), checked
   by repeatedly removing sinks. *)
let misses_acyclic ~participants sees =
  let misses i j = (not sees.(i).(j)) && i <> j in
  let rec strip remaining =
    match remaining with
    | [] -> true
    | _ ->
        let is_source i =
          List.for_all (fun j -> not (misses j i)) remaining
        in
        (match List.partition is_source remaining with
        | [], _ -> false (* every node has an incoming miss: a cycle *)
        | _, rest -> strip rest)
  in
  strip participants

let all_matrices ~n ~participants =
  let others i = List.filter (fun j -> j <> i) participants in
  (* Enumerate each row's subset of seen peers. *)
  let rec rows = function
    | [] -> [ [] ]
    | i :: rest ->
        let rest_rows = rows rest in
        let subsets =
          List.fold_left
            (fun acc j ->
              List.concat_map (fun s -> [ j :: s; s ]) acc)
            [ [] ] (others i)
        in
        List.concat_map
          (fun seen -> List.map (fun tl -> (i, seen) :: tl) rest_rows)
          subsets
  in
  rows participants
  |> List.filter_map (fun assignment ->
         let sees = Array.make_matrix n n false in
         List.iter
           (fun (i, seen) ->
             sees.(i).(i) <- true;
             List.iter (fun j -> sees.(i).(j) <- true) seen)
           assignment;
         if misses_acyclic ~participants sees then Some sees else None)

(* Operational re-derivation: DFS over every interleaving of writes and
   per-register reads (a process may read pending registers in any order). *)
let matrices_by_interleaving ~n ~participants =
  let module M = struct
    type proc = { wrote : bool; pending : int list; seen : int list }
  end in
  let open M in
  let results : bool array array list ref = ref [] in
  let record procs =
    let sees = Array.make_matrix n n false in
    List.iter
      (fun (i, p) ->
        sees.(i).(i) <- true;
        List.iter (fun j -> sees.(i).(j) <- true) p.seen)
      procs;
    if not (List.exists (fun m -> m = sees) !results) then
      results := sees :: !results
  in
  let rec go procs written =
    let moves =
      List.concat_map
        (fun (i, p) ->
          if not p.wrote then [ `Write i ]
          else List.map (fun j -> `Read (i, j)) p.pending)
        procs
    in
    if moves = [] then record procs
    else
      List.iter
        (fun move ->
          match move with
          | `Write i ->
              let procs =
                List.map
                  (fun (i', p) ->
                    if i' = i then (i', { p with wrote = true }) else (i', p))
                  procs
              in
              go procs (i :: written)
          | `Read (i, j) ->
              let procs =
                List.map
                  (fun (i', p) ->
                    if i' = i then
                      ( i',
                        {
                          p with
                          pending = List.filter (fun x -> x <> j) p.pending;
                          seen =
                            (if List.mem j written then j :: p.seen
                             else p.seen);
                        } )
                    else (i', p))
                  procs
              in
              go procs written)
        moves
  in
  let others i = List.filter (fun j -> j <> i) participants in
  go
    (List.map
       (fun i -> (i, { wrote = false; pending = others i; seen = [] }))
       participants)
    [];
  !results

type round_plan = { survivors : int list; sees : bool array array }

type 'a outcome = {
  decisions : 'a option array;
  rounds_taken : int array;
  max_bits : int;
  history : bool array array list;
}

type ('v, 'a) state = {
  progs : ('v, 'a) program array;
  alive : bool array;
  rounds : int array;
  mutable bits : int;
  mutable past : bool array array list;
}

let initial_state ~n ~programs =
  {
    progs = Array.init n programs;
    alive = Array.make n true;
    rounds = Array.make n 0;
    bits = 0;
    past = [];
  }

let copy_state s =
  {
    progs = Array.copy s.progs;
    alive = Array.copy s.alive;
    rounds = Array.copy s.rounds;
    bits = s.bits;
    past = s.past;
  }

let participants s =
  let acc = ref [] in
  for pid = Array.length s.progs - 1 downto 0 do
    (match s.progs.(pid) with
    | Round _ when s.alive.(pid) -> acc := pid :: !acc
    | Round _ | Decide _ -> ())
  done;
  !acc

let outcome_of s =
  {
    decisions =
      Array.map (function Decide v -> Some v | Round _ -> None) s.progs;
    rounds_taken = Array.copy s.rounds;
    max_bits = s.bits;
    history = List.rev s.past;
  }

let exec_round ~budget ~measure s { survivors; sees } =
  let n = Array.length s.progs in
  let current = participants s in
  List.iter
    (fun pid ->
      if not (List.mem pid survivors) then s.alive.(pid) <- false)
    current;
  let writes = Array.make n None in
  let conts = Array.make n None in
  List.iter
    (fun pid ->
      match s.progs.(pid) with
      | Decide _ ->
          invalid_arg
            (Printf.sprintf "Ic: pid %d scheduled but already decided" pid)
      | Round (v, k) ->
          let bits = measure v in
          Bits.Width.check budget bits;
          if bits > s.bits then s.bits <- bits;
          writes.(pid) <- Some v;
          conts.(pid) <- Some k)
    survivors;
  List.iter
    (fun pid ->
      let view =
        Array.init n (fun j -> if sees.(pid).(j) then writes.(j) else None)
      in
      match conts.(pid) with
      | None -> assert false
      | Some k ->
          s.progs.(pid) <- k view;
          s.rounds.(pid) <- s.rounds.(pid) + 1)
    survivors;
  s.past <- sees :: s.past

let run ~n ~budget ~measure ~programs ~schedule ?(max_rounds = 10_000) () =
  let s = initial_state ~n ~programs in
  let rec loop round =
    if round > max_rounds then outcome_of s
    else
      match participants s with
      | [] -> outcome_of s
      | procs ->
          exec_round ~budget ~measure s (schedule ~round ~participants:procs);
          loop (round + 1)
  in
  loop 1

let run_random ~n ~budget ~measure ~programs ~rng ?(crash_probability = 0.)
    ?max_rounds () =
  let schedule ~round:_ ~participants =
    let survivors =
      match
        List.filter
          (fun _ -> Bits.Rng.float rng >= crash_probability)
          participants
      with
      | [] -> [ List.nth participants 0 ]
      | l -> l
    in
    let sees = Bits.Rng.pick rng (all_matrices ~n ~participants:survivors) in
    { survivors; sees }
  in
  run ~n ~budget ~measure ~programs ~schedule ?max_rounds ()

let enumerate ~n ~budget ~measure ~programs ~max_rounds visit =
  let rec go s round =
    match participants s with
    | [] -> visit (outcome_of s)
    | procs ->
        if round > max_rounds then visit (outcome_of s)
        else
          List.iter
            (fun sees ->
              let fork = copy_state s in
              exec_round ~budget ~measure fork { survivors = procs; sees };
              go fork (round + 1))
            (all_matrices ~n ~participants:procs)
  in
  go (initial_state ~n ~programs) 1
