(** Binary epsilon-agreement in the iterated models: write the current
    estimate, move to the midpoint of the estimates seen.

    In the IIS model the views of one round are totally ordered by
    containment, so midpoints of nested sets are within half of the round's
    spread: [rounds] rounds give agreement within [1/2^rounds] for any
    number of processes. (In the IC model the nesting argument needs n = 2.)
    This is the unbounded-register protocol whose 1-bit simulation realizes
    Theorem 1.4 end-to-end. *)

module Q := Bits.Rational

val protocol : rounds:int -> input:int -> (Q.t, Q.t) Proto.t
(** Estimates are exact rationals on the grid [m / 2^rounds]. *)

val denominator : rounds:int -> int
(** [2^rounds]. *)

val decide_from_view : rounds:int -> int Full_info.view -> Q.t
(** The same computation as a decision map on full-information views (via
    {!Full_info.replay}) — what Algorithm 3's [decide] is for this task. *)
