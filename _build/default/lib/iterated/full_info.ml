type 'i view =
  | Input of { pid : int; value : 'i }
  | Observed of { pid : int; seen : 'i view Views.vector }

let pid = function Input { pid; _ } -> pid | Observed { pid; _ } -> pid

let rec equal eq_i a b =
  match (a, b) with
  | Input a, Input b -> a.pid = b.pid && eq_i a.value b.value
  | Observed a, Observed b ->
      a.pid = b.pid
      && Array.length a.seen = Array.length b.seen
      && Array.for_all (fun ok -> ok)
           (Array.mapi
              (fun j entry ->
                match (entry, b.seen.(j)) with
                | None, None -> true
                | Some x, Some y -> equal eq_i x y
                | None, Some _ | Some _, None -> false)
              a.seen)
  | Input _, Observed _ | Observed _, Input _ -> false

let rec pp pp_i ppf = function
  | Input { pid; value } -> Format.fprintf ppf "p%d:%a" pid pp_i value
  | Observed { pid; seen } ->
      Format.fprintf ppf "p%d:%a" pid (Views.pp (pp pp_i)) seen

let rec depth = function
  | Input _ -> 0
  | Observed { seen; _ } ->
      let deepest =
        Array.fold_left
          (fun acc entry ->
            match entry with None -> acc | Some v -> max acc (depth v))
          0 seen
      in
      deepest + 1

let inputs_seen view =
  let rec collect acc = function
    | Input { pid; value } ->
        if List.mem_assoc pid acc then acc else (pid, value) :: acc
    | Observed { seen; _ } ->
        Array.fold_left
          (fun acc entry ->
            match entry with None -> acc | Some v -> collect acc v)
          acc seen
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (collect [] view)

let protocol ~rounds ~me ~input ~decide =
  let rec go r view =
    if r > rounds then Proto.Decide (decide view)
    else
      Proto.Round
        (view, fun seen -> go (r + 1) (Observed { pid = me; seen }))
  in
  go 1 (Input { pid = me; value = input })

let rec replay ~make view =
  match view with
  | Input { pid; value } -> make ~pid ~input:value
  | Observed { pid; seen } -> (
      let own =
        match seen.(pid) with
        | Some prior -> prior
        | None -> invalid_arg "Full_info.replay: view not self-contained"
      in
      match replay ~make own with
      | Proto.Decide _ ->
          invalid_arg "Full_info.replay: process observed after deciding"
      | Proto.Round (_, k) ->
          let entry j =
            match seen.(j) with
            | None -> None
            | Some prior -> (
                match replay ~make prior with
                | Proto.Decide _ ->
                    invalid_arg
                      "Full_info.replay: process observed after deciding"
                | Proto.Round (w, _) -> Some w)
          in
          k (Array.init (Array.length seen) entry))

let unbounded = Bits.Width.unbounded
