(** The iterated immediate snapshot (IIS) model.

    Per round [r], every still-running process writes once to the fresh
    memory [M_r] and immediately snapshots it. The schedule of one round is
    an {e ordered partition} of the participants: processes in the first
    block write and snapshot seeing only that block; later blocks see all
    earlier ones plus themselves. Ordered partitions are exactly the
    immediate-snapshot executions, so enumerating them enumerates the model
    (3 per round for two processes, 13 for three — Figure 4's growth).

    Register budgets are per round: each [M_r[i]] is a separate register, so
    a 1-bit budget means every process writes one bit per round
    (Theorem 1.4's regime). *)

type ('v, 'a) program = ('v, 'a) Proto.t =
  | Decide of 'a
  | Round of 'v * ('v Views.vector -> ('v, 'a) program)
      (** write the value into this round's memory, continue on the
          immediate snapshot *)

type partition = int list list
(** Ordered partition; blocks in write order, each block a set of pids. *)

val ordered_partitions : int list -> partition list
(** All ordered partitions of a participant set (13 for 3 elements). *)

type 'a outcome = {
  decisions : 'a option array;
  rounds_taken : int array;  (** per-process rounds executed *)
  max_bits : int;  (** widest value written to any [M_r[i]] *)
  history : partition list;  (** the partition of each executed round *)
}

val run :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  schedule:(round:int -> participants:int list -> partition) ->
  ?max_rounds:int ->
  unit ->
  'a outcome
(** Rounds execute until every process decided or [max_rounds] (default
    10_000) pass. The partition returned by [schedule] may omit processes:
    omitted ones crash (take no further step, forever). Writes are checked
    against [budget]. @raise Bits.Width.Overflow accordingly. *)

val run_random :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  rng:Bits.Rng.t ->
  ?crash_probability:float ->
  ?max_rounds:int ->
  unit ->
  'a outcome
(** Uniform ordered partition each round; each round each live process
    additionally crashes with [crash_probability] (default 0), leaving at
    least one process alive. *)

val enumerate :
  n:int ->
  budget:Bits.Width.budget ->
  measure:'v Bits.Width.measure ->
  programs:(int -> ('v, 'a) program) ->
  max_rounds:int ->
  ('a outcome -> unit) ->
  unit
(** Every crash-free execution: all [P(n)^r] partition words until everyone
    decides (or [max_rounds] is hit, in which case the outcome has undecided
    processes — the visitor sees it and can fail the test). *)
