module Q = Bits.Rational

let denominator ~rounds = 1 lsl rounds

let midpoint view =
  let values =
    Array.to_list view |> List.filter_map (fun entry -> entry)
  in
  match values with
  | [] -> assert false (* self-containment: own estimate always present *)
  | v :: vs ->
      let lo = List.fold_left Q.min v vs and hi = List.fold_left Q.max v vs in
      Q.mul Q.half (Q.add lo hi)

let protocol ~rounds ~input =
  let rec go r est =
    if r > rounds then Proto.Decide est
    else Proto.Round (est, fun view -> go (r + 1) (midpoint view))
  in
  go 1 (Q.of_int input)

let decide_from_view ~rounds view =
  let make ~pid:_ ~input = protocol ~rounds ~input in
  match Full_info.replay ~make view with
  | Proto.Decide d -> d
  | Proto.Round _ ->
      invalid_arg "Agreement.decide_from_view: view shorter than rounds"
