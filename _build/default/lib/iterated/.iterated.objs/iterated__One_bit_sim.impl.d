lib/iterated/one_bit_sim.ml: Array Full_info Ic List Proto
