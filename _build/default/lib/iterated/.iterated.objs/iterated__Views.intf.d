lib/iterated/views.mli: Format
