lib/iterated/iis.mli: Bits Proto Views
