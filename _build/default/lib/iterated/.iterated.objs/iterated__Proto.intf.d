lib/iterated/proto.mli: Views
