lib/iterated/ic.ml: Array Bits List Printf Proto Views
