lib/iterated/full_info.ml: Array Bits Format List Proto Views
