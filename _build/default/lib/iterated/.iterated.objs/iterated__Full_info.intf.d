lib/iterated/full_info.mli: Bits Format Proto Views
