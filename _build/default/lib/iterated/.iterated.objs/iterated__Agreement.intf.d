lib/iterated/agreement.mli: Bits Full_info Proto
