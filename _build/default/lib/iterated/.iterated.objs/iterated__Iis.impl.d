lib/iterated/iis.ml: Array Bits List Printf Proto Views
