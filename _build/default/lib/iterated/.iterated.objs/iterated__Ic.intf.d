lib/iterated/ic.mli: Bits Proto Views
