lib/iterated/bg_snapshot.mli: Bits Proto
