lib/iterated/bg_snapshot.ml: Array Bits List Proto
