lib/iterated/agreement.ml: Array Bits Full_info List Proto
