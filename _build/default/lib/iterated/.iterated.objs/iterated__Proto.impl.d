lib/iterated/proto.ml: Views
