lib/iterated/views.ml: Array Format Hashtbl List
