lib/iterated/one_bit_sim.mli: Full_info Proto
