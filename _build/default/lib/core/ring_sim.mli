(** Algorithm 6: simulating executions of the 1-bit labelling protocol with
    two {e constant-size} registers (Section 8.2), and the value map on the
    pruned protocol complex that turns its labels into fast epsilon-agreement
    (Theorem 8.1).

    {b Simulation.} Each register carries a position on a ring of size
    [2 Delta + 1] (standing in for the unbounded round number) and the last
    [Delta + 1] bits written by the labelling protocol. A process estimates
    the other's round from ring movement — correct because a process that
    simulates [Delta] consecutive solo rounds {e quits}, so nobody can lap
    the ring unnoticed (Lemmas 8.3–8.5). Register size:
    [ceil(log2(2 Delta + 1)) + (Delta + 1)] bits — 6 bits for [Delta = 2].

    {b Pruned complex.} The simulation realizes exactly the IS executions in
    which no process is solo more than [Delta] rounds in a row (with forced
    solo tails once a process quits). These maximal executions are the
    leaves of a ternary tree; in reflected-ternary order they form a path of
    [executions_count] edges, which is [Omega(2^rounds)] for [Delta >= 2]
    (Lemma 8.7). [value] computes a label's position along {e that} path in
    closed form by counting leaves to its left — co-final labels always land
    exactly [1 / executions_count] apart, which is what lets
    {!Fast_agreement} reach epsilon in [O(log 1/epsilon)] steps. *)

type register = { pos : int; hist : int list }
(** Ring position and the last [Delta + 1] labelling bits, newest first. *)

val register_bits : delta:int -> int
val measure : delta:int -> register Bits.Width.measure
val initial : delta:int -> register

val protocol :
  delta:int -> rounds:int -> me:int ->
  (register, 'i, Labelling.label) Sched.Program.t
(** Run the simulation for process [me] (two processes); returns the label
    of the simulated execution at this process's exit — after [rounds]
    simulated rounds, or earlier after [Delta] consecutive solo rounds.
    [2 rounds] shared-memory steps at most.
    @raise Invalid_argument unless [delta >= 2] and [rounds >= 1]. *)

val executions_count : delta:int -> rounds:int -> int
(** Number of maximal simulated executions (leaves of the pruned tree);
    at least [2^rounds] (Lemma 8.7). *)

val value : delta:int -> rounds:int -> Labelling.label -> Bits.Rational.t
(** Position of the label's vertex along the pruned path, in [0, 1]:
    [k / executions_count] where [k] leaves lie strictly to its left. The
    two labels of any simulated execution differ by exactly
    [1 / executions_count]; the all-solo labels of processes 0 and 1 get 0
    and 1. *)
