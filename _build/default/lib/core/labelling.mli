(** A two-process 1-bit labelling protocol for the IS model (the Lemma 8.1
    ingredient of Theorem 8.1), re-derived — the paper cites [14] without
    reproducing the construction.

    {b Protocol.} In every round each process writes the {e parity of the
    number of its own solo rounds so far}; its label is its sequence of
    observations (the other's bit, or bottom when solo). This is as good as
    full information: the other's parity can only change in rounds the
    observer sees (at most one process is solo per IS round), so the
    observation sequence reconstructs the whole execution except for the
    familiar last-observation ambiguity — exactly the information a
    full-information protocol has. Hence the labels after [r] rounds are in
    bijection with the [3^r + 1] vertices of the chromatic-path protocol
    complex (verified exhaustively in the tests for r <= 7).

    {b Value map.} [value] assigns each label its position along the path,
    normalized to [0, 1]: the reflected-ternary position of the execution's
    edge, taking the endpoint colored by the label's process. It is computed
    in closed form (no enumeration), is invariant under extending the
    execution by solo rounds — which is what lets the Algorithm 6 simulation
    cut a process off after [Delta] consecutive solo rounds — and assigns 0
    and 1 to the two all-solo labels. Co-final labels get values exactly
    [1/3^r] apart. *)

type label = {
  me : int;  (** 0 or 1 *)
  obs : int option list;
      (** per round, oldest first: the other process's bit, or [None] when
          this process was solo *)
}

val rounds_of : label -> int
val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit

val protocol : rounds:int -> me:int -> (int, label) Iterated.Proto.t
(** The labelling protocol as a genuine IS program writing one bit per
    round — used to validate the construction against the real IIS model. *)

val bit : solo_parity:int -> int
(** What the protocol writes given the current solo-count parity (identity,
    exposed for the Algorithm 6 simulation which drives rounds itself). *)

type outcome = Me_solo | Other_solo | Both

val reconstruct : label -> outcome list
(** The execution as seen from the label, oldest first; the ambiguous last
    observation resolved to [Both] (the value map does not depend on the
    choice). *)

val value : label -> Bits.Rational.t
(** The path position, a multiple of [1/3^(rounds_of label)]. *)
