module P = Sched.Program
module Q = Bits.Rational
open P.Infix

type ('v, 'i) env = {
  publish_input : int -> ('v, 'i, unit) P.t;
  write_bit : int -> ('v, 'i, unit) P.t;
  read_bit : int -> ('v, 'i, int) P.t;
  read_input : int -> ('v, 'i, int option) P.t;
}

let denominator ~k = (2 * k) + 1

let protocol ~env ~k ~me ~input =
  if k < 1 then invalid_arg "Alg1_one_bit.protocol: k must be >= 1";
  if me <> 0 && me <> 1 then invalid_arg "Alg1_one_bit.protocol: me in {0,1}";
  if input <> 0 && input <> 1 then
    invalid_arg "Alg1_one_bit.protocol: input in {0,1}";
  let other = 1 - me in
  let den = denominator ~k in
  (* The for-loop of lines 3-7. Continuing to iteration r+1 requires having
     read [r mod 2], so on normal completion the line-11 test
     [new = k mod 2] is equivalent to "no break happened". Returns the exit
     iteration r and whether the loop broke at line 7. *)
  let rec sync_loop r prec =
    let* () = env.write_bit (r mod 2) in
    let* fresh = env.read_bit other in
    if fresh <> prec then
      if r = k then P.return (r, false) else sync_loop (r + 1) fresh
    else P.return (r, true)
  in
  let* () = env.publish_input input in
  let* r, broke = sync_loop 1 0 in
  let* x_me_opt = env.read_input me in
  let* x_other_opt = env.read_input other in
  let x_me =
    match x_me_opt with
    | Some x -> x
    | None -> assert false (* own input register was written first *)
  in
  match x_other_opt with
  | None -> P.return (Q.of_int x_me)
  | Some x_other when x_other = x_me -> P.return (Q.of_int x_me)
  | Some x_other ->
      if not broke then
        (* Line 14: finished all k iterations in sync. *)
        let who = if r mod 2 = 0 then x_me else x_other in
        P.return (Q.make (who + k) den)
      else
        (* Line 17: desynchronized at iteration r. *)
        let who = if r mod 2 = 0 then x_other else x_me in
        if who = 0 then P.return (Q.make (r - 1) den)
        else P.return (Q.sub Q.one (Q.make (r - 1) den))

let env_standalone =
  {
    publish_input = (fun x -> P.write_input x);
    write_bit = (fun b -> P.write b);
    read_bit = (fun j -> P.read j);
    read_input = (fun j -> P.read_input j);
  }

let algorithm ~k =
  {
    Tasks.Harness.name = Printf.sprintf "alg1-one-bit(k=%d)" k;
    memory =
      (fun () ->
        Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 1)
          ~measure:(Bits.Width.uint ~max:1) ~init:0);
    program =
      (fun ~pid ~input -> protocol ~env:env_standalone ~k ~me:pid ~input);
  }
