(** Wait-free n-process epsilon-agreement with unbounded registers
    (Lemma 2.2) — the full-information-style baseline every bounded-register
    result is measured against.

    Each register holds the process's whole history (one value per round).
    Round [r]: publish the round-[r-1] estimate, take a double-collect
    snapshot, and move to the midpoint of the round-[r-1] estimates seen.
    Because snapshots are linearizable and histories only grow, the round-[r]
    estimate sets are nested, so the diameter halves every round: after
    [rounds] rounds all estimates are within [1 / 2^rounds].

    Step complexity is [O(rounds)] per process modulo snapshot retries —
    exponentially faster than Algorithm 1 for the same epsilon, which is the
    gap Theorem 8.1 closes for constant-size registers. *)

type history = (int * Bits.Rational.t) list
(** Newest first; entry [(r, v)] is the estimate after round [r]. *)

val protocol :
  n:int -> rounds:int -> me:int -> input:int ->
  (history, int, Bits.Rational.t) Sched.Program.t
(** Decisions lie on the grid [m / 2^rounds].
    @raise Invalid_argument unless [rounds >= 0]. *)

val algorithm :
  n:int -> rounds:int -> (history, int, Bits.Rational.t) Tasks.Harness.algorithm
(** Unbounded-budget memory; solves
    [Tasks.Eps_agreement.task ~n ~k:(denominator ~rounds)]. *)

val denominator : rounds:int -> int
(** [2^rounds]. *)
