module Q = Bits.Rational
module Proto = Iterated.Proto

type label = { me : int; obs : int option list }

let rounds_of label = List.length label.obs

let equal a b =
  a.me = b.me
  && rounds_of a = rounds_of b
  && List.for_all2 (Option.equal Int.equal) a.obs b.obs

let pp ppf { me; obs } =
  let pp_o ppf = function
    | None -> Format.pp_print_char ppf '_'
    | Some b -> Format.pp_print_int ppf b
  in
  Format.fprintf ppf "p%d:%a" me
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_o)
    obs

let bit ~solo_parity = solo_parity

let protocol ~rounds ~me =
  let other = 1 - me in
  let rec go r obs_rev solo_parity =
    if r > rounds then Proto.Decide { me; obs = List.rev obs_rev }
    else
      Proto.Round
        ( bit ~solo_parity,
          fun view ->
            let o = view.(other) in
            let solo_parity =
              match o with None -> 1 - solo_parity | Some _ -> solo_parity
            in
            go (r + 1) (o :: obs_rev) solo_parity )
  in
  go 1 [] 0

type outcome = Me_solo | Other_solo | Both

let reconstruct label =
  (* Pair each observation with the next observed bit; the other process was
     solo in an observed round iff its parity changed by the next
     observation (the gap in between is all me-solo, where its parity cannot
     move). The final observed round has no successor: ambiguous, and
     irrelevant to [value]. *)
  let obs = Array.of_list label.obs in
  let r = Array.length obs in
  let next_observed = Array.make r None in
  let () =
    let upcoming = ref None in
    for t = r - 1 downto 0 do
      next_observed.(t) <- !upcoming;
      match obs.(t) with Some b -> upcoming := Some b | None -> ()
    done
  in
  List.init r (fun t ->
      match obs.(t) with
      | None -> Me_solo
      | Some b -> (
          match next_observed.(t) with
          | Some b' when b' <> b -> Other_solo
          | Some _ | None -> Both))

(* Reflected-ternary walk down the subdivision: each round refines the
   current edge into three; the middle child flips the traversal
   orientation, and which end the p0-solo child occupies depends on it. *)
let value label =
  let p0_solo, p1_solo =
    if label.me = 0 then (Me_solo, Other_solo) else (Other_solo, Me_solo)
  in
  let step (edge, orient) outcome =
    let digit =
      if outcome = p0_solo then if orient then 0 else 2
      else if outcome = p1_solo then if orient then 2 else 0
      else 1
    in
    ((3 * edge) + digit, if digit = 1 then not orient else orient)
  in
  let edge, orient = List.fold_left step (0, true) (reconstruct label) in
  let position =
    if (label.me = 0) = orient then edge else edge + 1
  in
  let den =
    let rec pow acc i = if i = 0 then acc else pow (3 * acc) (i - 1) in
    pow 1 (rounds_of label)
  in
  Q.make position den
