module P = Sched.Program
module Q = Bits.Rational
module Bmz = Tasks.Bmz
open P.Infix

type register = { eps_input : int option; bit : int }

(* eps_input ranges over three values (absent, 0, 1): 2 bits; plus the
   alternating bit. *)
let measure { eps_input; bit } =
  Bits.Width.enum ~cardinal:3 eps_input + Bits.Width.uint ~max:1 bit

let initial = { eps_input = None; bit = 0 }

(* Algorithm 1 running inside the 3-bit registers: the epsilon-input and the
   alternating bit share the register; [my_eps] is fixed before the embedded
   protocol starts, so every write can restate it. *)
let embedded_env ~my_eps =
  {
    Alg1_one_bit.publish_input =
      (fun x -> P.write { eps_input = Some x; bit = 0 });
    write_bit = (fun b -> P.write { eps_input = Some my_eps; bit = b });
    read_bit = (fun j -> P.map (fun r -> r.bit) (P.read j));
    read_input = (fun j -> P.map (fun r -> r.eps_input) (P.read j));
  }

let component (y0, y1) j = if j = 0 then y0 else y1

let protocol ~plan ~me ~input =
  let other = 1 - me in
  let length = plan.Bmz.length in
  (* plan.length is odd and >= 3, so Algorithm 1 with k = (L-1)/2 decides on
     the grid m/L. *)
  let k = (length - 1) / 2 in
  let full_of x_other =
    if me = 0 then (input, x_other) else (x_other, input)
  in
  let* () = P.write_input input in
  let* first_look = P.read_input other in
  let my_eps = match first_look with None -> 1 | Some _ -> 0 in
  let* d =
    Alg1_one_bit.protocol ~env:(embedded_env ~my_eps) ~k ~me ~input:my_eps
  in
  if Q.equal d Q.zero then
    (* Saw the full input before agreeing (Lemma 5.6: d = 0 implies
       my_eps = 0, so [first_look] succeeded). *)
    match first_look with
    | None -> assert false
    | Some x_other ->
        P.return (component (plan.Bmz.delta_full (full_of x_other)) me)
  else if Q.equal d Q.one then
    (* Never saw the other's input: decide my component of
       delta(X^other). *)
    P.return (component (plan.Bmz.delta_partial ~missing:other input) me)
  else
    (* Mixed epsilon-inputs: the other process wrote its task input before
       its epsilon-agreement decision, so this read cannot return None. *)
    let* second_look = P.read_input other in
    match second_look with
    | None -> assert false
    | Some x_other ->
        let full = full_of x_other in
        let missing = if my_eps = 1 then other else me in
        let path = plan.Bmz.path full ~missing in
        let index = Q.num d * (length / Q.den d) in
        P.return (component path.(index) me)

let algorithm ~plan =
  {
    Tasks.Harness.name =
      Printf.sprintf "alg2-universal(%s)" plan.Bmz.task.Bmz.name;
    memory =
      (fun () ->
        Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 3) ~measure
          ~init:initial);
    program = (fun ~pid ~input -> protocol ~plan ~me:pid ~input);
  }
