(** Algorithm 2 of the paper: solving {e any} wait-free solvable two-process
    task with 3-bit coordination registers (Theorem 1.2).

    Given a {!Tasks.Bmz.plan} (the delta map and the path family of the
    Biran–Moran–Zaks characterization, Lemma 5.7), the two processes publish
    their task inputs in the write-once input registers, run Algorithm 1 to
    epsilon-agree (with epsilon [1/L], [L] the common path length) on a
    position along [path(delta(X), delta(X^i))], and decide their component
    of the selected configuration.

    Each process's coordination register packs Algorithm 1's epsilon-input
    (bottom, 0 or 1 — 2 bits) and its alternating bit (1 bit): 3 bits
    total, matching the paper's bound. Task inputs of arbitrary size travel
    through the input registers only. *)

type register = { eps_input : int option; bit : int }
(** The 3-bit register layout. *)

val measure : register Bits.Width.measure
val initial : register

val protocol :
  plan:('i, 'o) Tasks.Bmz.plan -> me:int -> input:'i ->
  (register, 'i, 'o) Sched.Program.t

val algorithm :
  plan:('i, 'o) Tasks.Bmz.plan -> (register, 'i, 'o) Tasks.Harness.algorithm
(** Fresh 2-process memory with a 3-bit budget; solves
    [Tasks.Bmz.to_task plan.task]. *)
