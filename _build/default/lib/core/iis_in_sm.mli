(** Lemma 2.4, executable: the iterated immediate snapshot model embeds in
    the plain wait-free shared-memory model (with unbounded registers).

    Each register holds the process's full history of iterated-collect
    cells; one IIS round of the source protocol becomes [n] write/collect
    iterations of the Borowsky–Gafni construction (Algorithm 5), and one
    collect is [n] plain reads. A cell is tagged with its global iteration
    index, so reading a register at any time recovers exactly what the
    iterated model's fresh memory [M_rho] would have shown — the embedding
    direction of the equivalence the asynchronous computability theorem
    leans on (the other direction is trivial: IIS programs are restricted
    shared-memory programs).

    Cost: [n (n + 1)] shared-memory steps per simulated IIS round. *)

type 'v cell = { iteration : int; value : 'v; placed : bool }
(** One BG write: the global IC iteration index, the IIS round's value, and
    the "already holds a snapshot" flag. *)

type 'v history = 'v cell list
(** Newest first. *)

val program :
  n:int -> ('v, 'a) Iterated.Proto.t -> ('v history, 'i, 'a) Sched.Program.t
(** Run the IIS program in plain shared memory (registers must be
    unbounded: histories grow). *)

val algorithm :
  n:int ->
  name:string ->
  source:(pid:int -> input:'i -> ('v, 'a) Iterated.Proto.t) ->
  ('v history, 'i, 'a) Tasks.Harness.algorithm
(** Harness packaging on an unbounded-budget memory. *)
