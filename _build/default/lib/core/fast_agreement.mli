(** Theorem 8.1: wait-free two-process epsilon-agreement in [O(log 1/eps)]
    steps with constant-size registers (6 bits for [delta = 2]).

    The processes publish their inputs in the input registers, run the
    Algorithm 6 simulation of the labelling protocol ({!Ring_sim}), convert
    their exit labels to positions on the pruned path, and orient the result
    by process 0's input. [rounds] simulated rounds cost [O(rounds)] steps
    and give epsilon [1 / executions_count] — at most [2^-rounds] — so for a
    target epsilon the step complexity is [O(log 1/eps)], exponentially
    faster than Algorithm 1's [O(1/eps)] at the price of 6-bit instead of
    1-bit registers. *)

val protocol :
  delta:int -> rounds:int -> me:int -> input:int ->
  (Ring_sim.register, int, Bits.Rational.t) Sched.Program.t

val algorithm :
  delta:int -> rounds:int ->
  (Ring_sim.register, int, Bits.Rational.t) Tasks.Harness.algorithm
(** Solves [Tasks.Eps_agreement.task ~n:2 ~k:(denominator ~delta ~rounds)]
    on a memory with budget [Ring_sim.register_bits ~delta]. *)

val denominator : delta:int -> rounds:int -> int
(** The output grid and agreement grain: [Ring_sim.executions_count], which
    is at least [2^rounds]. *)
