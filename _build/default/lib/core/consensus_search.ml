module P = Sched.Program
open P.Infix

type candidate = { rounds : int; write_rules : int array; decide_rule : int }

(* A state after r rounds is the input bit plus the r bits read: index
   input + 2*obs_1 + 4*obs_2 + ... *)
let state_count ~rounds = 1 lsl (rounds + 1)

let rule_bit mask state = (mask lsr state) land 1

let candidate_count ~rounds =
  let rule_space r = 1 lsl state_count ~rounds:r in
  let writes =
    List.fold_left (fun acc r -> acc * rule_space (r - 1)) 1
      (List.init rounds (fun r -> r + 1))
  in
  writes * rule_space rounds

let candidates ~rounds =
  let rec enumerate r =
    (* all write_rule assignments for rounds r..rounds, as lists *)
    if r > rounds then Seq.return []
    else
      let space = 1 lsl state_count ~rounds:(r - 1) in
      Seq.concat_map
        (fun mask ->
          Seq.map (fun rest -> mask :: rest) (enumerate (r + 1)))
        (Seq.init space (fun m -> m))
  in
  Seq.concat_map
    (fun write_list ->
      let write_rules = Array.of_list write_list in
      Seq.map
        (fun decide_rule -> { rounds; write_rules; decide_rule })
        (Seq.init (1 lsl state_count ~rounds) (fun m -> m)))
    (enumerate 1)

let program candidate ~me ~input =
  let other = 1 - me in
  let rec go r state =
    if r > candidate.rounds then
      P.return (rule_bit candidate.decide_rule state)
    else
      let* () = P.write (rule_bit candidate.write_rules.(r - 1) state) in
      let* seen = P.read other in
      go (r + 1) (state lor (seen lsl r))
  in
  go 1 input

let task = Tasks.Consensus.binary ~n:2

let verdict candidate =
  let algorithm =
    {
      Tasks.Harness.name = "consensus-candidate";
      memory =
        (fun () ->
          Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 1)
            ~measure:(Bits.Width.uint ~max:1) ~init:0);
      program = (fun ~pid ~input -> program candidate ~me:pid ~input);
    }
  in
  Tasks.Harness.check_exhaustive ~task ~algorithm ~max_crashes:1 ()

type summary = { total : int; survivors : candidate list }

let search ~rounds =
  Seq.fold_left
    (fun acc candidate ->
      match verdict candidate with
      | Tasks.Harness.Pass _ ->
          { total = acc.total + 1; survivors = candidate :: acc.survivors }
      | Tasks.Harness.Fail _ -> { acc with total = acc.total + 1 })
    { total = 0; survivors = [] }
    (candidates ~rounds)
