(** Lemma 2.1 (consensus is not 1-resilient solvable), demonstrated by
    exhaustive search over an entire protocol class.

    A {e candidate} is a symmetric two-process protocol with 1-bit registers
    and [rounds] alternating write/read rounds: in round [r] each process
    writes a bit determined by its state (its input plus everything it read
    so far) and then reads the other register; after the last round it
    decides 0 or 1 from its state. The class is finite — [64] candidates for
    one round, [16384] for two — and every one of them is run through the
    exhaustive scheduler with one crash allowed. The impossibility theorem
    predicts that {e every} candidate has a violating execution
    (disagreement, an invalid decision, or a blocked process), and the
    search confirms it; the witness execution is reported per candidate. *)

type candidate = {
  rounds : int;
  write_rules : int array;
      (** [write_rules.(r)] is a bitmask over round-[r] states: bit [s] is
          the bit written by a process in state [s] *)
  decide_rule : int;  (** bitmask over final states *)
}

val state_count : rounds:int -> int
(** Number of process states after [rounds] rounds: [2^(rounds+1)]. *)

val candidates : rounds:int -> candidate Seq.t
(** All candidates, lazily. *)

val candidate_count : rounds:int -> int

val program :
  candidate -> me:int -> input:int -> (int, int, int) Sched.Program.t

val verdict : candidate -> int Tasks.Harness.report
(** Exhaustive check (all inputs, all interleavings, up to one crash)
    against binary consensus. *)

type summary = {
  total : int;
  survivors : candidate list;  (** candidates the adversary failed to break *)
}

val search : rounds:int -> summary
(** Lemma 2.1 predicts [survivors = []]. *)
