module P = Sched.Program
module Q = Bits.Rational
open P.Infix

type register = { pos : int; hist : int list }

let register_bits ~delta = Bits.Width.bits_for (2 * delta) + (delta + 1)

let measure ~delta { pos; hist } =
  if List.length hist <> delta + 1 then
    invalid_arg "Ring_sim.measure: history length";
  Bits.Width.uint ~max:(2 * delta) pos
  + List.fold_left (fun acc b -> acc + Bits.Width.uint ~max:1 b) 0 hist

let initial ~delta = { pos = 0; hist = List.init (delta + 1) (fun _ -> 0) }

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

let protocol ~delta ~rounds ~me =
  if delta < 2 then invalid_arg "Ring_sim.protocol: delta >= 2";
  if rounds < 1 then invalid_arg "Ring_sim.protocol: rounds >= 1";
  let other = 1 - me in
  let ring = (2 * delta) + 1 in
  let rec loop r obs_rev solo_parity estr xprec solos hist =
    if r > rounds then P.return { Labelling.me; obs = List.rev obs_rev }
    else
      let x = r mod ring in
      let hist = Labelling.bit ~solo_parity :: take delta hist in
      let* () = P.write { pos = x; hist } in
      let* seen = P.read other in
      (* Ring distance travelled since the last read bounds the other's
         writes exactly: it cannot lap (Lemma 8.4). *)
      let estr = estr + ((seen.pos - xprec + ring) mod ring) in
      let xprec = seen.pos in
      if r <= estr then
        (* The other reached simulated round r; its bit for round r sits
           [estr - r] entries deep in its history (Corollary 8.2 bounds this
           by delta). *)
        let o = List.nth seen.hist (estr - r) in
        loop (r + 1) (Some o :: obs_rev) solo_parity estr xprec 0 hist
      else
        let obs_rev = None :: obs_rev in
        let solo_parity = 1 - solo_parity in
        let solos = solos + 1 in
        if solos = delta then
          P.return { Labelling.me; obs = List.rev obs_rev }
        else loop (r + 1) obs_rev solo_parity estr xprec solos hist
  in
  loop 1 [] 0 0 0 0 (List.init (delta + 1) (fun _ -> 0))

(* ------------------------------------------------------------------ *)
(* The pruned complex: maximal simulated executions as leaves of a
   ternary tree over round outcomes, in reflected-ternary order.       *)

(* [completions ~delta ~rounds] memoizes T(a, c, r): the number of maximal
   executions extending a prefix of r rounds where process 0's (resp. 1's)
   trailing solo run is a (resp. c) and both processes are still active. *)
let completions ~delta ~rounds =
  let table = Hashtbl.create 97 in
  let rec t (a, c, r) =
    if r = rounds then 1
    else
      match Hashtbl.find_opt table (a, c, r) with
      | Some v -> v
      | None ->
          let child run =
            (* One more solo round for the process whose run is [run]:
               reaching delta (or the horizon) forces the rest. *)
            if run + 1 = delta || r + 1 = rounds then 1 else -1
          in
          let v_a =
            match child a with -1 -> t (a + 1, 0, r + 1) | v -> v
          in
          let v_b = if r + 1 = rounds then 1 else t (0, 0, r + 1) in
          let v_c =
            match child c with -1 -> t (0, c + 1, r + 1) | v -> v
          in
          let v = v_a + v_b + v_c in
          Hashtbl.add table (a, c, r) v;
          v
  in
  t

let executions_count ~delta ~rounds = (completions ~delta ~rounds) (0, 0, 0)

type digit = A | B | C  (** A: process 0 solo; C: process 1 solo *)

(* The candidate maximal execution(s) a label is an endpoint of. *)
let candidates ~delta ~rounds label =
  let me = label.Labelling.me in
  let my_solo = if me = 0 then A else C in
  let other_solo = if me = 0 then C else A in
  let to_digits () =
    List.map
      (function
        | Labelling.Me_solo -> my_solo
        | Labelling.Other_solo -> other_solo
        | Labelling.Both -> B)
      (Labelling.reconstruct label)
    |> List.mapi (fun i d -> (i, d))
  in
  let base = to_digits () in
  let r_me = List.length base in
  let last_observed =
    List.fold_left
      (fun acc (i, d) -> if d <> my_solo then Some i else acc)
      None base
  in
  let with_resolution resolved =
    List.map
      (fun (i, d) ->
        if Some i = last_observed && resolved then other_solo else d)
      base
  in
  (* Extend a resolved prefix to the maximal execution: if the other process
     is still active at my exit, it runs solo until its delta cutoff or the
     horizon. *)
  let extend prefix =
    let other_trailing =
      let rec count acc = function
        | d :: rest when d = other_solo -> count (acc + 1) rest
        | _ -> acc
      in
      count 0 (List.rev prefix)
    in
    let other_exited_inside =
      (* A solo run of delta inside the prefix means the other quit there. *)
      let rec scan run = function
        | [] -> false
        | d :: rest ->
            let run = if d = other_solo then run + 1 else 0 in
            run >= delta || scan run rest
      in
      scan 0 prefix
    in
    if other_exited_inside then prefix
    else
      let extra = min (delta - other_trailing) (rounds - r_me) in
      prefix @ List.init extra (fun _ -> other_solo)
  in
  match last_observed with
  | None -> [ extend (with_resolution false) ]
  | Some _ ->
      [ extend (with_resolution false); extend (with_resolution true) ]

(* Number of maximal executions strictly left (in reflected-ternary order)
   of the given maximal execution word. *)
let leaves_left ~delta ~rounds word =
  let t = completions ~delta ~rounds in
  let count_child (a, c, r) d =
    (* leaves in the subtree reached by digit d from an all-active state *)
    match d with
    | A -> if a + 1 = delta || r + 1 = rounds then 1 else t (a + 1, 0, r + 1)
    | B -> if r + 1 = rounds then 1 else t (0, 0, r + 1)
    | C -> if c + 1 = delta || r + 1 = rounds then 1 else t (0, c + 1, r + 1)
  in
  let rec walk acc (a, c, r) orient exited0 exited1 = function
    | [] -> acc
    | d :: rest ->
        if exited0 || exited1 then
          (* forced region: a single child, nothing to its left *)
          walk acc (a, c, r + 1) orient exited0 exited1 rest
        else
          let order = if orient then [ A; B; C ] else [ C; B; A ] in
          let rec add acc = function
            | [] -> assert false
            | d' :: _ when d' = d -> acc
            | d' :: rest' -> add (acc + count_child (a, c, r) d') rest'
          in
          let acc = add acc order in
          let a', c' =
            match d with A -> (a + 1, 0) | B -> (0, 0) | C -> (0, c + 1)
          in
          let exited0 = (d = A && a' = delta) || r + 1 = rounds in
          let exited1 = (d = C && c' = delta) || r + 1 = rounds in
          let orient = if d = B then not orient else orient in
          walk acc (a', c', r + 1) orient exited0 exited1 rest
  in
  walk 0 (0, 0, 0) true false false word

let value ~delta ~rounds label =
  let total = executions_count ~delta ~rounds in
  let position =
    match candidates ~delta ~rounds label with
    | [ only ] ->
        (* All-solo labels are the two ends of the pruned path. *)
        if label.Labelling.me = 0 then 0 else leaves_left ~delta ~rounds only + 1
    | [ w1; w2 ] ->
        let n1 = leaves_left ~delta ~rounds w1
        and n2 = leaves_left ~delta ~rounds w2 in
        (* The two incident executions are adjacent leaves; the vertex sits
           between them. *)
        max n1 n2
    | _ -> assert false
  in
  Q.make position total
