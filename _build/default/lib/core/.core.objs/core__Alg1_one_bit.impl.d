lib/core/alg1_one_bit.ml: Bits Printf Sched Tasks
