lib/core/fast_agreement.mli: Bits Ring_sim Sched Tasks
