lib/core/alg2_universal.mli: Bits Sched Tasks
