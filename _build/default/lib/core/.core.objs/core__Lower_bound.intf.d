lib/core/lower_bound.mli: Bits Format Sched
