lib/core/iis_in_sm.mli: Iterated Sched Tasks
