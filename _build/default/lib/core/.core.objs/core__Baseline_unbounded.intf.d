lib/core/baseline_unbounded.mli: Bits Sched Tasks
