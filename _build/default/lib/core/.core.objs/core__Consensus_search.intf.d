lib/core/consensus_search.mli: Sched Seq Tasks
