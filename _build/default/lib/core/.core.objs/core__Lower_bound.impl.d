lib/core/lower_bound.ml: Alg1_one_bit Array Bits Format Int List Printf Sched
