lib/core/ring_sim.mli: Bits Labelling Sched
