lib/core/consensus_search.ml: Array Bits List Sched Seq Tasks
