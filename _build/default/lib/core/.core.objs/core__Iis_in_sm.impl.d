lib/core/iis_in_sm.ml: Array Bits Iterated List Sched Tasks
