lib/core/baseline_unbounded.ml: Array Bits List Printf Sched Tasks
