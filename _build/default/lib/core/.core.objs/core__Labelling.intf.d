lib/core/labelling.mli: Bits Format Iterated
