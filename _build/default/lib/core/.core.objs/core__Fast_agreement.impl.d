lib/core/fast_agreement.ml: Bits Printf Ring_sim Sched Tasks
