lib/core/ring_sim.ml: Bits Hashtbl Labelling List Sched
