lib/core/alg2_universal.ml: Alg1_one_bit Array Bits Printf Sched Tasks
