lib/core/labelling.ml: Array Bits Format Int Iterated List Option
