lib/core/alg1_one_bit.mli: Bits Sched Tasks
