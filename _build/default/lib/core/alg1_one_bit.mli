(** Algorithm 1 of the paper: wait-free binary epsilon-agreement for two
    processes with 1-bit coordination registers.

    Each process alternately writes 0 and 1 in its register (at most [k]
    times) and reads the other's register, stopping as soon as it reads the
    same value twice — i.e. as soon as the two processes desynchronize. The
    exit iteration determines a decision on the grid [m/(2k+1)], and
    Lemma 5.5 guarantees the two decisions are at most [1/(2k+1)] apart.

    The protocol is written against an abstract {!env} describing where its
    one communication bit and its binary input live, so that it can run

    - standalone, with genuine 1-bit registers and the model's write-once
      input registers ({!algorithm}), proving the first half of Theorem 1.2;
    - embedded in Algorithm 2's 3-bit registers, where the bit and the
      epsilon-input share a register ({!Alg2_universal}). *)

type ('v, 'i) env = {
  publish_input : int -> ('v, 'i, unit) Sched.Program.t;
      (** one step publishing this process's epsilon-input (0 or 1) *)
  write_bit : int -> ('v, 'i, unit) Sched.Program.t;
      (** one step writing this process's communication bit *)
  read_bit : int -> ('v, 'i, int) Sched.Program.t;
      (** one step reading process [j]'s communication bit *)
  read_input : int -> ('v, 'i, int option) Sched.Program.t;
      (** one step reading process [j]'s epsilon-input, [None] if unwritten *)
}

val protocol :
  env:('v, 'i) env -> k:int -> me:int -> input:int ->
  ('v, 'i, Bits.Rational.t) Sched.Program.t
(** The code of Algorithm 1 for process [me] in {0, 1} with input in {0, 1}.
    Decisions are exact rationals with denominator [2k+1]. At most [2k + 3]
    steps. @raise Invalid_argument unless [k >= 1]. *)

val env_standalone : (int, int) env
(** Bits in the coordination register, epsilon-inputs in the input
    registers. *)

val algorithm : k:int -> (int, int, Bits.Rational.t) Tasks.Harness.algorithm
(** Standalone instance on a fresh 2-process memory with a 1-bit budget;
    solves the task [Tasks.Eps_agreement.task ~n:2 ~k:(2 * k + 1)]. *)

val denominator : k:int -> int
(** [2k + 1], the output grid of [algorithm ~k]. *)
