module P = Sched.Program
module Q = Bits.Rational
open P.Infix

let denominator ~delta ~rounds = Ring_sim.executions_count ~delta ~rounds

let protocol ~delta ~rounds ~me ~input =
  let other = 1 - me in
  let* () = P.write_input input in
  let* label = Ring_sim.protocol ~delta ~rounds ~me in
  let* x_other = P.read_input other in
  match x_other with
  | None -> P.return (Q.of_int input)
  | Some x when x = input -> P.return (Q.of_int input)
  | Some x ->
      let f = Ring_sim.value ~delta ~rounds label in
      let x0 = if me = 0 then input else x in
      if x0 = 0 then P.return f else P.return (Q.sub Q.one f)

let algorithm ~delta ~rounds =
  {
    Tasks.Harness.name =
      Printf.sprintf "fast-agreement(delta=%d,R=%d)" delta rounds;
    memory =
      (fun () ->
        Sched.Memory.create ~n:2
          ~budget:(Bits.Width.Bounded (Ring_sim.register_bits ~delta))
          ~measure:(Ring_sim.measure ~delta)
          ~init:(Ring_sim.initial ~delta));
    program = (fun ~pid ~input -> protocol ~delta ~rounds ~me:pid ~input);
  }
