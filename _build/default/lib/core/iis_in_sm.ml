module P = Sched.Program
module Proto = Iterated.Proto
open P.Infix

type 'v cell = { iteration : int; value : 'v; placed : bool }
type 'v history = 'v cell list

let cell_at ~iteration history =
  List.find_opt (fun c -> c.iteration = iteration) history

let program ~n proto =
  (* [mine] is this process's own history, threaded through the recursion
     so the program stays pure between steps. *)
  let rec simulate base mine proto =
    match proto with
    | Proto.Decide a -> P.return a
    | Proto.Round (x, k) -> bg_round base mine x k
  and bg_round base mine x k =
    (* One IS round = n BG iterations, global indices base+1 .. base+n. *)
    let rec iterate rho mine =
      let iteration = base + rho in
      let mine = { iteration; value = x; placed = false } :: mine in
      let* () = P.write mine in
      let* registers = P.collect n in
      let cells =
        Array.map (fun history -> cell_at ~iteration history) registers
      in
      let fresh =
        Array.to_list cells
        |> List.concat_map (function
             | Some c when not c.placed -> [ c ]
             | Some _ | None -> [])
      in
      if List.length fresh = n + 1 - rho then begin
        let snapshot =
          Array.map
            (function
              | Some c when not c.placed -> Some c.value
              | Some _ | None -> None)
            cells
        in
        pad (rho + 1) mine snapshot
      end
      else if rho = n then
        (* The BG invariant (at most n+1-rho processes without a snapshot
           at iteration rho) makes the threshold-1 test succeed here. *)
        assert false
      else iterate (rho + 1) mine
    and pad rho mine snapshot =
      (* Keep writing (flagged) through the remaining iterations so slower
         processes can still count this process as placed. *)
      if rho > n then simulate (base + n) mine (k snapshot)
      else
        let iteration = base + rho in
        let mine = { iteration; value = x; placed = true } :: mine in
        let* () = P.write mine in
        let* _ = P.collect n in
        pad (rho + 1) mine snapshot
    in
    iterate 1 mine
  in
  simulate 0 [] proto

let algorithm ~n ~name ~source =
  {
    Tasks.Harness.name;
    memory =
      (fun () ->
        Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
          ~measure:Bits.Width.unbounded ~init:[]);
    program = (fun ~pid ~input -> program ~n (source ~pid ~input));
  }
