module P = Sched.Program
module Q = Bits.Rational
open P.Infix

type history = (int * Q.t) list

let denominator ~rounds = 1 lsl rounds

let history_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (r, v) (r', v') -> r = r' && Q.equal v v') a b

let round_values ~round snap =
  Array.to_list snap
  |> List.filter_map (fun history ->
         List.assoc_opt round history)

let midpoint values =
  match values with
  | [] -> assert false (* always contains the caller's own estimate *)
  | v :: vs ->
      let lo = List.fold_left Q.min v vs and hi = List.fold_left Q.max v vs in
      Q.mul Q.half (Q.add lo hi)

let protocol ~n ~rounds ~me ~input =
  if rounds < 0 then invalid_arg "Baseline_unbounded.protocol: rounds >= 0";
  ignore me;
  let rec run r history estimate =
    if r > rounds then P.return estimate
    else
      let history = (r - 1, estimate) :: history in
      let* () = P.write history in
      let* snap = Sched.Snapshots.double_collect ~n ~equal:history_equal in
      let seen = round_values ~round:(r - 1) snap in
      run (r + 1) history (midpoint seen)
  in
  run 1 [] (Q.of_int input)

let algorithm ~n ~rounds =
  {
    Tasks.Harness.name = Printf.sprintf "baseline-unbounded(R=%d)" rounds;
    memory =
      (fun () ->
        Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
          ~measure:Bits.Width.unbounded ~init:[]);
    program = (fun ~pid ~input -> protocol ~n ~rounds ~me:pid ~input);
  }
