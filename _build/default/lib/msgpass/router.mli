(** Flooding over a sparse topology (Section 6, step 2): simulating the
    complete network on the t-augmented ring.

    Every message is wrapped in an envelope stamped [(origin, seq)] and sent
    to all successors; nodes forward unseen envelopes onward and deliver the
    ones addressed to them. With at most [t] crashes the ring stays strongly
    connected, so every envelope between correct processes eventually
    arrives; duplicates are dropped by their stamp. *)

type 'm envelope = { origin : int; seq : int; dest : int; body : 'm }

type 'm t

val create : topology:Topology.t -> me:int -> 'm t

val send : 'm t -> dest:int -> 'm -> 'm list * (int * 'm envelope) list
(** [send t ~dest m] is [(local, out)]: [local] is [[m]] when [dest] is the
    sender itself (delivered without touching the network), [out] the
    envelope copies for each successor. *)

val receive : 'm t -> 'm envelope -> 'm envelope list * (int * 'm envelope) list
(** Deliveries for this node (whole envelopes, so the consumer can see the
    origin) plus forwarding copies; both empty for already-seen
    envelopes. *)
