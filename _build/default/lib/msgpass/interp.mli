(** Compiling a shared-memory protocol to a message-passing process: every
    read/write of the {!Sched.Program} DSL becomes an ABD operation
    (Section 6, step 1 — this is "algorithm A'").

    The emulated register space holds the [n] coordination registers as
    cells [0..n-1] and the [n] write-once input registers as cells
    [n..2n-1]; both travel through the same ABD quorums, so the whole
    protocol — inputs included — runs over messages alone. The interpreter
    is transport-agnostic: embed it in a {!Net} node (complete network), the
    {!Router} (t-augmented ring), or the alternating-bit registers
    ({!Pipeline}). *)

type ('v, 'i) cell =
  | Coord of 'v
  | Input of 'i option

type ('v, 'i, 'a) t

val create :
  n:int -> t:int -> me:int -> init:'v -> program:('v, 'i, 'a) Sched.Program.t ->
  ('v, 'i, 'a) t * (int * ('v, 'i) cell Abd.msg) list
(** Returns the interpreter and the messages of its first operation (empty
    only if the program decides without taking a step). *)

val handle :
  ('v, 'i, 'a) t -> from:int -> ('v, 'i) cell Abd.msg ->
  (int * ('v, 'i) cell Abd.msg) list
(** Feed one message; advances the program through any completed operation
    and returns everything to send next. *)

val decision : ('v, 'i, 'a) t -> 'a option
val steps : ('v, 'i, 'a) t -> int
(** Shared-memory operations of the source program executed so far. *)

val node : ('v, 'i, 'a) t * (int * ('v, 'i) cell Abd.msg) list ->
  ('v, 'i) cell Abd.msg Net.node
(** Wrap as a {!Net} node (for the complete-network model). *)
