type t = { n : int; succs : int list array }

let augmented_ring ~n ~t =
  if t < 0 || t + 2 > n then
    invalid_arg "Topology.augmented_ring: need 0 <= t and t + 2 <= n";
  let succs =
    Array.init n (fun i -> List.init (t + 1) (fun d -> (i + d + 1) mod n))
  in
  { n; succs }

let complete ~n =
  let succs =
    Array.init n (fun i ->
        List.init n (fun j -> j) |> List.filter (fun j -> j <> i))
  in
  { n; succs }

let n t = t.n
let successors t i = t.succs.(i)

let predecessors t i =
  List.init t.n (fun j -> j)
  |> List.filter (fun j -> List.mem i t.succs.(j))

let strongly_connected t ~without =
  let alive = Array.make t.n true in
  List.iter (fun i -> alive.(i) <- false) without;
  let nodes =
    List.init t.n (fun i -> i) |> List.filter (fun i -> alive.(i))
  in
  match nodes with
  | [] -> true
  | root :: _ ->
      let reach edges =
        let seen = Array.make t.n false in
        let rec go i =
          if alive.(i) && not seen.(i) then begin
            seen.(i) <- true;
            List.iter go (edges i)
          end
        in
        go root;
        List.for_all (fun i -> seen.(i)) nodes
      in
      reach (successors t) && reach (predecessors t)

let survivor_connected t ~faults =
  let rec subsets k from =
    if k = 0 then [ [] ]
    else if from >= t.n then []
    else
      List.map (fun s -> from :: s) (subsets (k - 1) (from + 1))
      @ subsets k (from + 1)
  in
  List.init (faults + 1) (fun k -> subsets k 0)
  |> List.concat
  |> List.for_all (fun without -> strongly_connected t ~without)
