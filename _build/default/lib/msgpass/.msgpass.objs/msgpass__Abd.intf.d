lib/msgpass/abd.mli:
