lib/msgpass/abd.ml: Array List Option
