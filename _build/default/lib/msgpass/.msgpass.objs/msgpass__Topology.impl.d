lib/msgpass/topology.ml: Array List
