lib/msgpass/alt_bit.ml: Bits Codec List Queue
