lib/msgpass/codec.mli:
