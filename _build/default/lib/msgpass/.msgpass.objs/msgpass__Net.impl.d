lib/msgpass/net.ml: Array Bits List Queue
