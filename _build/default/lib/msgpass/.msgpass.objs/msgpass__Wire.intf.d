lib/msgpass/wire.mli: Abd Bits Interp Router
