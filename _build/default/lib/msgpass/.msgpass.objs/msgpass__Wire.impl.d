lib/msgpass/wire.ml: Abd Bits Buffer Interp List Router String
