lib/msgpass/router.ml: Hashtbl List Topology
