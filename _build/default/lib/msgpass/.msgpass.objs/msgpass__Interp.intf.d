lib/msgpass/interp.mli: Abd Net Sched
