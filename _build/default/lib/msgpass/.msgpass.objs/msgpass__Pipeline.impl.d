lib/msgpass/pipeline.ml: Alt_bit Array Bits Interp List Router Sched Tasks Topology Wire
