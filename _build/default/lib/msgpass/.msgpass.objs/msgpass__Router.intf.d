lib/msgpass/router.mli: Topology
