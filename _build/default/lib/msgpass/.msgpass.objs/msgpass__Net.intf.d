lib/msgpass/net.mli: Bits
