lib/msgpass/interp.ml: Abd Net Sched
