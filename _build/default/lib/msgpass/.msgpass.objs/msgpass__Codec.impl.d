lib/msgpass/codec.ml: Bytes Char List Option String
