lib/msgpass/alt_bit.mli: Bits
