lib/msgpass/pipeline.mli: Alt_bit Bits Sched Tasks Wire
