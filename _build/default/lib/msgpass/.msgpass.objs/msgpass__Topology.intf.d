lib/msgpass/topology.mli:
