(** Bit-level encoding for the alternating-bit layer.

    Everything that crosses the 3(t+1)-bit registers of the Theorem 1.3
    construction is a stream of single bits; messages are serialized to
    strings, strings to bits, and framed with the paper's stuffing: a 0
    separator after every payload bit, a 1 terminator at the end, so the
    receiver can find message boundaries in a raw bit stream. *)

val bits_of_string : string -> bool list
(** 8 bits per byte, most significant first. *)

val string_of_bits : bool list -> string
(** @raise Invalid_argument unless the length is a multiple of 8. *)

val frame : bool list -> bool list
(** The paper's stuffed encoding [m'], with the continuation flag placed
    {e before} each payload bit (0 = payload bit follows, 1 = end of frame),
    which keeps empty payloads unambiguous. [frame []] is [[true]]. *)

type deframer
(** Incremental parser of a framed bit stream. *)

val deframer : unit -> deframer
val feed : deframer -> bool -> bool list option
(** Feed one received bit; returns a complete payload when the terminator
    arrives. *)

val encode : string -> bool list
(** [frame (bits_of_string s)]. *)

type decoder

val decoder : unit -> decoder
val decode : decoder -> bool -> string option
(** Incremental [feed] + [string_of_bits]: complete messages as they
    arrive. *)
