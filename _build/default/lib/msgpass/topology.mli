(** The t-augmented ring (Figure 3) and its connectivity.

    Nodes [0..n-1] form a directed cycle; every node additionally points to
    the next [t] nodes, so each node has the [t+1] successors at distances
    [1..t+1]. Removing any [t] nodes leaves the digraph strongly connected —
    the property Section 6 needs for the flooding simulation of the complete
    network. *)

type t

val augmented_ring : n:int -> t:int -> t
(** @raise Invalid_argument unless [0 <= t] and [t + 2 <= n]. *)

val complete : n:int -> t
(** The complete digraph (the message-passing model's own topology). *)

val n : t -> int
val successors : t -> int -> int list
(** Out-neighbours, ascending by distance for the ring. *)

val predecessors : t -> int -> int list

val strongly_connected : t -> without:int list -> bool
(** Is the digraph strongly connected once the given nodes are removed? *)

val survivor_connected : t -> faults:int -> bool
(** [strongly_connected] for {e every} set of at most [faults] removed nodes
    — exponential in [faults], for tests and small systems. *)
