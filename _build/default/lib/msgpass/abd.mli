(** The Attiya–Bar-Noy–Dolev emulation of SWMR atomic registers over
    message passing with a crash minority (Section 6, step 1).

    One instance per process emulates the array of [n] SWMR registers. A
    write stamps the value with the writer's local timestamp and waits for
    [n - t] acknowledgements; a read collects [n - t] replies, adopts the
    highest timestamp, and {e writes back} before returning (the write-back
    is what makes reads atomic rather than merely regular). With [t < n/2],
    any two quorums intersect, so a read sees every completed write.

    The state machine is transport-agnostic: [begin_*] and [handle] return
    the messages to send, and the embedding (a {!Net} node, or the
    alternating-bit compilation in {!Pipeline}) moves them. One outstanding
    operation per process — the compiled algorithms are sequential. *)

type 'v msg =
  | Write_req of { reg : int; ts : int; value : 'v; op : int }
  | Write_ack of { reg : int; op : int }
  | Read_req of { reg : int; op : int }
  | Read_reply of { reg : int; ts : int; value : 'v; op : int }

type 'v completion =
  | Wrote
  | Read_value of 'v

type 'v t

val create :
  n:int -> t:int -> me:int -> ?quorum:int -> registers:int ->
  init:(int -> 'v) -> unit -> 'v t
(** Emulate [registers] cells (at least [n]: the model's coordination
    registers; the {!Pipeline} adds [n] more for the input registers), each
    starting at [init reg].

    [quorum] defaults to [n - t], the sound choice: with [t < n/2] any two
    quorums intersect. Overriding it exists only for the t = n/2 frontier
    experiment (E13), which demonstrates the stale reads that disjoint
    quorums allow — don't.
    @raise Invalid_argument unless [0 <= t < n/2]. *)

val begin_write : 'v t -> reg:int -> 'v -> (int * 'v msg) list
(** Start writing register [reg] (callers only write registers they own —
    ABD itself also issues write-backs to foreign registers during reads);
    returns the broadcast.
    @raise Invalid_argument if an operation is already outstanding. *)

val begin_read : 'v t -> reg:int -> (int * 'v msg) list

val handle : 'v t -> from:int -> 'v msg -> (int * 'v msg) list
(** Process an incoming message, producing replies (and, inside a read, the
    write-back broadcast). *)

val take_completion : 'v t -> 'v completion option
(** The result of the outstanding operation once its quorum is in; clears
    the operation. *)
