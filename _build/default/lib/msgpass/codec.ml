let bits_of_string s =
  String.fold_right
    (fun c acc ->
      let code = Char.code c in
      List.init 8 (fun k -> code land (1 lsl (7 - k)) <> 0) @ acc)
    s []

let string_of_bits bits =
  if List.length bits mod 8 <> 0 then
    invalid_arg "Codec.string_of_bits: length not a multiple of 8";
  let buf = Bytes.create (List.length bits / 8) in
  let rec go i = function
    | [] -> Bytes.to_string buf
    | b7 :: b6 :: b5 :: b4 :: b3 :: b2 :: b1 :: b0 :: rest ->
        let bit v k = if v then 1 lsl k else 0 in
        let code =
          bit b7 7 lor bit b6 6 lor bit b5 5 lor bit b4 4 lor bit b3 3
          lor bit b2 2 lor bit b1 1 lor bit b0 0
        in
        Bytes.set buf i (Char.chr code);
        go (i + 1) rest
    | _ -> assert false
  in
  go 0 bits

(* One continuation flag before every payload bit (0 = a payload bit
   follows, 1 = end of frame): self-delimiting and unambiguous even for
   empty payloads. *)
let frame payload =
  List.concat_map (fun b -> [ false; b ]) payload @ [ true ]

type deframer = {
  mutable bits : bool list;  (** payload bits so far, newest first *)
  mutable awaiting_payload : bool;
}

let deframer () = { bits = []; awaiting_payload = false }

let feed d b =
  if d.awaiting_payload then begin
    d.awaiting_payload <- false;
    d.bits <- b :: d.bits;
    None
  end
  else if b then begin
    let payload = List.rev d.bits in
    d.bits <- [];
    Some payload
  end
  else begin
    d.awaiting_payload <- true;
    None
  end

let encode s = frame (bits_of_string s)

type decoder = deframer

let decoder () = deframer ()
let decode d b = Option.map string_of_bits (feed d b)
