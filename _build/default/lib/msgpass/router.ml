type 'm envelope = { origin : int; seq : int; dest : int; body : 'm }

type 'm t = {
  topology : Topology.t;
  me : int;
  seen : (int * int, unit) Hashtbl.t;
  mutable next_seq : int;
}

let create ~topology ~me = { topology; me; seen = Hashtbl.create 97; next_seq = 0 }

let broadcast t envelope =
  List.map (fun s -> (s, envelope)) (Topology.successors t.topology t.me)

let send t ~dest body =
  if dest = t.me then ([ body ], [])
  else begin
    t.next_seq <- t.next_seq + 1;
    let envelope = { origin = t.me; seq = t.next_seq; dest; body } in
    Hashtbl.replace t.seen (envelope.origin, envelope.seq) ();
    ([], broadcast t envelope)
  end

let receive t envelope =
  if Hashtbl.mem t.seen (envelope.origin, envelope.seq) then ([], [])
  else begin
    Hashtbl.replace t.seen (envelope.origin, envelope.seq) ();
    if envelope.dest = t.me then ([ envelope ], [])
    else ([], broadcast t envelope)
  end
