type 'v msg =
  | Write_req of { reg : int; ts : int; value : 'v; op : int }
  | Write_ack of { reg : int; op : int }
  | Read_req of { reg : int; op : int }
  | Read_reply of { reg : int; ts : int; value : 'v; op : int }

type 'v completion = Wrote | Read_value of 'v

type 'v phase =
  | Idle
  | Writing of { op : int; acks : int }
  | Collecting of { op : int; reg : int; replies : (int * 'v) list }
  | Writing_back of { op : int; value : 'v; acks : int }

type 'v t = {
  n : int;
  quorum : int;
  me : int;
  copies : (int * 'v) array;  (** per emulated register: (timestamp, value) *)
  my_ts : int array;  (** per owned register: last timestamp issued *)
  mutable next_op : int;
  mutable phase : 'v phase;
  mutable done_ : 'v completion option;
}

let create ~n ~t ~me ?quorum ~registers ~init () =
  (match quorum with
  | Some _ -> ()
  | None ->
      if t < 0 || 2 * t >= n then invalid_arg "Abd.create: need 0 <= t < n/2");
  if registers < n then invalid_arg "Abd.create: registers >= n";
  {
    n;
    quorum = Option.value quorum ~default:(n - t);
    me;
    copies = Array.init registers (fun reg -> (0, init reg));
    my_ts = Array.make registers 0;
    next_op = 0;
    phase = Idle;
    done_ = None;
  }

let everyone t = List.init t.n (fun j -> j)

let fresh_op t =
  (match t.phase with
  | Idle -> ()
  | Writing _ | Collecting _ | Writing_back _ ->
      invalid_arg "Abd: operation already outstanding");
  t.next_op <- t.next_op + 1;
  t.next_op

let begin_write t ~reg value =
  let op = fresh_op t in
  t.my_ts.(reg) <- t.my_ts.(reg) + 1;
  t.phase <- Writing { op; acks = 0 };
  let m = Write_req { reg; ts = t.my_ts.(reg); value; op } in
  List.map (fun j -> (j, m)) (everyone t)

let begin_read t ~reg =
  let op = fresh_op t in
  t.phase <- Collecting { op; reg; replies = [] };
  let m = Read_req { reg; op } in
  List.map (fun j -> (j, m)) (everyone t)

let update_copy t ~reg ~ts ~value =
  let cur_ts, _ = t.copies.(reg) in
  if ts > cur_ts then t.copies.(reg) <- (ts, value)

let write_ack_received t op =
  match t.phase with
  | Writing w when w.op = op ->
      let acks = w.acks + 1 in
      if acks >= t.quorum then begin
        t.phase <- Idle;
        t.done_ <- Some Wrote
      end
      else t.phase <- Writing { w with acks }
  | Writing_back w when w.op = op ->
      let acks = w.acks + 1 in
      if acks >= t.quorum then begin
        t.phase <- Idle;
        t.done_ <- Some (Read_value w.value)
      end
      else t.phase <- Writing_back { w with acks }
  | Idle | Writing _ | Collecting _ | Writing_back _ -> ()

let handle t ~from msg =
  match msg with
  | Write_req { reg; ts; value; op } ->
      update_copy t ~reg ~ts ~value;
      [ (from, Write_ack { reg; op }) ]
  | Read_req { reg; op } ->
      let ts, value = t.copies.(reg) in
      [ (from, Read_reply { reg; ts; value; op }) ]
  | Write_ack { op; _ } ->
      write_ack_received t op;
      []
  | Read_reply { reg; ts; value; op } -> (
      match t.phase with
      | Collecting c when c.op = op && c.reg = reg ->
          let replies = (ts, value) :: c.replies in
          if List.length replies >= t.quorum then begin
            let best_ts, best =
              List.fold_left
                (fun (bts, bv) (ts', v') ->
                  if ts' > bts then (ts', v') else (bts, bv))
                (List.hd replies) (List.tl replies)
            in
            (* Write back before returning: atomicity. *)
            t.phase <- Writing_back { op = c.op; value = best; acks = 0 };
            update_copy t ~reg ~ts:best_ts ~value:best;
            let m = Write_req { reg; ts = best_ts; value = best; op = c.op } in
            List.map (fun j -> (j, m)) (everyone t)
          end
          else begin
            t.phase <- Collecting { c with replies };
            []
          end
      | Idle | Writing _ | Collecting _ | Writing_back _ -> [])

let take_completion t =
  let r = t.done_ in
  t.done_ <- None;
  r
