(** Asynchronous reliable-FIFO message passing with crash failures — the
    model of the Attiya–Bar-Noy–Dolev simulation (Section 6, step 1).

    Channels never lose or reorder messages; delivery delay is unbounded
    (the scheduler picks any non-empty channel). A crashed process neither
    processes nor sends. Nodes are mutable callbacks, so this substrate has
    no exhaustive mode — correctness here is checked with seeded random
    schedules. *)

type 'm node = {
  on_start : unit -> (int * 'm) list;
      (** messages to send when the process first runs *)
  on_message : from:int -> 'm -> (int * 'm) list;
}

type 'm t

val create : n:int -> nodes:(int -> 'm node) -> 'm t
(** [on_start] callbacks run immediately, in pid order. Processes may send
    to themselves. *)

val n : 'm t -> int

val deliver_random : Bits.Rng.t -> 'm t -> bool
(** Deliver one message from a uniformly chosen non-empty channel with a
    live destination; [false] when nothing is deliverable. *)

val crash : 'm t -> int -> unit
val crashed : 'm t -> int list

val quiescent : 'm t -> bool
(** No deliverable messages remain. *)

val deliveries : 'm t -> int

val run_random :
  rng:Bits.Rng.t -> ?max_events:int -> ?until:(unit -> bool) -> 'm t -> unit
(** Deliver until quiescent, [until ()] holds, or [max_events] (default
    1_000_000) deliveries happened. *)
