type field = { payload : bool list; tag : int }

let initial_field ~chunk =
  { payload = List.init (min chunk 1) (fun _ -> false); tag = 1 }

let field_bits ~chunk =
  if chunk < 1 then invalid_arg "Alt_bit.field_bits: chunk >= 1";
  if chunk = 1 then 2 else Bits.Width.bits_for chunk + chunk + 1

(* The measure charges the full chunk width regardless of how many payload
   bits a partial chunk carries: registers are fixed-size. *)
let measure_field ~chunk { payload; tag } =
  let used = List.length payload in
  if used < 1 || used > chunk then
    invalid_arg "Alt_bit.measure_field: payload size";
  ignore tag;
  field_bits ~chunk

type sender = {
  chunk : int;
  queue : bool Queue.t;
  mutable tag : int;  (** tag of the next chunk to publish *)
  mutable published : bool;  (** current tag on the wire, unacknowledged *)
}

let sender ~chunk =
  if chunk < 1 then invalid_arg "Alt_bit.sender: chunk >= 1";
  { chunk; queue = Queue.create (); tag = 0; published = false }

let send_string s msg =
  List.iter (fun b -> Queue.add b s.queue) (Codec.encode msg)

let sender_poll s ~ack_seen =
  if s.published then begin
    (* The receiver flipped its bit: the published chunk was accepted. *)
    if ack_seen = 1 - s.tag then begin
      s.published <- false;
      s.tag <- 1 - s.tag
    end;
    None
  end
  else if (not (Queue.is_empty s.queue)) && ack_seen = s.tag then begin
    let payload = ref [] in
    let count = ref 0 in
    while !count < s.chunk && not (Queue.is_empty s.queue) do
      payload := Queue.pop s.queue :: !payload;
      incr count
    done;
    s.published <- true;
    Some { payload = List.rev !payload; tag = s.tag }
  end
  else None

let sender_idle s = Queue.is_empty s.queue && not s.published

type receiver = { mutable expect : int; decoder : Codec.decoder }

let receiver () = { expect = 0; decoder = Codec.decoder () }

let receiver_poll r ~data_seen:{ payload; tag } =
  if tag = r.expect then begin
    r.expect <- 1 - r.expect;
    List.filter_map (Codec.decode r.decoder) payload
  end
  else []

let receiver_ack r = r.expect
