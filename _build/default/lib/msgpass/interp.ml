module P = Sched.Program

type ('v, 'i) cell = Coord of 'v | Input of 'i option

type ('v, 'i, 'a) t = {
  n : int;
  me : int;
  abd : ('v, 'i) cell Abd.t;
  mutable program : ('v, 'i, 'a) P.t;
  mutable decided : 'a option;
  mutable steps : int;
}

(* Begin the ABD operation for the program's next shared-memory step;
   returns its broadcast ([] when the program just decided). *)
let rec launch t =
  match t.program with
  | P.Return a ->
      t.decided <- Some a;
      []
  | P.Output (a, k) ->
      if t.decided = None then t.decided <- Some a;
      t.program <- k ();
      launch t
  | P.Write (v, _) -> Abd.begin_write t.abd ~reg:t.me (Coord v)
  | P.Read (j, _) -> Abd.begin_read t.abd ~reg:j
  | P.Write_input (x, _) ->
      Abd.begin_write t.abd ~reg:(t.n + t.me) (Input (Some x))
  | P.Read_input (j, _) -> Abd.begin_read t.abd ~reg:(t.n + j)

let create ~n ~t ~me ~init ~program =
  let init_cell reg = if reg < n then Coord init else Input None in
  let interp =
    {
      n;
      me;
      abd = Abd.create ~n ~t ~me ~registers:(2 * n) ~init:init_cell ();
      program;
      decided = None;
      steps = 0;
    }
  in
  (interp, launch interp)

let advance t completion =
  let continue program =
    t.steps <- t.steps + 1;
    t.program <- program;
    launch t
  in
  match (t.program, completion) with
  | P.Write (_, k), Abd.Wrote -> continue (k ())
  | P.Write_input (_, k), Abd.Wrote -> continue (k ())
  | P.Read (_, k), Abd.Read_value (Coord v) -> continue (k v)
  | P.Read_input (_, k), Abd.Read_value (Input x) -> continue (k x)
  | P.Return _, _
  | P.Output _, _
  | P.Write (_, _), _
  | P.Read (_, _), _
  | P.Write_input (_, _), _
  | P.Read_input (_, _), _ ->
      assert false (* completions match the op that launched them *)

(* A decided process keeps serving quorum requests — stopping would count
   against the crash budget of everyone else's liveness. *)
let handle t ~from msg =
  let sends = Abd.handle t.abd ~from msg in
  match Abd.take_completion t.abd with
  | None -> sends
  | Some completion -> sends @ advance t completion

let decision t = t.decided
let steps t = t.steps

let node (t, initial) =
  let first = ref (Some initial) in
  {
    Net.on_start =
      (fun () ->
        match !first with
        | Some sends ->
            first := None;
            sends
        | None -> []);
    on_message = (fun ~from msg -> handle t ~from msg);
  }
