module P = Sched.Program
open P.Infix

type register = { data : Alt_bit.field array; acks : int array }

let register_bits ~t ~chunk =
  ((t + 1) * Alt_bit.field_bits ~chunk) + (t + 1)

let measure ~t ~chunk { data; acks } =
  if Array.length data <> t + 1 || Array.length acks <> t + 1 then
    invalid_arg "Pipeline.measure: field counts";
  Array.fold_left
    (fun acc f -> acc + Alt_bit.measure_field ~chunk f)
    0 data
  + Array.fold_left
      (fun acc b -> acc + Bits.Width.uint ~max:1 b)
      0 acks

let initial ~n ~t ~chunk =
  ignore n;
  {
    data = Array.init (t + 1) (fun _ -> Alt_bit.initial_field ~chunk);
    acks = Array.make (t + 1) 0;
  }

let position_of x lst =
  let rec go i = function
    | [] -> invalid_arg "Pipeline: not a neighbour"
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 lst

let compile ~n ~t ?(chunk = 1) ~value ~input ~init ~program ~me () =
  let topology = Topology.augmented_ring ~n ~t in
  let succs = Topology.successors topology me in
  let preds = Topology.predecessors topology me in
  let env_codec =
    Wire.envelope_codec (Wire.abd_msg_codec (Wire.cell_codec value input))
  in
  (* Mutable per-run state: compiled programs are not fork-safe. *)
  let router = Router.create ~topology ~me in
  let interp, first = Interp.create ~n ~t ~me ~init ~program in
  let senders = List.map (fun s -> (s, Alt_bit.sender ~chunk)) succs in
  let receivers = List.map (fun p -> (p, Alt_bit.receiver ())) preds in
  let data =
    Array.of_list (List.map (fun _ -> Alt_bit.initial_field ~chunk) succs)
  in
  let enqueue (succ, envelope) =
    Alt_bit.send_string (List.assoc succ senders)
      (env_codec.Wire.to_string envelope)
  in
  let rec dispatch sends =
    List.iter
      (fun (dest, m) ->
        let locals, outs = Router.send router ~dest m in
        List.iter enqueue outs;
        List.iter
          (fun body -> dispatch (Interp.handle interp ~from:me body))
          locals)
      sends
  in
  let handle_incoming envelope =
    let deliveries, forwards = Router.receive router envelope in
    List.iter enqueue forwards;
    List.iter
      (fun (e : _ Router.envelope) ->
        dispatch (Interp.handle interp ~from:e.origin e.body))
      deliveries
  in
  dispatch first;
  let my_slot_at_pred p = position_of me (Topology.successors topology p) in
  let my_slot_at_succ s = position_of me (Topology.predecessors topology s) in
  let read_pred (p, recv) =
    let* reg = P.read p in
    let field = reg.data.(my_slot_at_pred p) in
    List.iter
      (fun str -> handle_incoming (env_codec.Wire.of_string str))
      (Alt_bit.receiver_poll recv ~data_seen:field);
    P.return ()
  in
  let read_succ index (s, snd_) =
    let* reg = P.read s in
    (match
       Alt_bit.sender_poll snd_ ~ack_seen:reg.acks.(my_slot_at_succ s)
     with
    | Some field -> data.(index) <- field
    | None -> ());
    P.return ()
  in
  let rec read_succs index = function
    | [] -> P.return ()
    | link :: rest ->
        let* () = read_succ index link in
        read_succs (index + 1) rest
  in
  let announced = ref false in
  let rec loop () =
    let* () = P.iter_list read_pred receivers in
    let* () = read_succs 0 senders in
    let reg =
      {
        data = Array.copy data;
        acks =
          Array.of_list
            (List.map (fun (_, r) -> Alt_bit.receiver_ack r) receivers);
      }
    in
    let* () = P.write reg in
    match Interp.decision interp with
    | Some d when not !announced ->
        announced := true;
        P.output d (loop ())
    | Some _ | None -> loop ()
  in
  loop ()

let algorithm ~n ~t ?(chunk = 1) ~value ~input ~init ~source ~name () =
  {
    Tasks.Harness.name;
    memory =
      (fun () ->
        Sched.Memory.create ~n
          ~budget:(Bits.Width.Bounded (register_bits ~t ~chunk))
          ~measure:(measure ~t ~chunk)
          ~init:(initial ~n ~t ~chunk));
    program =
      (fun ~pid ~input:task_input ->
        compile ~n ~t ~chunk ~value ~input ~init
          ~program:(source ~pid ~input:task_input)
          ~me:pid ());
  }
