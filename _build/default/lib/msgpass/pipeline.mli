(** Theorem 1.3 end-to-end (Proposition 6.1): compile any t-resilient
    shared-memory protocol that uses unbounded registers into one whose
    registers hold [3 (t+1)] bits, for [t < n/2].

    The three stages of Section 6, fused into one per-process event loop:

    + every read/write of the source protocol becomes an ABD quorum
      operation over messages ({!Interp} / {!Abd});
    + messages travel the t-augmented ring by flooding ({!Router},
      {!Topology}) — [(t+1)]-connectivity keeps all correct processes
      reachable under at most [t] crashes;
    + each ring link is an alternating-bit channel ({!Alt_bit}) living in
      the writer's register: per process, [t+1] outgoing data fields of
      [2] bits and [t+1] incoming acknowledgement bits — [3 (t+1)] bits
      total, independent of the source protocol's register width.

    Every loop iteration reads the [2 (t+1)] neighbour registers and writes
    its own once. Processes decide via {!Sched.Program.Output} and keep
    serving quorums forever (a halted majority would block survivors), so
    run compiled protocols with [Scheduler.run_random ~until_outputs:true].
    Compiled programs carry hidden mutable state: they are {e not} fork-safe
    and must not be run under {!Sched.Explore}. *)

type register = {
  data : Alt_bit.field array;  (** per successor: outgoing channel field *)
  acks : int array;  (** per predecessor: incoming channel acknowledgement *)
}

val register_bits : t:int -> chunk:int -> int
(** [3 (t+1)] when [chunk = 1]. *)

val measure : t:int -> chunk:int -> register Bits.Width.measure
val initial : n:int -> t:int -> chunk:int -> register

val compile :
  n:int ->
  t:int ->
  ?chunk:int ->
  value:'v Wire.codec ->
  input:'i Wire.codec ->
  init:'v ->
  program:('v, 'i, 'a) Sched.Program.t ->
  me:int ->
  unit ->
  (register, 'j, 'a) Sched.Program.t
(** [chunk] (default 1) is the alternating-bit payload width — the paper's
    construction at 1, a width-vs-steps ablation above. *)

val algorithm :
  n:int ->
  t:int ->
  ?chunk:int ->
  value:'v Wire.codec ->
  input:'i Wire.codec ->
  init:'v ->
  source:(pid:int -> input:'i -> ('v, 'i, 'a) Sched.Program.t) ->
  name:string ->
  unit ->
  (register, 'i, 'a) Tasks.Harness.algorithm
(** Harness packaging: fresh [3 (t+1)]-bit memory, one compiled process per
    pid. Check with {!Tasks.Harness.check_random} (resilience <= t) only. *)
