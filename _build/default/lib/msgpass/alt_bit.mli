(** The alternating-bit protocol over single-writer register fields
    (Section 6, step 3): a reliable FIFO bit channel built from one data
    field written by the sender and one acknowledgement bit written by the
    receiver.

    The sender publishes a datum tagged with its alternating bit only when
    the receiver's acknowledgement equals the tag; the receiver accepts a
    datum exactly when its tag equals its own acknowledgement bit, then
    flips it. The initial data field carries tag 1 while both sides expect
    tag 0, so nothing is accepted before the first real send.

    [chunk] generalizes the paper's one-bit payload to up to [chunk] bits
    per handshake — an ablation of register width against step count. With
    [chunk = 1] the data field is the paper's 2 bits (payload + tag) and a
    whole process register costs [3 (t+1)] bits. *)

type field = { payload : bool list; tag : int }
(** What the sender publishes: between 1 and [chunk] framed bits. *)

val initial_field : chunk:int -> field
(** Tag-1 idle value; never accepted. *)

val field_bits : chunk:int -> int
(** Register width of one data field: 2 for [chunk = 1], otherwise
    [bits_for chunk + chunk + 1] (an explicit length is needed once chunks
    can be partial). *)

val measure_field : chunk:int -> field Bits.Width.measure

type sender

val sender : chunk:int -> sender
val send_string : sender -> string -> unit
(** Queue a message ({!Codec.frame}d). *)

val sender_poll : sender -> ack_seen:int -> field option
(** New data field to publish, if the acknowledgement allows it. *)

val sender_idle : sender -> bool

type receiver

val receiver : unit -> receiver

val receiver_poll : receiver -> data_seen:field -> string list
(** Accept at most one chunk; a chunk can complete several framed messages. *)

val receiver_ack : receiver -> int
