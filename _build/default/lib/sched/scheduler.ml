type 'a status = Running | Decided of 'a | Crashed

type ('v, 'i, 'a) state = {
  mem : ('v, 'i) Memory.t;
  progs : ('v, 'i, 'a) Program.t array;
  status : 'a status array;
  outputs : 'a option array;
  step_counts : int array;
  mutable total_steps : int;
  mutable events : 'v Trace.event list;
  record_trace : bool;
}

let record t pid op =
  if t.record_trace then t.events <- { Trace.pid; op } :: t.events

(* [Return] and [Output] heads need no memory step: deciding is local. *)
let rec settle t pid =
  match t.progs.(pid) with
  | Program.Return v ->
      t.status.(pid) <- Decided v;
      if t.outputs.(pid) = None then t.outputs.(pid) <- Some v;
      record t pid Trace.Decide
  | Program.Output (v, k) ->
      if t.outputs.(pid) = None then begin
        t.outputs.(pid) <- Some v;
        record t pid Trace.Decide
      end;
      t.progs.(pid) <- k ();
      settle t pid
  | Program.Write _ | Program.Read _ | Program.Write_input _
  | Program.Read_input _ ->
      ()

let start ?(record_trace = false) ~memory ~programs () =
  let n = Memory.n memory in
  let t =
    {
      mem = memory;
      progs = Array.init n programs;
      status = Array.make n Running;
      outputs = Array.make n None;
      step_counts = Array.make n 0;
      total_steps = 0;
      events = [];
      record_trace;
    }
  in
  for pid = 0 to n - 1 do
    settle t pid
  done;
  t

let memory t = t.mem
let n t = Memory.n t.mem

let step t pid =
  (match t.status.(pid) with
  | Running -> ()
  | Decided _ | Crashed ->
      invalid_arg (Printf.sprintf "Scheduler.step: process %d halted" pid));
  (match t.progs.(pid) with
  | Program.Return _ | Program.Output _ -> assert false (* settled away *)
  | Program.Write (v, k) ->
      Memory.write t.mem ~pid v;
      record t pid (Trace.Write v);
      t.progs.(pid) <- k ()
  | Program.Read (j, k) ->
      let v = Memory.read t.mem j in
      record t pid (Trace.Read (j, v));
      t.progs.(pid) <- k v
  | Program.Write_input (v, k) ->
      Memory.write_input t.mem ~pid v;
      record t pid Trace.Write_input;
      t.progs.(pid) <- k ()
  | Program.Read_input (j, k) ->
      let v = Memory.read_input t.mem j in
      record t pid (Trace.Read_input j);
      t.progs.(pid) <- k v);
  t.step_counts.(pid) <- t.step_counts.(pid) + 1;
  t.total_steps <- t.total_steps + 1;
  settle t pid

let crash t pid =
  (match t.status.(pid) with
  | Running -> ()
  | Decided _ | Crashed ->
      invalid_arg (Printf.sprintf "Scheduler.crash: process %d halted" pid));
  t.status.(pid) <- Crashed;
  record t pid Trace.Crash

let is_running t pid =
  match t.status.(pid) with Running -> true | Decided _ | Crashed -> false

let status t pid = t.status.(pid)

let running t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    match t.status.(pid) with
    | Running -> acc := pid :: !acc
    | Decided _ | Crashed -> ()
  done;
  !acc

let all_halted t = running t = []

let decisions t = Array.copy t.outputs

let decided_values t =
  Array.to_list t.outputs |> List.filter_map (fun o -> o)

(* Every non-crashed process has announced a decision (via [Return] or
   [Output]). *)
let all_output t =
  let ok = ref true in
  for pid = 0 to n t - 1 do
    match t.status.(pid) with
    | Crashed -> ()
    | Running | Decided _ -> if t.outputs.(pid) = None then ok := false
  done;
  !ok

let crashed t =
  let acc = ref [] in
  for pid = n t - 1 downto 0 do
    match t.status.(pid) with
    | Crashed -> acc := pid :: !acc
    | Running | Decided _ -> ()
  done;
  !acc

let steps_taken t = t.total_steps
let steps_of t pid = t.step_counts.(pid)
let trace t = List.rev t.events

let copy t =
  {
    t with
    mem = Memory.copy t.mem;
    progs = Array.copy t.progs;
    status = Array.copy t.status;
    outputs = Array.copy t.outputs;
    step_counts = Array.copy t.step_counts;
  }

let run_schedule t pids =
  List.iter
    (fun pid ->
      match t.status.(pid) with
      | Running -> step t pid
      | Decided _ | Crashed -> ())
    pids

let run_round_robin ?(max_steps = 1_000_000) t =
  let budget = ref max_steps in
  let rec loop () =
    match running t with
    | [] -> ()
    | procs ->
        List.iter
          (fun pid ->
            if !budget > 0 && is_running t pid then begin
              step t pid;
              decr budget
            end)
          procs;
        if !budget > 0 then loop ()
  in
  loop ()

let run_random ?(max_steps = 1_000_000) ?(crashes = []) ?(until_outputs = false)
    rng t =
  let crash_after = Array.make (n t) max_int in
  List.iter (fun (pid, after) -> crash_after.(pid) <- after) crashes;
  let maybe_crash pid =
    is_running t pid && t.step_counts.(pid) >= crash_after.(pid)
  in
  let budget = ref max_steps in
  let rec loop () =
    List.iter (fun pid -> if maybe_crash pid then crash t pid) (running t);
    if not (until_outputs && all_output t) then
      match running t with
      | [] -> ()
      | procs ->
          if !budget > 0 then begin
            step t (Bits.Rng.pick rng procs);
            decr budget;
            loop ()
          end
  in
  loop ()

let run_solo ?(max_steps = 1_000_000) t pid =
  let budget = ref max_steps in
  while is_running t pid && !budget > 0 do
    step t pid;
    decr budget
  done
