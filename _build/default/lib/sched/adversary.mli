(** Programmable adversarial schedulers.

    The t-resilient model quantifies over {e all} schedules; random and
    exhaustive scheduling cover breadth, but worst cases for a given
    protocol are usually reached by a {e strategy}. An adversary observes
    only what the model lets a scheduler observe — which processes are
    running and how many steps each has taken, never register contents or
    local states (schedulers are oblivious to data in the asynchronous
    model) — and picks the next process to step. *)

type view = {
  step : int;  (** steps taken so far in the whole execution *)
  running : int list;
  steps_of : int -> int;  (** per-process step counts *)
}

type t = view -> int
(** Next process to step; must be one of [view.running]. *)

val run :
  ?max_steps:int -> ?until_outputs:bool -> t ->
  ('v, 'i, 'a) Scheduler.state -> unit
(** Drive the state with the adversary until everything halts (or, with
    [until_outputs], until every live process has decided), or the budget
    (default 1_000_000) runs out.
    @raise Invalid_argument if the adversary picks a non-running process. *)

val lockstep : t
(** Always step a least-advanced running process (ties to the smallest id):
    strict alternation while everyone runs — keeps Algorithm 1's two
    processes synchronized for the full 2k+3 steps. *)

val solo_then : first:int -> t
(** Run [first] until it halts, then fall back to {!lockstep} for the rest
    — the paper's "solo execution followed by late arrivals" pattern. *)

val starve : victim:int -> budget:int -> t
(** Schedule everyone but [victim] in lockstep for [budget] steps, then
    include the victim — maximal staleness without crashing it. *)

val balanced : t
(** Synonym for {!lockstep} (least-advanced-first is what strict
    alternation degenerates to under ties). *)
