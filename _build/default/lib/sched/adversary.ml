type view = { step : int; running : int list; steps_of : int -> int }

type t = view -> int

let run ?(max_steps = 1_000_000) ?(until_outputs = false) adversary state =
  let budget = ref max_steps in
  let continue () =
    (not (until_outputs && Scheduler.all_output state)) && !budget > 0
  in
  let rec loop () =
    match Scheduler.running state with
    | [] -> ()
    | running ->
        if continue () then begin
          let view =
            {
              step = Scheduler.steps_taken state;
              running;
              steps_of = Scheduler.steps_of state;
            }
          in
          let pid = adversary view in
          if not (List.mem pid running) then
            invalid_arg
              (Printf.sprintf "Adversary.run: pid %d is not running" pid);
          Scheduler.step state pid;
          decr budget;
          loop ()
        end
  in
  loop ()

let lockstep view =
  (* Among running processes, pick the one with the fewest steps; ties to
     the smallest id: strict alternation when counts stay equal. *)
  List.fold_left
    (fun best pid ->
      if view.steps_of pid < view.steps_of best then pid else best)
    (List.hd view.running) (List.tl view.running)

let balanced = lockstep

let solo_then ~first view =
  if List.mem first view.running then first else lockstep view

let starve ~victim ~budget view =
  let others = List.filter (fun pid -> pid <> victim) view.running in
  if view.step < budget && others <> [] then
    lockstep { view with running = others }
  else lockstep view
