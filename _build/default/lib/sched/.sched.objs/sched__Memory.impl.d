lib/sched/memory.ml: Array Bits
