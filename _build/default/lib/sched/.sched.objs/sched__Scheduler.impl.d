lib/sched/scheduler.ml: Array Bits List Memory Printf Program Trace
