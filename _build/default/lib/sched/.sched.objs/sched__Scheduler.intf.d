lib/sched/scheduler.mli: Bits Memory Program Trace
