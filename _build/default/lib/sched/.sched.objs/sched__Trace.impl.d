lib/sched/trace.ml: Format List
