lib/sched/adversary.ml: List Printf Scheduler
