lib/sched/explore.ml: List Scheduler
