lib/sched/snapshots.mli: Program
