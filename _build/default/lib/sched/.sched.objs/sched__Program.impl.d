lib/sched/program.ml: Array List
