lib/sched/memory.mli: Bits
