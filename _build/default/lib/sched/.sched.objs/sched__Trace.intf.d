lib/sched/trace.mli: Format
