lib/sched/program.mli:
