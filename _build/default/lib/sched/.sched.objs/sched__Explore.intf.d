lib/sched/explore.mli: Scheduler
