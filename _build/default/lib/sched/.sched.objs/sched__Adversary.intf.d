lib/sched/adversary.mli: Scheduler
