lib/sched/snapshots.ml: Array Program
