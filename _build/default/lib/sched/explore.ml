let interleavings ?(max_steps = 10_000) ?(on_truncated = fun _ -> ()) ~init
    visit =
  let rec go state depth =
    match Scheduler.running state with
    | [] -> visit state
    | procs ->
        if depth >= max_steps then on_truncated state
        else
          List.iter
            (fun pid ->
              let fork = Scheduler.copy state in
              Scheduler.step fork pid;
              go fork (depth + 1))
            procs
  in
  go (init ()) 0

let interleavings_with_crashes ?(max_steps = 10_000)
    ?(on_truncated = fun _ -> ()) ~max_crashes ~init visit =
  let rec go state depth crashes =
    match Scheduler.running state with
    | [] -> visit state
    | procs ->
        if depth >= max_steps then on_truncated state
        else begin
          List.iter
            (fun pid ->
              let fork = Scheduler.copy state in
              Scheduler.step fork pid;
              go fork (depth + 1) crashes)
            procs;
          if crashes < max_crashes then
            List.iter
              (fun pid ->
                let fork = Scheduler.copy state in
                Scheduler.crash fork pid;
                go fork depth (crashes + 1))
              procs
        end
  in
  go (init ()) 0 0

exception Found

let find ?max_steps ~init pred =
  let result = ref None in
  (try
     interleavings ?max_steps ~init (fun state ->
         if pred state then begin
           result := Some state;
           raise Found
         end)
   with Found -> ());
  !result

let count ?max_steps ~init () =
  let k = ref 0 in
  interleavings ?max_steps ~init (fun _ -> incr k);
  !k
