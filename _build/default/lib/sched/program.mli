(** Protocols as resumable step machines.

    A protocol for one process is a value of type [('v, 'i, 'a) t]: a free
    monad over the four atomic shared-memory operations of the paper's model
    — write the process's own SWMR register, read any register, write the
    process's write-once input register, read any input register. ['v] is the
    coordination-register value type, ['i] the input-register type, ['a] the
    decision type.

    Because the program is a value suspended between atomic steps, a
    scheduler can interleave processes arbitrarily, replay a schedule
    bit-for-bit, stop a process forever (a crash), or exhaustively enumerate
    interleavings. Protocol code must be pure between steps (all state in the
    continuation), which the combinators below make natural. *)

type ('v, 'i, 'a) t =
  | Return of 'a  (** decide and halt *)
  | Write of 'v * (unit -> ('v, 'i, 'a) t)  (** write own register R_i *)
  | Read of int * ('v -> ('v, 'i, 'a) t)  (** read register R_j *)
  | Write_input of 'i * (unit -> ('v, 'i, 'a) t)
      (** write own input register I_i (write-once) *)
  | Read_input of int * ('i option -> ('v, 'i, 'a) t)
      (** read input register I_j; [None] when not yet written *)
  | Output of 'a * (unit -> ('v, 'i, 'a) t)
      (** announce the decision but keep running — used by simulations whose
          processes must keep serving others after deciding (deciding and
          halting are distinct events in the model); costs no memory step *)

val return : 'a -> ('v, 'i, 'a) t
val bind : ('v, 'i, 'a) t -> ('a -> ('v, 'i, 'b) t) -> ('v, 'i, 'b) t
val map : ('a -> 'b) -> ('v, 'i, 'a) t -> ('v, 'i, 'b) t

val write : 'v -> ('v, 'i, unit) t
val read : int -> ('v, 'i, 'v) t
val write_input : 'i -> ('v, 'i, unit) t
val read_input : int -> ('v, 'i, 'i option) t
val output : 'a -> ('v, 'i, 'a) t -> ('v, 'i, 'a) t
(** [output a rest] announces [a] and continues as [rest]. *)

val collect : int -> ('v, 'i, 'v array) t
(** [collect n] reads registers [0..n-1] one by one in index order (a
    non-atomic collect, [n] steps). *)

val iter_list : ('a -> ('v, 'i, unit) t) -> 'a list -> ('v, 'i, unit) t

module Infix : sig
  val ( let* ) : ('v, 'i, 'a) t -> ('a -> ('v, 'i, 'b) t) -> ('v, 'i, 'b) t
  val ( let+ ) : ('v, 'i, 'a) t -> ('a -> 'b) -> ('v, 'i, 'b) t
end
