type ('v, 'i, 'a) t =
  | Return of 'a
  | Write of 'v * (unit -> ('v, 'i, 'a) t)
  | Read of int * ('v -> ('v, 'i, 'a) t)
  | Write_input of 'i * (unit -> ('v, 'i, 'a) t)
  | Read_input of int * ('i option -> ('v, 'i, 'a) t)
  | Output of 'a * (unit -> ('v, 'i, 'a) t)

let return x = Return x

let rec bind m f =
  match m with
  | Return x -> f x
  | Write (v, k) -> Write (v, fun () -> bind (k ()) f)
  | Read (j, k) -> Read (j, fun v -> bind (k v) f)
  | Write_input (i, k) -> Write_input (i, fun () -> bind (k ()) f)
  | Read_input (j, k) -> Read_input (j, fun v -> bind (k v) f)
  | Output (_, _) ->
      invalid_arg "Program.bind: cannot bind past an Output decision"

let map f m = bind m (fun x -> Return (f x))
let write v = Write (v, fun () -> Return ())
let read j = Read (j, fun v -> Return v)
let write_input i = Write_input (i, fun () -> Return ())
let read_input j = Read_input (j, fun v -> Return v)
let output a rest = Output (a, fun () -> rest)

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

open Infix

let collect n =
  let rec loop j acc =
    if j = n then Return (Array.of_list (List.rev acc))
    else
      let* v = read j in
      loop (j + 1) (v :: acc)
  in
  loop 0 []

let rec iter_list f = function
  | [] -> Return ()
  | x :: xs ->
      let* () = f x in
      iter_list f xs
