open Program.Infix

let arrays_equal equal a b =
  let rec loop i = i = Array.length a || (equal a.(i) b.(i) && loop (i + 1)) in
  Array.length a = Array.length b && loop 0

let double_collect ~n ~equal =
  let rec scan previous =
    let* current = Program.collect n in
    if arrays_equal equal previous current then Program.return current
    else scan current
  in
  let* first = Program.collect n in
  scan first
