(** Snapshots built from read/write registers (Lemma 2.3 in spirit).

    [double_collect ~n ~equal] repeatedly collects all [n] registers until
    two successive collects agree, and returns that collect. A clean double
    collect is a linearizable snapshot (its value was instantaneously present
    in memory between the two collects).

    Termination caveat: a double collect is wait-free only when the protocols
    sharing the memory perform finitely many writes in total (true for every
    one-shot protocol in this repository); under infinitely many writes a
    scanner can starve, which is exactly why Afek et al. needed embedded
    scans. The experiments count steps, so the simple bounded-write variant
    is the honest choice. *)

val double_collect :
  n:int -> equal:('v -> 'v -> bool) -> ('v, 'i, 'v array) Program.t
(** At least [2 n] read steps; at most [2 n (W + 1)] where [W] is the number
    of writes concurrent with the scan. *)
