(** Exhaustive enumeration of schedules — the model-checking side of the
    simulator.

    Impossibility arguments in the paper quantify over {e all} executions;
    for small systems (2–3 processes, short protocols) we can visit all of
    them. The number of interleavings of two L-step programs is
    [C(2L, L) ~ 4^L], so callers are expected to keep protocols short here
    and use {!Scheduler.run_random} for anything bigger. *)

val interleavings :
  ?max_steps:int ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  unit
(** Depth-first enumeration of every maximal interleaving of the running
    processes (no crashes): the visitor is called once per execution in which
    every process ran to decision. Runs exceeding [max_steps] (default
    10_000) total steps are abandoned after calling [on_truncated] (default:
    nothing) — a guard against non-wait-free protocols. *)

val interleavings_with_crashes :
  ?max_steps:int ->
  ?on_truncated:(('v, 'i, 'a) Scheduler.state -> unit) ->
  max_crashes:int ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> unit) ->
  unit
(** Like {!interleavings} but additionally branches, before every step, on
    crashing any running process, as long as fewer than [max_crashes] have
    crashed. Visits each maximal execution (all processes decided or
    crashed). Exponentially larger than {!interleavings}; keep it tiny. *)

val find :
  ?max_steps:int ->
  init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  (('v, 'i, 'a) Scheduler.state -> bool) ->
  ('v, 'i, 'a) Scheduler.state option
(** First complete crash-free execution satisfying the predicate, or [None]
    if none exists. *)

val count : ?max_steps:int -> init:(unit -> ('v, 'i, 'a) Scheduler.state) ->
  unit -> int
(** Number of complete crash-free interleavings. *)
