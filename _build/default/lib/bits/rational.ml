type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (Stdlib.abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let half = make 1 2
let num t = t.num
let den t = t.den

(* Intermediate products can overflow 63-bit ints only for denominators far
   beyond anything the experiments use (k <= 3^20); no overflow guard. *)
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let spread = function
  | [] -> zero
  | v :: vs ->
      let lo = List.fold_left min v vs and hi = List.fold_left max v vs in
      sub hi lo

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
