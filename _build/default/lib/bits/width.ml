type budget = Bounded of int | Unbounded

exception Overflow of { budget : int; needed : int }

let check budget needed =
  match budget with
  | Unbounded -> ()
  | Bounded b -> if needed > b then raise (Overflow { budget = b; needed })

let bits_for n =
  if n < 0 then invalid_arg "Width.bits_for: negative";
  let rec loop acc v = if v = 0 then acc else loop (acc + 1) (v lsr 1) in
  loop 0 n

let pp ppf = function
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Bounded b -> Format.fprintf ppf "%d bit%s" b (if b = 1 then "" else "s")

type 'a measure = 'a -> int

let bit (_ : bool) = 1

let uint ~max v =
  if v < 0 || v > max then
    invalid_arg (Printf.sprintf "Width.uint: %d outside [0..%d]" v max);
  bits_for max

let enum ~cardinal _ = bits_for (cardinal - 1)
let option m = function None -> 1 | Some v -> 1 + m v
let pair ma mb (a, b) = ma a + mb b
let triple ma mb mc (a, b, c) = ma a + mb b + mc c
let list m vs = 1 + List.fold_left (fun acc v -> acc + 1 + m v) 0 vs
let array m vs = 1 + Array.fold_left (fun acc v -> acc + 1 + m v) 0 vs
let unbounded _ = 0
