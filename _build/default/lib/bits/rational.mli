(** Exact rational arithmetic.

    The approximate-agreement tasks of the paper produce outputs of the form
    [m/k]; the "at most epsilon apart" checks must be exact, so all decision
    values flow through this module rather than floats. Values are kept in
    normal form: positive denominator, numerator and denominator coprime. *)

type t

val make : int -> int -> t
(** [make num den] is the rational [num/den] in normal form.
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val half : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val spread : t list -> t
(** [spread vs] is [max vs - min vs]; the agreement distance of a set of
    decisions. [spread []] is {!zero}. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
