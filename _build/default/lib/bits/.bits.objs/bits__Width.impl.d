lib/bits/width.ml: Array Format List Printf
