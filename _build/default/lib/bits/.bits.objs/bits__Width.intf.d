lib/bits/width.mli: Format
