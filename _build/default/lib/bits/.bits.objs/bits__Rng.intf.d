lib/bits/rng.mli:
