lib/bits/rational.mli: Format
