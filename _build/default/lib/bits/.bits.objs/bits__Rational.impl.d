lib/bits/rational.ml: Format List Stdlib
