lib/bits/rng.ml: Array Int64 List
