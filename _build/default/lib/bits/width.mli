(** Register bit budgets.

    The central resource of the paper is the number of bits a shared register
    can hold. Every register in the simulator carries a {!budget}; every write
    is checked against it through a {{!measure}measure} describing how many
    bits the written value occupies. Exceeding the budget raises {!Overflow}
    so "this algorithm uses b-bit registers" is machine-enforced. *)

type budget =
  | Bounded of int  (** at most this many bits per register *)
  | Unbounded  (** the full-information setting *)

exception Overflow of { budget : int; needed : int }

val check : budget -> int -> unit
(** [check budget needed] raises {!Overflow} when a [needed]-bit value does
    not fit in [budget]. *)

val bits_for : int -> int
(** [bits_for n] is the number of bits of the fixed-width unsigned encoding
    able to hold all of [0..n]; [bits_for 0 = 0].
    @raise Invalid_argument on negative [n]. *)

val pp : Format.formatter -> budget -> unit

(** {1 Measures}

    A measure assigns a bit size to each value of a type. Measures compose so
    an algorithm can declare the exact layout of its register contents. *)

type 'a measure = 'a -> int

val bit : bool measure
(** One bit. *)

val uint : max:int -> int measure
(** Fixed-width unsigned integer field able to hold [0..max].
    @raise Invalid_argument when applied to a value outside the range. *)

val enum : cardinal:int -> 'a measure
(** A value from a known finite set of [cardinal] elements, stored as an
    index. *)

val option : 'a measure -> 'a option measure
(** One presence bit plus the payload (absent payload costs its maximal size
    is {e not} assumed; [None] costs 1 bit). *)

val pair : 'a measure -> 'b measure -> ('a * 'b) measure
val triple : 'a measure -> 'b measure -> 'c measure -> ('a * 'b * 'c) measure

val list : 'a measure -> 'a list measure
(** Sum of element sizes plus one continuation bit per element and one
    terminator bit (self-delimiting). *)

val array : 'a measure -> 'a array measure

val unbounded : 'a measure
(** Measure for values kept in unbounded registers: always 0 bits, i.e. never
    triggers {!Overflow}. Only meaningful together with {!Unbounded} or when
    the size genuinely does not matter. *)
