let print ppf ~title ~headers rows =
  let all = headers :: rows in
  let columns = List.length headers in
  let width c =
    List.fold_left
      (fun acc r ->
        max acc (String.length (try List.nth r c with Failure _ -> "")))
      0 all
  in
  let widths = List.init columns width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row r =
    Format.fprintf ppf "  %s@\n"
      (String.concat "  " (List.mapi (fun c s -> pad s (List.nth widths c)) r))
  in
  Format.fprintf ppf "%s@\n" title;
  print_row headers;
  Format.fprintf ppf "  %s@\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows;
  Format.fprintf ppf "@\n"

let cell_q q =
  let f = Bits.Rational.to_float q in
  if Bits.Rational.den q = 1 then Bits.Rational.to_string q
  else Format.asprintf "%s (~%.4g)" (Bits.Rational.to_string q) f

let cell_bool b = if b then "yes" else "NO"
