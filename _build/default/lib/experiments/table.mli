(** Plain-text tables for the experiment reports. *)

val print :
  Format.formatter -> title:string -> headers:string list ->
  string list list -> unit
(** Aligned columns, a rule under the header, a blank line after. *)

val cell_q : Bits.Rational.t -> string
(** Rational rendered with a float approximation, e.g. "1/9 (~0.1111)". *)

val cell_bool : bool -> string
(** "yes" / "NO". *)
