lib/experiments/viz.mli: Tasks
