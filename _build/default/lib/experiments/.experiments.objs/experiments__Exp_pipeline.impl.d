lib/experiments/exp_pipeline.ml: Bits Core Format List Msgpass Printf Table Tasks
