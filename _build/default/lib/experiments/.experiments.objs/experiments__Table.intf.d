lib/experiments/table.mli: Bits Format
