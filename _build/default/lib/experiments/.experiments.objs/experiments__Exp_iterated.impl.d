lib/experiments/exp_iterated.ml: Array Bits Format Int Iterated List Printf String Table
