lib/experiments/exp_universal.ml: Core Format String Table Tasks
