lib/experiments/viz.ml: Array Bits Buffer Core Format Iterated List Printf Sched Tasks
