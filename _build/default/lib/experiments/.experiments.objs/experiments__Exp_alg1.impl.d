lib/experiments/exp_alg1.ml: Array Bits Core Format List Printf Sched Table Tasks
