lib/experiments/exp_consensus.ml: Core Format List Table
