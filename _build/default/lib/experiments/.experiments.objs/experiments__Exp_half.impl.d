lib/experiments/exp_half.ml: Array Format List Msgpass Printf Table
