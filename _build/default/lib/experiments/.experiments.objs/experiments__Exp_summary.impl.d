lib/experiments/exp_summary.ml: Array Bits Core Format Int Iterated List Msgpass Table Tasks
