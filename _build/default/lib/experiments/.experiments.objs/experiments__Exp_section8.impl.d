lib/experiments/exp_section8.ml: Array Bits Core Format Iterated List Printf Sched Table Tasks
