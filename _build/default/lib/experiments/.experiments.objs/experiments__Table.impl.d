lib/experiments/table.ml: Bits Format List String
