lib/experiments/registry.mli: Format
