lib/experiments/exp_embedding.ml: Core Format Iterated List Printf Table Tasks
