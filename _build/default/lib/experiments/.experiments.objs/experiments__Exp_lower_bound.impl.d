lib/experiments/exp_lower_bound.ml: Bits Core Format List Printf String Table
