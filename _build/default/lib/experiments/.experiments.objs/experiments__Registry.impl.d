lib/experiments/registry.ml: Exp_alg1 Exp_consensus Exp_embedding Exp_half Exp_iterated Exp_lower_bound Exp_pipeline Exp_section8 Exp_summary Exp_universal Format List String
