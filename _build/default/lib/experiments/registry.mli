(** The experiment registry: every figure and theorem of the paper mapped to
    a runnable report (the per-experiment index of DESIGN.md). *)

type t = {
  id : string;  (** e.g. "E2" *)
  slug : string;  (** e.g. "fig2-alg1-executions" *)
  paper : string;  (** the figure/theorem reproduced *)
  run : Format.formatter -> unit;
}

val all : t list
(** In id order. *)

val find : string -> t option
(** Lookup by id or slug, case-insensitive. *)
