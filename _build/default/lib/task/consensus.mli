(** The consensus task (Section 2): every correct process decides the input
    of some process, and all decisions are identical. Unsolvable already in
    the 1-resilient model (Lemma 2.1) — present here as the target of the
    Section 4 reduction and of the model-checking experiment E11. *)

val task :
  n:int -> values:'a list -> equal:('a -> 'a -> bool) ->
  pp:(Format.formatter -> 'a -> unit) -> ('a, 'a) Task.t

val binary : n:int -> (int, int) Task.t
(** Consensus over inputs {0, 1}. *)
