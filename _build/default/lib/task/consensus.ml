let task ~n ~values ~equal ~pp =
  let legal ~inputs ~outputs =
    let decided =
      Array.to_list outputs |> List.filter_map (fun o -> o)
    in
    let validity d = Array.exists (fun x -> equal x d) inputs in
    let agreement =
      match decided with
      | [] -> true
      | d :: rest -> List.for_all (equal d) rest
    in
    agreement && List.for_all validity decided
  in
  {
    Task.name = "consensus";
    arity = n;
    input_domain = values;
    legal_inputs = (fun _ -> true);
    legal;
    pp_input = pp;
    pp_output = pp;
  }

let binary ~n =
  task ~n ~values:[ 0; 1 ] ~equal:Int.equal ~pp:Format.pp_print_int
