(** Binary epsilon-agreement (Section 2), discretized with epsilon = 1/k:
    inputs in {0, 1}, outputs of the form m/k in [0, 1] such that

    - validity: if every process starts with the same x, every decision is x;
    - agreement: all decisions are at most 1/k apart (exact rationals). *)

val task : n:int -> k:int -> (int, Bits.Rational.t) Task.t
(** @raise Invalid_argument unless [k >= 1]. *)

val epsilon : k:int -> Bits.Rational.t
(** [1/k]. *)

val on_grid : k:int -> Bits.Rational.t -> bool
(** Whether a value is of the form m/k with 0 <= m <= k. *)
