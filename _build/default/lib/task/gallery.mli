(** A gallery of two-process tasks in Biran–Moran–Zaks form.

    The solvable ones exercise Algorithm 2 and the {!Bmz} plan construction;
    the unsolvable ones witness that {!Bmz.plan} correctly rejects tasks
    whose output graphs are disconnected or uncoverable (the necessary
    direction of Lemma 5.7). *)

val eps_grid : k:int -> (int, Bits.Rational.t) Bmz.two_task
(** Discretized binary epsilon-agreement: outputs are pairs [(a, b)] on the
    grid [m/k] with [|a - b| <= 1/k]; equal inputs force that input.
    Solvable for every [k >= 1]. *)

val renaming3 : (int, int) Bmz.two_task
(** Renaming into the name space {0, 1, 2}: processes output distinct names,
    inputs (in {0, 1}) unconstrained. Solvable. *)

val always_zero : (int, int) Bmz.two_task
(** Trivial calibration task: both processes must output 0. Solvable with a
    single output configuration. *)

val hull_agreement : (int, int) Bmz.two_task
(** Ternary inputs {0, 1, 2}; outputs are integers within the input hull and
    at most 1 apart — an integer-grid approximate agreement. Solvable, and
    exercises Algorithm 2 with a non-binary input domain. *)

val weak_consensus : (int, int) Bmz.two_task
(** Agree on the common input when inputs coincide; anything in {0, 1}
    otherwise. Solvable — the relaxation that separates consensus's validity
    from its agreement. *)

val binary_consensus : (int, int) Bmz.two_task
(** Two-process binary consensus. {e Not} 1-resilient solvable (Lemma 2.1):
    the output graph restricted to mixed inputs is disconnected. *)

val exact_max : (int, int) Bmz.two_task
(** Both processes must output max(x0, x1) over ternary inputs. {e Not}
    solvable: a solo process cannot commit (covering fails), the ternary
    cousin of {!or_task}. *)

val noisy_grid : (int, int) Bmz.two_task
(** The integer-grid agreement of eps-grid (k = 1) with a spurious isolated
    output configuration (9, 9) that Delta also allows on mixed inputs.
    With O' = O the output graph is disconnected, so {!Bmz.plan} rejects
    it; {!Bmz.plan_searching} finds the witness subset without the junk
    configuration — the existential in Lemma 5.7 at work. *)

val or_task : (int, int) Bmz.two_task
(** Both processes must output the OR of the two inputs. {e Not} solvable:
    covering fails — a process running solo cannot commit to either value. *)
