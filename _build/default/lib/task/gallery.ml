module Q = Bits.Rational

let binary_inputs = [ 0; 1 ]

let eps_grid ~k =
  let grid = List.init (k + 1) (fun m -> Q.make m k) in
  let outputs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Q.(abs (sub a b) <= Q.make 1 k) then Some (a, b) else None)
          grid)
      grid
  in
  let delta (x0, x1) (a, b) =
    if x0 = x1 then Q.equal a (Q.of_int x0) && Q.equal b (Q.of_int x0)
    else true
  in
  {
    Bmz.name = Printf.sprintf "eps-grid(1/%d)" k;
    inputs = binary_inputs;
    legal_input = (fun _ -> true);
    outputs;
    delta;
    equal_input = Int.equal;
    equal_output = Q.equal;
    pp_input = Format.pp_print_int;
    pp_output = Q.pp;
  }

let int_task name outputs delta =
  {
    Bmz.name;
    inputs = binary_inputs;
    legal_input = (fun _ -> true);
    outputs;
    delta;
    equal_input = Int.equal;
    equal_output = Int.equal;
    pp_input = Format.pp_print_int;
    pp_output = Format.pp_print_int;
  }

let renaming3 =
  let names = [ 0; 1; 2 ] in
  let outputs =
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if a <> b then Some (a, b) else None) names)
      names
  in
  int_task "renaming3" outputs (fun _ (a, b) -> a <> b)

let always_zero = int_task "always-zero" [ (0, 0) ] (fun _ (a, b) -> a = 0 && b = 0)

let ternary_task name outputs delta =
  {
    Bmz.name;
    inputs = [ 0; 1; 2 ];
    legal_input = (fun _ -> true);
    outputs;
    delta;
    equal_input = Int.equal;
    equal_output = Int.equal;
    pp_input = Format.pp_print_int;
    pp_output = Format.pp_print_int;
  }

let hull_agreement =
  let values = [ 0; 1; 2 ] in
  let outputs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if abs (a - b) <= 1 then Some (a, b) else None)
          values)
      values
  in
  let delta (x0, x1) (a, b) =
    let lo = min x0 x1 and hi = max x0 x1 in
    a >= lo && a <= hi && b >= lo && b <= hi && abs (a - b) <= 1
  in
  ternary_task "hull-agreement" outputs delta

let weak_consensus =
  let outputs = [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  let delta (x0, x1) (a, b) = if x0 = x1 then a = x0 && b = x0 else true in
  int_task "weak-consensus" outputs delta

let exact_max =
  let outputs = List.map (fun v -> (v, v)) [ 0; 1; 2 ] in
  let delta (x0, x1) (a, b) =
    let m = max x0 x1 in
    a = m && b = m
  in
  ternary_task "exact-max" outputs delta

let binary_consensus =
  let outputs = [ (0, 0); (1, 1) ] in
  let delta (x0, x1) (a, b) = a = b && (a = x0 || a = x1) in
  int_task "binary-consensus" outputs delta

let or_task =
  let outputs = [ (0, 0); (1, 1) ] in
  let delta (x0, x1) (a, b) =
    let v = if x0 = 1 || x1 = 1 then 1 else 0 in
    a = v && b = v
  in
  int_task "or" outputs delta


let noisy_grid =
  (* eps-grid k=1 over ints, plus an isolated junk configuration. *)
  let outputs = [ (0, 0); (0, 1); (1, 0); (1, 1); (9, 9) ] in
  let delta (x0, x1) (a, b) =
    if x0 = x1 then a = x0 && b = x0
    else (a, b) = (9, 9) || (abs (a - b) <= 1 && a <= 1 && b <= 1)
  in
  int_task "noisy-grid" outputs delta
