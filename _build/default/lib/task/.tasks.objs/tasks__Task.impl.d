lib/task/task.ml: Array Format List Option
