lib/task/task.mli: Format
