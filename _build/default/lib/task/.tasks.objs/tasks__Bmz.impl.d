lib/task/bmz.ml: Array Format List Option Queue Task
