lib/task/gallery.ml: Bits Bmz Format Int List Printf
