lib/task/consensus.mli: Format Task
