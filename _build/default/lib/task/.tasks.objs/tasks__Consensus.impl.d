lib/task/consensus.ml: Array Format Int List Task
