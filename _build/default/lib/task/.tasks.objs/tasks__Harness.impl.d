lib/task/harness.ml: Array Bits Format List Option Printf Sched String Task
