lib/task/eps_agreement.ml: Array Bits Format Int List Printf Task
