lib/task/gallery.mli: Bits Bmz
