lib/task/harness.mli: Bits Format Sched Task
