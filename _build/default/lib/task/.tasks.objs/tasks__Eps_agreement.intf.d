lib/task/eps_agreement.mli: Bits Task
