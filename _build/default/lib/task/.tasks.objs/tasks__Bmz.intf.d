lib/task/bmz.mli: Format Task
