(** The Biran–Moran–Zaks machinery for two-process tasks (Section 5.2).

    A two-process task is given extensionally: a finite list of output
    configurations [O] and a membership predicate for Delta. Solvability
    (Lemma 5.7) asks for a subset [O'] of the outputs such that

    - {b connectivity}: for every input X, the graph [G(Delta(X) ∩ O')] —
      vertices are configurations, edges join configurations differing in at
      most one component — is non-empty and connected;
    - {b covering}: for every partial input [X^i] (process [i]'s input
      missing), some partial output [Y^i] (process [i]'s output missing)
      extends, for {e every} completion X of [X^i], to a configuration in
      [Delta(X) ∩ O'].

    From a witness [O'] this module builds the [delta] map and the family of
    paths [path(delta(X), delta(X^i))] that Algorithm 2 walks with
    epsilon-agreement. *)

type 'o config = 'o * 'o

type ('i, 'o) two_task = {
  name : string;
  inputs : 'i list;  (** per-process input domain *)
  legal_input : 'i * 'i -> bool;
  outputs : 'o config list;  (** the output complex O *)
  delta : 'i * 'i -> 'o config -> bool;
  equal_input : 'i -> 'i -> bool;
  equal_output : 'o -> 'o -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

val adjacent : ('i, 'o) two_task -> 'o config -> 'o config -> bool
(** Configurations differing in at most one component (equality counts:
    padding duplicates a node, which the paper explicitly allows). *)

(** A solvability witness with everything Algorithm 2 needs precomputed. *)
type ('i, 'o) plan = private {
  task : ('i, 'o) two_task;
  sub : 'o config list;  (** the witness O' *)
  length : int;  (** common path length L (odd, >= 3) *)
  delta_full : 'i * 'i -> 'o config;  (** delta(X) *)
  delta_partial : missing:int -> 'i -> 'o config;
      (** [delta_partial ~missing x] is delta(X^missing) where [x] is the
          input of the surviving process [1 - missing]. *)
  path : 'i * 'i -> missing:int -> 'o config array;
      (** [path X ~missing] has [length + 1] entries [Y_0 .. Y_L];
          [Y_0 .. Y_{L-1}] all lie in Delta(X) ∩ O', consecutive entries are
          adjacent, and [Y_{L-1}], [Y_L] agree on the surviving process's
          component. *)
}

val check : ('i, 'o) two_task -> sub:'o config list -> (unit, string) result
(** Verify connectivity and covering of a candidate [O']. *)

val plan : ?sub:'o config list -> ('i, 'o) two_task -> (('i, 'o) plan, string) result
(** Build a plan from [sub] (default: all of [O]). When the default fails the
    task may still be solvable with a strict subset — callers supply one, or
    use {!plan_searching}. *)

val plan_searching :
  ?max_outputs:int -> ('i, 'o) two_task -> (('i, 'o) plan, string) result
(** Lemma 5.7 is existential in O': try every subset of the outputs, largest
    first, until one satisfies connectivity and covering. Exponential in
    [|O|]; refuses tasks with more than [max_outputs] (default 12)
    configurations. The all-subsets sweep makes the {e rejection} verdict
    meaningful too: no witness exists at all. *)

val to_task : ('i, 'o) two_task -> ('i, 'o) Task.t
(** The same task as a generic arity-2 {!Task.t}; a partial output is legal
    iff it extends to a configuration of Delta(X). *)
