type ('i, 'o) t = {
  name : string;
  arity : int;
  input_domain : 'i list;
  legal_inputs : 'i array -> bool;
  legal : inputs:'i array -> outputs:'o option array -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

let pp_config pp_v ppf config =
  let pp_entry ppf = function
    | None -> Format.pp_print_string ppf "_"
    | Some v -> pp_v ppf v
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_entry)
    (Array.to_seq config)

let check t ~inputs ~outputs =
  if t.legal ~inputs ~outputs then Ok ()
  else
    Error
      (Format.asprintf "task %s: outputs %a illegal for inputs %a" t.name
         (pp_config t.pp_output) outputs (pp_config t.pp_input)
         (Array.map Option.some inputs))

let input_configurations t =
  let rec build k =
    if k = 0 then [ [] ]
    else
      let rest = build (k - 1) in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) rest)
        t.input_domain
  in
  build t.arity |> List.map Array.of_list
  |> List.filter t.legal_inputs
