module Q = Bits.Rational

let epsilon ~k = Q.make 1 k

let on_grid ~k v =
  (* v = num/den in lowest terms is an m/k iff den divides k and v in
     [0,1]. *)
  Q.(v >= zero) && Q.(v <= one) && k mod Q.den v = 0

let task ~n ~k =
  if k < 1 then invalid_arg "Eps_agreement.task: k must be >= 1";
  let eps = epsilon ~k in
  let legal ~inputs ~outputs =
    let decided = Array.to_list outputs |> List.filter_map (fun o -> o) in
    let all_inputs_are x = Array.for_all (Int.equal x) inputs in
    let validity =
      if all_inputs_are 0 then List.for_all (Q.equal Q.zero) decided
      else if all_inputs_are 1 then List.for_all (Q.equal Q.one) decided
      else true
    in
    validity
    && List.for_all (on_grid ~k) decided
    && Q.(Q.spread decided <= eps)
  in
  {
    Task.name = Printf.sprintf "eps-agreement(1/%d)" k;
    arity = n;
    input_domain = [ 0; 1 ];
    legal_inputs = (fun _ -> true);
    legal;
    pp_input = Format.pp_print_int;
    pp_output = Q.pp;
  }
