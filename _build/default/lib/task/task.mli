(** Distributed tasks Pi = (I, O, Delta) in the sense of the paper.

    A task for [arity] processes fixes a per-process input domain, a predicate
    on full input configurations, and a legality predicate [legal] relating an
    input configuration to a {e partial} output configuration ([None] marks a
    process that crashed or was still running when the execution was cut).
    [legal] must be monotone in the partial order "define more outputs": an
    algorithm is judged on what the deciding processes produced, never on
    what crashed ones did not. *)

type ('i, 'o) t = {
  name : string;
  arity : int;
  input_domain : 'i list;  (** per-process inputs *)
  legal_inputs : 'i array -> bool;  (** admissible input configurations *)
  legal : inputs:'i array -> outputs:'o option array -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

val check :
  ('i, 'o) t -> inputs:'i array -> outputs:'o option array ->
  (unit, string) result
(** Like [t.legal] but with a human-readable description of the violation
    (inputs, outputs, task name) on failure. *)

val input_configurations : ('i, 'o) t -> 'i array list
(** All admissible input configurations — [|input_domain|^arity] filtered by
    [legal_inputs]; intended for small domains (binary inputs). *)

val pp_config :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a option array ->
  unit
(** Renders e.g. [(0, _, 1)] with [_] for missing entries. *)
