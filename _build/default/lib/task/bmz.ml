type 'o config = 'o * 'o

type ('i, 'o) two_task = {
  name : string;
  inputs : 'i list;
  legal_input : 'i * 'i -> bool;
  outputs : 'o config list;
  delta : 'i * 'i -> 'o config -> bool;
  equal_input : 'i -> 'i -> bool;
  equal_output : 'o -> 'o -> bool;
  pp_input : Format.formatter -> 'i -> unit;
  pp_output : Format.formatter -> 'o -> unit;
}

let equal_config t (a0, a1) (b0, b1) =
  t.equal_output a0 b0 && t.equal_output a1 b1

let adjacent t (a0, a1) (b0, b1) =
  t.equal_output a0 b0 || t.equal_output a1 b1

type ('i, 'o) plan = {
  task : ('i, 'o) two_task;
  sub : 'o config list;
  length : int;
  delta_full : 'i * 'i -> 'o config;
  delta_partial : missing:int -> 'i -> 'o config;
  path : 'i * 'i -> missing:int -> 'o config array;
}

let dedupe t configs =
  List.fold_left
    (fun acc c -> if List.exists (equal_config t c) acc then acc else c :: acc)
    [] configs
  |> List.rev

let full_inputs t =
  List.concat_map
    (fun x0 -> List.map (fun x1 -> (x0, x1)) t.inputs)
    t.inputs
  |> List.filter t.legal_input

(* Partial inputs: (missing process, input of the survivor) such that at
   least one completion is a legal input configuration. *)
let partial_inputs t =
  let completions missing x =
    List.filter
      (fun x' ->
        t.legal_input (if missing = 0 then (x', x) else (x, x')))
      t.inputs
  in
  List.concat_map
    (fun missing ->
      List.filter_map
        (fun x ->
          match completions missing x with [] -> None | _ -> Some (missing, x))
        t.inputs)
    [ 0; 1 ]

let component (y0, y1) j = if j = 0 then y0 else y1

(* BFS path between two configurations inside a vertex set; [None] when
   disconnected. *)
let bfs_path t vertices ~src ~dst =
  let vs = Array.of_list vertices in
  let n = Array.length vs in
  let index c =
    let rec find i =
      if i = n then None
      else if equal_config t c vs.(i) then Some i
      else find (i + 1)
    in
    find 0
  in
  match (index src, index dst) with
  | None, _ | _, None -> None
  | Some s, Some d ->
      let prev = Array.make n (-1) in
      let seen = Array.make n false in
      seen.(s) <- true;
      let queue = Queue.create () in
      Queue.add s queue;
      let rec loop () =
        if Queue.is_empty queue then None
        else
          let u = Queue.pop queue in
          if u = d then begin
            let rec backtrack acc v =
              if v = s then vs.(s) :: acc
              else backtrack (vs.(v) :: acc) prev.(v)
            in
            Some (backtrack [] d)
          end
          else begin
            for v = 0 to n - 1 do
              if
                (not seen.(v)) && adjacent t vs.(u) vs.(v)
                && not (equal_config t vs.(u) vs.(v))
              then begin
                seen.(v) <- true;
                prev.(v) <- u;
                Queue.add v queue
              end
            done;
            loop ()
          end
      in
      loop ()

let restricted t sub x = List.filter (t.delta x) sub

let connected t vertices =
  match vertices with
  | [] -> false
  | src :: _ ->
      List.for_all
        (fun dst -> bfs_path t vertices ~src ~dst <> None)
        vertices

(* The covering condition for one partial input: a value for the survivor's
   component compatible with every completion. Returns the chosen survivor
   value and, as delta(X^missing), a configuration of O' carrying it. *)
let covering_choice t sub ~missing x =
  let survivor = 1 - missing in
  let completions =
    List.filter_map
      (fun x' ->
        let full = if missing = 0 then (x', x) else (x, x') in
        if t.legal_input full then Some full else None)
      t.inputs
  in
  let candidates =
    dedupe t sub |> List.map (fun c -> component c survivor)
  in
  let works y =
    List.for_all
      (fun full ->
        List.exists
          (fun c -> t.equal_output (component c survivor) y)
          (restricted t sub full))
      completions
  in
  match List.find_opt works candidates with
  | None -> None
  | Some y ->
      let anchor =
        List.find
          (fun c -> t.equal_output (component c survivor) y)
          sub
      in
      Some (y, anchor)

let check t ~sub =
  let sub = dedupe t sub in
  let check_connectivity x =
    let vs = restricted t sub x in
    if vs = [] then
      Error
        (Format.asprintf "task %s: Delta(X) ∩ O' empty for input (%a, %a)"
           t.name t.pp_input (fst x) t.pp_input (snd x))
    else if not (connected t vs) then
      Error
        (Format.asprintf
           "task %s: G(Delta(X) ∩ O') disconnected for input (%a, %a)" t.name
           t.pp_input (fst x) t.pp_input (snd x))
    else Ok ()
  in
  let check_covering (missing, x) =
    match covering_choice t sub ~missing x with
    | Some _ -> Ok ()
    | None ->
        Error
          (Format.asprintf
             "task %s: covering fails for partial input X^%d with survivor \
              input %a"
             t.name missing t.pp_input x)
  in
  let rec first_error = function
    | [] -> Ok ()
    | Ok () :: rest -> first_error rest
    | (Error _ as e) :: _ -> e
  in
  first_error
    (List.map check_connectivity (full_inputs t)
    @ List.map check_covering (partial_inputs t))

let plan ?sub t =
  let sub = dedupe t (Option.value sub ~default:t.outputs) in
  match check t ~sub with
  | Error _ as e -> e
  | Ok () -> (
      let delta_full_choice x =
        match restricted t sub x with
        | [] -> assert false (* ruled out by [check] *)
        | y :: _ -> y
      in
      let partial_choices =
        List.map
          (fun (missing, x) ->
            match covering_choice t sub ~missing x with
            | None -> assert false (* ruled out by [check] *)
            | Some (y, anchor) -> ((missing, x), (y, anchor)))
          (partial_inputs t)
      in
      let find_partial ~missing x =
        match
          List.find_opt
            (fun ((m, x'), _) -> m = missing && t.equal_input x x')
            partial_choices
        with
        | Some (_, choice) -> choice
        | None ->
            invalid_arg
              (Format.asprintf "Bmz: no partial input X^%d with survivor %a"
                 missing t.pp_input x)
      in
      (* Raw (unpadded) path for one (full input, missing process) pair:
         Y_0 .. Y_{L-1} inside Delta(X) ∩ O', then the anchor Y_L. *)
      let raw_path x ~missing =
        let survivor = 1 - missing in
        let survivor_input = component x survivor in
        let y_surv, y_last = find_partial ~missing survivor_input in
        let vertices = restricted t sub x in
        let y0 = delta_full_choice x in
        let y_pre =
          List.find
            (fun c -> t.equal_output (component c survivor) y_surv)
            vertices
        in
        match bfs_path t vertices ~src:y0 ~dst:y_pre with
        | None -> assert false (* connectivity was checked *)
        | Some walk -> walk @ [ y_last ]
      in
      let keyed_paths =
        List.concat_map
          (fun x -> [ ((x, 0), raw_path x ~missing:0);
                      ((x, 1), raw_path x ~missing:1) ])
          (full_inputs t)
      in
      let longest =
        List.fold_left
          (fun acc (_, p) -> max acc (List.length p - 1))
          1 keyed_paths
      in
      let length =
        let l = max longest 3 in
        if l mod 2 = 0 then l + 1 else l
      in
      let pad p =
        let missing_entries = length + 1 - List.length p in
        let head = match p with y0 :: _ -> y0 | [] -> assert false in
        Array.of_list (List.init missing_entries (fun _ -> head) @ p)
      in
      let padded = List.map (fun (key, p) -> (key, pad p)) keyed_paths in
      let path x ~missing =
        match
          List.find_opt
            (fun (((x0, x1), m), _) ->
              m = missing && t.equal_input x0 (fst x)
              && t.equal_input x1 (snd x))
            padded
        with
        | Some (_, p) -> p
        | None ->
            invalid_arg
              (Format.asprintf "Bmz.path: illegal input (%a, %a)" t.pp_input
                 (fst x) t.pp_input (snd x))
      in
      Ok
        {
          task = t;
          sub;
          length;
          delta_full = delta_full_choice;
          delta_partial =
            (fun ~missing x -> snd (find_partial ~missing x));
          path;
        })

let to_task t =
  let arity = 2 in
  let legal ~inputs ~outputs =
    let x = (inputs.(0), inputs.(1)) in
    let matches c =
      let ok j =
        match outputs.(j) with
        | None -> true
        | Some y -> t.equal_output y (component c j)
      in
      ok 0 && ok 1
    in
    List.exists (fun c -> t.delta x c && matches c) t.outputs
  in
  {
    Task.name = t.name;
    arity;
    input_domain = t.inputs;
    legal_inputs = (fun a -> t.legal_input (a.(0), a.(1)));
    legal;
    pp_input = t.pp_input;
    pp_output = t.pp_output;
  }


let plan_searching ?(max_outputs = 12) t =
  let outputs = dedupe t t.outputs in
  let m = List.length outputs in
  if m > max_outputs then
    Error
      (Format.asprintf
         "task %s: %d output configurations exceed the subset-search limit %d"
         t.name m max_outputs)
  else begin
    let arr = Array.of_list outputs in
    (* Masks with more members first: prefer the least-restricted witness. *)
    let masks = List.init (1 lsl m) (fun x -> x + 1) in
    let popcount x =
      let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
      go 0 x
    in
    let sorted =
      List.sort (fun a b -> compare (popcount b) (popcount a)) masks
    in
    let subset_of mask =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)
    in
    let rec try_masks = function
      | [] ->
          Error
            (Format.asprintf
               "task %s: no subset of the %d output configurations satisfies \
                Lemma 5.7"
               t.name m)
      | mask :: rest -> (
          match plan ~sub:(subset_of mask) t with
          | Ok _ as ok -> ok
          | Error _ -> try_masks rest)
    in
    try_masks sorted
  end
