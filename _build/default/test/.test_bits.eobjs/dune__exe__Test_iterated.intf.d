test/test_iterated.mli:
