test/test_msgpass.ml: Alcotest Array Bits Char Core Format Gen List Msgpass Printf QCheck QCheck_alcotest Sched String Tasks
