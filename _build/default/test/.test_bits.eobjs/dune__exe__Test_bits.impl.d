test/test_bits.ml: Alcotest Array Bits List Printf QCheck QCheck_alcotest
