test/test_properties.ml: Alcotest Array Bits Core Int Iterated List Option QCheck QCheck_alcotest Sched Tasks
