test/test_iterated.ml: Alcotest Array Bits Int Iterated List Printf
