test/test_tasks.mli:
