test/test_bits.mli:
