test/test_tasks.ml: Alcotest Array Bits Core List Result Sched String Tasks
