test/test_sched.ml: Alcotest Array Bits Core Int List Printf Sched Tasks
