test/test_msgpass.mli:
