test/test_sched.mli:
