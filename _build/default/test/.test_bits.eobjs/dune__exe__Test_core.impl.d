test/test_core.ml: Alcotest Array Bits Core Experiments Format Int Iterated List Printf Sched Seq String Tasks
