(* Tests for lib/iterated: IIS and IC substrates, snapshot properties,
   Borowsky-Gafni (Algorithm 5), and the 1-bit simulation (Algorithm 4). *)

module Q = Bits.Rational
module Iis = Iterated.Iis
module Ic = Iterated.Ic
module Views = Iterated.Views
module Proto = Iterated.Proto
module Full_info = Iterated.Full_info
module Bg = Iterated.Bg_snapshot
module Agreement = Iterated.Agreement
module Sim1 = Iterated.One_bit_sim

let pids n = List.init n (fun i -> i)

let test_partition_counts () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "ordered partitions of %d" n)
        expected
        (List.length (Iis.ordered_partitions (pids n))))
    [ (1, 1); (2, 3); (3, 13); (4, 75) ]

let test_ic_matrices_match () =
  List.iter
    (fun n ->
      let a = Ic.all_matrices ~n ~participants:(pids n) in
      let b = Ic.matrices_by_interleaving ~n ~participants:(pids n) in
      let subset xs ys =
        List.for_all (fun x -> List.exists (fun y -> y = x) ys) xs
      in
      Alcotest.(check bool)
        (Printf.sprintf "characterization = brute force (n=%d)" n)
        true
        (subset a b && subset b a))
    [ 2; 3 ]

(* One write-pid round; decisions are the immediate-snapshot views. *)
let one_round_views ~model ~n visit =
  let programs pid = Proto.Round (pid, fun view -> Proto.Decide view) in
  let collect outcome_decisions =
    Array.map
      (function Some v -> v | None -> Alcotest.fail "process undecided")
      outcome_decisions
  in
  match model with
  | `Iis ->
      Iis.enumerate ~n ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded ~programs ~max_rounds:1 (fun o ->
          visit (collect o.Iis.decisions))
  | `Ic ->
      Ic.enumerate ~n ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded ~programs ~max_rounds:1 (fun o ->
          visit (collect o.Ic.decisions))

let test_iis_snapshot_properties () =
  let n = 3 in
  let count = ref 0 in
  one_round_views ~model:`Iis ~n (fun views ->
      incr count;
      let written = Array.init n (fun i -> i) in
      Alcotest.(check bool) "validity" true
        (Views.validity ~equal:Int.equal ~written views);
      Alcotest.(check bool) "self-containment" true
        (Views.self_containment views);
      Alcotest.(check bool) "inclusion" true
        (Views.inclusion ~equal:Int.equal views);
      Alcotest.(check bool) "immediacy" true
        (Views.immediacy ~equal:Int.equal views));
  Alcotest.(check int) "13 one-round IS executions" 13 !count

let test_write_order_consistency () =
  (* Every one-round IC outcome admits a consistent write order; every
     one-round IS outcome does too (snapshots are collects). *)
  List.iter
    (fun model ->
      one_round_views ~model ~n:3 (fun views ->
          Alcotest.(check bool) "some order consistent" true
            (Views.consistent_with_some_order ~equal:Int.equal
               ~written:[| 0; 1; 2 |] views)))
    [ `Iis; `Ic ];
  (* A fabricated mutual miss admits none. *)
  let views =
    [| [| Some 0; None |]; [| None; Some 1 |] |]
  in
  Alcotest.(check bool) "mutual miss rejected" false
    (Views.consistent_with_some_order ~equal:Int.equal ~written:[| 0; 1 |]
       views)

let test_ic_collect_weaker () =
  let n = 3 in
  let inclusion_holds = ref 0 and total = ref 0 in
  one_round_views ~model:`Ic ~n (fun views ->
      incr total;
      let written = Array.init n (fun i -> i) in
      Alcotest.(check bool) "validity" true
        (Views.validity ~equal:Int.equal ~written views);
      Alcotest.(check bool) "self-containment" true
        (Views.self_containment views);
      if Views.inclusion ~equal:Int.equal views then incr inclusion_holds);
  Alcotest.(check int) "25 one-round IC executions" 25 !total;
  (* Collect is strictly weaker than snapshot: some outcomes violate
     inclusion. *)
  Alcotest.(check bool) "inclusion sometimes fails" true
    (!inclusion_holds < !total)

(* Figure 4: the 2-process IS protocol complex is a path; 3^r executions and
   3^r + 1 distinct final states after r rounds. *)
let test_figure4_growth () =
  List.iter
    (fun r ->
      let programs pid =
        Full_info.protocol ~rounds:r ~me:pid ~input:0 ~decide:(fun v -> v)
      in
      let execs = ref 0 in
      let states = ref [] in
      let eq = Full_info.equal Int.equal in
      Iis.enumerate ~n:2 ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded ~programs ~max_rounds:r (fun o ->
          incr execs;
          Array.iter
            (function
              | None -> Alcotest.fail "undecided"
              | Some v ->
                  if not (List.exists (eq v) !states) then
                    states := v :: !states)
            o.Iis.decisions);
      let pow3 =
        let rec go acc i = if i = 0 then acc else go (3 * acc) (i - 1) in
        go 1 r
      in
      Alcotest.(check int) (Printf.sprintf "3^%d executions" r) pow3 !execs;
      Alcotest.(check int)
        (Printf.sprintf "3^%d + 1 states" r)
        (pow3 + 1)
        (List.length !states))
    [ 1; 2; 3; 4 ]

let check_agreement ~eps ~inputs decisions =
  let decided =
    Array.to_list decisions |> List.filter_map (fun d -> d)
  in
  Alcotest.(check bool) "spread within eps" true
    Q.(Q.spread decided <= eps);
  if Array.for_all (Int.equal 0) inputs then
    List.iter
      (fun d -> Alcotest.(check bool) "validity 0" true (Q.equal d Q.zero))
      decided;
  if Array.for_all (Int.equal 1) inputs then
    List.iter
      (fun d -> Alcotest.(check bool) "validity 1" true (Q.equal d Q.one))
      decided

let binary_configs n =
  let rec go k =
    if k = 0 then [ [] ]
    else List.concat_map (fun tl -> [ 0 :: tl; 1 :: tl ]) (go (k - 1))
  in
  List.map Array.of_list (go n)

let test_iis_agreement () =
  List.iter
    (fun (n, rounds) ->
      let eps = Q.make 1 (Agreement.denominator ~rounds) in
      List.iter
        (fun inputs ->
          Iis.enumerate ~n ~budget:Bits.Width.Unbounded
            ~measure:Bits.Width.unbounded
            ~programs:(fun pid ->
              Agreement.protocol ~rounds ~input:inputs.(pid))
            ~max_rounds:rounds
            (fun o -> check_agreement ~eps ~inputs o.Iis.decisions))
        (binary_configs n))
    [ (2, 3); (3, 2) ]

(* Algorithm 5 (Lemma 2.3 / Prop 7.2): BG outputs are immediate snapshots. *)
let test_bg_snapshot_properties () =
  List.iter
    (fun n ->
      let programs pid =
        Bg.simulate ~n (Proto.Round (pid, fun view -> Proto.Decide view))
      in
      let total = ref 0 in
      Ic.enumerate ~n ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded ~programs ~max_rounds:n (fun o ->
          incr total;
          let views =
            Array.map
              (function
                | Some v -> v | None -> Alcotest.fail "BG: undecided")
              o.Ic.decisions
          in
          let written = Array.init n (fun i -> i) in
          Alcotest.(check bool) "validity" true
            (Views.validity ~equal:Int.equal ~written views);
          Alcotest.(check bool) "self-containment" true
            (Views.self_containment views);
          Alcotest.(check bool) "inclusion" true
            (Views.inclusion ~equal:Int.equal views);
          Alcotest.(check bool) "immediacy" true
            (Views.immediacy ~equal:Int.equal views));
      Alcotest.(check bool) "enumerated something" true (!total > 0))
    [ 2; 3 ]

(* BG with crashes: surviving processes still get immediate snapshots. *)
let test_bg_snapshot_crashes () =
  let n = 3 in
  let programs pid =
    Bg.simulate ~n (Proto.Round (pid, fun view -> Proto.Decide view))
  in
  for seed = 0 to 99 do
    let rng = Bits.Rng.make seed in
    let o =
      Ic.run_random ~n ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded ~programs ~rng ~crash_probability:0.2
        ()
    in
    let views =
      Array.to_list o.Ic.decisions |> List.filter_map (fun d -> d)
    in
    let views = Array.of_list views in
    if Array.length views > 0 then begin
      Alcotest.(check bool) "survivor views non-empty" true
        (Array.for_all (fun v -> List.length (Views.support v) > 0) views);
      Alcotest.(check bool) "inclusion (survivors)" true
        (Views.inclusion ~equal:Int.equal views)
    end
  done

(* Prop 7.2 end-to-end: the IIS agreement protocol transported to IC by BG
   still solves agreement. *)
let test_bg_agreement_in_ic () =
  let n = 2 and rounds = 3 in
  let eps = Q.make 1 (Agreement.denominator ~rounds) in
  List.iter
    (fun inputs ->
      Ic.enumerate ~n ~budget:Bits.Width.Unbounded
        ~measure:Bits.Width.unbounded
        ~programs:(fun pid ->
          Bg.simulate ~n (Agreement.protocol ~rounds ~input:inputs.(pid)))
        ~max_rounds:(n * rounds)
        (fun o -> check_agreement ~eps ~inputs o.Ic.decisions))
    (binary_configs n)

(* Full_info.replay reconstructs protocol states from views alone. *)
let test_replay_consistency () =
  let n = 2 and rounds = 2 in
  let make ~pid:_ ~input = Agreement.protocol ~rounds ~input in
  let inputs = [| 0; 1 |] in
  let fi_programs pid =
    Full_info.protocol ~rounds ~me:pid ~input:inputs.(pid)
      ~decide:(fun v -> v)
  in
  Ic.enumerate ~n ~budget:Bits.Width.Unbounded
    ~measure:Bits.Width.unbounded ~programs:fi_programs ~max_rounds:rounds
    (fun o ->
      (* Re-run the agreement protocol directly under the same matrices. *)
      let schedule ~round ~participants =
        { Ic.survivors = participants; sees = List.nth o.Ic.history (round - 1) }
      in
      let direct =
        Ic.run ~n ~budget:Bits.Width.Unbounded ~measure:Bits.Width.unbounded
          ~programs:(fun pid -> make ~pid ~input:inputs.(pid))
          ~schedule ~max_rounds:rounds ()
      in
      Array.iteri
        (fun i d ->
          match (d, direct.Ic.decisions.(i)) with
          | Some view, Some expected ->
              let replayed =
                match Full_info.replay ~make view with
                | Proto.Decide d -> d
                | Proto.Round _ -> Alcotest.fail "replay: still running"
              in
              Alcotest.(check string) "replay = direct"
                (Q.to_string expected) (Q.to_string replayed)
          | _ -> Alcotest.fail "undecided")
        o.Ic.decisions)

(* Algorithm 4: exhaustive for one simulated round. *)
let test_one_bit_sim_exhaustive () =
  let n = 2 in
  let table =
    Sim1.build_table ~n ~rounds:1 ~inputs:(binary_configs n)
      ~equal_input:Int.equal
  in
  Alcotest.(check int) "4 iterations" 4 (Sim1.total_iterations table);
  List.iter
    (fun inputs ->
      Iis.enumerate ~n ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid ->
          Sim1.protocol ~table ~me:pid ~input:inputs.(pid)
            ~decide:(fun v -> v))
        ~max_rounds:(Sim1.total_iterations table)
        (fun o ->
          Alcotest.(check bool) "1-bit registers" true (o.Iis.max_bits <= 1);
          let partial = o.Iis.decisions in
          Alcotest.(check bool) "simulated config reachable" true
            (Sim1.is_reachable table ~round:1 partial)))
    (binary_configs n)

(* Algorithm 4 over two simulated rounds, random IIS schedules. *)
let test_one_bit_sim_random () =
  let n = 2 and rounds = 2 in
  let table =
    Sim1.build_table ~n ~rounds ~inputs:(binary_configs n)
      ~equal_input:Int.equal
  in
  Alcotest.(check int) "4 + 12 iterations" 16 (Sim1.total_iterations table);
  for seed = 0 to 199 do
    let rng = Bits.Rng.make seed in
    let inputs = [| Bits.Rng.int rng 2; Bits.Rng.int rng 2 |] in
    let o =
      Iis.run_random ~n ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid ->
          Sim1.protocol ~table ~me:pid ~input:inputs.(pid)
            ~decide:(fun v -> v))
        ~rng ~crash_probability:0.05 ()
    in
    Alcotest.(check bool) "simulated config reachable" true
      (Sim1.is_reachable table ~round:rounds o.Iis.decisions)
  done

(* Theorem 1.4 end-to-end: IIS agreement (unbounded) -> BG -> IC full-info ->
   Algorithm 4 -> 1-bit IIS, still solving agreement. *)
let test_theorem_1_4_end_to_end () =
  let n = 2 and rounds = 1 in
  let ic_rounds = n * rounds in
  let eps = Q.make 1 (Agreement.denominator ~rounds) in
  let make ~pid:_ ~input =
    Bg.simulate ~n (Agreement.protocol ~rounds ~input)
  in
  let decide view =
    match Full_info.replay ~make view with
    | Proto.Decide d -> d
    | Proto.Round _ -> Alcotest.fail "chain: replay still running"
  in
  let table =
    Sim1.build_table ~n ~rounds:ic_rounds ~inputs:(binary_configs n)
      ~equal_input:Int.equal
  in
  for seed = 0 to 299 do
    let rng = Bits.Rng.make (1000 + seed) in
    let inputs = [| Bits.Rng.int rng 2; Bits.Rng.int rng 2 |] in
    let o =
      Iis.run_random ~n ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid ->
          Sim1.protocol ~table ~me:pid ~input:inputs.(pid) ~decide)
        ~rng ~crash_probability:0.03 ()
    in
    Alcotest.(check bool) "1-bit registers" true (o.Iis.max_bits <= 1);
    check_agreement ~eps ~inputs o.Iis.decisions
  done

let () =
  Alcotest.run "iterated"
    [
      ( "substrates",
        [
          Alcotest.test_case "ordered partition counts" `Quick
            test_partition_counts;
          Alcotest.test_case "IC matrices = brute force" `Quick
            test_ic_matrices_match;
          Alcotest.test_case "IS snapshot properties" `Quick
            test_iis_snapshot_properties;
          Alcotest.test_case "IC collect weaker than snapshot" `Quick
            test_ic_collect_weaker;
          Alcotest.test_case "write-order consistency" `Quick
            test_write_order_consistency;
          Alcotest.test_case "figure 4: 3^r growth" `Quick
            test_figure4_growth;
          Alcotest.test_case "IIS midpoint agreement" `Quick
            test_iis_agreement;
        ] );
      ( "bg-snapshot",
        [
          Alcotest.test_case "IS properties from IC" `Quick
            test_bg_snapshot_properties;
          Alcotest.test_case "with crashes" `Quick test_bg_snapshot_crashes;
          Alcotest.test_case "agreement through BG" `Quick
            test_bg_agreement_in_ic;
        ] );
      ( "one-bit",
        [
          Alcotest.test_case "replay consistency" `Quick
            test_replay_consistency;
          Alcotest.test_case "algorithm 4 exhaustive (1 round)" `Quick
            test_one_bit_sim_exhaustive;
          Alcotest.test_case "algorithm 4 random (2 rounds)" `Quick
            test_one_bit_sim_random;
          Alcotest.test_case "theorem 1.4 end-to-end" `Quick
            test_theorem_1_4_end_to_end;
        ] );
    ]
