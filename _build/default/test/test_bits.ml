(* Tests for lib/bits: rationals, width accounting, deterministic RNG. *)

module Q = Bits.Rational
module W = Bits.Width
module Rng = Bits.Rng

let q = Alcotest.testable Q.pp Q.equal

let test_rational_normalization () =
  Alcotest.(check q) "6/8 = 3/4" (Q.make 3 4) (Q.make 6 8);
  Alcotest.(check q) "-6/-8 = 3/4" (Q.make 3 4) (Q.make (-6) (-8));
  Alcotest.(check q) "1/-2 = -1/2" (Q.make (-1) 2) (Q.make 1 (-2));
  Alcotest.(check int) "den positive" 2 (Q.den (Q.make 1 (-2)));
  Alcotest.(check q) "0/7 = 0" Q.zero (Q.make 0 7);
  Alcotest.(check int) "0 has den 1" 1 (Q.den (Q.make 0 7))

let test_rational_arithmetic () =
  Alcotest.(check q) "1/2 + 1/3" (Q.make 5 6) (Q.add Q.half (Q.make 1 3));
  Alcotest.(check q) "1/2 - 1/3" (Q.make 1 6) (Q.sub Q.half (Q.make 1 3));
  Alcotest.(check q) "2/3 * 3/4" Q.half (Q.mul (Q.make 2 3) (Q.make 3 4));
  Alcotest.(check q) "(1/2) / (1/4)" (Q.of_int 2) (Q.div Q.half (Q.make 1 4));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "make _ 0" Division_by_zero (fun () ->
      ignore (Q.make 1 0))

let test_rational_spread () =
  Alcotest.(check q) "spread of empty" Q.zero (Q.spread []);
  Alcotest.(check q) "spread singleton" Q.zero (Q.spread [ Q.half ]);
  Alcotest.(check q) "spread mixed" (Q.make 5 6)
    (Q.spread [ Q.make 1 3; Q.one; Q.make 1 6; Q.half ])

let qgen =
  QCheck.Gen.(
    map2
      (fun n d -> Q.make n (1 + abs d))
      (int_range (-1000) 1000) (int_bound 1000))

let arb_q = QCheck.make ~print:Q.to_string qgen

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:300
    (QCheck.triple arb_q arb_q arb_q) (fun (a, b, c) ->
      Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:300
    (QCheck.triple arb_q arb_q arb_q) (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"a - b + b = a" ~count:300 (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add (Q.sub a b) b) a)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arb_q arb_q) (fun (a, b) ->
      Q.compare a b = -Q.compare b a)

let prop_normal_form =
  QCheck.Test.make ~name:"results in lowest terms" ~count:300
    (QCheck.pair arb_q arb_q) (fun (a, b) ->
      let r = Q.add a b in
      let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
      Q.den r > 0 && gcd (abs (Q.num r)) (Q.den r) <= 1 || Q.num r = 0)

let test_bits_for () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "bits_for %d" n) expected
        (W.bits_for n))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (255, 8); (256, 9) ]

let test_width_check () =
  W.check W.Unbounded max_int;
  W.check (W.Bounded 3) 3;
  Alcotest.check_raises "overflow raises"
    (W.Overflow { budget = 3; needed = 4 })
    (fun () -> W.check (W.Bounded 3) 4)

let test_width_measures () =
  Alcotest.(check int) "bit" 1 (W.bit true);
  Alcotest.(check int) "uint max=5 is 3 bits" 3 (W.uint ~max:5 4);
  Alcotest.(check int) "enum 3 is 2 bits" 2 (W.enum ~cardinal:3 ());
  Alcotest.(check int) "option none" 1 (W.option W.bit None);
  Alcotest.(check int) "option some" 2 (W.option W.bit (Some true));
  Alcotest.(check int) "pair" 4 (W.pair W.bit (W.uint ~max:5) (true, 2));
  Alcotest.(check int) "unbounded free" 0 (W.unbounded "anything");
  Alcotest.check_raises "uint out of range"
    (Invalid_argument "Width.uint: 9 outside [0..5]") (fun () ->
      ignore (W.uint ~max:5 9))

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.make 43 in
  Alcotest.(check bool) "different seed differs" true (seq (Rng.make 42) <> seq c)

let test_rng_bounds () =
  let r = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_shuffle_is_permutation () =
  let r = Rng.make 99 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_copy_and_split () =
  let r = Rng.make 5 in
  ignore (Rng.int r 10);
  let c = Rng.copy r in
  Alcotest.(check int) "copy continues identically" (Rng.int r 1000)
    (Rng.int c 1000);
  let s = Rng.split r in
  Alcotest.(check bool) "split diverges" true
    (List.init 20 (fun _ -> Rng.int r 100)
    <> List.init 20 (fun _ -> Rng.int s 100))

let () =
  Alcotest.run "bits"
    [
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_rational_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rational_arithmetic;
          Alcotest.test_case "spread" `Quick test_rational_spread;
          QCheck_alcotest.to_alcotest prop_add_comm;
          QCheck_alcotest.to_alcotest prop_add_assoc;
          QCheck_alcotest.to_alcotest prop_mul_distributes;
          QCheck_alcotest.to_alcotest prop_sub_add_inverse;
          QCheck_alcotest.to_alcotest prop_compare_antisym;
          QCheck_alcotest.to_alcotest prop_normal_form;
        ] );
      ( "width",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "budget check" `Quick test_width_check;
          Alcotest.test_case "measures" `Quick test_width_measures;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_is_permutation;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
        ] );
    ]
