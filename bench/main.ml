(* The benchmark harness: regenerates every experiment table (E1-E12, one
   per figure/theorem of the paper — see DESIGN.md) and then times the core
   operations with Bechamel. *)

module Q = Bits.Rational
module H = Tasks.Harness

let run_tables () =
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "==================================================================@\n\
     Bounded-size registers: experiment suite@\n\
     (paper: Delporte, Fauconnier, Fraigniaud, Rajsbaum, Travers, PODC'24)@\n\
     ==================================================================@\n@\n";
  List.iter
    (fun e ->
      Format.fprintf ppf
        "------------------------------------------------------------------@\n\
         %s  %s@\n\
         reproduces: %s@\n\
         ------------------------------------------------------------------@\n"
        e.Experiments.Registry.id e.Experiments.Registry.slug
        e.Experiments.Registry.paper;
      e.Experiments.Registry.run Experiments.Ctx.default ppf;
      Format.pp_print_flush ppf ())
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per timing-sensitive table.          *)

open Bechamel
open Toolkit

let run_alg1 ~k () =
  let algorithm = Core.Alg1_one_bit.algorithm ~k in
  ignore
    (H.run_once algorithm ~inputs:[| 0; 1 |]
       ~schedule:(`Random (Bits.Rng.make 1, []))
       ())

let run_fast ~rounds () =
  let algorithm = Core.Fast_agreement.algorithm ~delta:2 ~rounds in
  ignore
    (H.run_once algorithm ~inputs:[| 0; 1 |]
       ~schedule:(`Random (Bits.Rng.make 1, []))
       ())

let run_baseline ~rounds () =
  let algorithm = Core.Baseline_unbounded.algorithm ~n:2 ~rounds in
  ignore
    (H.run_once algorithm ~inputs:[| 0; 1 |]
       ~schedule:(`Random (Bits.Rng.make 1, []))
       ())

let run_bg_round () =
  let n = 3 in
  ignore
    (Iterated.Ic.run_random ~n ~budget:Bits.Width.Unbounded
       ~measure:Bits.Width.unbounded
       ~programs:(fun pid ->
         Iterated.Bg_snapshot.simulate ~n
           (Iterated.Proto.Round (pid, fun v -> Iterated.Proto.Decide v)))
       ~rng:(Bits.Rng.make 3) ())

let one_bit_table =
  lazy
    (Iterated.One_bit_sim.build_table ~n:2 ~rounds:2
       ~inputs:[ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
       ~equal_input:Int.equal)

let run_one_bit_sim () =
  let table = Lazy.force one_bit_table in
  ignore
    (Iterated.Iis.run_random ~n:2 ~budget:(Bits.Width.Bounded 1)
       ~measure:(Bits.Width.uint ~max:1)
       ~programs:(fun pid ->
         Iterated.One_bit_sim.protocol ~table ~me:pid ~input:pid
           ~decide:(fun v -> v))
       ~rng:(Bits.Rng.make 5) ())

let run_alt_bit_transfer () =
  (* Push a 128-byte message through one alternating-bit link. *)
  let sender = Msgpass.Alt_bit.sender ~chunk:1 in
  let receiver = Msgpass.Alt_bit.receiver () in
  Msgpass.Alt_bit.send_string sender (String.make 128 'x');
  let data = ref (Msgpass.Alt_bit.initial_field ~chunk:1) in
  let ack = ref 0 in
  let received = ref 0 in
  while !received = 0 do
    (match Msgpass.Alt_bit.sender_poll sender ~ack_seen:!ack with
    | Some f -> data := f
    | None -> ());
    (match Msgpass.Alt_bit.receiver_poll receiver ~data_seen:!data with
    | [] -> ()
    | l -> received := List.length l);
    ack := Msgpass.Alt_bit.receiver_ack receiver
  done

let run_abd_ops () =
  (* One ABD write + read over the complete 5-process network. *)
  let n = 5 and t = 2 in
  let open Sched.Program.Infix in
  let program =
    let* () = Sched.Program.write 42 in
    let* v = Sched.Program.read 0 in
    Sched.Program.return v
  in
  let interps =
    Array.init n (fun me ->
        Msgpass.Interp.create ~n ~t ~me ~init:0
          ~program:(if me = 0 then program else Sched.Program.return (-1)))
  in
  let net =
    Msgpass.Net.create ~n
      ~nodes:(fun pid -> Msgpass.Interp.node interps.(pid))
      ()
  in
  Msgpass.Net.run_random ~rng:(Bits.Rng.make 9) net

let run_chaos_sound () =
  (* One sound-quorum chaos run: faults + history recording + the
     linearizability decision. *)
  ignore (Msgpass.Chaos.run_random ~seed:1 (Msgpass.Chaos.sound ()))

let run_linearize_check () =
  (* Decide a 24-operation linearizable history (2 writers x 2 values
     interleaved with 4 readers x 5 reads on one register). *)
  let open Check.Linearize in
  let evs = ref [] in
  let clock = ref 0 in
  let tick () = incr clock; !clock in
  for w = 1 to 4 do
    let inv = tick () in
    evs := { proc = 0; reg = 0; op = Write w; inv; res = Some (tick ()) }
           :: !evs;
    for p = 1 to 4 do
      let inv = tick () in
      evs := { proc = p; reg = 0; op = Read w; inv; res = Some (tick ()) }
             :: !evs
    done
  done;
  match check ~init:(fun _ -> 0) ~equal:Int.equal !evs with
  | Linearizable _ -> ()
  | Nonlinearizable _ -> failwith "bench history must be linearizable"

let run_bmz_plan () =
  match Tasks.Bmz.plan (Tasks.Gallery.eps_grid ~k:4) with
  | Ok _ -> ()
  | Error e -> failwith e

(* The fixed explorer workload: 3 straight-line writers of 4 steps each —
   the test_sched count workload scaled to 3 processes. 34650 schedules
   naively; the engine's counters on it are the perf trajectory tracked in
   BENCH_PR1.json. *)
let explore_workload_init () =
  let straight len : (int, unit, unit) Sched.Program.t =
    let rec go k =
      if k = 0 then Sched.Program.return ()
      else Sched.Program.Write (k, fun () -> go (k - 1))
    in
    go len
  in
  Sched.Scheduler.start
    ~memory:
      (Sched.Memory.create ~n:3 ~budget:Bits.Width.Unbounded
         ~measure:Bits.Width.unbounded ~init:0)
    ~programs:(fun _ -> straight 4)
    ()

let run_explore_engine () =
  ignore
    (Sched.Explore.explore ~init:explore_workload_init (fun _ -> ())
      : Sched.Explore.result)

let run_explore_raw () =
  ignore
    (Sched.Explore.explore ~dedup:false ~por:false ~init:explore_workload_init
       (fun _ -> ())
      : Sched.Explore.result)

(* Same workload with the flight recorder disarmed: the delta between
   this row and the always-on one is the recorder's whole cost on the
   hot path, and bench_gate.py caps it at 3%. *)
let run_explore_raw_recorder_off () =
  Obs.Recorder.armed := false;
  Fun.protect
    ~finally:(fun () -> Obs.Recorder.armed := true)
    run_explore_raw

let run_labelling_value () =
  (* Closed-form pruned-path position at R = 20 (3^20-scale complex). *)
  let label =
    {
      Core.Labelling.me = 0;
      obs =
        List.init 20 (fun i -> if i mod 3 = 2 then None else Some (i mod 2));
    }
  in
  ignore (Core.Ring_sim.value ~delta:2 ~rounds:20 label)

let bench_rows : (string * (unit -> unit)) list =
  [
    ("alg1-eps-agreement(k=256)", run_alg1 ~k:256);
    ("fast-agreement(R=16,6-bit)", run_fast ~rounds:16);
    ("baseline-unbounded(R=16)", run_baseline ~rounds:16);
    ("bg-snapshot-round(n=3)", run_bg_round);
    ("one-bit-sim(n=2,2-rounds)", run_one_bit_sim);
    ("alt-bit-128-bytes", run_alt_bit_transfer);
    ("abd-write+read(n=5)", run_abd_ops);
    ("chaos-run(sound,n=4)", run_chaos_sound);
    ("linearize-check(24-ops)", run_linearize_check);
    ("bmz-plan(eps-grid-k=4)", run_bmz_plan);
    ("pruned-path-value(R=20)", run_labelling_value);
    ("explore-3x4(dedup+por)", run_explore_engine);
    ("explore-3x4(raw-undo)", run_explore_raw);
    ("explore-3x4(raw-undo,recorder-off)", run_explore_raw_recorder_off);
  ]

(* Each row carries the OLS time estimate and the OLS minor-allocation
   estimate (Bechamel's [minor_allocated] instance: [Gc.minor_words]
   deltas around the timed runs), so the JSON snapshot tracks both the
   speed and the per-call allocation of every hot path across PRs.

   Rows are measured one at a time, each behind its own warmup, and in a
   seeded-shuffled order rather than declaration order. Declaration-order
   measurement is how BENCH_PR9 recorded explore(raw-undo,recorder-off)
   as *slower* than the recorder-on row it follows: the earlier row paid
   the row's warmup (page faults, branch training, heap shape) on behalf
   of the later one. Warming each row before sampling removes the shared
   state, and decorrelating the order keeps any residual drift from
   systematically favoring whichever row happens to run second — so
   bench_gate.py check_recorder compares like with like. The shuffle seed
   is fixed: runs stay reproducible, just not declaration-ordered. *)
let measure_benchmarks () =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let estimate_of results name =
    match Hashtbl.find_opt results name with
    | Some r -> (
        match Analyze.OLS.estimates r with Some [ est ] -> est | _ -> nan)
    | None -> nan
  in
  let order = Array.of_list bench_rows in
  Bits.Rng.shuffle (Bits.Rng.make 0xB10C) order;
  let rows = ref [] in
  Array.iter
    (fun (name, fn) ->
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.05 do
        fn ()
      done;
      let test =
        Test.make_grouped ~name:"bounded-registers"
          [ Test.make ~name (Staged.stage fn) ]
      in
      let raw =
        Benchmark.all cfg
          [ Instance.monotonic_clock; Instance.minor_allocated ]
          test
      in
      let times = Analyze.all ols Instance.monotonic_clock raw in
      let allocs = Analyze.all ols Instance.minor_allocated raw in
      Hashtbl.iter
        (fun key _ ->
          rows :=
            (key, estimate_of times key, estimate_of allocs key) :: !rows)
        times)
    order;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows

let run_benchmarks () =
  Format.printf
    "------------------------------------------------------------------@\n\
     Bechamel timings (monotonic clock + minor words, OLS per call)@\n\
     ------------------------------------------------------------------@\n";
  measure_benchmarks ()
  |> List.iter (fun (name, ns, words) ->
         (if ns >= 1e6 then
            Format.printf "  %-45s %10.2f ms/call" name (ns /. 1e6)
          else if ns >= 1e3 then
            Format.printf "  %-45s %10.2f us/call" name (ns /. 1e3)
          else Format.printf "  %-45s %10.0f ns/call" name ns);
         Format.printf "  %12.0f mw/call@\n" words);
  Format.printf "@\n"

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable perf snapshot for tracking across PRs. *)

let explorer_variants () =
  let run ~dedup ~por =
    (Sched.Explore.explore ~dedup ~por ~init:explore_workload_init
       (fun _ -> ()))
      .Sched.Explore.stats
  in
  [
    ("dedup+por", run ~dedup:true ~por:true);
    ("dedup", run ~dedup:true ~por:false);
    ("por", run ~dedup:false ~por:true);
    ("raw", run ~dedup:false ~por:false);
  ]

let json_stats b (s : Sched.Explore.stats) =
  Printf.bprintf b
    "{\"nodes\": %d, \"terminals\": %d, \"deduped\": %d, \"pruned\": %d, \
     \"truncated\": %d, \"peak_depth\": %d}"
    s.Sched.Explore.nodes s.Sched.Explore.terminals s.Sched.Explore.deduped
    s.Sched.Explore.pruned s.Sched.Explore.truncated
    s.Sched.Explore.peak_depth

(* Chaos-campaign counters: throughput of the sound sweep and shrink
   quality on the published frontier counterexample (seed 127). *)
let chaos_stats () =
  let module C = Msgpass.Chaos in
  let t0 = Unix.gettimeofday () in
  let sound = C.campaign ~seed:1 ~runs:50 (C.sound ()) in
  let sound_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let frontier = C.campaign ~seed:127 ~runs:1 (C.frontier ()) in
  let frontier_s = Unix.gettimeofday () -. t0 in
  (sound, sound_s, frontier, frontier_s)

let json_chaos b =
  let module C = Msgpass.Chaos in
  let sound, sound_s, frontier, frontier_s = chaos_stats () in
  Printf.bprintf b
    "    \"sound\": {\"runs\": %d, \"violations\": %d, \"fault_events\": %d, \
     \"completed_ops\": %d, \"events_per_sec\": %.0f},\n"
    sound.C.runs sound.C.violations sound.C.total_events
    sound.C.total_completed
    (float_of_int sound.C.total_events /. sound_s);
  match frontier.C.first with
  | None ->
      Printf.bprintf b
        "    \"frontier\": {\"runs\": %d, \"violations\": %d}\n"
        frontier.C.runs frontier.C.violations
  | Some f ->
      Printf.bprintf b
        "    \"frontier\": {\"seed\": %d, \"plan_events\": %d, \
         \"shrunk_events\": %d, \"shrunk_deliveries\": %d, \
         \"shrink_replays\": %d, \"find_and_shrink_sec\": %.2f}\n"
        f.C.seed
        (Msgpass.Faults.compiled_length f.C.original.C.plan)
        (List.length f.C.shrunk)
        (Msgpass.Faults.deliveries f.C.shrunk)
        f.C.shrink_tests frontier_s

(* Supervision counters: exhaustive-vs-degraded behaviour of the budgeted
   paths — a node-capped exploration resumed to completion (terminal
   counts must reconcile with the unbudgeted run), a harness check forced
   into sampled coverage, and a chaos campaign stopped by a deadline. *)
let supervision_stats b =
  let module E = Sched.Explore in
  let module B = Sched.Budget in
  let full =
    E.explore ~dedup:false ~por:false ~init:explore_workload_init
      (fun _ -> ())
  in
  let budget = B.make ~max_nodes:20_000 () in
  let segments = ref 0 in
  let resumed_terminals = ref 0 in
  let rec drain resume =
    incr segments;
    let r =
      E.explore ~dedup:false ~por:false ~budget ?resume
        ~init:explore_workload_init (fun _ -> incr resumed_terminals)
    in
    match r.E.outcome with
    | E.Complete -> ()
    | E.Exhausted { frontier; _ } -> drain (Some frontier)
  in
  drain None;
  Printf.bprintf b
    "    \"explore\": {\"full_terminals\": %d, \"budget_max_nodes\": 20000, \
     \"segments\": %d, \"resumed_terminals\": %d, \"resume_exact\": %b},\n"
    full.E.stats.E.terminals !segments !resumed_terminals
    (!resumed_terminals = full.E.stats.E.terminals);
  let task =
    Tasks.Eps_agreement.task ~n:2 ~k:(Core.Alg1_one_bit.denominator ~k:4)
  in
  let algorithm = Core.Alg1_one_bit.algorithm ~k:4 in
  (match
     H.check_supervised ~task ~algorithm ~max_crashes:1
       ~budget:(B.make ~max_nodes:400 ())
       ()
   with
  | H.Verified_exhaustive _ ->
      Printf.bprintf b "    \"harness\": {\"verdict\": \"exhaustive\"},\n"
  | H.Verified_sampled (_, c) ->
      Printf.bprintf b
        "    \"harness\": {\"verdict\": \"sampled\", \"explored\": %d, \
         \"frontier\": %d, \"sampled\": %d, \"stop\": %S},\n"
        c.H.explored c.H.frontier c.H.sampled
        (match c.H.stop with
        | Some r -> B.stop_reason_to_string r
        | None -> "truncation")
  | H.Violation _ ->
      Printf.bprintf b "    \"harness\": {\"verdict\": \"violation\"},\n");
  let module C = Msgpass.Chaos in
  let degraded = C.campaign ~deadline:0.05 ~seed:1 ~runs:100_000 (C.sound ()) in
  Printf.bprintf b
    "    \"chaos_deadline\": {\"requested\": %d, \"completed\": %d, \
     \"degraded\": %b, \"violations\": %d}\n"
    degraded.C.requested degraded.C.runs degraded.C.degraded
    degraded.C.violations

(* Parallel scaling: the raw-undo 3x4 exploration and a 200-run sound
   chaos campaign at jobs in {1, 2, 4, 8}. The digest is an
   order-insensitive checksum over terminal-state signatures (native-int
   wraparound addition is commutative and associative, so the total is
   independent of visit order); raw mode visits every schedule exactly
   once globally, so equal digests across jobs values certify that the
   partitioned runs reached byte-identical terminal-state multisets. *)
let jobs_measured = [ 1; 2; 4; 8 ]

let terminal_digest st acc =
  acc
  + Hashtbl.hash
      ( Array.to_list (Sched.Scheduler.decisions st),
        Array.to_list (Sched.Memory.contents (Sched.Scheduler.memory st)),
        Sched.Scheduler.crashed st )

let parallel_stats b =
  let module C = Msgpass.Chaos in
  let explore_row jobs =
    let t0 = Unix.gettimeofday () in
    let r =
      Sched.Par.explore ~dedup:false ~por:false ~jobs
        ~init:explore_workload_init ~fold:terminal_digest ~merge:( + ) 0
    in
    let sec = Unix.gettimeofday () -. t0 in
    (jobs, sec, r.Sched.Par.stats.Sched.Explore.terminals, r.Sched.Par.value)
  in
  let chaos_row jobs =
    let t0 = Unix.gettimeofday () in
    let c = C.campaign ~jobs ~seed:1 ~runs:200 (C.sound ()) in
    let sec = Unix.gettimeofday () -. t0 in
    (jobs, sec, Format.asprintf "%a" C.pp_campaign c)
  in
  let explore_rows = List.map explore_row jobs_measured in
  let chaos_rows = List.map chaos_row jobs_measured in
  let sec_of jobs rows =
    List.find_map (fun (j, sec, _, _) -> if j = jobs then Some sec else None)
      rows
    |> Option.get
  in
  let chaos_sec_of jobs =
    List.find_map
      (fun (j, sec, _) -> if j = jobs then Some sec else None)
      chaos_rows
    |> Option.get
  in
  let all_equal = function
    | [] -> true
    | x :: rest -> List.for_all (( = ) x) rest
  in
  let deterministic =
    all_equal (List.map (fun (_, _, t, d) -> (t, d)) explore_rows)
    && all_equal (List.map (fun (_, _, v) -> v) chaos_rows)
  in
  Printf.bprintf b "    \"explore_raw_3x4\": [\n";
  List.iteri
    (fun i (jobs, sec, terminals, digest) ->
      Printf.bprintf b
        "      {\"jobs\": %d, \"sec\": %.4f, \"terminals\": %d, \"digest\": \
         %d}%s\n"
        jobs sec terminals digest
        (if i = List.length explore_rows - 1 then "" else ","))
    explore_rows;
  Printf.bprintf b "    ],\n    \"chaos_sound_200\": [\n";
  List.iteri
    (fun i (jobs, sec, verdict) ->
      Printf.bprintf b "      {\"jobs\": %d, \"sec\": %.4f, \"campaign\": %S}%s\n"
        jobs sec verdict
        (if i = List.length chaos_rows - 1 then "" else ","))
    chaos_rows;
  Printf.bprintf b
    "    ],\n\
    \    \"explore_speedup_j4\": %.2f,\n\
    \    \"chaos_speedup_j4\": %.2f,\n\
    \    \"deterministic\": %b\n"
    (sec_of 1 explore_rows /. sec_of 4 explore_rows)
    (chaos_sec_of 1 /. chaos_sec_of 4)
    deterministic

(* Fleet counters: a short deterministic coverage-guided campaign on the
   frontier configuration (fixed seed, fixed generation count, in-memory
   corpus). mutant_new_signals is the dead-mutator guard the bench gate
   checks: mutated corpus plans must keep moving coverage signals, or the
   mutation engine has silently stopped contributing. *)
let fleet_stats b =
  let module F = Msgpass.Fleet in
  let module C = Msgpass.Chaos in
  let t0 = Unix.gettimeofday () in
  let r = F.campaign ~generations:150 ~batch:16 ~seed:9 (C.frontier ()) in
  let sec = Unix.gettimeofday () -. t0 in
  let min_deliveries =
    List.fold_left
      (fun m (w : F.witness) -> min m w.F.deliveries)
      max_int r.F.witnesses
  in
  Printf.bprintf b
    "    \"frontier_g150\": {\"seed\": %d, \"generations\": %d, \"runs\": \
     %d, \"violations\": %d, \"witness_classes\": %d, \
     \"min_witness_deliveries\": %d, \"new_signals\": %d, \
     \"mutant_new_signals\": %d, \"distinct_terminals\": %d, \
     \"corpus_plans\": %d, \"cache_lookups\": %d, \"cache_hits\": %d, \
     \"runs_per_sec\": %.0f},\n"
    r.F.seed r.F.generations r.F.runs r.F.violations
    (List.length r.F.witnesses)
    (if min_deliveries = max_int then 0 else min_deliveries)
    r.F.signals r.F.mutant_signals r.F.distinct_terminals r.F.corpus_size
    r.F.cache_lookups r.F.cache_hits
    (float_of_int r.F.runs /. sec);
  (* Cache-effectiveness leg: a corpus-backed base campaign, then a
     second campaign resumed over the same directory. The resume
     re-executes every corpus plan once to pre-fill the run cache, so
     mutants that reproduce known content answer from the cache —
     bench_gate.py's cache-liveness guard reads this row. A fresh
     in-memory campaign (the row above) legitimately records zero hits:
     with duplicate-class shrinks skipped there are no confirmation
     replays left to hit, so liveness is only observable on a resume. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench-fleet-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  ignore
    (F.campaign ~generations:60 ~batch:16 ~seed:9 ~corpus_dir:dir
       (C.frontier ())
      : F.report);
  let rr =
    F.campaign ~generations:20 ~batch:16 ~seed:11 ~corpus_dir:dir
      (C.frontier ())
  in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir;
  Printf.bprintf b
    "    \"resume_g20\": {\"seed\": %d, \"generations\": %d, \"runs\": %d, \
     \"corpus_plans\": %d, \"cache_lookups\": %d, \"cache_hits\": %d}\n"
    rr.F.seed rr.F.generations rr.F.runs rr.F.corpus_size rr.F.cache_lookups
    rr.F.cache_hits

(* Churn counters: the dynamic-membership emulation (Dynreg) under a
   sound churn schedule — slack covers the rate, so every seeded run
   must stay linearizable — and the churn-frontier preset on its
   published counterexample seed, where above-bound churn with
   unwidened quorums must surface a stale read and shrink it to a
   replayable plan. bench_gate.py fails the build if either side
   flips. *)
let churn_stats b =
  let module C = Msgpass.Chaos in
  let t0 = Unix.gettimeofday () in
  let sound = C.campaign ~seed:1 ~runs:50 (C.churn ()) in
  let sound_s = Unix.gettimeofday () -. t0 in
  Printf.bprintf b
    "    \"sound\": {\"runs\": %d, \"violations\": %d, \"fault_events\": %d, \
     \"completed_ops\": %d, \"events_per_sec\": %.0f},\n"
    sound.C.runs sound.C.violations sound.C.total_events
    sound.C.total_completed
    (float_of_int sound.C.total_events /. sound_s);
  let frontier = C.campaign ~seed:29 ~runs:1 (C.churn_frontier ()) in
  match frontier.C.first with
  | None ->
      Printf.bprintf b
        "    \"frontier\": {\"runs\": %d, \"violations\": %d}\n"
        frontier.C.runs frontier.C.violations
  | Some f ->
      Printf.bprintf b
        "    \"frontier\": {\"seed\": %d, \"violations\": %d, \
         \"plan_events\": %d, \"shrunk_events\": %d, \
         \"shrunk_churn_actions\": %d, \"shrink_replays\": %d}\n"
        f.C.seed frontier.C.violations
        (Msgpass.Faults.compiled_length f.C.original.C.plan)
        (List.length f.C.shrunk)
        (List.length
           (List.filter
              (function
                | Msgpass.Faults.Enter _ | Msgpass.Faults.Leave _ -> true
                | _ -> false)
              f.C.shrunk))
        f.C.shrink_tests

let write_json file rows =
  (* The embedded metrics snapshot covers the deterministic counter
     workloads below (explorer variants, chaos campaigns, supervision) —
     not the Bechamel timing loops, whose iteration counts vary run to
     run (and which run before this point, with hot tallies off, so the
     timed paths stay untelemetered). Resetting here makes the snapshot
     comparable across PRs. *)
  Obs.Metrics.reset ();
  Obs.Metrics.hot := true;
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns, words) ->
      Printf.bprintf b
        "    {\"name\": %S, \"ns_per_call\": %.2f, \
         \"minor_words_per_call\": %.2f}%s\n"
        name ns words
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.bprintf b "  ],\n  \"explorer\": {\n";
  Printf.bprintf b "    \"workload\": \"3 processes x 4 writes each\",\n";
  let variants = explorer_variants () in
  List.iteri
    (fun i (name, stats) ->
      Printf.bprintf b "    %S: " name;
      json_stats b stats;
      Printf.bprintf b "%s\n"
        (if i = List.length variants - 1 then "" else ","))
    variants;
  Printf.bprintf b "  },\n  \"chaos\": {\n";
  json_chaos b;
  Printf.bprintf b "  },\n  \"supervision\": {\n";
  supervision_stats b;
  Printf.bprintf b "  },\n  \"parallel\": {\n";
  parallel_stats b;
  Printf.bprintf b "  },\n  \"fleet\": {\n";
  fleet_stats b;
  Printf.bprintf b "  },\n  \"churn\": {\n";
  churn_stats b;
  Printf.bprintf b "  },\n  \"meta\": {\n";
  Printf.bprintf b "    \"ocaml_version\": %S,\n" Sys.ocaml_version;
  Printf.bprintf b "    \"recommended_domain_count\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.bprintf b "    \"jobs_measured\": [%s]\n"
    (String.concat ", " (List.map string_of_int jobs_measured));
  Printf.bprintf b "  },\n  \"metrics\": ";
  Buffer.add_string b (Obs.Metrics.snapshot_string ());
  Printf.bprintf b "\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "wrote %s@\n" file

let json_target () =
  let argv = Sys.argv in
  let rec scan i =
    if i >= Array.length argv then None
    else if argv.(i) = "--json" then
      if i + 1 < Array.length argv then Some argv.(i + 1)
      else Some "BENCH_PR6.json"
    else scan (i + 1)
  in
  scan 1

let () =
  match json_target () with
  | Some file ->
      (* Benchmarks + explorer counters only: the machine-readable path
         skips the experiment tables. *)
      let rows = measure_benchmarks () in
      write_json file rows
  | None ->
      let t0 = Unix.gettimeofday () in
      run_tables ();
      run_benchmarks ();
      Format.printf "total experiment-suite time: %.1f s@\n"
        (Unix.gettimeofday () -. t0)
