(* Allocation probe for the explorer hot loop: words and nanoseconds per
   node of the fixed 3x4 workload, one line per engine variant. Run with
   [dune exec bench/probe.exe]; the numbers here are what the bench gate
   tracks in aggregate, broken out for quick iteration on the inner
   loop. *)

let workload () =
  let straight len : (int, unit, unit) Sched.Program.t =
    let rec go k =
      if k = 0 then Sched.Program.return ()
      else Sched.Program.Write (k, fun () -> go (k - 1))
    in
    go len
  in
  Sched.Scheduler.start
    ~memory:
      (Sched.Memory.create ~n:3 ~budget:Bits.Width.Unbounded
         ~measure:Bits.Width.unbounded ~init:0)
    ~programs:(fun _ -> straight 4)
    ()

let run ~name ~dedup ~por reps =
  let nodes = ref 0 in
  (* warm up + node count *)
  let r = Sched.Explore.explore ~dedup ~por ~init:workload (fun _ -> ()) in
  nodes := r.Sched.Explore.stats.Sched.Explore.nodes;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore
      (Sched.Explore.explore ~dedup ~por ~init:workload (fun _ -> ())
        : Sched.Explore.result)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf
    "%-12s nodes=%6d  %8.2f words/call  %6.2f words/node  %8.0f ns/node  \
     %8.2f ms/call\n"
    name !nodes
    (dw /. float_of_int reps)
    (dw /. float_of_int (reps * !nodes))
    (dt *. 1e9 /. float_of_int (reps * !nodes))
    (dt *. 1e3 /. float_of_int reps)

(* Scheduler-only DFS (no engine): isolates journal+step+undo cost. *)
let run_sched reps =
  let state = workload () in
  Sched.Scheduler.enable_journal state;
  let nodes = ref 0 in
  let rec walk () =
    incr nodes;
    let mask = Sched.Scheduler.running_mask state in
    if mask land 1 <> 0 then begin
      let m = Sched.Scheduler.journal_mark state in
      Sched.Scheduler.step state 0;
      walk ();
      Sched.Scheduler.undo_to state m
    end;
    if mask land 2 <> 0 then begin
      let m = Sched.Scheduler.journal_mark state in
      Sched.Scheduler.step state 1;
      walk ();
      Sched.Scheduler.undo_to state m
    end;
    if mask land 4 <> 0 then begin
      let m = Sched.Scheduler.journal_mark state in
      Sched.Scheduler.step state 2;
      walk ();
      Sched.Scheduler.undo_to state m
    end
  in
  walk ();
  let n = !nodes in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    nodes := 0;
    walk ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf
    "%-12s nodes=%6d  %8.2f words/call  %6.2f words/node  %8.0f ns/node  \
     %8.2f ms/call\n"
    "sched-only" n
    (dw /. float_of_int reps)
    (dw /. float_of_int (reps * n))
    (dt *. 1e9 /. float_of_int (reps * n))
    (dt *. 1e3 /. float_of_int reps)

(* Tightest loop: one write step + undo at the root, repeated. *)
let run_pair reps =
  let state = workload () in
  Sched.Scheduler.enable_journal state;
  let m = Sched.Scheduler.journal_mark state in
  Sched.Scheduler.step state 0;
  Sched.Scheduler.undo_to state m;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    let m = Sched.Scheduler.journal_mark state in
    Sched.Scheduler.step state 0;
    Sched.Scheduler.undo_to state m
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "%-12s %6.2f words/pair  %8.0f ns/pair\n" "step+undo"
    (dw /. float_of_int reps)
    (dt *. 1e9 /. float_of_int reps)

(* One full pid-0 run (4 writes, settle to Decided) + rollback. *)
let run_solo_cycle reps =
  let state = workload () in
  Sched.Scheduler.enable_journal state;
  let cycle () =
    let m = Sched.Scheduler.journal_mark state in
    Sched.Scheduler.step state 0;
    Sched.Scheduler.step state 0;
    Sched.Scheduler.step state 0;
    Sched.Scheduler.step state 0;
    Sched.Scheduler.undo_to state m
  in
  cycle ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    cycle ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "%-12s %6.2f words/cycle  %8.0f ns/cycle (4 steps + undo)\n"
    "solo-cycle"
    (dw /. float_of_int reps)
    (dt *. 1e9 /. float_of_int reps)

let () =
  let reps = try int_of_string Sys.argv.(1) with _ -> 20 in
  run ~name:"raw" ~dedup:false ~por:false reps;
  run ~name:"dedup+por" ~dedup:true ~por:true reps;
  run_sched reps;
  run_pair (reps * 100_000);
  run_solo_cycle (reps * 50_000)
