(* Command-line entry point: run any experiment of the reproduction suite. *)

open Cmdliner

(* ----- telemetry plumbing shared by the run/explore/chaos commands ----- *)

type telemetry = {
  trace : string option;
  trace_format : [ `Jsonl | `Catapult ];
  metrics : string option;
  wall : bool;
}

let telemetry_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured execution trace (logical-clock spans and \
             instant events from every instrumented subsystem) to $(docv).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("catapult", `Catapult) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace encoding: $(b,jsonl) (one JSON event per line) or \
             $(b,catapult) (a Chrome trace_event array, viewable in \
             about:tracing or Perfetto).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "After the run, write the JSON metrics snapshot (counters, \
             gauges, histograms from the process-wide registry) to $(docv); \
             bare $(b,--metrics) or '-' prints it to stdout.")
  in
  let wall_arg =
    Arg.(
      value & flag
      & info [ "wall" ]
          ~doc:
            "Stamp every trace event with a wall-clock $(b,wall_s) argument \
             and add rate/ETA fields to the periodic health instants. Off by \
             default: wall time makes traces non-reproducible byte-for-byte.")
  in
  Term.(
    const (fun trace trace_format metrics wall ->
        { trace; trace_format; metrics; wall })
    $ trace_arg $ format_arg $ metrics_arg $ wall_arg)

(* Resolved run parameters as the trace's first event, so a trace file
   is self-describing for replay: which seed, how wide a pool, which
   compiler. (Witness files already carry this; traces didn't.) *)
let emit_meta ?seed ~jobs () =
  Obs.Span.instant ~cat:"meta"
    ~args:
      ((match seed with
       | Some s -> [ ("seed", Obs.Json.Int s) ]
       | None -> [])
      @ [
          ("jobs", Obs.Json.Int jobs);
          ("ocaml_version", Obs.Json.Str Sys.ocaml_version);
        ])
    "meta"

(* Installs the requested sink around [f]. Subcommands call [exit] on
   their failure paths, which does not unwind the stack — so teardown is
   both a [Fun.protect] finalizer and an idempotent [at_exit] hook, and a
   catapult trace gets its closing bracket whatever the exit path. *)
let with_telemetry tel f =
  Obs.Span.reset ();
  Obs.Span.set_wall_clock (if tel.wall then Some Unix.gettimeofday else None);
  (* Per-operation tallies (scheduler steps, register widths) only count
     while someone is going to read them. *)
  if tel.metrics <> None then Obs.Metrics.hot := true;
  let teardown =
    let done_ = ref false in
    let close_trace =
      match tel.trace with
      | None -> ignore
      | Some file ->
          let oc = open_out file in
          Obs.Sink.set
            (match tel.trace_format with
            | `Jsonl -> Obs.Sink.jsonl (output_string oc)
            | `Catapult -> Obs.Sink.catapult (output_string oc));
          fun () ->
            Obs.Sink.clear ();
            close_out_noerr oc
    in
    fun () ->
      if not !done_ then begin
        done_ := true;
        close_trace ();
        match tel.metrics with
        | None -> ()
        | Some "-" -> print_endline (Obs.Metrics.snapshot_string ())
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (Obs.Metrics.snapshot_string ());
                output_char oc '\n')
      end
  in
  at_exit teardown;
  (* A killed or crashing run still leaves its black box. SIGINT/SIGTERM
     dump the flight rings and exit through [at_exit], so the trace gets
     its closing bracket too; an escaping exception dumps after teardown
     and re-raises. *)
  let flight reason =
    match Obs.Recorder.dump ~reason () with
    | Some file -> Printf.eprintf "flight recorder: wrote %s\n%!" file
    | None -> ()
  in
  let handler name code =
    Sys.Signal_handle
      (fun _ ->
        flight name;
        exit code)
  in
  (try Sys.set_signal Sys.sigint (handler "sigint" 130)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (handler "sigterm" 143)
   with Invalid_argument _ | Sys_error _ -> ());
  match Fun.protect ~finally:teardown f with
  | v -> v
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      flight "exception";
      Printexc.raise_with_backtrace exn bt

(* Shared by run/chaos/explore: the width of the domain pool their
   parallelizable work fans out over. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan parallelizable work (frontier exploration, chaos runs, \
           frontier sampling) over $(docv) domains. The default 1 is the \
           original sequential path; for fixed seeds, verdicts and \
           terminal-state summaries are identical for any value.")

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-4s %-28s %s@." e.Experiments.Registry.id
          e.Experiments.Registry.slug e.Experiments.Registry.paper)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc =
    "Run experiments by id or slug ('all' runs every one). Each experiment \
     runs supervised: exceptions are caught with their backtrace, a \
     deadline aborts hung runs, and a summary table plus a non-zero exit \
     code report any failure — one bad experiment never loses the rest."
  in
  let keys =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-experiment wall-clock deadline. Exploration-backed checks \
             degrade to sampled coverage at the deadline; an experiment \
             still running at 1.5x the deadline (+1s) is killed and \
             reported as timed out.")
  in
  let max_states_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Per-experiment cap on explored interleaving-tree nodes; \
             exploration-backed checks degrade to sampled coverage at the \
             cap.")
  in
  let run keys deadline max_states jobs tel =
    with_telemetry tel @@ fun () ->
    emit_meta ~jobs ();
    let selected =
      if List.exists (fun k -> String.lowercase_ascii k = "all") keys then
        Ok Experiments.Registry.all
      else
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | k :: rest -> (
              match Experiments.Registry.find k with
              | Some e -> resolve (e :: acc) rest
              | None -> Error k)
        in
        resolve [] keys
    in
    match selected with
    | Error k ->
        Format.eprintf "unknown experiment %S (try 'boundedreg list')@." k;
        exit 1
    | Ok experiments ->
        let budget = Sched.Budget.make ?deadline ?max_nodes:max_states () in
        (* The soft (budget) deadline fires first so checks can degrade
           gracefully; the SIGALRM backstop gets 1.5x + 1s of slack and
           only kills experiments that ignored their budget. *)
        let hard = Option.map (fun d -> (d *. 1.5) +. 1.) deadline in
        let results =
          List.map
            (fun e ->
              Format.printf "=== %s  %s ===@.reproduces: %s@.@."
                e.Experiments.Registry.id e.Experiments.Registry.slug
                e.Experiments.Registry.paper;
              Format.print_flush ();
              let r =
                Experiments.Supervisor.run_one ?deadline:hard ~budget ~jobs e
              in
              Format.printf "%s@." r.Experiments.Supervisor.output;
              (match r.Experiments.Supervisor.status with
              | Experiments.Supervisor.Passed
              | Experiments.Supervisor.Degraded _ ->
                  ()
              | Experiments.Supervisor.Timed_out s ->
                  Format.printf "*** %s: timed out after %.1fs@.@."
                    e.Experiments.Registry.id s
              | Experiments.Supervisor.Crashed { exn_text; backtrace } ->
                  Format.printf "*** %s: uncaught exception %s@.%s@."
                    e.Experiments.Registry.id exn_text backtrace);
              Format.print_flush ();
              r)
            experiments
        in
        Experiments.Supervisor.summary Format.std_formatter results;
        Format.print_flush ();
        exit (Experiments.Supervisor.exit_code results)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ keys $ deadline_arg $ max_states_arg $ jobs_arg
      $ telemetry_term)

(* ----- demo subcommands ----- *)

module Q = Bits.Rational
module H = Tasks.Harness

let seed_arg =
  Cmdliner.Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")

let alg1_cmd =
  let doc = "Run Algorithm 1 (2-process eps-agreement, 1-bit registers)." in
  let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~docv:"K") in
  let inputs_arg =
    Arg.(value & opt (pair int int) (0, 1) & info [ "inputs" ] ~docv:"X0,X1")
  in
  let trace_arg = Arg.(value & flag & info [ "trace" ]) in
  let run k (x0, x1) seed trace =
    let algorithm = Core.Alg1_one_bit.algorithm ~k in
    let state =
      Sched.Scheduler.start ~record_trace:trace
        ~memory:(algorithm.H.memory ())
        ~programs:(fun pid ->
          algorithm.H.program ~pid ~input:(if pid = 0 then x0 else x1))
        ()
    in
    Sched.Scheduler.run_random (Bits.Rng.make seed) state;
    if trace then
      Format.printf "%a@."
        (Sched.Trace.pp Format.pp_print_int)
        (Sched.Scheduler.trace state);
    Format.printf "eps = 1/%d@." (Core.Alg1_one_bit.denominator ~k);
    Array.iteri
      (fun pid d ->
        match d with
        | Some v ->
            Format.printf "process %d: decides %a after %d steps@." pid Q.pp v
              (Sched.Scheduler.steps_of state pid)
        | None -> Format.printf "process %d: no decision@." pid)
      (Sched.Scheduler.decisions state)
  in
  Cmd.v (Cmd.info "alg1" ~doc)
    Term.(const run $ k_arg $ inputs_arg $ seed_arg $ trace_arg)

let fast_cmd =
  let doc = "Run the Theorem 8.1 fast agreement (6-bit registers)." in
  let rounds_arg = Arg.(value & opt int 10 & info [ "rounds" ] ~docv:"R") in
  let inputs_arg =
    Arg.(value & opt (pair int int) (0, 1) & info [ "inputs" ] ~docv:"X0,X1")
  in
  let run rounds (x0, x1) seed =
    let algorithm = Core.Fast_agreement.algorithm ~delta:2 ~rounds in
    let state =
      H.run_once algorithm ~inputs:[| x0; x1 |]
        ~schedule:(`Random (Bits.Rng.make seed, []))
        ()
    in
    Format.printf "eps = 1/%d (>= 2^-%d), registers: %d bits@."
      (Core.Fast_agreement.denominator ~delta:2 ~rounds)
      rounds
      (Core.Ring_sim.register_bits ~delta:2);
    Array.iteri
      (fun pid d ->
        match d with
        | Some v ->
            Format.printf "process %d: decides %a after %d steps@." pid Q.pp v
              (Sched.Scheduler.steps_of state pid)
        | None -> Format.printf "process %d: no decision@." pid)
      (Sched.Scheduler.decisions state)
  in
  Cmd.v (Cmd.info "fast" ~doc)
    Term.(const run $ rounds_arg $ inputs_arg $ seed_arg)

let pipeline_cmd =
  let doc =
    "Run the Theorem 1.3 pipeline (eps-agreement over 3(t+1)-bit registers)."
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N") in
  let t_arg = Arg.(value & opt int 1 & info [ "t" ] ~docv:"T") in
  let rounds_arg = Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"R") in
  let run n t rounds seed =
    if 2 * t >= n then begin
      Format.eprintf "need t < n/2@.";
      exit 1
    end;
    let value =
      Msgpass.Wire.(list_codec (pair_codec int_codec rational_codec))
    in
    let algorithm =
      Msgpass.Pipeline.algorithm ~n ~t ~value ~input:Msgpass.Wire.int_codec
        ~init:[]
        ~source:(fun ~pid ~input ->
          Core.Baseline_unbounded.protocol ~n ~rounds ~me:pid ~input)
        ~name:"cli-pipeline" ()
    in
    let rng = Bits.Rng.make seed in
    let inputs = Array.init n (fun _ -> Bits.Rng.int rng 2) in
    Format.printf "inputs: %s; registers: %d bits (= 3(t+1))@."
      (String.concat ","
         (Array.to_list (Array.map string_of_int inputs)))
      (Msgpass.Pipeline.register_bits ~t ~chunk:1);
    let state =
      H.run_once algorithm ~inputs
        ~schedule:(`Random (rng, []))
        ~max_steps:400_000_000 ()
    in
    Array.iteri
      (fun pid d ->
        match d with
        | Some v ->
            Format.printf "process %d: decides %a after %d steps@." pid Q.pp v
              (Sched.Scheduler.steps_of state pid)
        | None -> Format.printf "process %d: no decision@." pid)
      (Sched.Scheduler.decisions state)
  in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(const run $ n_arg $ t_arg $ rounds_arg $ seed_arg)

let search_cmd =
  let doc = "Exhaustive consensus-protocol search (Lemma 2.1)." in
  let rounds_arg = Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"R") in
  let run rounds =
    let s = Core.Consensus_search.search ~rounds in
    Format.printf "%d candidates, %d survive 1-resilient consensus checking@."
      s.Core.Consensus_search.total
      (List.length s.Core.Consensus_search.survivors)
  in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ rounds_arg)

let labelling_cmd =
  let doc = "Enumerate the labelling protocol's labels and values." in
  let rounds_arg = Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R") in
  let run rounds =
    let labels = ref [] in
    Iterated.Iis.enumerate ~n:2 ~budget:(Bits.Width.Bounded 1)
      ~measure:(Bits.Width.uint ~max:1)
      ~programs:(fun pid -> Core.Labelling.protocol ~rounds ~me:pid)
      ~max_rounds:rounds
      (fun o ->
        Array.iter
          (function
            | Some l ->
                if not (List.exists (Core.Labelling.equal l) !labels) then
                  labels := l :: !labels
            | None -> ())
          o.Iterated.Iis.decisions);
    let sorted =
      List.sort
        (fun a b ->
          Q.compare (Core.Labelling.value a) (Core.Labelling.value b))
        !labels
    in
    List.iter
      (fun l ->
        Format.printf "%-20s  f = %a@."
          (Format.asprintf "%a" Core.Labelling.pp l)
          Q.pp (Core.Labelling.value l))
      sorted;
    Format.printf "%d labels (3^%d + 1)@." (List.length sorted) rounds
  in
  Cmd.v (Cmd.info "labelling" ~doc) Term.(const run $ rounds_arg)

(* ----- dynamic-membership flags shared by chaos and fleet ----- *)

type churn_opts = {
  co_churn : bool;
  co_frontier : bool;
  co_seed_members : int option;
  co_rate : int option;
  co_window : int option;
  co_slack : int option;
  co_width_bits : int option;
}

let churn_term =
  let churn_arg =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Dynamic-membership mode: Dynreg peers over a churning \
             membership (the sound preset — quorums widened by the churn \
             rate). Implied by any other --churn-* option.")
  in
  let churn_frontier_arg =
    Arg.(
      value & flag
      & info [ "churn-frontier" ]
          ~doc:
            "Above-bound churn with zero quorum slack under the frontier \
             delay/reorder profile — the dynamic campaign that must find a \
             reconfiguration-induced stale read.")
  in
  let seed_members_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed-members" ] ~docv:"M"
          ~doc:"Slots 0..$(docv)-1 are present at start; the rest join.")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "churn-rate" ] ~docv:"R"
          ~doc:
            "Max churn (enter/leave) events per window; 0 disables churn.")
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "churn-window" ] ~docv:"W"
          ~doc:"Churn window length, in fault-layer events.")
  in
  let slack_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "churn-slack" ] ~docv:"S"
          ~doc:
            "Quorum widening handed to the emulation — sound when at least \
             the churn rate; 0 exposes the departing-acker hazard.")
  in
  let width_bits_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "width-bits" ] ~docv:"B"
          ~doc:
            "Bound Dynreg timestamps to $(docv) bits (wrapping mod 2^B) — \
             the bounded-register knob E17 sweeps.")
  in
  Term.(
    const (fun co_churn co_frontier co_seed_members co_rate co_window co_slack
               co_width_bits ->
        { co_churn; co_frontier; co_seed_members; co_rate; co_window;
          co_slack; co_width_bits })
    $ churn_arg $ churn_frontier_arg $ seed_members_arg $ rate_arg
    $ window_arg $ slack_arg $ width_bits_arg)

(* [Some config] when any churn flag asks for the dynamic fleet. The
   frontier preset's knobs are still overridable by the explicit
   options (e.g. --churn-frontier --churn-slack 12 to verify the slack
   repairs the frontier's violation). *)
let dyn_config ?n (o : churn_opts) =
  let open Msgpass.Chaos in
  let implied =
    o.co_seed_members <> None || o.co_rate <> None || o.co_window <> None
    || o.co_slack <> None || o.co_width_bits <> None
  in
  if not (o.co_churn || o.co_frontier || implied) then None
  else if o.co_frontier then
    let base = churn_frontier ?n ?seed_members:o.co_seed_members () in
    let membership =
      Option.map
        (fun d ->
          {
            d with
            churn_rate = Option.value o.co_rate ~default:d.churn_rate;
            churn_window = Option.value o.co_window ~default:d.churn_window;
            churn_slack = Option.value o.co_slack ~default:d.churn_slack;
            width_bits =
              (match o.co_width_bits with Some b -> Some b | None -> d.width_bits);
          })
        base.membership
    in
    Some { base with membership }
  else
    Some
      (churn ?n ?seed_members:o.co_seed_members ?rate:o.co_rate
         ?window:o.co_window ?slack:o.co_slack ?width_bits:o.co_width_bits ())

(* Fail fast with a readable message instead of the campaign's
   [Invalid_argument]; warnings are left to the campaign, which prints
   them once. *)
let check_config config =
  match Msgpass.Chaos.validate config with
  | Ok _ -> ()
  | Error e ->
      Format.eprintf "invalid configuration: %s@." e;
      exit 1

let pp_config_line tag config =
  let open Msgpass.Chaos in
  match config.membership with
  | Some d ->
      Format.printf
        "%s: n=%d dyn seed-members=%d churn=%d/%d slack=%d width=%s@." tag
        config.n d.seed_members d.churn_rate d.churn_window d.churn_slack
        (match d.width_bits with
        | None -> "unbounded"
        | Some b -> Printf.sprintf "%db" b)
  | None ->
      Format.printf "%s: n=%d t=%d quorum=%d writes=%d readers=%dx%d@." tag
        config.n config.t
        (Option.value config.quorum ~default:(config.n - config.t))
        config.writes config.readers config.reads

let chaos_cmd =
  let doc =
    "Run a fault-injection campaign against the ABD register emulation \
     (or, with --churn, the dynamic-membership Dynreg emulation) and \
     machine-check linearizability of every run."
  in
  let n_arg =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N")
  in
  let t_arg = Arg.(value & opt int 1 & info [ "t" ] ~docv:"T") in
  let quorum_arg =
    Arg.(value & opt (some int) None & info [ "quorum" ] ~docv:"Q")
  in
  let frontier_arg =
    Arg.(
      value & flag
      & info [ "frontier" ]
          ~doc:
            "Use the t = n/2 frontier preset (disjoint quorums, the E13 \
             configuration).")
  in
  let runs_arg = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"RUNS") in
  let max_events_arg =
    Arg.(value & opt (some int) None & info [ "max-events" ] ~docv:"E")
  in
  let plan_arg =
    Arg.(
      value & flag
      & info [ "plan" ] ~doc:"Print the shrunk fault plan of a violation.")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some (enum [ ("pass", `Pass); ("violation", `Violation) ])) None
      & info [ "expect" ] ~docv:"VERDICT"
          ~doc:
            "Exit non-zero unless the campaign outcome matches (CI smoke \
             gate).")
  in
  let chaos_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Stop the campaign after $(docv) of wall clock; completed runs \
             still count and the report is marked degraded.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign base seed. When omitted, one is auto-picked and \
             echoed — a reported violation is replayable either way.")
  in
  let run n t quorum frontier copts runs max_events seed print_plan expect
      deadline jobs tel =
    with_telemetry tel @@ fun () ->
    (* Always echo the resolved seed: a violation found under an
       auto-picked seed must be replayable from the console output. *)
    let seed, picked =
      match seed with
      | Some s -> (s, "")
      | None ->
          Random.self_init ();
          (Random.int 0x3FFFFFF, " (auto-picked)")
    in
    Format.printf "seed: %d%s@." seed picked;
    emit_meta ~seed ~jobs ();
    let config =
      match dyn_config ?n copts with
      | Some c -> c
      | None ->
          if frontier then Msgpass.Chaos.frontier ?n ()
          else
            let c = Msgpass.Chaos.sound ?n ~t () in
            { c with Msgpass.Chaos.quorum = Option.fold ~none:c.Msgpass.Chaos.quorum ~some:Option.some quorum }
    in
    let config =
      match max_events with
      | Some e -> { config with Msgpass.Chaos.max_events = e }
      | None -> config
    in
    check_config config;
    pp_config_line "chaos" config;
    let c = Msgpass.Chaos.campaign ?deadline ~jobs ~seed ~runs config in
    Format.printf "@[<v>%a@]@." Msgpass.Chaos.pp_campaign c;
    (match (print_plan, c.Msgpass.Chaos.first) with
    | true, Some f ->
        Format.printf "shrunk plan:@.  @[<hov>%a@]@." Msgpass.Faults.pp_plan
          f.Msgpass.Chaos.shrunk
    | _ -> ());
    match expect with
    | Some `Pass when c.Msgpass.Chaos.violations > 0 ->
        Format.eprintf "expected a clean campaign, found %d violation(s)@."
          c.Msgpass.Chaos.violations;
        exit 1
    | Some `Violation when c.Msgpass.Chaos.violations = 0 ->
        Format.eprintf "expected the campaign to find a violation@.";
        exit 1
    | _ -> ()
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ n_arg $ t_arg $ quorum_arg $ frontier_arg $ churn_term
      $ runs_arg $ max_events_arg $ chaos_seed_arg $ plan_arg $ expect_arg
      $ chaos_deadline_arg $ jobs_arg $ telemetry_term)

let fleet_cmd =
  let doc =
    "Run a coverage-guided chaos fleet: generations of fresh seeded runs \
     and corpus-plan mutants, every coverage-moving plan fed back into the \
     corpus, every NONLINEARIZABLE run shrunk, deduplicated by violation \
     class and published as a replayable witness."
  in
  let n_arg =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N")
  in
  let t_arg = Arg.(value & opt int 1 & info [ "t" ] ~docv:"T") in
  let quorum_arg =
    Arg.(value & opt (some int) None & info [ "quorum" ] ~docv:"Q")
  in
  let frontier_arg =
    Arg.(
      value & flag
      & info [ "frontier" ]
          ~doc:
            "Use the t = n/2 frontier preset (disjoint quorums, the E13 \
             configuration).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist the corpus ($(docv)/corpus.jsonl) and witnesses \
             ($(docv)/witness-<class>.json). An existing corpus resumes: \
             ids continue and published witness classes stay deduplicated.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Fill $(docv) of wall clock with generations (checked between \
             generations, like the chaos deadline).")
  in
  let generations_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "generations" ] ~docv:"G"
          ~doc:
            "Run exactly $(docv) generations — the fully deterministic \
             mode (default 10 when no --budget is given).")
  in
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"RUNS" ~doc:"Runs per generation.")
  in
  let no_swarm_arg =
    Arg.(
      value & flag
      & info [ "no-swarm" ]
          ~doc:
            "Disable swarm testing: every generation keeps the preset's \
             fault profile instead of re-rolling a random feature mix.")
  in
  let max_events_arg =
    Arg.(value & opt (some int) None & info [ "max-events" ] ~docv:"E")
  in
  let fleet_seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some (enum [ ("pass", `Pass); ("witness", `Witness) ])) None
      & info [ "expect" ] ~docv:"VERDICT"
          ~doc:
            "Exit non-zero unless the fleet outcome matches: $(b,pass) \
             means no witness, $(b,witness) means at least one (CI smoke \
             gate).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Instead of running a fleet, replay the witness file and exit \
             non-zero unless it reproduces bit-for-bit (same verdict, \
             terminal hash, event and delivery counts).")
  in
  let run n t quorum frontier copts corpus budget generations batch no_swarm
      max_events seed expect replay jobs tel =
    with_telemetry tel @@ fun () ->
    match replay with
    | Some file -> (
        match Msgpass.Fleet.replay_file file with
        | Error e ->
            Format.eprintf "%s@." e;
            exit 1
        | Ok r ->
            let cfg = r.Msgpass.Fleet.config in
            (match cfg.Msgpass.Chaos.membership with
            | Some d ->
                Format.printf
                  "witness %s: n=%d dyn seed-members=%d slack=%d, %d \
                   action(s), %d deliveries@."
                  file cfg.Msgpass.Chaos.n d.Msgpass.Chaos.seed_members
                  d.Msgpass.Chaos.churn_slack
                  (List.length r.Msgpass.Fleet.witness_plan)
                  r.Msgpass.Fleet.stored_deliveries
            | None ->
                Format.printf
                  "witness %s: n=%d quorum=%d, %d action(s), %d deliveries@."
                  file cfg.Msgpass.Chaos.n
                  (Option.value cfg.Msgpass.Chaos.quorum
                     ~default:(cfg.Msgpass.Chaos.n - cfg.Msgpass.Chaos.t))
                  (List.length r.Msgpass.Fleet.witness_plan)
                  r.Msgpass.Fleet.stored_deliveries);
            Format.printf "replay: %a@."
              (Check.Linearize.pp_verdict Format.pp_print_int)
              r.Msgpass.Fleet.outcome.Msgpass.Chaos.verdict;
            if r.Msgpass.Fleet.bit_for_bit then
              Format.printf "bit-for-bit: reproduced@."
            else begin
              Format.eprintf
                "bit-for-bit: MISMATCH (stored events=%d deliveries=%d \
                 hash=%016x)@."
                r.Msgpass.Fleet.stored_events
                r.Msgpass.Fleet.stored_deliveries
                r.Msgpass.Fleet.stored_terminal_hash;
              exit 1
            end)
    | None ->
        let config =
          match dyn_config ?n copts with
          | Some c -> c
          | None ->
              if frontier then Msgpass.Chaos.frontier ?n ()
              else
                let c = Msgpass.Chaos.sound ?n ~t () in
                {
                  c with
                  Msgpass.Chaos.quorum =
                    Option.fold ~none:c.Msgpass.Chaos.quorum ~some:Option.some
                      quorum;
                }
        in
        let config =
          match max_events with
          | Some e -> { config with Msgpass.Chaos.max_events = e }
          | None -> config
        in
        check_config config;
        pp_config_line "fleet" config;
        Format.printf "fleet: batch=%d swarm=%b@." batch (not no_swarm);
        emit_meta ~seed ~jobs ();
        let r =
          Msgpass.Fleet.campaign ?budget ?generations ~jobs ~batch
            ~swarm:(not no_swarm) ?corpus_dir:corpus ~seed config
        in
        Format.printf "%a@." Msgpass.Fleet.pp_report r;
        let witnesses = List.length r.Msgpass.Fleet.witnesses in
        (match expect with
        | Some `Pass when witnesses > 0 ->
            Format.eprintf "expected a clean fleet, found %d witness(es)@."
              witnesses;
            exit 1
        | Some `Witness when witnesses = 0 ->
            Format.eprintf "expected the fleet to find a witness@.";
            exit 1
        | _ -> ())
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const run $ n_arg $ t_arg $ quorum_arg $ frontier_arg $ churn_term
      $ corpus_arg $ budget_arg $ generations_arg $ batch_arg $ no_swarm_arg
      $ max_events_arg $ fleet_seed_arg $ expect_arg $ replay_arg $ jobs_arg
      $ telemetry_term)

let explore_cmd =
  let doc =
    "Budgeted exhaustive exploration of Algorithm 1's interleavings with \
     checkpoint/resume: a run cut short by --max-nodes or --deadline \
     writes its unexplored frontier to the checkpoint file; --resume picks \
     it up and continues until the enumeration is complete."
  in
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K") in
  let max_crashes_arg =
    Arg.(value & opt int 1 & info [ "max-crashes" ] ~docv:"C")
  in
  let max_nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Stop after expanding $(docv) DFS nodes.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Stop exploring after $(docv) of wall clock.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt string "explore.ckpt"
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Where the unexplored frontier is saved and resumed from.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the checkpoint file instead of starting at the \
             root (flags and K must match the run that wrote it).")
  in
  let no_dedup_arg =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Disable state deduplication: one terminal visit per schedule. \
             With $(b,--no-por) this is raw mode, where node and terminal \
             counts partition exactly across budgeted or parallel runs.")
  in
  let no_por_arg =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:"Disable sleep-set partial-order reduction.")
  in
  let run k max_crashes max_nodes deadline checkpoint resume no_dedup no_por
      jobs tel =
    with_telemetry tel @@ fun () ->
    emit_meta ~jobs ();
    let algorithm = Core.Alg1_one_bit.algorithm ~k in
    let init () =
      Sched.Scheduler.start
        ~memory:(algorithm.H.memory ())
        ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
        ()
    in
    let resume_frontier =
      if not resume then None
      else
        let text =
          try In_channel.with_open_text checkpoint In_channel.input_all
          with Sys_error e ->
            Format.eprintf "cannot read checkpoint: %s@." e;
            exit 1
        in
        match Sched.Budget.frontier_of_string text with
        | Ok f ->
            Format.printf "resuming %d frontier path(s) from %s@."
              (Sched.Budget.frontier_size f) checkpoint;
            Some f
        | Error e ->
            Format.eprintf "corrupt checkpoint %s: %s@." checkpoint e;
            exit 1
    in
    let budget = Sched.Budget.make ?deadline ?max_nodes () in
    (* The parallel driver with jobs=1 is exactly the sequential engine.
       The fold mirrors the terminal count the stats already carry and
       sums an order-insensitive digest over terminal-state signatures
       (native-int wraparound addition commutes), so the printed digest
       is independent of how the work was partitioned: any jobs width
       must reproduce it byte-for-byte in raw mode. *)
    let terminal_digest st =
      Hashtbl.hash
        ( Array.to_list (Sched.Scheduler.decisions st),
          Array.to_list (Sched.Memory.contents (Sched.Scheduler.memory st)),
          Sched.Scheduler.crashed st )
    in
    let r =
      Sched.Par.explore ~max_crashes ~dedup:(not no_dedup) ~por:(not no_por)
        ~budget ?resume:resume_frontier ~jobs ~init
        ~fold:(fun st (count, digest) -> (count + 1, digest + terminal_digest st))
        ~merge:(fun (c1, d1) (c2, d2) -> (c1 + c2, d1 + d2))
        (0, 0)
    in
    let _, digest = r.Sched.Par.value in
    Format.printf "k=%d max_crashes=%d jobs=%d budget: %a@.%a@.digest=0x%08x@."
      k max_crashes r.Sched.Par.jobs Sched.Budget.pp budget
      Sched.Explore.pp_stats r.Sched.Par.stats
      (digest land 0xffffffff);
    match r.Sched.Par.outcome with
    | Sched.Explore.Complete ->
        Format.printf "outcome: complete — every terminal state visited@."
    | Sched.Explore.Exhausted { frontier; reason } ->
        Out_channel.with_open_text checkpoint (fun oc ->
            Out_channel.output_string oc
              (Sched.Budget.frontier_to_string frontier));
        Format.printf
          "outcome: exhausted (%a); %d frontier path(s) -> %s@.resume with: \
           boundedreg explore -k %d --max-crashes %d --resume --checkpoint \
           %s@."
          Sched.Budget.pp_stop_reason reason
          (Sched.Budget.frontier_size frontier)
          checkpoint k max_crashes checkpoint
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ k_arg $ max_crashes_arg $ max_nodes_arg $ deadline_arg
      $ checkpoint_arg $ resume_arg $ no_dedup_arg $ no_por_arg $ jobs_arg
      $ telemetry_term)

let trace_cmd =
  let doc = "Inspect a trace file written by --trace." in
  let summary_cmd =
    let doc =
      "Validate and summarize a trace: every event is parsed (a malformed \
       file exits non-zero) and per-event-name counts plus span totals are \
       printed. Reads both jsonl and catapult formats."
    in
    let file_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
    in
    let run file =
      let text =
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error e ->
          Format.eprintf "cannot read trace: %s@." e;
          exit 1
      in
      let fail fmt = Format.kasprintf (fun m ->
          Format.eprintf "invalid trace %s: %s@." file m;
          exit 1) fmt
      in
      let event_of_json j =
        match Obs.Sink.event_of_json j with
        | Some e -> e
        | None -> fail "object is not a trace event: %s" (Obs.Json.to_string j)
      in
      let trimmed = String.trim text in
      let events =
        if trimmed = "" then []
        else if trimmed.[0] = '[' then
          (* catapult: one JSON array of trace_event objects *)
          match Obs.Json.of_string trimmed with
          | Error e -> fail "unparseable catapult array (%s)" e
          | Ok (Obs.Json.List items) -> List.map event_of_json items
          | Ok _ -> fail "expected a top-level array"
        else
          String.split_on_char '\n' text
          |> List.filter (fun l -> String.trim l <> "")
          |> List.mapi (fun i line ->
                 match Obs.Json.of_string line with
                 | Error e -> fail "line %d unparseable (%s)" (i + 1) e
                 | Ok j -> event_of_json j)
      in
      (* Every event must belong to a known subsystem category — a typo'd
         cat would otherwise slip through every downstream consumer
         silently. This list is the single CLI-side registry; extend it
         when a subsystem starts emitting a new category. *)
      let known_categories =
        [
          "app"; "chaos"; "dynreg"; "experiment"; "explore"; "fleet";
          "harness"; "membership"; "meta"; "net"; "sched";
        ]
      in
      let cat_counts = Hashtbl.create 8 in
      List.iter
        (fun (e : Obs.Sink.event) ->
          if not (List.mem e.cat known_categories) then
            fail "unknown event category %S (event %S)" e.cat e.name;
          Hashtbl.replace cat_counts e.cat
            (1 + Option.value (Hashtbl.find_opt cat_counts e.cat) ~default:0))
        events;
      (* Spans must nest: every End matches the innermost open Begin on
         its track. The console summarizer reports totals; unbalanced
         files fail the validation. *)
      let depth = Hashtbl.create 8 in
      List.iter
        (fun (e : Obs.Sink.event) ->
          let d = Option.value (Hashtbl.find_opt depth e.track) ~default:0 in
          match e.kind with
          | Obs.Sink.Begin -> Hashtbl.replace depth e.track (d + 1)
          | Obs.Sink.End ->
              if d = 0 then fail "span end without begin on track %d" e.track
              else Hashtbl.replace depth e.track (d - 1)
          | Obs.Sink.Instant -> ())
        events;
      Hashtbl.iter
        (fun track d ->
          if d > 0 then fail "%d unclosed span(s) on track %d" d track)
        depth;
      if Hashtbl.length cat_counts > 0 then begin
        Format.printf "categories:@.";
        Hashtbl.fold (fun cat n acc -> (cat, n) :: acc) cat_counts []
        |> List.sort compare
        |> List.iter (fun (cat, n) -> Format.printf "  %-12s %6d@." cat n)
      end;
      let sink = Obs.Sink.console Format.std_formatter in
      List.iter sink.Obs.Sink.emit events;
      sink.Obs.Sink.flush ();
      Format.printf "trace %s: valid@." file
    in
    Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ file_arg)
  in
  Cmd.group (Cmd.info "trace" ~doc) [ summary_cmd ]

let report_cmd =
  let doc =
    "Render a self-contained health report from telemetry artifacts: a \
     trace (jsonl, catapult, or a flight-recorder dump), a --metrics \
     snapshot, and/or a BENCH_*.json — event-category counts, span \
     rollups, verdicts, witness inventory, coverage-over-time curves and \
     histogram percentiles, as Markdown or HTML."
  in
  let trace_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file written by --trace.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics snapshot written by --metrics.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"FILE" ~doc:"A BENCH_*.json document.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report to $(docv); '-' prints to stdout.")
  in
  let html_arg =
    Arg.(
      value & flag
      & info [ "html" ] ~doc:"Render HTML (inline SVG curves) instead of \
                              Markdown.")
  in
  let run trace metrics bench out html =
    if trace = None && metrics = None && bench = None then begin
      Format.eprintf
        "nothing to report on: pass a trace file, --metrics or --bench@.";
      exit 1
    end;
    let read_file what file =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error e ->
        Format.eprintf "cannot read %s: %s@." what e;
        exit 1
    in
    let events =
      match trace with
      | None -> []
      | Some file ->
          let text = read_file "trace" file in
          let fail fmt =
            Format.kasprintf
              (fun m ->
                Format.eprintf "invalid trace %s: %s@." file m;
                exit 1)
              fmt
          in
          let event_of_json j =
            match Obs.Sink.event_of_json j with
            | Some e -> e
            | None ->
                fail "object is not a trace event: %s" (Obs.Json.to_string j)
          in
          let trimmed = String.trim text in
          if trimmed = "" then []
          else if trimmed.[0] = '[' then
            match Obs.Json.of_string trimmed with
            | Error e -> fail "unparseable catapult array (%s)" e
            | Ok (Obs.Json.List items) -> List.map event_of_json items
            | Ok _ -> fail "expected a top-level array"
          else
            String.split_on_char '\n' text
            |> List.filter (fun l -> String.trim l <> "")
            |> List.mapi (fun i line ->
                   match Obs.Json.of_string line with
                   | Error e -> fail "line %d unparseable (%s)" (i + 1) e
                   | Ok j -> event_of_json j)
    in
    let parse_json what file =
      match Obs.Json.of_string (read_file what file) with
      | Ok j -> j
      | Error e ->
          Format.eprintf "unparseable %s %s (%s)@." what file e;
          exit 1
    in
    let metrics = Option.map (parse_json "metrics snapshot") metrics in
    let bench = Option.map (parse_json "bench JSON") bench in
    let blocks = Obs.Report.of_sources ?metrics ?bench events in
    let rendered =
      if html then Obs.Report.to_html blocks
      else Obs.Report.to_markdown blocks
    in
    match out with
    | "-" -> print_string rendered
    | file ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc rendered)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ trace_arg $ metrics_arg $ bench_arg $ out_arg $ html_arg)

let dot_cmd =
  let doc =
    "Emit a Graphviz rendering (task output graph or protocol complex)."
  in
  let what_arg =
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("labelling", `Labelling); ("pruned", `Pruned);
                         ("renaming3", `Renaming); ("eps-grid", `Eps_grid);
                         ("hull", `Hull) ]))
          None
      & info [] ~docv:"WHAT")
  in
  let rounds_arg = Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R") in
  let run what rounds =
    let dot =
      match what with
      | `Labelling -> Experiments.Viz.labelling_path ~rounds
      | `Pruned -> Experiments.Viz.pruned_path ~delta:2 ~rounds
      | `Renaming -> Experiments.Viz.bmz_graph Tasks.Gallery.renaming3
      | `Eps_grid -> Experiments.Viz.bmz_graph (Tasks.Gallery.eps_grid ~k:3)
      | `Hull -> Experiments.Viz.bmz_graph Tasks.Gallery.hull_agreement
    in
    print_string dot
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ what_arg $ rounds_arg)

let () =
  let doc =
    "Executable reproduction of 'The Computational Power of Distributed \
     Shared-Memory Models with Bounded-Size Registers' (PODC 2024)"
  in
  let info = Cmd.info "boundedreg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; alg1_cmd; fast_cmd; pipeline_cmd; search_cmd;
            labelling_cmd; chaos_cmd; fleet_cmd; explore_cmd; trace_cmd;
            report_cmd; dot_cmd ]))
