(* Tests for lib/task: task specifications and the BMZ machinery. *)

module Q = Bits.Rational
module Bmz = Tasks.Bmz
module Gallery = Tasks.Gallery

let test_eps_task_legality () =
  let task = Tasks.Eps_agreement.task ~n:3 ~k:4 in
  let legal inputs outputs = task.Tasks.Task.legal ~inputs ~outputs in
  Alcotest.(check bool)
    "same inputs force the input value" false
    (legal [| 0; 0; 0 |] [| Some (Q.make 1 4); Some Q.zero; Some Q.zero |]);
  Alcotest.(check bool)
    "agreement within 1/4 accepted" true
    (legal [| 0; 1; 0 |] [| Some (Q.make 1 4); Some (Q.make 2 4); None |]);
  Alcotest.(check bool)
    "spread above 1/4 rejected" false
    (legal [| 0; 1; 0 |] [| Some Q.zero; Some (Q.make 2 4); None |]);
  Alcotest.(check bool)
    "off-grid output rejected" false
    (legal [| 0; 1; 0 |] [| Some (Q.make 1 3); None; None |]);
  Alcotest.(check bool)
    "crashed-only outputs accepted" true
    (legal [| 0; 1; 1 |] [| None; None; None |])

let test_consensus_legality () =
  let task = Tasks.Consensus.binary ~n:3 in
  let legal inputs outputs = task.Tasks.Task.legal ~inputs ~outputs in
  Alcotest.(check bool) "agree on an input" true
    (legal [| 0; 1; 1 |] [| Some 1; Some 1; Some 1 |]);
  Alcotest.(check bool) "disagreement rejected" false
    (legal [| 0; 1; 1 |] [| Some 1; Some 0; Some 1 |]);
  Alcotest.(check bool) "non-input value rejected" false
    (legal [| 0; 0; 0 |] [| Some 1; Some 1; Some 1 |])

let test_input_configurations () =
  let task = Tasks.Eps_agreement.task ~n:3 ~k:2 in
  Alcotest.(check int) "2^3 binary configurations" 8
    (List.length (Tasks.Task.input_configurations task))

(* Lemma 5.7, sufficient direction: solvable tasks admit plans. *)
let test_plan_solvable () =
  List.iter
    (fun (name, ok) ->
      match ok with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s should be solvable: %s" name e)
    [
      ("eps-grid k=1", Result.map ignore (Bmz.plan (Gallery.eps_grid ~k:1)));
      ("eps-grid k=3", Result.map ignore (Bmz.plan (Gallery.eps_grid ~k:3)));
      ("renaming3", Result.map ignore (Bmz.plan Gallery.renaming3));
      ("always-zero", Result.map ignore (Bmz.plan Gallery.always_zero));
      ("hull-agreement", Result.map ignore (Bmz.plan Gallery.hull_agreement));
      ("weak-consensus", Result.map ignore (Bmz.plan Gallery.weak_consensus));
    ]

(* Lemma 5.7, necessary direction: consensus-like tasks are rejected. *)
let test_plan_unsolvable () =
  List.iter
    (fun (name, r) ->
      match r with
      | Ok _ -> Alcotest.failf "%s should NOT admit a plan" name
      | Error _ -> ())
    [
      ( "binary-consensus",
        Result.map ignore (Bmz.plan Gallery.binary_consensus) );
      ("or-task", Result.map ignore (Bmz.plan Gallery.or_task));
      ("exact-max", Result.map ignore (Bmz.plan Gallery.exact_max));
    ]

(* Structural properties of generated paths. *)
let test_plan_paths () =
  match Bmz.plan (Gallery.eps_grid ~k:2) with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let t = plan.Bmz.task in
      Alcotest.(check bool) "length odd" true (plan.Bmz.length mod 2 = 1);
      Alcotest.(check bool) "length >= 3" true (plan.Bmz.length >= 3);
      List.iter
        (fun ((x0, x1), missing) ->
          let path = plan.Bmz.path (x0, x1) ~missing in
          Alcotest.(check int) "path has L+1 entries" (plan.Bmz.length + 1)
            (Array.length path);
          (* Y_0 .. Y_{L-1} are legal for X; consecutive entries adjacent. *)
          for i = 0 to Array.length path - 2 do
            Alcotest.(check bool) "interior vertex legal" true
              (t.Bmz.delta (x0, x1) path.(i));
            Alcotest.(check bool) "consecutive adjacent" true
              (Bmz.adjacent t path.(i) path.(i + 1))
          done;
          (* Last two agree on the survivor's component. *)
          let survivor = 1 - missing in
          let comp (a, b) j = if j = 0 then a else b in
          let l = plan.Bmz.length in
          Alcotest.(check bool) "anchor agreement" true
            (t.Bmz.equal_output
               (comp path.(l - 1) survivor)
               (comp path.(l) survivor)))
        [ ((0, 0), 0); ((0, 1), 0); ((0, 1), 1); ((1, 0), 0); ((1, 1), 1) ]

(* The subset search of Lemma 5.7's existential. *)
let test_plan_searching () =
  (* plan (O' = O) rejects noisy-grid; the subset search solves it. *)
  (match Bmz.plan Gallery.noisy_grid with
  | Ok _ -> Alcotest.fail "noisy-grid should fail with O' = O"
  | Error _ -> ());
  (match Bmz.plan_searching Gallery.noisy_grid with
  | Ok plan ->
      Alcotest.(check bool) "junk config dropped" true
        (not
           (List.exists
              (fun (a, b) -> a = 9 && b = 9)
              plan.Bmz.sub))
  | Error e -> Alcotest.failf "subset search failed: %s" e);
  (* And it still rejects genuinely unsolvable tasks, now with an
     exhaustive no-witness guarantee. *)
  match Bmz.plan_searching Gallery.binary_consensus with
  | Ok _ -> Alcotest.fail "consensus must have no witness subset"
  | Error _ -> ()

(* The harness itself: violation detection and reproducibility. *)

module H = Tasks.Harness

let memory_1bit () =
  Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 1)
    ~measure:(Bits.Width.uint ~max:1) ~init:0

let test_harness_detects_violation () =
  (* Always decide 1/2: violates validity when both inputs are 0. *)
  let algorithm =
    {
      H.name = "bad-half";
      memory = memory_1bit;
      program = (fun ~pid:_ ~input:_ -> Sched.Program.return (Q.make 1 2));
    }
  in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  (match H.check_exhaustive ~task ~algorithm () with
  | H.Fail v ->
      Alcotest.(check bool) "reason mentions illegality" true
        (String.length v.H.reason > 0)
  | H.Pass _ -> Alcotest.fail "violation missed");
  match H.check_random ~task ~algorithm ~runs:50 ~seed:3 () with
  | H.Fail _ -> ()
  | H.Pass _ -> Alcotest.fail "random harness missed the violation"

let test_harness_detects_nontermination () =
  let rec spin () : (int, int, Q.t) Sched.Program.t =
    Sched.Program.Write (0, spin)
  in
  let algorithm =
    { H.name = "spinner"; memory = memory_1bit;
      program = (fun ~pid:_ ~input:_ -> spin ()) }
  in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  (match H.check_exhaustive ~task ~algorithm ~max_steps:200 () with
  | H.Fail v ->
      Alcotest.(check bool) "truncation reported" true
        (String.length v.H.reason > 0)
  | H.Pass _ -> Alcotest.fail "non-termination missed");
  match H.check_random ~task ~algorithm ~max_steps:500 ~runs:3 ~seed:1 () with
  | H.Fail _ -> ()
  | H.Pass _ -> Alcotest.fail "random harness missed non-termination"

let test_harness_reproducible () =
  let k = 3 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(2 * k + 1) in
  let algorithm =
    {
      H.name = "alg1";
      memory = memory_1bit;
      program =
        (fun ~pid ~input ->
          Core.Alg1_one_bit.protocol ~env:Core.Alg1_one_bit.env_standalone
            ~k ~me:pid ~input);
    }
  in
  let run () = H.check_random ~task ~algorithm ~runs:40 ~seed:77 () in
  match (run (), run ()) with
  | H.Pass a, H.Pass b ->
      Alcotest.(check int) "same stats" a.H.max_process_steps
        b.H.max_process_steps
  | _ -> Alcotest.fail "expected passes"

(* Every violation carries a concrete schedule; Harness.replay re-executes
   it bit-for-bit, reproducing the failing decisions. *)
let bad_half_algorithm () =
  {
    H.name = "bad-half";
    memory = memory_1bit;
    program = (fun ~pid:_ ~input:_ -> Sched.Program.return (Q.make 1 2));
  }

let test_violation_carries_schedule () =
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  let algorithm = bad_half_algorithm () in
  (match H.check_exhaustive ~task ~algorithm () with
  | H.Fail v -> (
      match v.H.schedule with
      | None -> Alcotest.fail "exhaustive violation without schedule"
      | Some _ -> ())
  | H.Pass _ -> Alcotest.fail "violation missed");
  match H.check_random ~task ~algorithm ~runs:50 ~seed:3 () with
  | H.Fail v ->
      Alcotest.(check bool) "random violation has schedule" true
        (v.H.schedule <> None)
  | H.Pass _ -> Alcotest.fail "random harness missed the violation"

let test_replay_reproduces_decisions () =
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  let algorithm = bad_half_algorithm () in
  let replayed v =
    match H.replay algorithm v with
    | None -> Alcotest.fail "violation not replayable"
    | Some state ->
        (* Same illegal outcome: both survivors decided 1/2 on inputs the
           task rejects, with the recorded crash pattern applied. *)
        Alcotest.(check bool) "decisions violate the task" false
          (task.Tasks.Task.legal ~inputs:v.H.inputs
             ~outputs:(Sched.Scheduler.decisions state));
        Alcotest.(check (list int))
          "crash pattern reproduced"
          (List.sort compare (List.map fst v.H.crashes))
          (List.sort compare (Sched.Scheduler.crashed state))
  in
  (match H.check_exhaustive ~task ~algorithm () with
  | H.Fail v -> replayed v
  | H.Pass _ -> Alcotest.fail "violation missed");
  match H.check_random ~task ~algorithm ~runs:50 ~seed:3 () with
  | H.Fail v -> replayed v
  | H.Pass _ -> Alcotest.fail "random harness missed the violation"

let test_replay_nontermination_schedule () =
  (* Truncated (non-terminating) runs also carry their schedule, capped at
     max_steps; replay re-executes exactly those steps. *)
  let rec spin () : (int, int, Q.t) Sched.Program.t =
    Sched.Program.Write (0, spin)
  in
  let algorithm =
    { H.name = "spinner"; memory = memory_1bit;
      program = (fun ~pid:_ ~input:_ -> spin ()) }
  in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  match H.check_exhaustive ~task ~algorithm ~max_steps:64 () with
  | H.Pass _ -> Alcotest.fail "non-termination missed"
  | H.Fail v -> (
      match v.H.schedule with
      | None -> Alcotest.fail "truncated violation without schedule"
      | Some pids -> (
          Alcotest.(check int) "schedule capped at max_steps" 64
            (List.length pids);
          match H.replay algorithm v with
          | None -> Alcotest.fail "not replayable"
          | Some state ->
              Alcotest.(check int) "replay takes the same steps" 64
                (Sched.Scheduler.steps_taken state)))

(* Supervised checking: budgets degrade to sampled coverage instead of
   failing, violations are still caught while sampling, and truncation
   can be demoted from a failure to a coverage warning. *)

let alg1_algorithm ~k =
  {
    H.name = "alg1";
    memory = memory_1bit;
    program =
      (fun ~pid ~input ->
        Core.Alg1_one_bit.protocol ~env:Core.Alg1_one_bit.env_standalone ~k
          ~me:pid ~input);
  }

let test_supervised_unbudgeted_is_exhaustive () =
  let k = 2 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(2 * k + 1) in
  let algorithm = alg1_algorithm ~k in
  match
    ( H.check_supervised ~task ~algorithm ~max_crashes:1 (),
      H.check_exhaustive ~task ~algorithm ~max_crashes:1 () )
  with
  | H.Verified_exhaustive a, H.Pass b ->
      Alcotest.(check int) "same number of runs" b.H.runs a.H.runs;
      Alcotest.(check int) "same step bound" b.H.max_process_steps
        a.H.max_process_steps
  | _ -> Alcotest.fail "expected exhaustive verification on both paths"

let test_supervised_degrades_to_sampled () =
  let k = 2 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(2 * k + 1) in
  let algorithm = alg1_algorithm ~k in
  match
    H.check_supervised ~task ~algorithm ~max_crashes:1
      ~budget:(Sched.Budget.make ~max_nodes:50 ())
      ~samples:32 ~seed:11 ()
  with
  | H.Verified_sampled (stats, c) ->
      Alcotest.(check bool) "stopped by the node cap" true
        (c.H.stop = Some Sched.Budget.Node_cap);
      Alcotest.(check bool) "frontier was recorded" true (c.H.frontier > 0);
      Alcotest.(check bool) "frontier was sampled" true (c.H.sampled > 0);
      Alcotest.(check int) "sample seed recorded" 11 c.H.sample_seed;
      Alcotest.(check bool) "sampled runs counted in stats" true
        (stats.H.runs >= c.H.sampled);
      (* The lossy collapse still reads as a pass. *)
      (match H.report_of_verdict (H.Verified_sampled (stats, c)) with
      | H.Pass _ -> ()
      | H.Fail _ -> Alcotest.fail "sampled verdict must collapse to Pass")
  | H.Verified_exhaustive _ ->
      Alcotest.fail "a 50-node budget cannot cover the whole tree"
  | H.Violation v -> Alcotest.fail ("unexpected violation: " ^ v.H.reason)

let test_supervised_violation_found_while_sampling () =
  (* Wrong on equal inputs, but only after a memory step — the root is
     not terminal, so with a 1-node budget the violation can only be
     caught by the sampling fallback, never the exhaustive pass. *)
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  let algorithm =
    {
      H.name = "stepping-bad-half";
      memory = memory_1bit;
      program =
        (fun ~pid:_ ~input:_ ->
          Sched.Program.Write
            (0, fun () -> Sched.Program.return (Q.make 1 2)));
    }
  in
  match
    H.check_supervised ~task ~algorithm
      ~budget:(Sched.Budget.make ~max_nodes:1 ())
      ~seed:5 ()
  with
  | H.Violation v ->
      Alcotest.(check bool) "sampled violation carries the seed" true
        (v.H.seed <> None);
      Alcotest.(check bool) "reason is reported" true
        (String.length v.H.reason > 0)
  | H.Verified_exhaustive _ | H.Verified_sampled _ ->
      Alcotest.fail "sampling fallback missed the violation"

let test_supervised_parallel_sampling () =
  (* Frontier sampling over a domain pool: each sample derives its rng
     from the seed and its global sample index, so the verdict and the
     coverage counters are identical for any jobs > 1. A violation must
     also still surface through the pool. *)
  let k = 2 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(2 * k + 1) in
  let algorithm = alg1_algorithm ~k in
  let run jobs =
    H.check_supervised ~task ~algorithm ~max_crashes:1
      ~budget:(Sched.Budget.make ~max_nodes:50 ())
      ~samples:32 ~seed:11 ~jobs ()
  in
  (match (run 2, run 4) with
  | H.Verified_sampled (s2, c2), H.Verified_sampled (s4, c4) ->
      Alcotest.(check int) "same sampled count" c2.H.sampled c4.H.sampled;
      Alcotest.(check int) "same frontier size" c2.H.frontier c4.H.frontier;
      Alcotest.(check bool) "same stop reason" true (c2.H.stop = c4.H.stop);
      Alcotest.(check int) "same total runs" s2.H.runs s4.H.runs;
      Alcotest.(check int) "same step bound" s2.H.max_process_steps
        s4.H.max_process_steps
  | _ -> Alcotest.fail "expected sampled verification at both widths");
  let bad =
    {
      H.name = "stepping-bad-half";
      memory = memory_1bit;
      program =
        (fun ~pid:_ ~input:_ ->
          Sched.Program.Write (0, fun () -> Sched.Program.return (Q.make 1 2)));
    }
  in
  match
    H.check_supervised ~task:(Tasks.Eps_agreement.task ~n:2 ~k:2)
      ~algorithm:bad
      ~budget:(Sched.Budget.make ~max_nodes:1 ())
      ~seed:5 ~jobs:2 ()
  with
  | H.Violation _ -> ()
  | H.Verified_exhaustive _ | H.Verified_sampled _ ->
      Alcotest.fail "parallel sampling missed the violation"

let test_supervised_truncation_warn () =
  (* The spinner never decides: under ~truncation:`Warn the harness
     reports degraded coverage with the first truncated schedule prefix
     instead of a non-termination failure. *)
  let rec spin () : (int, int, Q.t) Sched.Program.t =
    Sched.Program.Write (0, spin)
  in
  let algorithm =
    { H.name = "spinner"; memory = memory_1bit;
      program = (fun ~pid:_ ~input:_ -> spin ()) }
  in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:2 in
  match
    H.check_supervised ~task ~algorithm ~max_steps:40 ~truncation:`Warn ()
  with
  | H.Verified_sampled (_, c) ->
      Alcotest.(check bool) "truncations counted" true (c.H.truncated > 0);
      (match c.H.first_truncated with
      | Some pids ->
          Alcotest.(check int) "prefix capped at max_steps" 40
            (List.length pids)
      | None -> Alcotest.fail "first truncated prefix missing");
      Alcotest.(check bool) "degraded by truncation, not a budget cap" true
        (c.H.stop = None)
  | H.Verified_exhaustive _ ->
      Alcotest.fail "truncated search reported as exhaustive"
  | H.Violation _ ->
      Alcotest.fail "`Warn must not fail on truncation"

let () =
  Alcotest.run "tasks"
    [
      ( "specs",
        [
          Alcotest.test_case "eps-agreement legality" `Quick
            test_eps_task_legality;
          Alcotest.test_case "consensus legality" `Quick
            test_consensus_legality;
          Alcotest.test_case "input configurations" `Quick
            test_input_configurations;
        ] );
      ( "bmz",
        [
          Alcotest.test_case "solvable tasks admit plans" `Quick
            test_plan_solvable;
          Alcotest.test_case "unsolvable tasks rejected" `Quick
            test_plan_unsolvable;
          Alcotest.test_case "path structure" `Quick test_plan_paths;
          Alcotest.test_case "subset search (Lemma 5.7 existential)" `Quick
            test_plan_searching;
        ] );
      ( "harness",
        [
          Alcotest.test_case "detects violations" `Quick
            test_harness_detects_violation;
          Alcotest.test_case "detects non-termination" `Quick
            test_harness_detects_nontermination;
          Alcotest.test_case "reproducible from seed" `Quick
            test_harness_reproducible;
          Alcotest.test_case "violations carry schedules" `Quick
            test_violation_carries_schedule;
          Alcotest.test_case "replay reproduces decisions" `Quick
            test_replay_reproduces_decisions;
          Alcotest.test_case "replay of truncated runs" `Quick
            test_replay_nontermination_schedule;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "unbudgeted = exhaustive" `Quick
            test_supervised_unbudgeted_is_exhaustive;
          Alcotest.test_case "budget degrades to sampled coverage" `Quick
            test_supervised_degrades_to_sampled;
          Alcotest.test_case "violation found while sampling" `Quick
            test_supervised_violation_found_while_sampling;
          Alcotest.test_case "parallel sampling is jobs-invariant" `Quick
            test_supervised_parallel_sampling;
          Alcotest.test_case "truncation warnings degrade the verdict"
            `Quick test_supervised_truncation_warn;
        ] );
    ]
