(* Tests for lib/msgpass: topology, codecs, alternating bit, ABD, routing,
   and the full Theorem 1.3 pipeline. *)

module Q = Bits.Rational
module T = Msgpass.Topology
module Codec = Msgpass.Codec
module Wire = Msgpass.Wire
module AB = Msgpass.Alt_bit
module H = Tasks.Harness

let test_topology_connectivity () =
  List.iter
    (fun (n, t) ->
      let ring = T.augmented_ring ~n ~t in
      Alcotest.(check bool)
        (Printf.sprintf "ring n=%d t=%d is (t+1)-connected" n t)
        true
        (T.survivor_connected ring ~faults:t);
      Alcotest.(check int) "out-degree t+1" (t + 1)
        (List.length (T.successors ring 0));
      Alcotest.(check int) "in-degree t+1" (t + 1)
        (List.length (T.predecessors ring 0)))
    [ (3, 1); (5, 1); (5, 2); (7, 2); (7, 3) ]

let test_topology_not_overconnected () =
  (* Removing t+1 consecutive nodes disconnects the ring: the construction
     is tight. *)
  let ring = T.augmented_ring ~n:7 ~t:2 in
  Alcotest.(check bool) "t+1 consecutive faults disconnect" false
    (T.strongly_connected ring ~without:[ 1; 2; 3 ])

let test_codec_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "string->bits->string" s
        (Codec.string_of_bits (Codec.bits_of_string s)))
    [ ""; "a"; "hello world"; String.init 17 Char.chr ]

let test_codec_framing () =
  (* Several frames through one deframer, one bit at a time. *)
  let messages = [ "alpha"; ""; "x"; "12:34:56" ] in
  let stream = List.concat_map Codec.encode messages in
  let d = Codec.decoder () in
  let received =
    List.filter_map (fun bit -> Codec.decode d bit) stream
  in
  Alcotest.(check (list string)) "frames recovered in order" messages received

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip (random strings)" ~count:200
    QCheck.(string_of_size (Gen.int_bound 40))
    (fun s -> Codec.string_of_bits (Codec.bits_of_string s) = s)

let prop_framing_stream =
  QCheck.Test.make ~name:"framing recovers random message streams" ~count:100
    QCheck.(list_of_size (Gen.int_bound 5) (string_of_size (Gen.int_bound 12)))
    (fun messages ->
      let d = Codec.decoder () in
      let received =
        List.filter_map (fun b -> Codec.decode d b)
          (List.concat_map Codec.encode messages)
      in
      received = messages)

let test_wire_roundtrip () =
  let chunks = [ "a"; ""; "12:3"; "::"; String.make 50 'z' ] in
  Alcotest.(check (list string)) "enc/dec" chunks (Wire.dec (Wire.enc chunks))

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire enc/dec (random chunk lists)" ~count:200
    QCheck.(list_of_size (Gen.int_bound 6) (string_of_size (Gen.int_bound 20)))
    (fun chunks -> Wire.dec (Wire.enc chunks) = chunks)

(* ----- packed ABD messages (Codec.Pack) ----- *)

(* Every field of the bit-packed layout — tag:2 | reg:10 | op:16 | ts:16 |
   value:18 — must decode to exactly what was encoded, including at the
   field boundaries (0, 1, max-1, max) where a mask or shift off by one
   would silently alias neighbouring fields. The boxed Abd.msg roundtrip
   pins the packed and boxed forms to each other. *)
let prop_pack_roundtrip_boundary =
  let module P = Msgpass.Pack in
  let field max =
    QCheck.Gen.(
      oneof [ oneofl [ 0; 1; max - 1; max ]; int_bound max ])
  in
  let gen =
    QCheck.Gen.(
      int_bound 3 >>= fun tag ->
      field P.max_reg >>= fun reg ->
      field P.max_op >>= fun op ->
      field P.max_ts >>= fun ts ->
      field P.max_value >>= fun value -> return (tag, reg, op, ts, value))
  in
  QCheck.Test.make ~name:"Pack roundtrips every field at boundary widths"
    ~count:400 (QCheck.make gen)
    (fun (tag, reg, op, ts, value) ->
      let module P = Msgpass.Pack in
      let m =
        if tag = P.t_write_req then P.write_req ~reg ~ts ~value ~op
        else if tag = P.t_write_ack then P.write_ack ~reg ~op
        else if tag = P.t_read_req then P.read_req ~reg ~op
        else P.read_reply ~reg ~ts ~value ~op
      in
      let carries_ts = tag = P.t_write_req || tag = P.t_read_reply in
      P.tag m = tag && P.reg m = reg && P.op m = op
      && P.ts m = (if carries_ts then ts else 0)
      && P.value m = (if carries_ts then value else 0)
      && P.of_msg (P.to_msg m) = m
      && m >= 0)

let test_pack_fits_static_boundaries () =
  let module P = Msgpass.Pack in
  let fits = P.fits_static in
  Alcotest.(check bool) "exact bounds fit" true
    (fits ~registers:(P.max_reg + 1) ~writes:P.max_ts ~max_ops:P.max_op);
  Alcotest.(check bool) "one register too many" false
    (fits ~registers:(P.max_reg + 2) ~writes:1 ~max_ops:1);
  Alcotest.(check bool) "one write too many" false
    (fits ~registers:1 ~writes:(P.max_ts + 1) ~max_ops:1);
  Alcotest.(check bool) "one op too many" false
    (fits ~registers:1 ~writes:1 ~max_ops:(P.max_op + 1));
  (* The value field is wider than the timestamp field, so the write
     count binds through max_ts first — a config that fits never
     overflows either. *)
  Alcotest.(check bool) "ts is the binding field" true
    (P.max_value > P.max_ts)

let test_wire_envelope_codec () =
  let codec =
    Wire.envelope_codec
      (Wire.abd_msg_codec (Wire.cell_codec Wire.rational_codec Wire.int_codec))
  in
  let envelope =
    {
      Msgpass.Router.origin = 2;
      seq = 41;
      dest = 0;
      body =
        Msgpass.Abd.Write_req
          { reg = 1; ts = 7; value = Msgpass.Interp.Coord (Q.make 3 7); op = 9 };
    }
  in
  let back = codec.Wire.of_string (codec.Wire.to_string envelope) in
  Alcotest.(check bool) "envelope roundtrip" true (envelope = back)

(* Alternating bit: push messages through polled register fields under a
   random polling schedule. *)
let test_alt_bit_channel () =
  List.iter
    (fun chunk ->
      let rng = Bits.Rng.make (100 + chunk) in
      let messages = List.init 8 (fun i -> Printf.sprintf "msg-%d!" i) in
      let sender = AB.sender ~chunk in
      List.iter (AB.send_string sender) messages;
      let receiver = AB.receiver () in
      let data_field = ref (AB.initial_field ~chunk) in
      let ack_field = ref 0 in
      let received = ref [] in
      let steps = ref 0 in
      while
        (not (AB.sender_idle sender))
        && !steps < 100_000
      do
        incr steps;
        if Bits.Rng.bool rng then (
          match AB.sender_poll sender ~ack_seen:!ack_field with
          | Some field -> data_field := field
          | None -> ())
        else begin
          let msgs = AB.receiver_poll receiver ~data_seen:!data_field in
          received := !received @ msgs;
          ack_field := AB.receiver_ack receiver
        end
      done;
      (* Drain the last in-flight chunk. *)
      let msgs = AB.receiver_poll receiver ~data_seen:!data_field in
      received := !received @ msgs;
      Alcotest.(check (list string))
        (Printf.sprintf "FIFO delivery (chunk=%d)" chunk)
        messages !received)
    [ 1; 3; 8 ]

let prop_alt_bit_fifo =
  QCheck.Test.make ~name:"alt-bit: FIFO for random chunks and messages"
    ~count:60
    QCheck.(
      triple (int_range 1 10)
        (list_of_size (Gen.int_bound 5) (string_of_size (Gen.int_bound 10)))
        (int_range 0 10_000))
    (fun (chunk, messages, seed) ->
      let rng = Bits.Rng.make seed in
      let sender = AB.sender ~chunk in
      List.iter (AB.send_string sender) messages;
      let receiver = AB.receiver () in
      let data = ref (AB.initial_field ~chunk) in
      let received = ref [] in
      let steps = ref 0 in
      while (not (AB.sender_idle sender)) && !steps < 100_000 do
        incr steps;
        if Bits.Rng.bool rng then (
          match
            AB.sender_poll sender ~ack_seen:(AB.receiver_ack receiver)
          with
          | Some f -> data := f
          | None -> ())
        else received := !received @ AB.receiver_poll receiver ~data_seen:!data
      done;
      received := !received @ AB.receiver_poll receiver ~data_seen:!data;
      !received = messages)

(* Scripted delivery on the base substrate: per-channel FIFO is an
   invariant of Net itself, whatever delivery order the adversary picks. *)
let two_node_net received =
  Msgpass.Net.create ~n:2 ~nodes:(fun pid ->
      {
        Msgpass.Net.on_start =
          (fun () -> if pid = 0 then [ (1, "a"); (1, "b"); (1, "c") ] else []);
        on_message =
          (fun ~from:_ m ->
            received := !received @ [ m ];
            []);
        on_leave = (fun () -> []);
      })
    ()

let test_net_scripted_delivery () =
  let received = ref [] in
  let net = two_node_net received in
  Alcotest.(check int) "three messages queued" 3
    (Msgpass.Net.pending net ~src:0 ~dst:1);
  Alcotest.(check int) "reverse channel empty" 0
    (Msgpass.Net.pending net ~src:1 ~dst:0);
  Alcotest.(check bool) "deliver head" true
    (Msgpass.Net.deliver net ~src:0 ~dst:1);
  Alcotest.(check int) "two left" 2 (Msgpass.Net.pending net ~src:0 ~dst:1);
  Alcotest.(check bool) "second" true (Msgpass.Net.deliver net ~src:0 ~dst:1);
  Alcotest.(check bool) "third" true (Msgpass.Net.deliver net ~src:0 ~dst:1);
  Alcotest.(check bool) "empty channel refuses" false
    (Msgpass.Net.deliver net ~src:0 ~dst:1);
  Alcotest.(check (list string)) "FIFO order" [ "a"; "b"; "c" ] !received

let test_net_deliver_respects_crash () =
  let received = ref [] in
  let net = two_node_net received in
  Msgpass.Net.crash net 1;
  Alcotest.(check bool) "crashed destination refuses" false
    (Msgpass.Net.deliver net ~src:0 ~dst:1);
  Alcotest.(check int) "message stays queued" 3
    (Msgpass.Net.pending net ~src:0 ~dst:1);
  Alcotest.(check (list string)) "nothing handled" [] !received

let prop_net_random_fifo =
  (* Whatever channel order deliver_random picks, each channel's messages
     arrive in send order. *)
  QCheck.Test.make ~name:"random delivery keeps per-channel FIFO" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let n = 3 in
      let received = Array.make n [] in
      let net =
        Msgpass.Net.create ~n ~nodes:(fun pid ->
            {
              Msgpass.Net.on_start =
                (fun () ->
                  List.concat_map
                    (fun dst ->
                      if dst = pid then []
                      else List.init 4 (fun i -> (dst, (pid, i))))
                    (List.init n Fun.id));
              on_message =
                (fun ~from:_ m ->
                  received.(pid) <- m :: received.(pid);
                  []);
              on_leave = (fun () -> []);
            })
          ()
      in
      Msgpass.Net.run_random ~rng:(Bits.Rng.make seed) net;
      (* Per (receiver, sender): sequence numbers strictly increase. *)
      Array.for_all
        (fun log ->
          let per_sender = Hashtbl.create 4 in
          List.for_all
            (fun (src, i) ->
              let prev =
                Option.value (Hashtbl.find_opt per_sender src) ~default:(-1)
              in
              Hashtbl.replace per_sender src i;
              i > prev)
            (List.rev log))
        received)

let test_faults_defer_breaks_fifo () =
  (* The only way to see non-FIFO per-channel delivery is through the
     Faults layer's defer action — the base substrate above stays FIFO. *)
  let received = ref [] in
  let net = two_node_net received in
  let ft = Msgpass.Faults.wrap net in
  let ch = { Msgpass.Faults.src = 0; dst = 1 } in
  Alcotest.(check bool) "defer head" true
    (Msgpass.Faults.apply ft (Msgpass.Faults.Defer ch));
  List.iter
    (fun _ ->
      ignore (Msgpass.Faults.apply ft (Msgpass.Faults.Deliver ch)))
    [ (); (); () ];
  Alcotest.(check (list string)) "reordered delivery" [ "b"; "c"; "a" ]
    !received;
  (* The perturbation is part of the replayable record. *)
  Alcotest.(check int) "plan records all four actions" 4
    (List.length (Msgpass.Faults.plan ft))

let test_faults_drop_and_duplicate () =
  let received = ref [] in
  let net = two_node_net received in
  let ft = Msgpass.Faults.wrap net in
  let ch = { Msgpass.Faults.src = 0; dst = 1 } in
  Alcotest.(check bool) "drop head" true
    (Msgpass.Faults.apply ft (Msgpass.Faults.Drop ch));
  Alcotest.(check bool) "duplicate new head" true
    (Msgpass.Faults.apply ft (Msgpass.Faults.Duplicate ch));
  while Msgpass.Faults.apply ft (Msgpass.Faults.Deliver ch) do
    ()
  done;
  Alcotest.(check (list string)) "lost a, duplicated b" [ "b"; "c"; "b" ]
    !received

(* Regression: chaos campaigns are a pure function of the seed. Every
   shrunk counterexample in EXPERIMENTS.md is quoted by seed, so a drift
   in the RNG stream or the fault layer would silently invalidate them. *)
let test_chaos_deterministic () =
  let module C = Msgpass.Chaos in
  List.iter
    (fun (label, config, seed) ->
      let a = C.run_random ~seed config in
      let b = C.run_random ~seed config in
      Alcotest.(check bool)
        (label ^ ": identical fault plan")
        true
        (a.C.plan = b.C.plan);
      Alcotest.(check bool)
        (label ^ ": identical verdict")
        true
        (C.failed a = C.failed b);
      Alcotest.(check int) (label ^ ": identical event count") a.C.events
        b.C.events;
      (* And the plan really replays to the same verdict. *)
      let r = C.run_plan config (Msgpass.Faults.decompile a.C.plan) in
      Alcotest.(check bool)
        (label ^ ": replay agrees")
        true
        (C.failed r = C.failed a))
    [
      ("sound", C.sound (), 7);
      ("frontier violation", C.frontier (), 127);
      ("churn", C.churn (), 7);
      ("churn frontier violation", C.churn_frontier (), 29);
    ]

(* Parallel campaigns must be byte-identical to sequential ones: outcomes
   are computed on worker domains but tallied on the main domain in seed
   order, so the verdict, the totals, and the shrunk counterexample are
   all invariant in [jobs]. *)
let test_chaos_jobs_invariant () =
  let module C = Msgpass.Chaos in
  List.iter
    (fun (label, config, seed, runs) ->
      let campaign jobs = C.campaign ~jobs ~seed ~runs config in
      let seq = campaign 1 in
      let seq_pp = Format.asprintf "%a" C.pp_campaign seq in
      List.iter
        (fun jobs ->
          let par = campaign jobs in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs=%d renders identically" label jobs)
            seq_pp
            (Format.asprintf "%a" C.pp_campaign par);
          Alcotest.(check int)
            (Printf.sprintf "%s: jobs=%d same violations" label jobs)
            seq.C.violations par.C.violations;
          Alcotest.(check int)
            (Printf.sprintf "%s: jobs=%d same event total" label jobs)
            seq.C.total_events par.C.total_events;
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d same shrunk plan" label jobs)
            true
            (Option.map (fun f -> f.C.shrunk) seq.C.first
            = Option.map (fun f -> f.C.shrunk) par.C.first))
        [ 2; 4 ])
    [
      ("sound", C.sound (), 1, 50);
      ("frontier violation", C.frontier (), 127, 10);
      ("churn", C.churn (), 1, 30);
      ("churn frontier violation", C.churn_frontier (), 29, 5);
    ]

(* A single mid-campaign run must be replayable from its recorded
   rng_point alone — the resolved RNG state plus the crash schedule it
   rolled — without re-running the seeds that preceded it. *)
let test_chaos_rng_point_replay () =
  let module C = Msgpass.Chaos in
  List.iter
    (fun (label, config, seed) ->
      let a = C.run_random ~seed config in
      let point =
        match a.C.rng_point with
        | Some p -> p
        | None -> Alcotest.failf "%s: randomized run recorded no rng_point" label
      in
      let b = C.run_at point config in
      Alcotest.(check bool) (label ^ ": same plan") true (a.C.plan = b.C.plan);
      Alcotest.(check bool)
        (label ^ ": same history")
        true (a.C.history = b.C.history);
      Alcotest.(check int) (label ^ ": same events") a.C.events b.C.events;
      Alcotest.(check bool)
        (label ^ ": same verdict")
        true
        (C.failed a = C.failed b))
    [
      ("sound", C.sound (), 3);
      ("frontier violation", C.frontier (), 127);
      ("churn", C.churn (), 3);
      ("churn frontier violation", C.churn_frontier (), 29);
    ]

(* ----- dynamic membership ----- *)

(* View algebra: activation (not mere entry) is what feeds the quorum,
   leaving wins over entering, and merge is the join of everything both
   sides know. *)
let test_membership_views () =
  let module M = Msgpass.Membership in
  let v = M.initial 3 in
  Alcotest.(check int) "initial cardinal" 3 (M.cardinal v);
  Alcotest.(check int) "initial quorum" 2 (M.quorum v);
  let v = M.enter v 5 in
  Alcotest.(check bool) "entered joiner is current" true (M.mem v 5);
  Alcotest.(check int) "joiner not active: quorum base unchanged" 2
    (M.quorum v);
  let v = M.activate v 5 in
  Alcotest.(check int) "activation widens the quorum base" 3 (M.quorum v);
  let v = M.leave v 0 in
  Alcotest.(check bool) "leaver is gone" false (M.mem v 0);
  Alcotest.(check int) "leaver out of the quorum base" 2 (M.quorum v);
  let w = M.leave (M.initial 3) 2 in
  let m = M.merge v w in
  Alcotest.(check bool) "merge commutes" true (m = M.merge w v);
  Alcotest.(check bool) "merge is idempotent" true (M.merge m m = m);
  Alcotest.(check bool) "merge includes both sides" true
    (M.includes m v && M.includes m w);
  Alcotest.(check bool) "leave wins over enter" false (M.mem m 2);
  Alcotest.(check int) "slack widens the quorum" 3 (M.quorum ~slack:1 v);
  Alcotest.(check int) "slack is capped at the active set" 2
    (M.quorum ~slack:9 (M.initial 2))

(* The schedule generator's contract: however the jitter rolls, no
   window-length stretch of the run ever sees more churn than the
   configured rate. *)
let prop_churn_schedule_rate_bounded =
  QCheck.Test.make ~name:"random churn schedules respect the window bound"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let module M = Msgpass.Membership in
      let rng = Bits.Rng.make seed in
      let c =
        M.random rng ~joiners:[ 5; 6; 7 ] ~leavers:[ 1; 2; 3; 4 ] ~rate:4
          ~window:16 ~span:400
      in
      M.max_in_window ~window:16 c <= 4)

(* Dynreg under a faultless FIFO transport: the join protocol activates
   a late arrival, a seeded writer's value reaches a joiner's read, and
   the emulation keeps answering after a departure. *)
let test_dynreg_join_read_write () =
  let module D = Msgpass.Dynreg in
  let n = 4 in
  let initial = Msgpass.Membership.initial 3 in
  let peers =
    Array.init n (fun me ->
        D.create ~n ~me ~registers:1 ~init:(fun _ -> 0) ~initial ())
  in
  let q = Queue.create () in
  let send from msgs =
    List.iter (fun (dst, m) -> Queue.add (from, dst, m) q) msgs
  in
  let drain () =
    while not (Queue.is_empty q) do
      let from, dst, m = Queue.pop q in
      send dst (D.handle peers.(dst) ~from m)
    done
  in
  Alcotest.(check bool) "seeded member starts active" true
    (D.is_active peers.(0));
  Alcotest.(check bool) "joiner starts inactive" false (D.is_active peers.(3));
  send 3 (D.start peers.(3));
  drain ();
  Alcotest.(check bool) "joiner activated" true (D.is_active peers.(3));
  Alcotest.(check bool) "activation completion" true
    (D.take_completion peers.(3) = Some D.Activated);
  send 0 (D.begin_write peers.(0) ~reg:0 42);
  drain ();
  Alcotest.(check bool) "write completed" true
    (D.take_completion peers.(0) = Some D.Wrote);
  send 3 (D.begin_read peers.(3) ~reg:0);
  drain ();
  (match D.take_completion peers.(3) with
  | Some (D.Read_value v) -> Alcotest.(check int) "joiner reads the write" 42 v
  | _ -> Alcotest.fail "joiner's read did not complete");
  send 1 (D.farewell peers.(1));
  drain ();
  Alcotest.(check bool) "leaver deactivated" false (D.is_active peers.(1));
  send 2 (D.begin_read peers.(2) ~reg:0);
  drain ();
  match D.take_completion peers.(2) with
  | Some (D.Read_value v) ->
      Alcotest.(check int) "read survives the departure" 42 v
  | _ -> Alcotest.fail "post-departure read did not complete"

(* Construction-time validation: unsatisfiable settings are errors,
   crashes > t clamps with a warning. *)
let test_chaos_validate () =
  let module C = Msgpass.Chaos in
  (match C.validate (C.sound ()) with
  | Ok (_, []) -> ()
  | Ok (_, w) -> Alcotest.failf "sound preset warned: %s" (String.concat "; " w)
  | Error e -> Alcotest.failf "sound preset rejected: %s" e);
  (match C.validate { (C.sound ()) with C.crashes = 5 } with
  | Ok (c, [ _ ]) -> Alcotest.(check int) "crashes clamped to t" c.C.t c.C.crashes
  | Ok (_, w) -> Alcotest.failf "expected one warning, got %d" (List.length w)
  | Error e -> Alcotest.failf "clampable config rejected: %s" e);
  List.iter
    (fun (label, config) ->
      match C.validate config with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "validate accepted %s" label)
    [
      ("quorum 0", { (C.sound ()) with C.quorum = Some 0 });
      ("quorum > n", { (C.sound ()) with C.quorum = Some 9 });
      ("n = 0", { (C.sound ()) with C.n = 0 });
      ("seed_members > n", C.churn ~n:4 ~seed_members:5 ());
      ("negative rate", C.churn ~rate:(-1) ());
      ("window 0", C.churn ~window:0 ());
      ("width 31", C.churn ~width_bits:31 ());
    ]

(* The churn mutation grammar is opt-in (static fleets must keep their
   published rng streams) and deterministic under it. *)
let test_fleet_churn_mutants () =
  let module C = Msgpass.Chaos in
  let module F = Msgpass.Fleet in
  let config = C.churn_frontier () in
  let base = Msgpass.Faults.decompile (C.run_random ~seed:29 config).C.plan in
  let children churn seed =
    let rng = Bits.Rng.make seed in
    List.init 64 (fun _ -> F.mutate rng ~n:config.C.n ~churn base)
  in
  Alcotest.(check bool) "churn mutants are seed-deterministic" true
    (children true 5 = children true 5);
  let has_churn p =
    List.exists
      (function Msgpass.Faults.Enter _ | Msgpass.Faults.Leave _ -> true | _ -> false)
      p
  in
  Alcotest.(check bool) "churn grammar is reachable" true
    (List.exists has_churn (children true 5));
  List.iter (fun m -> ignore (C.run_plan config m)) (children true 7);
  List.iter (fun m -> ignore (C.run_plan config m)) (children false 7)

(* ----- chaos fleet ----- *)

let fault_plan_gen =
  let open QCheck.Gen in
  let chan k =
    map2 (fun src dst -> k { Msgpass.Faults.src; dst }) (int_bound 9)
      (int_bound 9)
  in
  list_size (int_bound 40)
    (oneof
       [
         chan (fun ch -> Msgpass.Faults.Deliver ch);
         chan (fun ch -> Msgpass.Faults.Drop ch);
         chan (fun ch -> Msgpass.Faults.Duplicate ch);
         chan (fun ch -> Msgpass.Faults.Defer ch);
         map (fun pid -> Msgpass.Faults.Crash pid) (int_bound 9);
         map (fun pid -> Msgpass.Faults.Enter pid) (int_bound 9);
         map (fun pid -> Msgpass.Faults.Leave pid) (int_bound 9);
       ])

let fault_plan_arbitrary =
  QCheck.make ~print:(Format.asprintf "%a" Msgpass.Faults.pp_plan)
    fault_plan_gen

(* The corpus on disk is human-editable: the serialized form of a plan is
   exactly what pp_plan prints, and both codecs invert it. *)
let prop_plan_codec_roundtrip =
  QCheck.Test.make ~name:"fault-plan codecs round-trip random plans"
    ~count:200 fault_plan_arbitrary (fun plan ->
      let text = Format.asprintf "%a" Msgpass.Faults.pp_plan plan in
      Msgpass.Faults.plan_of_string text = Ok plan
      && Msgpass.Faults.plan_of_json (Msgpass.Faults.plan_to_json plan)
         = Ok plan)

(* ----- pooled Net vs the Netref oracle ----- *)

(* The arena-backed Net must stay observationally identical to the
   retained Queue-backed Netref under any scripted fault sequence, churn
   included. Both networks run the same bounded gossip protocol and log
   every handler invocation; after every plan action the two must agree
   on the action's effect, the delivery log, the deliverable set, the
   membership view and the counters — and a final lexicographic drain
   must leave both quiescent with identical logs. Slots 7..9 start
   absent so random Enter actions are effective. *)
let prop_net_matches_netref =
  let module N = Msgpass.Net in
  let module R = Msgpass.Netref in
  let module F = Msgpass.Faults in
  let n = 10 in
  let fanout = 3 * n in
  QCheck.Test.make
    ~name:"pooled Net matches the Netref oracle on random fault plans"
    ~count:120 fault_plan_arbitrary
    (fun plan ->
      let log_n = ref [] and log_r = ref [] in
      let net_nodes pid : int N.node =
        {
          N.on_start = (fun () -> [ ((pid + 1) mod n, pid) ]);
          on_message =
            (fun ~from m ->
              log_n := (pid, from, m) :: !log_n;
              if m < fanout then [ ((pid + 1) mod n, m + n) ] else []);
          on_leave = (fun () -> [ ((pid + 2) mod n, 1000 + pid) ]);
        }
      in
      let ref_nodes pid : int R.node =
        {
          R.on_start = (fun () -> [ ((pid + 1) mod n, pid) ]);
          on_message =
            (fun ~from m ->
              log_r := (pid, from, m) :: !log_r;
              if m < fanout then [ ((pid + 1) mod n, m + n) ] else []);
          on_leave = (fun () -> [ ((pid + 2) mod n, 1000 + pid) ]);
        }
      in
      let present pid = pid < 7 in
      let net = N.create ~present ~n ~nodes:net_nodes () in
      let oracle = R.create ~present ~n ~nodes:ref_nodes () in
      let pids = List.init n Fun.id in
      let same_state () =
        !log_n = !log_r
        && N.deliverable net = R.deliverable oracle
        && N.deliveries net = R.deliveries oracle
        && N.hop_mask net = R.hop_mask oracle
        && N.crashed net = R.crashed oracle
        && N.departed net = R.departed oracle
        && N.quiescent net = R.quiescent oracle
        && List.for_all
             (fun pid ->
               N.alive net pid = R.alive oracle pid
               && N.is_present net pid = R.is_present oracle pid)
             pids
        && List.for_all
             (fun src ->
               List.for_all
                 (fun dst ->
                   N.pending net ~src ~dst = R.pending oracle ~src ~dst)
                 pids)
             pids
      in
      let apply = function
        | F.Deliver { F.src; dst } ->
            N.deliver net ~src ~dst = R.deliver oracle ~src ~dst
        | F.Drop { F.src; dst } ->
            N.drop net ~src ~dst = R.drop oracle ~src ~dst
        | F.Duplicate { F.src; dst } ->
            N.duplicate net ~src ~dst = R.duplicate oracle ~src ~dst
        | F.Defer { F.src; dst } ->
            N.defer net ~src ~dst = R.defer oracle ~src ~dst
        | F.Crash pid ->
            N.crash net pid;
            R.crash oracle pid;
            true
        | F.Enter pid -> N.enter net pid = R.enter oracle pid
        | F.Leave pid -> N.leave net pid = R.leave oracle pid
      in
      let scripted = List.for_all (fun a -> apply a && same_state ()) plan in
      let drained =
        let budget = ref 10_000 in
        let ok = ref true in
        let continue = ref true in
        while !continue && !ok && !budget > 0 do
          match R.deliverable oracle with
          | [] -> continue := false
          | (src, dst) :: _ ->
              decr budget;
              ok :=
                N.deliver net ~src ~dst = R.deliver oracle ~src ~dst
                && same_state ()
        done;
        !ok && !budget > 0 && N.quiescent net && R.quiescent oracle
      in
      scripted && drained)

let test_plan_codec_rejects_garbage () =
  List.iter
    (fun text ->
      match Msgpass.Faults.plan_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" text)
    [
      "deliver"; "deliver 0-1"; "crash x"; "teleport 0>1"; "deliver 0>1; zap";
      "enter"; "leave 1>2";
    ]

(* A rejected plan names the offending action and where it sits, so a
   hand-edited corpus line fails with something greppable instead of a
   bare "parse error". *)
let test_plan_parse_errors_are_positional () =
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (text, fragments) ->
      match Msgpass.Faults.plan_of_string text with
      | Ok _ -> Alcotest.failf "parsed %S" text
      | Error e ->
          List.iter
            (fun frag ->
              if not (contains e frag) then
                Alcotest.failf "error for %S lacks %S: %s" text frag e)
            fragments)
    [
      ("deliver 0>1; zap 3", [ "action 1"; "char 12"; "zap" ]);
      ("deliver 0>1; deliver 2>3; crash x", [ "action 2"; "char 25"; "x" ]);
      ("enter 0; leave y", [ "action 1"; "leave"; "y" ]);
      ("deliver 9", [ "action 0"; "char 0"; "src>dst" ]);
    ]

(* Mutation is a pure function of the rng stream: same corpus plan + same
   seed give byte-identical children. *)
let test_fleet_mutator_deterministic () =
  let module C = Msgpass.Chaos in
  let module F = Msgpass.Fleet in
  let config = C.frontier () in
  let base = Msgpass.Faults.decompile (C.run_random ~seed:11 config).C.plan in
  let children seed =
    let rng = Bits.Rng.make seed in
    List.init 32 (fun _ -> F.mutate rng ~n:config.C.n base)
  in
  Alcotest.(check bool) "same seed: byte-identical children" true
    (children 5 = children 5);
  Alcotest.(check bool) "different seed: different children" true
    (children 5 <> children 6);
  let cross seed =
    let rng = Bits.Rng.make seed in
    let other = Msgpass.Faults.decompile (C.run_random ~seed:12 config).C.plan in
    List.init 32 (fun _ -> F.crossover rng base other)
  in
  Alcotest.(check bool) "crossover deterministic too" true (cross 5 = cross 5)

(* Every mutant stays well-formed: endpoints are drawn in [0, n), and
   ineffective actions are skipped, so replay never raises — however the
   splicing mangled the plan. *)
let prop_fleet_mutants_replay =
  let module C = Msgpass.Chaos in
  let module F = Msgpass.Fleet in
  let config = C.frontier () in
  QCheck.Test.make ~name:"mutants replay without Invalid_argument" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Bits.Rng.make seed in
      let base = Msgpass.Faults.decompile (C.run_random ~seed:(seed land 31) config).C.plan in
      let m = F.mutate rng ~n:config.C.n base in
      let x = F.crossover rng m base in
      ignore (C.run_plan config m);
      ignore (C.run_plan config x);
      true)

(* Fleet reports are a pure function of the seed at any pool width: job
   planning, coverage, corpus growth and shrinking all happen on the
   calling domain in batch order. *)
let test_fleet_jobs_invariant () =
  let module C = Msgpass.Chaos in
  let module F = Msgpass.Fleet in
  let report jobs =
    Format.asprintf "%a" F.pp_report
      (F.campaign ~generations:12 ~batch:8 ~jobs ~seed:9 (C.frontier ()))
  in
  let seq = report 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d renders identically" jobs)
        seq (report jobs))
    [ 2; 4 ]

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* End to end on the frontier configuration: the fleet rediscovers the
   known stale-read violation class exactly once (every later find
   deduplicates into it), the witness replays bit-for-bit from its file,
   the corpus round-trips through its JSONL, and a second fleet resumed
   over the same corpus does not republish the class. *)
let test_fleet_witness_dedup_and_replay () =
  let module C = Msgpass.Chaos in
  let module F = Msgpass.Fleet in
  let config = C.frontier () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "boundedreg-fleet-test"
  in
  rm_rf dir;
  let r = F.campaign ~generations:60 ~batch:16 ~seed:9 ~corpus_dir:dir config in
  Alcotest.(check bool) "found violating runs" true (r.F.violations > 0);
  Alcotest.(check int) "exactly one witness class" 1
    (List.length r.F.witnesses);
  let w = List.hd r.F.witnesses in
  Alcotest.(check int) "every later find deduplicated" (r.F.violations - 1)
    w.F.duplicates;
  Alcotest.(check bool) "witness plan still fails" true
    (C.failed (C.run_plan config w.F.plan));
  (match F.replay_file (Option.get w.F.file) with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check bool) "witness file replays bit-for-bit" true
        rep.F.bit_for_bit);
  (match F.load_corpus dir with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check int) "corpus JSONL round-trips every entry"
        r.F.corpus_size (List.length entries));
  let r2 =
    F.campaign ~generations:10 ~batch:8 ~seed:77 ~corpus_dir:dir config
  in
  Alcotest.(check int) "resumed fleet continues corpus ids"
    (r.F.corpus_size + r2.F.corpus_added)
    r2.F.corpus_size;
  Alcotest.(check int) "resumed fleet does not republish the class" 0
    (List.length r2.F.witnesses);
  rm_rf dir

(* ABD + Interp over the complete network: baseline eps-agreement survives
   minority crashes. *)
let test_abd_message_passing () =
  let n = 3 and t = 1 and rounds = 3 in
  let eps = Q.make 1 (Core.Baseline_unbounded.denominator ~rounds) in
  for seed = 0 to 39 do
    let rng = Bits.Rng.make seed in
    let inputs = Array.init n (fun _ -> Bits.Rng.int rng 2) in
    let interps =
      Array.init n (fun me ->
          Msgpass.Interp.create ~n ~t ~me ~init:[]
            ~program:
              (Core.Baseline_unbounded.protocol ~n ~rounds ~me
                 ~input:inputs.(me)))
    in
    let net =
      Msgpass.Net.create ~n
        ~nodes:(fun pid -> Msgpass.Interp.node interps.(pid))
        ()
    in
    let crash_pid = if Bits.Rng.bool rng then Some (Bits.Rng.int rng n) else None in
    let crash_at = Bits.Rng.int rng 300 in
    let events = ref 0 in
    Msgpass.Net.run_random ~rng ~max_events:100_000
      ~until:(fun () ->
        incr events;
        (match crash_pid with
        | Some p when !events = crash_at && Msgpass.Net.crashed net = [] ->
            Msgpass.Net.crash net p
        | _ -> ());
        false)
      net;
    let crashed = Msgpass.Net.crashed net in
    let decided =
      Array.to_list interps
      |> List.mapi (fun pid (i, _) -> (pid, Msgpass.Interp.decision i))
      |> List.filter (fun (pid, _) -> not (List.mem pid crashed))
    in
    List.iter
      (fun (pid, d) ->
        if d = None then
          Alcotest.failf "seed %d: live process %d undecided" seed pid)
      decided;
    let values = List.filter_map snd decided in
    Alcotest.(check bool) "agreement" true Q.(Q.spread values <= eps)
  done

(* ABD atomicity: a single writer bumps a counter through ABD writes while
   two readers read concurrently. Atomic SWMR registers forbid per-reader
   regression and new/old inversions across readers (a read that starts
   after another read completes cannot return an older value). *)
let test_abd_atomicity () =
  let n = 5 and t = 2 in
  let open Sched.Program.Infix in
  let writer_program =
    let rec bump i =
      if i > 10 then Sched.Program.return []
      else
        let* () = Sched.Program.write i in
        bump (i + 1)
    in
    bump 1
  in
  let reader_program =
    let rec scan k acc =
      if k = 0 then Sched.Program.return (List.rev acc)
      else
        let* v = Sched.Program.read 0 in
        scan (k - 1) (v :: acc)
    in
    scan 12 []
  in
  for seed = 0 to 29 do
    let interps =
      Array.init n (fun me ->
          Msgpass.Interp.create ~n ~t ~me ~init:0
            ~program:
              (if me = 0 then writer_program
               else if me <= 2 then reader_program
               else Sched.Program.return []))
    in
    let net =
      Msgpass.Net.create ~n
        ~nodes:(fun pid -> Msgpass.Interp.node interps.(pid))
        ()
    in
    Msgpass.Net.run_random ~rng:(Bits.Rng.make (400 + seed)) net;
    (* Per-reader monotonicity: the sequence of values each reader returns
       never decreases (reads are sequential per process, so regression
       would be a new/old inversion against its own earlier read). *)
    for r = 1 to 2 do
      match Msgpass.Interp.decision (fst interps.(r)) with
      | Some values ->
          let rec monotone = function
            | a :: b :: rest -> a <= b && monotone (b :: rest)
            | _ -> true
          in
          if not (monotone values) then
            Alcotest.failf "seed %d: reader %d regressed: %s" seed r
              (String.concat "," (List.map string_of_int values))
      | None -> Alcotest.failf "seed %d: reader %d blocked" seed r
    done
  done

(* Routing over the ring in the Net model: flooding delivers despite t
   crashed forwarders. *)
let test_router_flooding () =
  let n = 7 and t = 2 in
  let topology = T.augmented_ring ~n ~t in
  let routers = Array.init n (fun me -> Msgpass.Router.create ~topology ~me) in
  let delivered = ref [] in
  let nodes pid =
    {
      Msgpass.Net.on_start =
        (fun () ->
          if pid = 0 then
            (* 0 sends to its antipode through the ring. *)
            let local, outs = Msgpass.Router.send routers.(0) ~dest:4 "ping" in
            assert (local = []);
            outs
          else []);
      on_message =
        (fun ~from:_ envelope ->
          let deliveries, forwards =
            Msgpass.Router.receive routers.(pid) envelope
          in
          List.iter
            (fun (e : _ Msgpass.Router.envelope) ->
              delivered := (pid, e.body) :: !delivered)
            deliveries;
          forwards);
      on_leave = (fun () -> []);
    }
  in
  let net = Msgpass.Net.create ~n ~nodes () in
  (* Crash two consecutive intermediate nodes. *)
  Msgpass.Net.crash net 1;
  Msgpass.Net.crash net 2;
  Msgpass.Net.run_random ~rng:(Bits.Rng.make 7) net;
  Alcotest.(check (list (pair int string)))
    "delivered exactly once despite crashes"
    [ (4, "ping") ]
    !delivered

(* Theorem 1.3 end-to-end: the compiled protocol solves eps-agreement with
   3(t+1)-bit registers under t-resilient crash injection. *)
let pipeline_algorithm ~n ~t ~rounds ~chunk =
  let value = Wire.list_codec (Wire.pair_codec Wire.int_codec Wire.rational_codec) in
  Msgpass.Pipeline.algorithm ~n ~t ~chunk ~value ~input:Wire.int_codec
    ~init:[]
    ~source:(fun ~pid ~input ->
      Core.Baseline_unbounded.protocol ~n ~rounds ~me:pid ~input)
    ~name:(Printf.sprintf "pipeline(n=%d,t=%d,chunk=%d)" n t chunk)
    ()

let test_pipeline_register_bits () =
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Printf.sprintf "3(t+1) bits for t=%d" t)
        (3 * (t + 1))
        (Msgpass.Pipeline.register_bits ~t ~chunk:1))
    [ 1; 2; 3; 5 ]

let test_pipeline_end_to_end () =
  let n = 3 and t = 1 and rounds = 2 in
  let task =
    Tasks.Eps_agreement.task ~n ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  let algorithm = pipeline_algorithm ~n ~t ~rounds ~chunk:1 in
  match
    H.check_random ~task ~algorithm ~resilience:t ~max_steps:30_000_000
      ~runs:3 ~seed:11 ()
  with
  | H.Fail v ->
      Alcotest.failf "pipeline: %a" (H.pp_violation Format.pp_print_int) v
  | H.Pass stats ->
      Alcotest.(check int) "6-bit registers" 6 stats.H.max_bits

let test_pipeline_chunk_ablation () =
  let n = 3 and t = 1 and rounds = 2 in
  let task =
    Tasks.Eps_agreement.task ~n ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  let steps_for chunk =
    let algorithm = pipeline_algorithm ~n ~t ~rounds ~chunk in
    match
      H.check_random ~task ~algorithm ~resilience:0 ~max_steps:30_000_000
        ~runs:1 ~seed:5 ()
    with
    | H.Fail v ->
        Alcotest.failf "pipeline chunk=%d: %a" chunk
          (H.pp_violation Format.pp_print_int)
          v
    | H.Pass stats -> (stats.H.max_bits, stats.H.max_process_steps)
  in
  let bits1, steps1 = steps_for 1 in
  let bits8, steps8 = steps_for 8 in
  Alcotest.(check int) "chunk=1 register width" 6 bits1;
  Alcotest.(check bool) "chunk=8 wider registers" true (bits8 > bits1);
  Alcotest.(check bool) "chunk=8 fewer steps" true (steps8 < steps1)

let () =
  Alcotest.run "msgpass"
    [
      ( "substrate",
        [
          Alcotest.test_case "augmented ring connectivity" `Quick
            test_topology_connectivity;
          Alcotest.test_case "connectivity is tight" `Quick
            test_topology_not_overconnected;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec framing" `Quick test_codec_framing;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_framing_stream;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_pack_roundtrip_boundary;
          Alcotest.test_case "pack fits_static boundaries" `Quick
            test_pack_fits_static_boundaries;
          Alcotest.test_case "envelope codec" `Quick test_wire_envelope_codec;
          Alcotest.test_case "alternating-bit channel" `Quick
            test_alt_bit_channel;
          QCheck_alcotest.to_alcotest prop_alt_bit_fifo;
        ] );
      ( "faults",
        [
          Alcotest.test_case "scripted delivery is FIFO" `Quick
            test_net_scripted_delivery;
          Alcotest.test_case "delivery respects crashes" `Quick
            test_net_deliver_respects_crash;
          QCheck_alcotest.to_alcotest prop_net_random_fifo;
          Alcotest.test_case "defer breaks FIFO (Faults only)" `Quick
            test_faults_defer_breaks_fifo;
          Alcotest.test_case "drop and duplicate" `Quick
            test_faults_drop_and_duplicate;
          Alcotest.test_case "chaos campaigns are seed-deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "rng_point replays a mid-campaign run" `Quick
            test_chaos_rng_point_replay;
          QCheck_alcotest.to_alcotest prop_plan_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_net_matches_netref;
          Alcotest.test_case "plan parser rejects garbage" `Quick
            test_plan_codec_rejects_garbage;
          Alcotest.test_case "plan parse errors are positional" `Quick
            test_plan_parse_errors_are_positional;
          Alcotest.test_case "fleet mutator is seed-deterministic" `Quick
            test_fleet_mutator_deterministic;
          QCheck_alcotest.to_alcotest prop_fleet_mutants_replay;
          Alcotest.test_case "fleet reports are jobs-invariant" `Quick
            test_fleet_jobs_invariant;
          Alcotest.test_case "fleet dedups, replays and resumes witnesses"
            `Quick test_fleet_witness_dedup_and_replay;
          Alcotest.test_case "parallel campaigns match sequential" `Quick
            test_chaos_jobs_invariant;
        ] );
      ( "membership",
        [
          Alcotest.test_case "view algebra and quorum rule" `Quick
            test_membership_views;
          QCheck_alcotest.to_alcotest prop_churn_schedule_rate_bounded;
          Alcotest.test_case "dynreg join, read, write, departure" `Quick
            test_dynreg_join_read_write;
          Alcotest.test_case "config validation" `Quick test_chaos_validate;
          Alcotest.test_case "churn mutation grammar is opt-in and \
                              deterministic" `Quick test_fleet_churn_mutants;
        ] );
      ( "message-passing",
        [
          Alcotest.test_case "ABD eps-agreement with crashes" `Quick
            test_abd_message_passing;
          Alcotest.test_case "ABD atomicity (reader monotonicity)" `Quick
            test_abd_atomicity;
          Alcotest.test_case "ring flooding survives crashes" `Quick
            test_router_flooding;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "register bits = 3(t+1)" `Quick
            test_pipeline_register_bits;
          Alcotest.test_case "theorem 1.3 end-to-end" `Slow
            test_pipeline_end_to_end;
          Alcotest.test_case "chunk ablation" `Slow
            test_pipeline_chunk_ablation;
        ] );
    ]
