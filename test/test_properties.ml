(* Cross-stack property-based tests: the paper's invariants under random
   parameters and random schedules (all seeded through qcheck). *)

module Q = Bits.Rational
module H = Tasks.Harness
module Proto = Iterated.Proto

let q_in_01 v = Q.(v >= Q.zero) && Q.(v <= Q.one)

(* Algorithm 1: for any k and any random schedule/crash pattern, decisions
   are on the grid, within eps, and within the step bound. *)
let prop_alg1 =
  QCheck.Test.make ~name:"alg1: eps-agreement for random k, seeds" ~count:120
    QCheck.(pair (int_range 1 20) (int_range 0 10_000))
    (fun (k, seed) ->
      let den = Core.Alg1_one_bit.denominator ~k in
      let task = Tasks.Eps_agreement.task ~n:2 ~k:den in
      match
        H.check_random ~task
          ~algorithm:(Core.Alg1_one_bit.algorithm ~k)
          ~runs:3 ~seed ()
      with
      | H.Pass stats ->
          stats.H.max_process_steps <= (2 * k) + 3 && stats.H.max_bits <= 1
      | H.Fail _ -> false)

(* The baseline halves the spread every round for any n. *)
let prop_baseline =
  QCheck.Test.make ~name:"baseline: halving for random n, rounds" ~count:60
    QCheck.(triple (int_range 2 5) (int_range 0 5) (int_range 0 10_000))
    (fun (n, rounds, seed) ->
      let task =
        Tasks.Eps_agreement.task ~n
          ~k:(Core.Baseline_unbounded.denominator ~rounds)
      in
      match
        H.check_random ~task
          ~algorithm:(Core.Baseline_unbounded.algorithm ~n ~rounds)
          ~runs:2 ~seed ()
      with
      | H.Pass _ -> true
      | H.Fail _ -> false)

(* Labelling: in any IS execution the two final labels map to values
   exactly one grain apart, inside [0,1]. *)
let partition_word_gen rounds =
  QCheck.Gen.(list_size (return rounds) (int_bound 2))

let prop_labelling =
  QCheck.Test.make ~name:"labelling: co-final labels one grain apart"
    ~count:200
    (QCheck.make
       QCheck.Gen.(int_range 1 10 >>= fun r -> partition_word_gen r))
    (fun word ->
      let rounds = List.length word in
      let pow3 =
        let rec go acc i = if i = 0 then acc else go (3 * acc) (i - 1) in
        go 1 rounds
      in
      let schedule ~round ~participants:_ =
        match List.nth word (round - 1) with
        | 0 -> [ [ 0 ]; [ 1 ] ] (* process 0 solo *)
        | 1 -> [ [ 0; 1 ] ]
        | _ -> [ [ 1 ]; [ 0 ] ]
      in
      let outcome =
        Iterated.Iis.run ~n:2 ~budget:(Bits.Width.Bounded 1)
          ~measure:(Bits.Width.uint ~max:1)
          ~programs:(fun pid -> Core.Labelling.protocol ~rounds ~me:pid)
          ~schedule ()
      in
      match (outcome.Iterated.Iis.decisions.(0), outcome.Iterated.Iis.decisions.(1)) with
      | Some l0, Some l1 ->
          let v0 = Core.Labelling.value l0 and v1 = Core.Labelling.value l1 in
          q_in_01 v0 && q_in_01 v1
          && Q.equal (Q.abs (Q.sub v0 v1)) (Q.make 1 pow3)
      | _ -> false)

(* Ring simulation: for random Delta, R, and shared-memory schedule, the
   two exit labels sit exactly one pruned-path grain apart. *)
let prop_ring_sim =
  QCheck.Test.make ~name:"ring sim: pruned values one grain apart" ~count:150
    QCheck.(triple (int_range 2 4) (int_range 2 10) (int_range 0 100_000))
    (fun (delta, rounds, seed) ->
      let total = Core.Ring_sim.executions_count ~delta ~rounds in
      let state =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n:2
               ~budget:
                 (Bits.Width.Bounded (Core.Ring_sim.register_bits ~delta))
               ~measure:(Core.Ring_sim.measure ~delta)
               ~init:(Core.Ring_sim.initial ~delta))
          ~programs:(fun pid -> Core.Ring_sim.protocol ~delta ~rounds ~me:pid)
          ()
      in
      Sched.Scheduler.run_random (Bits.Rng.make seed) state;
      match
        ((Sched.Scheduler.decisions state).(0),
         (Sched.Scheduler.decisions state).(1))
      with
      | Some l0, Some l1 ->
          let v0 = Core.Ring_sim.value ~delta ~rounds l0
          and v1 = Core.Ring_sim.value ~delta ~rounds l1 in
          Q.equal (Q.abs (Q.sub v0 v1)) (Q.make 1 total)
      | _ -> false)

(* Fast agreement: eps <= 2^-R for random R and schedule. *)
let prop_fast_agreement =
  QCheck.Test.make ~name:"fast agreement: grain below 2^-R" ~count:80
    QCheck.(pair (int_range 1 14) (int_range 0 10_000))
    (fun (rounds, seed) ->
      let den = Core.Fast_agreement.denominator ~delta:2 ~rounds in
      let task = Tasks.Eps_agreement.task ~n:2 ~k:den in
      den >= 1 lsl rounds
      &&
      match
        H.check_random ~task
          ~algorithm:(Core.Fast_agreement.algorithm ~delta:2 ~rounds)
          ~runs:3 ~seed ()
      with
      | H.Pass stats -> stats.H.max_process_steps <= (2 * rounds) + 3
      | H.Fail _ -> false)

(* BG snapshots keep the IS properties at n = 4 (beyond the exhaustively
   checked sizes). *)
let prop_bg_n4 =
  QCheck.Test.make ~name:"BG snapshot: IS properties at n=4" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 4 in
      let o =
        Iterated.Ic.run_random ~n ~budget:Bits.Width.Unbounded
          ~measure:Bits.Width.unbounded
          ~programs:(fun pid ->
            Iterated.Bg_snapshot.simulate ~n
              (Proto.Round (pid, fun v -> Proto.Decide v)))
          ~rng:(Bits.Rng.make seed) ()
      in
      let views =
        Array.map
          (function Some v -> v | None -> [||])
          o.Iterated.Ic.decisions
      in
      let written = Array.init n (fun i -> i) in
      Iterated.Views.validity ~equal:Int.equal ~written views
      && Iterated.Views.self_containment views
      && Iterated.Views.inclusion ~equal:Int.equal views
      && Iterated.Views.immediacy ~equal:Int.equal views)

(* The IIS midpoint agreement converges at 2^-rounds for n up to 4 under
   random schedules with crashes. *)
let prop_iis_agreement =
  QCheck.Test.make ~name:"IIS agreement under random schedules" ~count:100
    QCheck.(triple (int_range 2 4) (int_range 1 6) (int_range 0 100_000))
    (fun (n, rounds, seed) ->
      let rng = Bits.Rng.make seed in
      let inputs = Array.init n (fun _ -> Bits.Rng.int rng 2) in
      let o =
        Iterated.Iis.run_random ~n ~budget:Bits.Width.Unbounded
          ~measure:Bits.Width.unbounded
          ~programs:(fun pid ->
            Iterated.Agreement.protocol ~rounds ~input:inputs.(pid))
          ~rng ~crash_probability:0.1 ()
      in
      let ds =
        Array.to_list o.Iterated.Iis.decisions |> List.filter_map (fun d -> d)
      in
      let eps = Q.make 1 (Iterated.Agreement.denominator ~rounds) in
      let same x = Array.for_all (Int.equal x) inputs in
      Q.(Q.spread ds <= eps)
      && (not (same 0) || List.for_all (Q.equal Q.zero) ds)
      && (not (same 1) || List.for_all (Q.equal Q.one) ds))

(* Explore really enumerates C(a+b, a) interleavings. *)
let prop_explore_count =
  QCheck.Test.make ~name:"explore: C(a+b,a) interleavings" ~count:30
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (a, b) ->
      let open Sched.Program.Infix in
      let straight len : (int, unit, unit) Sched.Program.t =
        let rec go k =
          if k = 0 then Sched.Program.return ()
          else
            let* () = Sched.Program.write k in
            go (k - 1)
        in
        go len
      in
      let init () =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n:2 ~budget:Bits.Width.Unbounded
               ~measure:Bits.Width.unbounded ~init:0)
          ~programs:(fun pid -> straight (if pid = 0 then a else b))
          ()
      in
      let rec fact n = if n = 0 then 1 else n * fact (n - 1) in
      fst (Sched.Explore.count ~init ()) = fact (a + b) / (fact a * fact b))

(* Differential oracle for the exploration engine: on random small programs
   (reads feed into decisions, so observation order matters), the journaled
   engine with reductions off walks the same tree as the copy-per-branch
   naive walker, and with dedup+POR on it reaches exactly the same set of
   terminal states, each visited once. *)
let explore_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n ->
    int_range 0 1 >>= fun crashes ->
    (* Keep the naive tree small: 3 procs get <= 3 ops, 2 procs <= 4. *)
    let op =
      oneof
        [
          map (fun v -> `W v) (int_range 0 3);
          map (fun j -> `R j) (int_range 0 (n - 1));
        ]
    in
    list_repeat n (list_size (int_range 0 (if n = 2 then 4 else 3)) op)
    >>= fun progs -> return (n, crashes, Array.of_list progs))

let explore_print (n, crashes, progs) =
  Printf.sprintf "n=%d crashes=%d [%s]" n crashes
    (String.concat "; "
       (Array.to_list progs
       |> List.map (fun ops ->
              String.concat ","
                (List.map
                   (function
                     | `W v -> Printf.sprintf "W%d" v
                     | `R j -> Printf.sprintf "R%d" j)
                   ops))))

let prop_explore_differential =
  QCheck.Test.make ~name:"explore: optimized engine = naive walker" ~count:80
    (QCheck.make ~print:explore_print explore_gen)
    (fun (n, max_crashes, progs) ->
      let build ops =
        let rec go ops acc =
          match ops with
          | [] -> Sched.Program.Return (List.rev acc)
          | `W v :: rest -> Sched.Program.Write (v, fun () -> go rest acc)
          | `R j :: rest ->
              Sched.Program.Read (j, fun v -> go rest (v :: acc))
        in
        go ops []
      in
      let init () =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
               ~measure:Bits.Width.unbounded ~init:0)
          ~programs:(fun pid -> build progs.(pid))
          ()
      in
      let signature st =
        ( Array.to_list (Sched.Scheduler.decisions st),
          Array.to_list (Sched.Memory.contents (Sched.Scheduler.memory st)),
          Sched.Scheduler.crashed st )
      in
      let naive = ref [] in
      (if max_crashes = 0 then
         Sched.Explore.interleavings_naive ~init (fun st ->
             naive := signature st :: !naive)
       else
         Sched.Explore.interleavings_with_crashes_naive ~max_crashes ~init
           (fun st -> naive := signature st :: !naive));
      let raw = ref [] in
      let raw_stats =
        (Sched.Explore.explore ~max_crashes ~dedup:false ~por:false ~init
           (fun st -> raw := signature st :: !raw))
          .Sched.Explore.stats
      in
      let opt = ref [] in
      let opt_stats =
        (Sched.Explore.explore ~max_crashes ~init (fun st ->
             opt := signature st :: !opt))
          .Sched.Explore.stats
      in
      let sorted l = List.sort compare l in
      let set l = List.sort_uniq compare l in
      (* reductions off: the same multiset of terminal states as naive *)
      sorted !raw = sorted !naive
      && raw_stats.Sched.Explore.terminals = List.length !naive
      (* dedup + POR: exactly the same reachable terminal-state set *)
      && set !opt = set !naive
      (* crash-free histories determine signatures, so dedup implies each
         state is visited exactly once; under crashes, coinciding write
         values can leave distinct histories with equal signatures. *)
      && (max_crashes > 0 || List.length !opt = List.length (set !opt))
      && opt_stats.Sched.Explore.nodes <= raw_stats.Sched.Explore.nodes)

(* Domain-parallel engine: with reductions off the frontier fan-out
   partitions the raw tree, so the merged stats record must equal the
   sequential one field-for-field on random programs (tiny seed segments
   force the parallel path even on small trees). *)
let prop_par_raw_equals_seq =
  QCheck.Test.make ~name:"par: raw parallel stats = sequential" ~count:40
    (QCheck.make ~print:explore_print explore_gen)
    (fun (n, max_crashes, progs) ->
      let build ops =
        let rec go ops acc =
          match ops with
          | [] -> Sched.Program.Return (List.rev acc)
          | `W v :: rest -> Sched.Program.Write (v, fun () -> go rest acc)
          | `R j :: rest ->
              Sched.Program.Read (j, fun v -> go rest (v :: acc))
        in
        go ops []
      in
      let init () =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
               ~measure:Bits.Width.unbounded ~init:0)
          ~programs:(fun pid -> build progs.(pid))
          ()
      in
      let seq =
        Sched.Explore.explore ~max_crashes ~dedup:false ~por:false ~init
          (fun _ -> ())
      in
      let par =
        Sched.Par.explore ~max_crashes ~dedup:false ~por:false ~jobs:4
          ~seed_nodes:8 ~init
          ~fold:(fun _ k -> k + 1)
          ~merge:( + ) 0
      in
      par.Sched.Par.stats = seq.Sched.Explore.stats
      && par.Sched.Par.value = seq.Sched.Explore.stats.Sched.Explore.terminals
      && par.Sched.Par.outcome = Sched.Explore.Complete)

(* Free-monad oracle: an interpreter over the [Program.t] constructors
   themselves — no [Scheduler], no compiled code, no journal — enumerating
   schedules exactly like the naive walker (steps in pid order, crashes
   with an increasing-pid floor). The engine lowers programs into flat
   step arrays and walks them with in-frame undo; this oracle pins that
   compiled execution to the paper-level semantics of the monad. *)
module Oracle = struct
  type ('v, 'i, 'a) proc =
    | Susp of ('v, 'i, 'a) Sched.Program.t  (* head is a memory op *)
    | Halted

  type ('v, 'i, 'a) st = {
    regs : 'v array;
    inputs : 'i option array;
    procs : ('v, 'i, 'a) proc array;
    decisions : 'a option array;
    mutable crashed : int list;
  }

  (* [Return] records the first decision and halts; [Output] records and
     continues — mirroring [Scheduler]'s settling of decision heads. *)
  let rec settle st pid (p : _ Sched.Program.t) =
    match p with
    | Sched.Program.Return a ->
        if st.decisions.(pid) = None then st.decisions.(pid) <- Some a;
        st.procs.(pid) <- Halted
    | Sched.Program.Output (a, k) ->
        if st.decisions.(pid) = None then st.decisions.(pid) <- Some a;
        settle st pid (k ())
    | p -> st.procs.(pid) <- Susp p

  let start ~n ~init programs =
    let st =
      {
        regs = Array.make n init;
        inputs = Array.make n None;
        procs = Array.make n Halted;
        decisions = Array.make n None;
        crashed = [];
      }
    in
    for pid = 0 to n - 1 do
      settle st pid (programs pid)
    done;
    st

  (* Programs are pure between steps, so sharing the suspended [Susp]
     payloads across forks is a true fork — only the arrays are state. *)
  let copy st =
    {
      st with
      regs = Array.copy st.regs;
      inputs = Array.copy st.inputs;
      procs = Array.copy st.procs;
      decisions = Array.copy st.decisions;
    }

  let step st pid =
    match st.procs.(pid) with
    | Susp (Sched.Program.Write (v, k)) ->
        st.regs.(pid) <- v;
        settle st pid (k ())
    | Susp (Sched.Program.Read (j, k)) -> settle st pid (k st.regs.(j))
    | Susp (Sched.Program.Write_input (x, k)) ->
        st.inputs.(pid) <- Some x;
        settle st pid (k ())
    | Susp (Sched.Program.Read_input (j, k)) -> settle st pid (k st.inputs.(j))
    | Susp (Sched.Program.Return _ | Sched.Program.Output _) | Halted ->
        assert false

  let running st =
    let acc = ref [] in
    for pid = Array.length st.procs - 1 downto 0 do
      match st.procs.(pid) with
      | Susp _ -> acc := pid :: !acc
      | Halted -> ()
    done;
    !acc

  let crash st pid =
    st.procs.(pid) <- Halted;
    st.crashed <- pid :: st.crashed

  let interleavings ~max_crashes ~n ~init programs visit =
    let rec go st crashes floor =
      match running st with
      | [] -> visit st
      | procs ->
          List.iter
            (fun pid ->
              let f = copy st in
              step f pid;
              go f crashes 0)
            procs;
          if crashes < max_crashes then
            List.iter
              (fun pid ->
                if pid >= floor then begin
                  let f = copy st in
                  crash f pid;
                  go f (crashes + 1) (pid + 1)
                end)
              procs
    in
    go (start ~n ~init programs) 0 0

  let signature st =
    ( Array.to_list st.decisions,
      Array.to_list st.regs,
      List.sort compare st.crashed )
end

let prop_compiled_equals_free_monad =
  QCheck.Test.make ~name:"explore: compiled engine = free-monad oracle"
    ~count:60
    (QCheck.make ~print:explore_print explore_gen)
    (fun (n, max_crashes, progs) ->
      let build ops =
        let rec go ops acc =
          match ops with
          | [] -> Sched.Program.Return (List.rev acc)
          | `W v :: rest -> Sched.Program.Write (v, fun () -> go rest acc)
          | `R j :: rest ->
              Sched.Program.Read (j, fun v -> go rest (v :: acc))
        in
        go ops []
      in
      let init () =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
               ~measure:Bits.Width.unbounded ~init:0)
          ~programs:(fun pid -> build progs.(pid))
          ()
      in
      let sched_sig st =
        ( Array.to_list (Sched.Scheduler.decisions st),
          Array.to_list (Sched.Memory.contents (Sched.Scheduler.memory st)),
          Sched.Scheduler.crashed st )
      in
      let oracle = ref [] in
      Oracle.interleavings ~max_crashes ~n ~init:0
        (fun pid -> build progs.(pid))
        (fun st -> oracle := Oracle.signature st :: !oracle);
      let engine = ref [] in
      let stats =
        (Sched.Explore.explore ~max_crashes ~dedup:false ~por:false ~init
           (fun st -> engine := sched_sig st :: !engine))
          .Sched.Explore.stats
      in
      let sorted l = List.sort compare l in
      (* reductions off: one visit per schedule, same multiset as the
         monad-level enumeration *)
      sorted !engine = sorted !oracle
      && stats.Sched.Explore.terminals = List.length !oracle
      (* dedup + POR: exactly the oracle's reachable terminal-state set *)
      &&
      let opt = ref [] in
      ignore
        (Sched.Explore.explore ~max_crashes ~init (fun st ->
             opt := sched_sig st :: !opt)
          : Sched.Explore.result);
      List.sort_uniq compare !opt = List.sort_uniq compare !oracle)

(* Parallel digests: an order-insensitive digest of the terminal
   signatures (native-int wraparound sum of deep structural hashes, as
   the bench and the CLI compute it) must be identical at every pool
   width, with and without crashes. *)
let prop_par_digest_width_invariant =
  QCheck.Test.make ~name:"par: terminal digest invariant across jobs"
    ~count:20
    (QCheck.make ~print:explore_print explore_gen)
    (fun (n, max_crashes, progs) ->
      let build ops =
        let rec go ops acc =
          match ops with
          | [] -> Sched.Program.Return (List.rev acc)
          | `W v :: rest -> Sched.Program.Write (v, fun () -> go rest acc)
          | `R j :: rest ->
              Sched.Program.Read (j, fun v -> go rest (v :: acc))
        in
        go ops []
      in
      let init () =
        Sched.Scheduler.start
          ~memory:
            (Sched.Memory.create ~n ~budget:Bits.Width.Unbounded
               ~measure:Bits.Width.unbounded ~init:0)
          ~programs:(fun pid -> build progs.(pid))
          ()
      in
      let fold st acc =
        acc
        + Sched.Zobrist.value_hash
            ( Array.to_list (Sched.Scheduler.decisions st),
              Array.to_list
                (Sched.Memory.contents (Sched.Scheduler.memory st)),
              Sched.Scheduler.crashed st )
      in
      let digest jobs =
        (Sched.Par.explore ~max_crashes ~dedup:false ~por:false ~jobs
           ~seed_nodes:4 ~init ~fold ~merge:( + ) 0)
          .Sched.Par.value
      in
      let d1 = digest 1 in
      d1 = digest 2)

(* Trace replay: any random execution is reproduced exactly from its own
   schedule. *)
let prop_trace_replay =
  QCheck.Test.make ~name:"trace replay reproduces decisions" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 100_000))
    (fun (k, seed) ->
      let algorithm = Core.Alg1_one_bit.algorithm ~k in
      let fresh () =
        Sched.Scheduler.start ~record_trace:true
          ~memory:(algorithm.H.memory ())
          ~programs:(fun pid -> algorithm.H.program ~pid ~input:pid)
          ()
      in
      let s = fresh () in
      Sched.Scheduler.run_random (Bits.Rng.make seed) s;
      let s' = fresh () in
      Sched.Scheduler.run_schedule s'
        (Sched.Trace.schedule_of (Sched.Scheduler.trace s));
      let d = Sched.Scheduler.decisions s
      and d' = Sched.Scheduler.decisions s' in
      Array.for_all2 (Option.equal Q.equal) d d')

let () =
  Alcotest.run "properties"
    [
      ( "protocol-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_alg1;
            prop_baseline;
            prop_labelling;
            prop_ring_sim;
            prop_fast_agreement;
            prop_bg_n4;
            prop_iis_agreement;
            prop_explore_count;
            prop_explore_differential;
            prop_par_raw_equals_seq;
            prop_compiled_equals_free_monad;
            prop_par_digest_width_invariant;
            prop_trace_replay;
          ] );
    ]
