(* Tests for lib/check (linearizability checking, counterexample shrinking)
   and the chaos campaigns built on top of them. *)

module L = Check.Linearize
module S = Check.Shrink
module C = Msgpass.Chaos

let ev ?(proc = 0) ?(reg = 0) op inv res = { L.proc; reg; op; inv; res }
let w ?proc ?reg v inv res = ev ?proc ?reg (L.Write v) inv (Some res)
let r ?proc ?reg v inv res = ev ?proc ?reg (L.Read v) inv (Some res)

let is_lin = function L.Linearizable _ -> true | L.Nonlinearizable _ -> false

let check evs =
  L.check ~pp:Format.pp_print_int ~init:(fun _ -> 0) ~equal:Int.equal evs

(* A witness must be a legal sequential history: every read returns the
   value of the latest preceding write (or the register's initial value). *)
let legal_witness witness =
  let value = Hashtbl.create 4 in
  let current reg = Option.value (Hashtbl.find_opt value reg) ~default:0 in
  List.for_all
    (fun (e : int L.event) ->
      match e.L.op with
      | L.Write v ->
          Hashtbl.replace value e.reg v;
          true
      | L.Read v -> v = current e.reg)
    witness

let test_linearize_basic () =
  Alcotest.(check bool) "empty history" true (is_lin (check []));
  Alcotest.(check bool)
    "sequential write then read" true
    (is_lin (check [ w 1 0 1; r 1 2 3 ]));
  Alcotest.(check bool)
    "read of the initial value" true
    (is_lin (check [ r 0 0 1 ]));
  Alcotest.(check bool)
    "read overlapping a write may return either value (new)" true
    (is_lin (check [ w 1 0 5; r ~proc:1 1 2 4 ]));
  Alcotest.(check bool)
    "read overlapping a write may return either value (old)" true
    (is_lin (check [ w 1 0 5; r ~proc:1 0 2 4 ]))

let test_linearize_stale_read () =
  (* Write completes at 2; a read invoked at 3 returns the initial value:
     the E13 shape. *)
  let verdict = check [ w 1 0 2; r ~proc:1 0 3 4 ] in
  (match verdict with
  | L.Nonlinearizable { reg; reason } ->
      Alcotest.(check int) "register cited" 0 reg;
      Alcotest.(check bool) "reason mentions the stuck read" true
        (String.length reason > 0)
  | L.Linearizable _ -> Alcotest.fail "stale read accepted");
  (* New/old inversion across two readers: p1 reads 1, then p2's later read
     returns 0 even though the write never completed — still illegal, the
     pending write was exposed by p1's read. *)
  let inversion =
    [ ev (L.Write 1) 0 None; r ~proc:1 1 1 2; r ~proc:2 0 3 4 ]
  in
  Alcotest.(check bool) "new/old inversion" false (is_lin (check inversion))

let test_linearize_pending () =
  (* A pending write may or may not have taken effect: both a read of its
     value and a read of the old value are fine. *)
  Alcotest.(check bool)
    "pending write visible" true
    (is_lin (check [ ev (L.Write 7) 0 None; r ~proc:1 7 1 2 ]));
  Alcotest.(check bool)
    "pending write invisible" true
    (is_lin (check [ ev (L.Write 7) 0 None; r ~proc:1 0 1 2 ]));
  (* Pending reads promise nothing. *)
  Alcotest.(check bool)
    "pending read dropped" true
    (is_lin (check [ w 1 0 1; ev ~proc:1 (L.Read 99) 2 None ]))

let test_linearize_per_register () =
  (* Registers are independent: a violation on register 3 is reported as
     such even when register 0's history is fine. *)
  let evs =
    [ w 1 0 1; r 1 2 3; w ~reg:3 5 0 2; r ~proc:1 ~reg:3 0 3 4 ]
  in
  match check evs with
  | L.Nonlinearizable { reg; _ } ->
      Alcotest.(check int) "violating register" 3 reg
  | L.Linearizable _ -> Alcotest.fail "cross-register violation missed"

let test_linearize_witness_legal () =
  (* The returned witness order is itself a legal sequential history. *)
  let evs =
    [
      w 1 0 4;
      w ~proc:0 2 5 9;
      r ~proc:1 1 2 6;
      r ~proc:1 2 7 10;
      r ~proc:2 0 0 1;
      r ~proc:2 2 8 11;
    ]
  in
  match check evs with
  | L.Linearizable witness ->
      Alcotest.(check int) "witness covers completed ops" (List.length evs)
        (List.length witness);
      Alcotest.(check bool) "witness is sequentially legal" true
        (legal_witness witness)
  | L.Nonlinearizable _ -> Alcotest.fail "linearizable history rejected"

(* Differential: the greedy-read checker agrees with plain Wing–Gong
   backtracking on small random histories. *)
let gen_history =
  let open QCheck.Gen in
  let gen_event =
    int_range 0 2 >>= fun proc ->
    int_range 0 1 >>= fun reg ->
    int_range 0 2 >>= fun v ->
    bool >>= fun is_write ->
    int_range 0 12 >>= fun inv ->
    int_range 1 5 >>= fun len ->
    int_range 0 9 >>= fun pending_die ->
    let res = if pending_die = 0 then None else Some (inv + len) in
    let op = if is_write then L.Write v else L.Read v in
    return { L.proc; reg; op; inv; res }
  in
  list_size (int_bound 6) gen_event

let prop_check_vs_naive =
  QCheck.Test.make ~name:"greedy checker agrees with naive Wing-Gong"
    ~count:500
    (QCheck.make gen_history)
    (fun evs ->
      is_lin (check evs)
      = L.check_naive ~init:(fun _ -> 0) ~equal:Int.equal evs)

(* Differential at scale: the iterative fast path must also agree with the
   exhaustive oracle on real recorded histories — sound runs with crash
   injections, frontier runs (many nonlinearizable), and churn runs whose
   departures and joiner scripts leave operations pending. These exercise
   the flat-array encoding, the res-sorted minimality index and the trail
   undo on exactly the event shapes chaos campaigns produce. *)
let prop_fast_vs_naive_chaos =
  QCheck.Test.make
    ~name:"fast checker agrees with naive oracle on chaos histories"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun config ->
          let o = C.run_random ~seed config in
          is_lin o.C.verdict
          = L.check_naive ~init:(fun _ -> 0) ~equal:Int.equal o.C.history)
        [ C.sound (); C.frontier (); C.churn (); C.churn_frontier () ])

let test_ddmin () =
  let contains x xs = List.mem x xs in
  Alcotest.(check (list int))
    "single culprit" [ 7 ]
    (S.ddmin ~test:(contains 7) [ 1; 2; 3; 7; 4; 5; 6 ]);
  Alcotest.(check (list int))
    "two culprits, order preserved" [ 3; 5 ]
    (S.ddmin ~test:(fun xs -> contains 3 xs && contains 5 xs)
       [ 9; 3; 1; 4; 5; 2 ]);
  Alcotest.(check (list int))
    "non-failing input unchanged" [ 1; 2 ]
    (S.ddmin ~test:(fun _ -> false) [ 1; 2 ]);
  let _, tests = S.ddmin_count ~test:(contains 7) [ 1; 2; 3; 7 ] in
  Alcotest.(check bool) "test invocations counted" true (tests > 1)

let test_minimize_pairs () =
  (* A failure only the whole list or a non-chunk-aligned pair removal can
     exhibit: ddmin alone is stuck at the full list, pair elimination finds
     the core. *)
  let test xs = xs = [ 1; 2; 3; 4 ] || xs = [ 2; 3 ] in
  Alcotest.(check (list int))
    "ddmin alone is stuck" [ 1; 2; 3; 4 ]
    (S.ddmin ~test [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int))
    "pair elimination finds the core" [ 2; 3 ]
    (S.minimize ~test [ 1; 2; 3; 4 ]);
  let shrunk, tests = S.minimize_count ~test [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "count variant agrees" [ 2; 3 ] shrunk;
  Alcotest.(check bool) "replay count positive" true (tests > 0)

let test_shrink_edge_cases () =
  (* Empty plan: nothing to remove, whatever [test] says. *)
  Alcotest.(check (list int))
    "empty plan, failing" []
    (S.ddmin ~test:(fun _ -> true) []);
  Alcotest.(check (list int))
    "empty plan, passing" []
    (S.ddmin ~test:(fun _ -> false) []);
  (* Singleton: 1-minimal by construction when it still fails. *)
  Alcotest.(check (list int))
    "failing singleton kept" [ 42 ]
    (S.ddmin ~test:(fun xs -> xs <> []) [ 42 ]);
  (* Already minimal: every element is load-bearing, nothing is dropped
     and order is preserved. *)
  let all_present xs = List.for_all (fun x -> List.mem x xs) [ 1; 2; 3 ] in
  Alcotest.(check (list int))
    "already-minimal plan unchanged" [ 1; 2; 3 ]
    (S.ddmin ~test:all_present [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "minimize agrees on minimal plans" [ 1; 2; 3 ]
    (S.minimize ~test:all_present [ 1; 2; 3 ])

let test_shrink_non_monotone_terminates () =
  (* An odd-length predicate is about as hostile as it gets: removing one
     element flips the verdict, removing two restores it. ddmin makes no
     monotonicity assumption — it must still terminate, return a
     subsequence, and keep the failure. *)
  let odd xs = List.length xs mod 2 = 1 in
  let input = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let shrunk, tests = S.minimize_count ~test:odd input in
  Alcotest.(check bool) "result still fails" true (odd shrunk);
  Alcotest.(check bool) "result is a subsequence" true
    (List.for_all (fun x -> List.mem x input) shrunk);
  Alcotest.(check bool) "bounded work" true (tests < 1000);
  (* Flapping predicate keyed on content, not length. *)
  let spiky xs = List.mem 3 xs && not (List.mem 5 xs) in
  let shrunk2 = S.ddmin ~test:spiky [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check bool)
    "ddmin on non-monotone input returns input when it passes" true
    (spiky shrunk2 || shrunk2 = [ 1; 2; 3; 4; 5; 6 ])

(* Sound quorum (n - t, t < n/2): every seeded chaos run — crashes, drops,
   duplication, reordering, delay bursts — must record a linearizable
   history. *)
let prop_sound_chaos_linearizable =
  QCheck.Test.make ~name:"sound-quorum chaos runs are linearizable" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed -> not (C.failed (C.run_random ~seed (C.sound ()))))

(* The published frontier counterexample: seed 127 at the t = n/2 frontier
   (disjoint quorums) yields a nonlinearizable history; the shrinker reduces
   its fault plan to at most 20 delivery events; replaying the shrunk plan
   deterministically re-triggers the verdict. *)
let test_frontier_seed_127 () =
  let config = C.frontier () in
  let o = C.run_random ~seed:127 config in
  Alcotest.(check bool) "seed 127 violates atomicity" true (C.failed o);
  let shrunk, _replays = C.shrink config (Msgpass.Faults.decompile o.C.plan) in
  let deliveries = Msgpass.Faults.deliveries shrunk in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 20 deliveries (got %d)" deliveries)
    true (deliveries <= 20);
  let replayed = C.run_plan config shrunk in
  (match replayed.C.verdict with
  | L.Nonlinearizable { reg; _ } ->
      Alcotest.(check int) "replay re-triggers on register 0" 0 reg
  | L.Linearizable _ -> Alcotest.fail "shrunk plan no longer fails");
  (* Replay is bit-for-bit: same plan, same history, same verdict. *)
  let again = C.run_plan config shrunk in
  Alcotest.(check bool) "replay deterministic" true
    (again.C.history = replayed.C.history)

let test_run_plan_reproduces_run_random () =
  let config = C.sound () in
  let o = C.run_random ~seed:3 config in
  let replayed = C.run_plan config (Msgpass.Faults.decompile o.C.plan) in
  Alcotest.(check bool) "same history under plan replay" true
    (replayed.C.history = o.C.history);
  Alcotest.(check int) "same delivery count" o.C.deliveries
    replayed.C.deliveries

let () =
  Alcotest.run "check"
    [
      ( "linearize",
        [
          Alcotest.test_case "basic histories" `Quick test_linearize_basic;
          Alcotest.test_case "stale reads rejected" `Quick
            test_linearize_stale_read;
          Alcotest.test_case "pending operations" `Quick test_linearize_pending;
          Alcotest.test_case "per-register verdicts" `Quick
            test_linearize_per_register;
          Alcotest.test_case "witness legality" `Quick
            test_linearize_witness_legal;
          QCheck_alcotest.to_alcotest prop_check_vs_naive;
          QCheck_alcotest.to_alcotest prop_fast_vs_naive_chaos;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin" `Quick test_ddmin;
          Alcotest.test_case "pair elimination" `Quick test_minimize_pairs;
          Alcotest.test_case "edge cases" `Quick test_shrink_edge_cases;
          Alcotest.test_case "non-monotone predicates" `Quick
            test_shrink_non_monotone_terminates;
        ] );
      ( "chaos",
        [
          QCheck_alcotest.to_alcotest prop_sound_chaos_linearizable;
          Alcotest.test_case "frontier seed 127 finds, shrinks, replays"
            `Quick test_frontier_seed_127;
          Alcotest.test_case "plan replay reproduces random run" `Quick
            test_run_plan_reproduces_run_random;
        ] );
    ]
