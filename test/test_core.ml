(* Tests for lib/core: the paper's algorithms. *)

module Alg1_one_bit = Core.Alg1_one_bit
module Q = Bits.Rational
module H = Tasks.Harness

let check_pass what = function
  | H.Pass _ -> ()
  | H.Fail v ->
      Alcotest.failf "%s: %a" what (H.pp_violation Format.pp_print_int) v

(* Algorithm 1: exhaustive over all interleavings for small k (Theorem 1.2,
   first half). *)
let test_alg1_exhaustive () =
  List.iter
    (fun k ->
      let task =
        Tasks.Eps_agreement.task ~n:2 ~k:(Alg1_one_bit.denominator ~k)
      in
      let algorithm = Alg1_one_bit.algorithm ~k in
      check_pass
        (Printf.sprintf "alg1 k=%d exhaustive" k)
        (H.check_exhaustive ~task ~algorithm ()))
    [ 1; 2; 3; 4 ]

(* With one crash allowed anywhere (wait-free = 1-resilient for n=2). *)
let test_alg1_crashes () =
  let k = 3 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(Alg1_one_bit.denominator ~k) in
  let algorithm = Alg1_one_bit.algorithm ~k in
  check_pass "alg1 with crashes"
    (H.check_exhaustive ~task ~algorithm ~max_crashes:1 ())

(* Random schedules for a larger k. *)
let test_alg1_random () =
  let k = 25 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(Alg1_one_bit.denominator ~k) in
  let algorithm = Alg1_one_bit.algorithm ~k in
  check_pass "alg1 random"
    (H.check_random ~task ~algorithm ~runs:500 ~seed:42 ())

(* Step complexity: at most 2k + 3 operations per process (Prop 5.1). *)
let test_alg1_step_bound () =
  let k = 10 in
  let task = Tasks.Eps_agreement.task ~n:2 ~k:(Alg1_one_bit.denominator ~k) in
  let algorithm = Alg1_one_bit.algorithm ~k in
  match H.check_random ~task ~algorithm ~runs:200 ~seed:7 () with
  | H.Fail v ->
      Alcotest.failf "alg1: %a" (H.pp_violation Format.pp_print_int) v
  | H.Pass stats ->
      Alcotest.(check bool)
        "steps <= 2k+3" true
        (stats.H.max_process_steps <= (2 * k) + 3);
      Alcotest.(check int) "register width is 1 bit" 1 stats.H.max_bits

(* Lemma 5.6 corollary: a solo process decides its own input. *)
let test_alg1_solo () =
  List.iter
    (fun (solo, input) ->
      let algorithm = Alg1_one_bit.algorithm ~k:4 in
      let inputs =
        if solo = 0 then [| input; 1 - input |] else [| 1 - input; input |]
      in
      let state =
        H.run_once algorithm ~inputs
          ~schedule:(`List (List.init 100 (fun _ -> solo)))
          ()
      in
      match Sched.Scheduler.status state solo with
      | Sched.Scheduler.Decided d ->
          Alcotest.(check bool)
            (Printf.sprintf "solo p%d decides its input" solo)
            true
            (Q.equal d (Q.of_int input))
      | _ -> Alcotest.fail "solo process did not decide")
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* Algorithm 2 (Theorem 1.2): universal 2-process construction. *)

let plan_of task_def =
  match Tasks.Bmz.plan task_def with
  | Ok plan -> plan
  | Error e -> Alcotest.fail e

let alg2_check_exhaustive ?max_crashes name task_def =
  let plan = plan_of task_def in
  let task = Tasks.Bmz.to_task task_def in
  let algorithm = Core.Alg2_universal.algorithm ~plan in
  match H.check_exhaustive ~task ~algorithm ?max_crashes () with
  | H.Pass stats ->
      Alcotest.(check bool)
        (name ^ ": 3-bit registers suffice")
        true
        (stats.H.max_bits <= 3)
  | H.Fail v ->
      Alcotest.failf "%s: %a" name (H.pp_violation Format.pp_print_int) v

let test_alg2_eps_grid () =
  alg2_check_exhaustive "eps-grid k=1" (Tasks.Gallery.eps_grid ~k:1)

let test_alg2_eps_grid_crash () =
  alg2_check_exhaustive ~max_crashes:1 "eps-grid k=1 + crash"
    (Tasks.Gallery.eps_grid ~k:1)

let test_alg2_renaming () =
  alg2_check_exhaustive "renaming3" Tasks.Gallery.renaming3

let test_alg2_always_zero () =
  alg2_check_exhaustive "always-zero" Tasks.Gallery.always_zero

let test_alg2_ternary () =
  alg2_check_exhaustive "hull-agreement" Tasks.Gallery.hull_agreement;
  alg2_check_exhaustive "weak-consensus" Tasks.Gallery.weak_consensus

let test_alg2_noisy_grid_searched () =
  (* The searched witness subset feeds Algorithm 2 just like a direct one. *)
  let task_def = Tasks.Gallery.noisy_grid in
  match Tasks.Bmz.plan_searching task_def with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      let task = Tasks.Bmz.to_task task_def in
      let algorithm = Core.Alg2_universal.algorithm ~plan in
      match H.check_exhaustive ~task ~algorithm ~max_crashes:1 () with
      | H.Pass _ -> ()
      | H.Fail v ->
          Alcotest.failf "noisy-grid: %a"
            (H.pp_violation Format.pp_print_int)
            v)

let test_alg2_random_bigger () =
  let task_def = Tasks.Gallery.eps_grid ~k:4 in
  let plan = plan_of task_def in
  let task = Tasks.Bmz.to_task task_def in
  let algorithm = Core.Alg2_universal.algorithm ~plan in
  check_pass "alg2 eps-grid k=4 random"
    (H.check_random ~task ~algorithm ~runs:400 ~seed:11 ())

(* Baseline (Lemma 2.2): unbounded-register wait-free eps-agreement. *)

let test_baseline_exhaustive () =
  let rounds = 2 in
  let task =
    Tasks.Eps_agreement.task ~n:2
      ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  let algorithm = Core.Baseline_unbounded.algorithm ~n:2 ~rounds in
  check_pass "baseline n=2 exhaustive"
    (H.check_exhaustive ~task ~algorithm ~max_steps:100000 ())

let test_baseline_random_n () =
  List.iter
    (fun (n, rounds) ->
      let task =
        Tasks.Eps_agreement.task ~n
          ~k:(Core.Baseline_unbounded.denominator ~rounds)
      in
      let algorithm = Core.Baseline_unbounded.algorithm ~n ~rounds in
      check_pass
        (Printf.sprintf "baseline n=%d R=%d random" n rounds)
        (H.check_random ~task ~algorithm ~runs:200 ~seed:5 ()))
    [ (2, 6); (3, 5); (5, 4) ]

let test_baseline_crashes () =
  let n = 4 and rounds = 4 in
  let task =
    Tasks.Eps_agreement.task ~n
      ~k:(Core.Baseline_unbounded.denominator ~rounds)
  in
  let algorithm = Core.Baseline_unbounded.algorithm ~n ~rounds in
  check_pass "baseline wait-free with crashes"
    (H.check_random ~task ~algorithm ~resilience:(n - 1) ~runs:300 ~seed:17 ())

(* Lower bound (Theorem 1.1 / Section 4): the pigeonhole adversary. *)

module LB = Core.Lower_bound

let test_lb_threshold () =
  (* n = 3, t = 2, 1-bit registers: k = 2 * (2^1)^2 + 1 = 9. *)
  Alcotest.(check string)
    "threshold n=3 t=2 s=1" "1/9"
    (Q.to_string (LB.epsilon_threshold ~bits:1 ~n:3 ~t:2));
  (* n = 5, t = 3, 2-bit registers: k = 2 * 4^3 + 1 = 129. *)
  Alcotest.(check string)
    "threshold n=5 t=3 s=2" "1/129"
    (Q.to_string (LB.epsilon_threshold ~bits:2 ~n:5 ~t:3))

let test_lb_alg1_buckets () =
  List.iter
    (fun k ->
      let a = LB.analyse (LB.alg1_protocol ~k) in
      let eps = Q.make 1 ((2 * k) + 1) in
      (* 1-bit registers: at most 2^2 distinct words. *)
      Alcotest.(check bool) "words <= 4" true (a.LB.distinct_words <= 4);
      (* Some bucket spans 3 eps: the third process is forced more than eps
         away from a decision it must match (spread > 2 eps). *)
      Alcotest.(check string)
        (Printf.sprintf "bucket spread = 3 eps (k=%d)" k)
        (Q.to_string (Q.mul (Q.of_int 3) eps))
        (Q.to_string a.LB.max_spread);
      Alcotest.(check bool)
        "third-process error exceeds eps" true
        Q.(LB.third_process_error a > eps);
      (* Claim 4.1: every grid value is realized by some 2-process
         execution. *)
      Alcotest.(check int)
        "coverage hits the whole grid" ((2 * k) + 2)
        (List.length (LB.coverage a)))
    [ 2; 3 ]

let test_lb_witness () =
  let proto = LB.alg1_protocol ~k:2 in
  let w = LB.witness proto in
  let eps = Q.make 1 5 in
  Alcotest.(check string) "forced error = 3/2 eps" "3/10"
    (Q.to_string w.LB.forced_error);
  Alcotest.(check bool) "exceeds eps" true Q.(w.LB.forced_error > eps);
  (* Both witness schedules replay to their recorded outputs and leave the
     same register word. *)
  let replay schedule =
    let state =
      Sched.Scheduler.start
        ~memory:(proto.LB.memory ())
        ~programs:(fun pid -> proto.LB.program ~me:pid ~input:pid)
        ()
    in
    Sched.Scheduler.run_schedule state schedule;
    let outputs =
      match
        ((Sched.Scheduler.decisions state).(0),
         (Sched.Scheduler.decisions state).(1))
      with
      | Some a, Some b -> (a, b)
      | _ -> Alcotest.fail "witness replay: undecided"
    in
    let c = Sched.Memory.contents (Sched.Scheduler.memory state) in
    (outputs, (c.(0), c.(1)))
  in
  let (lo0, lo1), low_word = replay w.LB.low_schedule in
  let (hi0, hi1), high_word = replay w.LB.high_schedule in
  Alcotest.(check bool) "low outputs replayed" true
    (Q.equal lo0 (fst w.LB.low_outputs) && Q.equal lo1 (snd w.LB.low_outputs));
  Alcotest.(check bool) "high outputs replayed" true
    (Q.equal hi0 (fst w.LB.high_outputs)
    && Q.equal hi1 (snd w.LB.high_outputs));
  Alcotest.(check bool) "identical register words" true
    (low_word = w.LB.word && high_word = w.LB.word)

let test_lb_quantized_words () =
  let bits = 3 in
  let a = LB.analyse (LB.quantized_protocol ~bits ~rounds:3) in
  Alcotest.(check bool)
    "words bounded by 2^(2 bits)" true
    (a.LB.distinct_words <= 1 lsl (2 * bits));
  Alcotest.(check bool)
    "third-process error stays positive" true
    Q.(LB.third_process_error a > Q.zero)

(* Section 8: labelling, ring simulation, fast agreement (Theorem 8.1). *)

module L = Core.Labelling
module RS = Core.Ring_sim
module FA = Core.Fast_agreement

(* Lemma 8.1: 3^r + 1 labels forming a chromatic path with a consistent
   value map. *)
let test_labelling_path () =
  List.iter
    (fun r ->
      let pow3 =
        let rec go acc i = if i = 0 then acc else go (3 * acc) (i - 1) in
        go 1 r
      in
      let labels = ref [] in
      let execs = ref 0 in
      Iterated.Iis.enumerate ~n:2 ~budget:(Bits.Width.Bounded 1)
        ~measure:(Bits.Width.uint ~max:1)
        ~programs:(fun pid -> L.protocol ~rounds:r ~me:pid)
        ~max_rounds:r
        (fun o ->
          incr execs;
          match
            (o.Iterated.Iis.decisions.(0), o.Iterated.Iis.decisions.(1))
          with
          | Some l0, Some l1 ->
              Alcotest.(check string)
                "co-final labels one grain apart"
                (Q.to_string (Q.make 1 pow3))
                (Q.to_string (Q.abs (Q.sub (L.value l0) (L.value l1))));
              List.iter
                (fun l ->
                  if not (List.exists (L.equal l) !labels) then
                    labels := l :: !labels)
                [ l0; l1 ]
          | _ -> Alcotest.fail "labelling: undecided")
        ;
      Alcotest.(check int)
        (Printf.sprintf "3^%d + 1 labels" r)
        (pow3 + 1)
        (List.length !labels);
      let values = List.map L.value !labels in
      Alcotest.(check int) "value map injective" (pow3 + 1)
        (List.length (List.sort_uniq Q.compare values));
      Alcotest.(check bool) "solo ends at 0 and 1" true
        (List.exists (Q.equal Q.zero) values
        && List.exists (Q.equal Q.one) values))
    [ 1; 2; 3; 4; 5 ]

(* Algorithm 6: every simulated execution yields co-final labels exactly one
   pruned-path grain apart, and the pruned path has >= 2^R edges
   (Lemma 8.7). *)
let test_ring_sim_exhaustive () =
  List.iter
    (fun (delta, rounds) ->
      let total = RS.executions_count ~delta ~rounds in
      Alcotest.(check bool)
        (Printf.sprintf "2^%d executions (delta=%d)" rounds delta)
        true
        (total >= 1 lsl rounds);
      let mem () =
        Sched.Memory.create ~n:2
          ~budget:(Bits.Width.Bounded (RS.register_bits ~delta))
          ~measure:(RS.measure ~delta) ~init:(RS.initial ~delta)
      in
      let init () =
        Sched.Scheduler.start ~memory:(mem ())
          ~programs:(fun pid -> RS.protocol ~delta ~rounds ~me:pid)
          ()
      in
      let distinct = ref [] in
      let (_ : Sched.Explore.outcome) =
        Sched.Explore.interleavings ~max_steps:100_000 ~init (fun st ->
          match
            ( (Sched.Scheduler.decisions st).(0),
              (Sched.Scheduler.decisions st).(1) )
          with
          | Some l0, Some l1 ->
              Alcotest.(check string) "one grain apart"
                (Q.to_string (Q.make 1 total))
                (Q.to_string
                   (Q.abs
                      (Q.sub
                         (RS.value ~delta ~rounds l0)
                         (RS.value ~delta ~rounds l1))));
              if
                not
                  (List.exists
                     (fun (a, b) -> L.equal a l0 && L.equal b l1)
                     !distinct)
              then distinct := (l0, l1) :: !distinct
          | _ -> Alcotest.fail "ring sim: undecided")
      in
      (* The simulation reaches every pruned execution. *)
      Alcotest.(check int) "all pruned executions realized" total
        (List.length !distinct))
    [ (2, 3); (2, 4); (3, 3) ]

(* Theorem 8.1 end-to-end: 6-bit registers, eps = 1/executions_count. *)
let test_fast_agreement_exhaustive () =
  let delta = 2 and rounds = 3 in
  let task =
    Tasks.Eps_agreement.task ~n:2 ~k:(FA.denominator ~delta ~rounds)
  in
  let algorithm = FA.algorithm ~delta ~rounds in
  match H.check_exhaustive ~task ~algorithm ~max_crashes:1 () with
  | H.Fail v ->
      Alcotest.failf "fast agreement: %a"
        (H.pp_violation Format.pp_print_int)
        v
  | H.Pass stats ->
      Alcotest.(check int) "6-bit registers" 6 stats.H.max_bits

let test_fast_agreement_random () =
  let delta = 2 and rounds = 12 in
  let task =
    Tasks.Eps_agreement.task ~n:2 ~k:(FA.denominator ~delta ~rounds)
  in
  let algorithm = FA.algorithm ~delta ~rounds in
  match H.check_random ~task ~algorithm ~runs:500 ~seed:3 () with
  | H.Fail v ->
      Alcotest.failf "fast agreement: %a"
        (H.pp_violation Format.pp_print_int)
        v
  | H.Pass stats ->
      (* O(rounds) steps: 2 per simulated round plus input handling. *)
      Alcotest.(check bool) "steps <= 2R + 3" true
        (stats.H.max_process_steps <= (2 * rounds) + 3);
      Alcotest.(check bool) "eps below 2^-R" true
        (FA.denominator ~delta ~rounds >= 1 lsl rounds)

(* Lemma 2.4: IIS protocols embedded in plain shared memory via BG. *)

let test_iis_in_sm_exhaustive () =
  let n = 2 and rounds = 1 in
  let task =
    Tasks.Eps_agreement.task ~n
      ~k:(Iterated.Agreement.denominator ~rounds)
  in
  let algorithm =
    Core.Iis_in_sm.algorithm ~n ~name:"iis-in-sm"
      ~source:(fun ~pid:_ ~input ->
        Iterated.Agreement.protocol ~rounds ~input)
  in
  check_pass "IIS-in-SM exhaustive"
    (H.check_exhaustive ~task ~algorithm ~max_crashes:1 ~max_steps:100_000 ())

let test_iis_in_sm_random () =
  List.iter
    (fun (n, rounds) ->
      let task =
        Tasks.Eps_agreement.task ~n
          ~k:(Iterated.Agreement.denominator ~rounds)
      in
      let algorithm =
        Core.Iis_in_sm.algorithm ~n ~name:"iis-in-sm"
          ~source:(fun ~pid:_ ~input ->
            Iterated.Agreement.protocol ~rounds ~input)
      in
      match H.check_random ~task ~algorithm ~runs:150 ~seed:23 () with
      | H.Fail v ->
          Alcotest.failf "iis-in-sm n=%d: %a" n
            (H.pp_violation Format.pp_print_int)
            v
      | H.Pass stats ->
          (* n (n+1) steps per simulated round. *)
          Alcotest.(check bool) "step bound" true
            (stats.H.max_process_steps <= rounds * n * (n + 1)))
    [ (2, 3); (3, 2); (4, 2) ]

(* The embedded rounds still produce genuine immediate snapshots. *)
let test_iis_in_sm_snapshot_props () =
  let n = 3 in
  let algorithm =
    Core.Iis_in_sm.algorithm ~n ~name:"iis-in-sm-views"
      ~source:(fun ~pid ~input:_ ->
        Iterated.Proto.Round (pid, fun view -> Iterated.Proto.Decide view))
  in
  for seed = 0 to 199 do
    let state =
      H.run_once algorithm
        ~inputs:[| 0; 1; 2 |]
        ~schedule:(`Random (Bits.Rng.make seed, []))
        ()
    in
    let views =
      Array.map
        (function Some v -> v | None -> Alcotest.fail "undecided")
        (Sched.Scheduler.decisions state)
    in
    let written = Array.init n (fun i -> i) in
    Alcotest.(check bool) "validity" true
      (Iterated.Views.validity ~equal:Int.equal ~written views);
    Alcotest.(check bool) "self-containment" true
      (Iterated.Views.self_containment views);
    Alcotest.(check bool) "inclusion" true
      (Iterated.Views.inclusion ~equal:Int.equal views);
    Alcotest.(check bool) "immediacy" true
      (Iterated.Views.immediacy ~equal:Int.equal views)
  done

(* Graphviz renderings have the right vertex/edge counts. *)

let count_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go acc i =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_viz_counts () =
  let dot = Experiments.Viz.labelling_path ~rounds:2 in
  Alcotest.(check int) "10 vertices" 10 (count_substring "label=\"p" dot);
  Alcotest.(check int) "9 edges" 9 (count_substring " -- " dot);
  let g = Experiments.Viz.bmz_graph Tasks.Gallery.renaming3 in
  Alcotest.(check int) "renaming3: 6 configs" 6 (count_substring "label=" g);
  let p = Experiments.Viz.pruned_path ~delta:2 ~rounds:3 in
  (* 23 pruned executions -> 24 vertices (E8). *)
  Alcotest.(check int) "pruned path edges" 23 (count_substring " -- " p)

(* Lemma 2.1 via exhaustive protocol search: no 1-bit bounded-round
   protocol solves 1-resilient binary consensus. *)

module CS = Core.Consensus_search

let test_consensus_search_none () =
  List.iter
    (fun rounds ->
      let s = CS.search ~rounds in
      Alcotest.(check int) "class fully enumerated"
        (CS.candidate_count ~rounds) s.CS.total;
      Alcotest.(check int)
        (Printf.sprintf "no %d-round protocol survives" rounds)
        0
        (List.length s.CS.survivors))
    [ 1; 2 ]

(* Positive control: the same search machinery does find survivors for a
   solvable task (validity only, no agreement) — the adversary is not
   vacuously rejecting everything. *)
let test_consensus_search_control () =
  let validity_only =
    {
      (Tasks.Consensus.binary ~n:2) with
      Tasks.Task.name = "validity-only";
      legal =
        (fun ~inputs ~outputs ->
          Array.for_all
            (function
              | None -> true
              | Some d -> Array.exists (Int.equal d) inputs)
            outputs);
    }
  in
  let survivors = ref 0 in
  Seq.iter
    (fun candidate ->
      let algorithm =
        {
          H.name = "control";
          memory =
            (fun () ->
              Sched.Memory.create ~n:2 ~budget:(Bits.Width.Bounded 1)
                ~measure:(Bits.Width.uint ~max:1) ~init:0);
          program = (fun ~pid ~input -> CS.program candidate ~me:pid ~input);
        }
      in
      match
        H.check_exhaustive ~task:validity_only ~algorithm ~max_crashes:1 ()
      with
      | H.Pass _ -> incr survivors
      | H.Fail _ -> ())
    (CS.candidates ~rounds:1);
  Alcotest.(check bool) "solvable relaxation has survivors" true
    (!survivors > 0)

let () =
  Alcotest.run "core"
    [
      ( "alg1",
        [
          Alcotest.test_case "exhaustive k=1..4" `Quick test_alg1_exhaustive;
          Alcotest.test_case "exhaustive with crash" `Quick test_alg1_crashes;
          Alcotest.test_case "random k=25" `Quick test_alg1_random;
          Alcotest.test_case "step bound 2k+3" `Quick test_alg1_step_bound;
          Alcotest.test_case "solo decides input" `Quick test_alg1_solo;
        ] );
      ( "alg2",
        [
          Alcotest.test_case "eps-grid k=1 exhaustive" `Quick
            test_alg2_eps_grid;
          Alcotest.test_case "eps-grid k=1 with crash" `Quick
            test_alg2_eps_grid_crash;
          Alcotest.test_case "renaming3 exhaustive" `Quick test_alg2_renaming;
          Alcotest.test_case "always-zero exhaustive" `Quick
            test_alg2_always_zero;
          Alcotest.test_case "ternary tasks exhaustive" `Quick
            test_alg2_ternary;
          Alcotest.test_case "noisy-grid via subset search" `Quick
            test_alg2_noisy_grid_searched;
          Alcotest.test_case "eps-grid k=4 random" `Quick
            test_alg2_random_bigger;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "n=2 exhaustive" `Quick test_baseline_exhaustive;
          Alcotest.test_case "n=2,3,5 random" `Quick test_baseline_random_n;
          Alcotest.test_case "wait-free with crashes" `Quick
            test_baseline_crashes;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "epsilon threshold formula" `Quick
            test_lb_threshold;
          Alcotest.test_case "alg1 bucket spread = 3 eps" `Quick
            test_lb_alg1_buckets;
          Alcotest.test_case "quantized word count" `Quick
            test_lb_quantized_words;
          Alcotest.test_case "concrete witness executions" `Quick
            test_lb_witness;
        ] );
      ( "section8",
        [
          Alcotest.test_case "labelling: 3^r+1 path" `Quick
            test_labelling_path;
          Alcotest.test_case "ring simulation exhaustive" `Quick
            test_ring_sim_exhaustive;
          Alcotest.test_case "fast agreement exhaustive + crash" `Quick
            test_fast_agreement_exhaustive;
          Alcotest.test_case "fast agreement random R=12" `Quick
            test_fast_agreement_random;
        ] );
      ( "viz",
        [ Alcotest.test_case "dot structure" `Quick test_viz_counts ] );
      ( "iis-in-sm",
        [
          Alcotest.test_case "exhaustive (n=2)" `Quick
            test_iis_in_sm_exhaustive;
          Alcotest.test_case "random n=2,3,4" `Quick test_iis_in_sm_random;
          Alcotest.test_case "snapshot properties" `Quick
            test_iis_in_sm_snapshot_props;
        ] );
      ( "consensus-search",
        [
          Alcotest.test_case "no protocol survives (Lemma 2.1)" `Quick
            test_consensus_search_none;
          Alcotest.test_case "positive control" `Quick
            test_consensus_search_control;
        ] );
    ]
